//! Hybrid CAF + OpenSHMEM programming — the motivation the paper's
//! introduction gives for the whole design: "such an implementation allows
//! us to incorporate OpenSHMEM calls directly into CAF applications ... and
//! explore the ramifications of such a hybrid model."
//!
//! Because the CAF runtime *is* an OpenSHMEM client, every image can drop
//! down to the SHMEM layer (`img.shmem()`) and mix library calls with
//! coarray accesses against the same symmetric heap. This example builds a
//! pipeline where coarrays carry the bulk data, a raw `shmem_fadd` ticket
//! counter distributes work, and `shmem_wait_until` signals completion.
//!
//! Run with: `cargo run --release --example hybrid_caf_shmem`

use caf::{run_caf, Backend, CafConfig};
use openshmem::Cmp;
use pgas_machine::Platform;

fn main() {
    let images = 8;
    let tasks = 40usize;
    let out = run_caf(
        Platform::CrayXc30.config(2, 4).with_heap_bytes(1 << 18),
        CafConfig::new(Backend::Shmem, Platform::CrayXc30),
        move |img| {
            let shmem = img.shmem(); // drop down to the OpenSHMEM layer
            let n = img.num_images();

            // CAF side: a coarray of task results.
            let results = img.coarray::<i64>(&[tasks]).unwrap();
            // SHMEM side: a raw symmetric ticket counter and a done-flag.
            let ticket = shmem.shmalloc::<u64>(1).unwrap();
            let done = shmem.shmalloc::<u64>(1).unwrap();
            img.sync_all();

            // Dynamic work distribution via shmem_fadd on image 1's counter.
            let mut mine = 0;
            loop {
                let t = shmem.fadd(ticket, 1u64, 0) as usize;
                if t >= tasks {
                    break;
                }
                // "Compute" the task (some real work so images genuinely
                // interleave), then publish through the coarray.
                let value = (t as i64 + 1) * (t as i64 + 1);
                img.shmem().ctx().pe().compute_flops(5_000.0);
                std::hint::black_box((0..20_000u64).sum::<u64>());
                results.put_elem(img, 1, &[t], value);
                mine += 1;
                std::thread::yield_now();
            }

            // Everyone reports completion with an atomic increment; image 1
            // waits for all workers with shmem_wait_until.
            shmem.inc(done, 0);
            if img.this_image() == 1 {
                shmem.wait_until(done, Cmp::Ge, n as u64);
                let sum: i64 = results.read_local(img).iter().sum();
                let expect: i64 = (1..=tasks as i64).map(|k| k * k).sum();
                assert_eq!(sum, expect, "no task lost or duplicated");
                println!("image 1 collected {tasks} task results, sum = {sum} (expected {expect})");
            }
            img.sync_all();
            mine
        },
    );
    println!("\ntasks per image (dynamic shmem_fadd distribution):");
    for (i, m) in out.results.iter().enumerate() {
        println!("  image {}: {m}", i + 1);
    }
    let total: usize = out.results.iter().sum();
    assert_eq!(total, 40);
    println!("\nhybrid CAF + OpenSHMEM over one symmetric heap: {} total tasks", total);
    let _ = images;
}
