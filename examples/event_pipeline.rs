//! A software pipeline built on CAF events (the OpenUH extension the paper
//! mentions, later standardized in Fortran 2018): image i receives work from
//! image i-1, processes it, and forwards to image i+1. Events give exactly
//! the producer-consumer signalling this needs — no barriers, no polling on
//! data.
//!
//! Run with: `cargo run --release --example event_pipeline`

use caf::{run_caf, Backend, CafConfig};
use pgas_machine::Platform;

fn main() {
    let stages = 6;
    let items = 10i64;
    let out = run_caf(
        Platform::CrayXc30.config(2, 3).with_heap_bytes(1 << 17),
        CafConfig::new(Backend::Shmem, Platform::CrayXc30),
        move |img| {
            let me = img.this_image();
            let n = img.num_images();
            let inbox = img.coarray::<i64>(&[1]).unwrap();
            let ready = img.event_var(); // "your inbox has data"
            let space = img.event_var(); // "my inbox is free again"
            let mut processed = Vec::new();

            for k in 0..items {
                if me == 1 {
                    // Stage 1 generates the work item.
                    let item = k * 100;
                    inbox.write_local(img, &[item]);
                    processed.push(item + 1);
                    // Forward to stage 2: write its inbox, then post.
                    if n > 1 {
                        if k > 0 {
                            img.event_wait(&space, 1); // stage 2 freed its inbox
                        }
                        inbox.put_to(img, 2, &[item + 1]);
                        img.event_post(&ready, 2);
                    }
                } else {
                    // Wait for the predecessor's item.
                    img.event_wait(&ready, 1);
                    let item = inbox.read_local(img)[0];
                    // Tell the predecessor the inbox can be reused.
                    img.event_post(&space, me - 1);
                    let next_item = item + 1; // "process": increment per stage
                    processed.push(next_item);
                    if me < n {
                        if k > 0 {
                            img.event_wait(&space, 1);
                        }
                        inbox.put_to(img, me + 1, &[next_item]);
                        img.event_post(&ready, me + 1);
                    }
                }
            }
            // Drain the final stage's space posts so event counters balance.
            img.sync_all();
            processed
        },
    );
    println!("pipeline of {stages} stages, {items} items (each stage adds 1):\n");
    for (i, r) in out.results.iter().enumerate() {
        println!("stage {}: {:?}", i + 1, r);
    }
    let last = out.results.last().unwrap();
    for (k, v) in last.iter().enumerate() {
        assert_eq!(*v, k as i64 * 100 + out.results.len() as i64);
    }
    println!("\nfinal stage observed every item exactly once, fully processed ✓");
    let _ = stages;
}
