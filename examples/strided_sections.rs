//! Multi-dimensional strided remote access: the paper's §IV-C example.
//!
//! A 3-D coarray section `X(1:100:2, 1:80:2, 1:100:4)` has 50 x 40 x 25
//! strided elements; the naive translation needs one `shmem_putmem` per
//! element (50,000 calls) while the paper's `2dim_strided` algorithm issues
//! one `shmem_iput` per pencil of the best of the first two dimensions
//! (1,000 calls). This example performs the transfer with each algorithm on
//! a simulated Cray XC30 and reports messages and virtual time.
//!
//! Run with: `cargo run --release --example strided_sections`

use caf::{run_caf, Backend, CafConfig, DimRange, Section, StridedAlgorithm};
use pgas_machine::Platform;

fn main() {
    let shape = [100usize, 100, 100];
    let sec = Section::new(vec![
        DimRange::triplet(0, 99, 2), // 1:100:2 -> 50 elements
        DimRange::triplet(0, 79, 2), // 1:80:2  -> 40 elements
        DimRange::triplet(0, 99, 4), // 1:100:4 -> 25 elements
    ]);
    println!(
        "section {}x{}x{} = {} elements of a (100,100,100) coarray\n",
        50,
        40,
        25,
        sec.total()
    );
    println!("{:<14} {:>10} {:>14} {:>16}", "algorithm", "messages", "time (ms)", "bandwidth MB/s");

    let mut reference: Option<Vec<i32>> = None;
    for algo in [
        StridedAlgorithm::Naive,
        StridedAlgorithm::OneDim,
        StridedAlgorithm::TwoDim,
        StridedAlgorithm::BestOfAll,
        StridedAlgorithm::AmPacked,
        StridedAlgorithm::Adaptive,
    ] {
        let sec2 = sec.clone();
        let out = run_caf(
            Platform::CrayXc30.config(2, 1).with_heap_bytes(1 << 23),
            CafConfig::new(Backend::Shmem, Platform::CrayXc30).with_strided(algo),
            move |img| {
                let a = img.coarray::<i32>(&shape).unwrap();
                if img.this_image() == 1 {
                    let data: Vec<i32> = (0..sec2.total() as i32).collect();
                    let t0 = img.shmem().ctx().pe().now();
                    a.put_section(img, 2, &sec2, &data);
                    img.shmem().ctx().pe().now() - t0
                } else {
                    0
                }
            },
        );
        let ms = out.results[0] as f64 / 1e6;
        let bytes = sec.total() * 4;
        println!(
            "{:<14} {:>10} {:>14.3} {:>16.1}",
            algo.label(),
            out.stats.puts,
            ms,
            bytes as f64 / (out.results[0] as f64) * 1e3
        );

        // All algorithms must land identical bytes.
        let check = run_caf(
            Platform::CrayXc30.config(2, 1).with_heap_bytes(1 << 23),
            CafConfig::new(Backend::Shmem, Platform::CrayXc30).with_strided(algo),
            {
                let sec = sec.clone();
                move |img| {
                    let a = img.coarray::<i32>(&shape).unwrap();
                    if img.this_image() == 1 {
                        let data: Vec<i32> = (0..sec.total() as i32).collect();
                        a.put_section(img, 2, &sec, &data);
                    }
                    img.sync_all();
                    a.read_local(img)
                }
            },
        );
        let landed = check.results[1].clone();
        match &reference {
            None => reference = Some(landed),
            Some(r) => assert_eq!(&landed, r, "{algo:?} moved different bytes"),
        }
    }
    println!("\nall six algorithms produced byte-identical target arrays");
}
