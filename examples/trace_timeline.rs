//! Execution tracing: run a small CAF program with the machine's
//! virtual-time tracer enabled and export a Chrome trace (`chrome://tracing`
//! or https://ui.perfetto.dev) showing every put, get, atomic, wait and
//! barrier of every image on its virtual timeline.
//!
//! Run with: `cargo run --release --example trace_timeline`
//! Then load `results/trace_timeline.json` in Perfetto.

use caf::{run_caf, Backend, CafConfig};
use pgas_machine::trace::chrome_trace_json;
use pgas_machine::Platform;

fn main() {
    let cores_per_node = 2;
    let mcfg =
        Platform::CrayXc30.config(2, cores_per_node).with_heap_bytes(1 << 17).with_trace(true);
    let out = run_caf(mcfg, CafConfig::new(Backend::Shmem, Platform::CrayXc30), |img| {
        let a = img.coarray::<f64>(&[256]).unwrap();
        let lck = img.lock_var();
        let next = img.this_image() % img.num_images() + 1;
        a.put_to(img, next, &vec![1.0; 256]);
        img.sync_all();
        let _ = a.get_from(img, next);
        img.lock(&lck, 1);
        img.unlock(&lck, 1);
        let mut v = [img.this_image() as f64];
        img.co_sum(&mut v, None);
        img.sync_all();
    });

    println!("captured {} spans over {} ns of virtual time", out.trace.len(), out.makespan_ns());
    let mut by_kind = std::collections::BTreeMap::new();
    for s in &out.trace {
        *by_kind.entry(s.kind.label()).or_insert(0usize) += 1;
    }
    println!("\nspans by kind:");
    for (k, n) in &by_kind {
        println!("  {k:<12} {n}");
    }
    let json = chrome_trace_json(&out.trace, cores_per_node);
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/trace_timeline.json", &json).expect("write trace");
    println!("\nwrote results/trace_timeline.json — load it in chrome://tracing or Perfetto");
    assert!(by_kind.contains_key("put") && by_kind.contains_key("barrier"));

    // The request view: a traced run of the open-loop serving scenario,
    // exported with one async slice per request and `req_flow` arrows from
    // each request to the spans it caused — Perfetto renders the causal
    // fan-out of exactly the requests the tail attributor walks.
    use caf_apps::serve::{run_serve_outcome, ServeConfig};
    use pgas_machine::trace::chrome_trace_json_with_requests;
    use pgas_machine::{with_forced_aggregation, with_forced_plan, with_forced_tracing, FaultPlan};
    let cfg = ServeConfig {
        keyspace: 10_000,
        requests_per_image: 40,
        epochs: 2,
        slots_per_shard: 64,
        mean_gap_ns: 1_500.0,
        ..Default::default()
    };
    let plan = FaultPlan::new(cfg.seed).with_pe_failure(4, 12_000);
    let (_, sout) = with_forced_tracing(true, || {
        with_forced_aggregation(true, || {
            with_forced_plan(plan, || {
                run_serve_outcome(Platform::Titan, Backend::Shmem, 9, cfg, true)
            })
        })
    });
    println!(
        "\nserving request view: {} requests, {} spans over {} ns",
        sout.requests.len(),
        sout.trace.len(),
        sout.makespan_ns()
    );
    let req_json = chrome_trace_json_with_requests(&sout.trace, &sout.requests, 16);
    std::fs::write("results/trace_requests.json", &req_json).expect("write request trace");
    println!("wrote results/trace_requests.json — open the async track per request id");
}
