//! Monte-Carlo estimation of pi: embarrassingly parallel sampling with a
//! single `co_sum` reduction at the end — the smallest possible "real" CAF
//! program, and a check that collectives compose with per-image RNG streams.
//!
//! Run with: `cargo run --release --example monte_carlo_pi`

use caf::{run_caf, Backend, CafConfig};
use pgas_machine::Platform;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let samples_per_image = 200_000u64;
    let out = run_caf(
        Platform::Stampede.config(2, 8).with_heap_bytes(1 << 17),
        CafConfig::new(Backend::Shmem, Platform::Stampede).with_nonsym_bytes(4096),
        move |img| {
            let mut rng = SmallRng::seed_from_u64(0x9e3779b97f4a7c15u64 ^ img.this_image() as u64);
            let mut hits = 0u64;
            for _ in 0..samples_per_image {
                let x: f64 = rng.gen();
                let y: f64 = rng.gen();
                if x * x + y * y <= 1.0 {
                    hits += 1;
                }
            }
            img.shmem().ctx().pe().compute_flops(samples_per_image as f64 * 4.0);
            let mut totals = [hits as i64, samples_per_image as i64];
            img.co_sum(&mut totals, None);
            4.0 * totals[0] as f64 / totals[1] as f64
        },
    );
    let pi = out.results[0];
    println!("pi ≈ {pi:.5} from {} samples on {} images", 200_000 * 16, 16);
    println!("virtual time: {:.3} ms", out.makespan_ns() as f64 / 1e6);
    assert!((pi - std::f64::consts::PI).abs() < 0.01);
    assert!(out.results.iter().all(|&r| r == pi), "co_sum gave every image the same estimate");
}
