//! Distributed hash table with CAF per-image locks (the paper's §V-C
//! workload): random keyed updates, mutual exclusion via the MCS lock
//! adaptation of §IV-D. Verifies the final table against a sequential
//! oracle and shows the backend comparison of Figure 9 in miniature.
//!
//! Run with: `cargo run --release --example dht_locks`

use caf::Backend;
use caf_apps::dht::{expected_checksum, run_dht, DhtConfig, DhtUpdateMode};
use pgas_machine::Platform;

fn main() {
    let cfg = DhtConfig {
        slots_per_image: 128,
        updates_per_image: 40,
        seed: 42,
        locks_per_image: 1,
        ..Default::default()
    };
    let images = 16;
    println!(
        "DHT: {} images x {} updates, {} slots/image, simulated Titan\n",
        images, cfg.updates_per_image, cfg.slots_per_image
    );

    let oracle = expected_checksum(images, &cfg);
    println!("{:<12} {:<8} {:>12} {:>16}", "backend", "mode", "time (ms)", "checksum ok?");
    for backend in [Backend::Shmem, Backend::Gasnet, Backend::CrayCaf] {
        for update in [DhtUpdateMode::Locked, DhtUpdateMode::Am] {
            let r = run_dht(Platform::Titan, backend, images, DhtConfig { update, ..cfg });
            assert_eq!(r.checksum, oracle, "{backend:?}/{update:?}: updates must never be lost");
            println!(
                "{:<12} {:<8} {:>12.2} {:>16}",
                format!("{backend:?}"),
                format!("{update:?}"),
                r.time_ms,
                "yes"
            );
        }
    }
    println!("\nevery update survived on every backend — locked mode serializes through the");
    println!("MCS locks, AM mode through atomic handler execution at each slot's home image");
}
