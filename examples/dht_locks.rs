//! Distributed hash table with CAF per-image locks (the paper's §V-C
//! workload): random keyed updates, mutual exclusion via the MCS lock
//! adaptation of §IV-D. Verifies the final table against a sequential
//! oracle and shows the backend comparison of Figure 9 in miniature.
//!
//! Run with: `cargo run --release --example dht_locks`

use caf::Backend;
use caf_apps::dht::{expected_checksum, run_dht, DhtConfig};
use pgas_machine::Platform;

fn main() {
    let cfg =
        DhtConfig { slots_per_image: 128, updates_per_image: 40, seed: 42, locks_per_image: 1 };
    let images = 16;
    println!(
        "DHT: {} images x {} locked updates, {} slots/image, simulated Titan\n",
        images, cfg.updates_per_image, cfg.slots_per_image
    );

    let oracle = expected_checksum(images, &cfg);
    println!("{:<12} {:>12} {:>20}", "backend", "time (ms)", "checksum ok?");
    for backend in [Backend::Shmem, Backend::Gasnet, Backend::CrayCaf] {
        let r = run_dht(Platform::Titan, backend, images, cfg);
        assert_eq!(r.checksum, oracle, "{backend:?}: locked updates must never be lost");
        println!("{:<12} {:>12.2} {:>20}", format!("{backend:?}"), r.time_ms, "yes");
    }
    println!("\nevery update survived on every backend — the MCS locks serialize correctly");
}
