//! `pgas_top`: a live, `top`-style view of a running simulation.
//!
//! A consumer thread (this `main`) watches the CAF Himeno benchmark run on
//! the simulator through the bounded snapshot ring of
//! [`pgas_machine::StreamConfig`]: PE threads publish a [`StreamSample`]
//! (every PE's virtual clock, live op counters, each PE's most recent span,
//! per-NIC traffic) whenever one of them first crosses a virtual-time
//! cadence boundary. Sampling only ever *reads* machine state — attaching
//! the stream moves no virtual clock, a contract asserted in
//! `tests/observability_golden.rs` — so the view below is free.
//!
//! On a terminal the view refreshes in place; when piped, each frame prints
//! as one summary line instead. After the run, the critical-path breakdown
//! is printed, and its sidecar JSON is written only if it differs from the
//! committed `results/fig10_himeno.critpath.json` (this example runs the
//! Figure 10 workload, so byte-identical output would just duplicate the
//! committed artifact).
//!
//! Run with: `cargo run --release --example pgas_top`
//!
//! `cargo run --release --example pgas_top -- churn` instead watches the
//! availability-under-churn workload (`availability_churn`): a push
//! consumer registered with [`StreamConfig::with_consumer`] turns every
//! snapshot into a point of a live availability series — images up at that
//! virtual instant — so the scheduled worker death and the post-recovery
//! return to full strength are visible while the run executes, without
//! moving a single virtual clock.

use std::io::IsTerminal;
use std::time::Duration;

use caf::{Backend, StridedAlgorithm};
use caf_apps::himeno::{run_himeno_outcome, HimenoConfig};
use pgas_machine::{
    with_forced_metrics, with_forced_stream, with_forced_tracing, Platform, StreamConfig,
    StreamSample,
};

/// Virtual-time sampling cadence: the xs Himeno run spans ~1 ms of virtual
/// time, so 20 µs gives on the order of fifty frames.
const CADENCE_NS: u64 = 20_000;

fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

fn render_frame(s: &StreamSample, live: bool) {
    if !live {
        let max = s.clocks.iter().copied().max().unwrap_or(0);
        println!(
            "sample {:>4}  t={:>9} ns  clocks {:>9}..{:<9} ns",
            s.seq,
            s.t_ns,
            s.clocks.iter().copied().min().unwrap_or(0),
            max,
        );
        return;
    }
    // Clear screen, cursor home.
    print!("\x1b[2J\x1b[H");
    println!("pgas_top — himeno on {} PEs   sample {}   t = {} ns", s.clocks.len(), s.seq, s.t_ns);
    println!();
    let max = s.clocks.iter().copied().max().unwrap_or(1).max(1);
    for (pe, &clk) in s.clocks.iter().enumerate() {
        let last = s
            .inflight
            .get(pe)
            .and_then(|o| o.as_ref())
            .map(|sp| format!("{:?}", sp.kind))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "  PE {pe:>2} [{}] {clk:>9} ns  last op: {last}",
            bar(clk as f64 / max as f64, 30)
        );
    }
    if !s.counters.is_empty() {
        println!();
        let line = s
            .counters
            .iter()
            .filter(|(_, v)| *v > 0)
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join("  ");
        println!("  ops: {line}");
    }
    if !s.nics.is_empty() {
        let msgs: u64 = s.nics.iter().map(|n| n.messages).sum();
        let bytes: u64 = s.nics.iter().map(|n| n.bytes).sum();
        println!("  nic: {msgs} messages, {bytes} bytes across {} node(s)", s.nics.len());
    }
}

/// The `churn` mode: watch the availability-under-churn run through the
/// stream's push-consumer hook. The consumer derives the availability
/// series — a PE whose clock crossed the scheduled death instant is down —
/// from each snapshot as it is published, the pattern an external
/// dashboard would use.
fn churn_top() {
    use caf_apps::{run_churn_outcome, ChurnConfig};
    use pgas_machine::{with_forced_aggregation, with_forced_plan, FaultPlan};
    use std::sync::{Arc, Mutex};

    let cfg = ChurnConfig::default();
    let (victim_pe, deadline) = (4usize, 30_000u64);
    let images = 9;
    let series: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&series);
    // The churn run spans ~70 µs of virtual time; a 2 µs cadence gives a
    // few dozen availability points.
    let stream = StreamConfig::new(2_000, 512).with_consumer(Arc::new(move |s: &StreamSample| {
        let live = s
            .clocks
            .iter()
            .enumerate()
            .filter(|&(pe, &clk)| !(pe == victim_pe && clk >= deadline))
            .count();
        sink.lock().unwrap().push((s.t_ns, live));
    }));
    let ring = stream.ring();
    let sim = std::thread::spawn(move || {
        with_forced_stream(stream, || {
            with_forced_aggregation(true, || {
                with_forced_plan(
                    FaultPlan::new(cfg.seed).with_pe_failure(victim_pe, deadline),
                    || run_churn_outcome(Platform::Titan, Backend::Shmem, images, cfg, true),
                )
            })
        })
    });

    let live_tty = std::io::stdout().is_terminal();
    let mut last_seen: Option<u64> = None;
    while !sim.is_finished() {
        if let Some(s) = ring.latest() {
            if last_seen != Some(s.seq) {
                last_seen = Some(s.seq);
                render_frame(&s, live_tty);
                if let Some(&(t, up)) = series.lock().unwrap().last() {
                    println!("  availability: {up}/{images} images up at t={t} ns");
                }
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let (result, _out) = sim.join().expect("simulation thread panicked");

    let pts = series.lock().unwrap().clone();
    println!("\navailability series ({} samples from the stream consumer):", pts.len());
    let mut prev = None;
    for (t, up) in &pts {
        if prev != Some(*up) {
            println!("  t={t:>7} ns  {up}/{images} up  [{}]", bar(*up as f64 / images as f64, 18));
            prev = Some(*up);
        }
    }
    println!(
        "\nchurn: detect round {:?}, {} replayed + {} retried, recovery ratio {:.3}",
        result.detect_round, result.replayed, result.retried, result.recovery_ratio
    );
    println!(
        "zero lost acknowledged writes: checksum {:#018x} {} acked sum {:#018x}",
        result.checksum,
        if result.checksum == result.acked_sum { "==" } else { "!=" },
        result.acked_sum
    );
    println!("final worker team: {:?}", result.members_after);
}

/// The `serve` mode: watch the open-loop serving workload's windowed
/// latency telemetry live. The stream samples the `serve_latency_ns`
/// windowed series ([`StreamConfig::with_window_metric`]) into every
/// snapshot, and the push consumer evaluates the serving SLO over whatever
/// windows exist *so far* — current p50/p99/p999 and the fast/slow
/// burn rates — exactly the way an external dashboard would, moving no
/// virtual clock.
fn serve_top() {
    use caf_apps::serve::{run_serve_outcome, ServeConfig};
    use pgas_machine::metrics::WindowEntry;
    use pgas_machine::tailprof::REQ_PHASES;
    use pgas_machine::{with_forced_aggregation, with_forced_plan, with_forced_tracing, FaultPlan};
    use std::sync::{Arc, Mutex};

    let cfg = ServeConfig {
        keyspace: 100_000,
        requests_per_image: 400,
        epochs: 8,
        mean_gap_ns: 2_000.0,
        window_ns: 50_000,
        slo_threshold_ns: 25_000,
        ..Default::default()
    };
    let (victim_pe, deadline) = (4usize, 300_000u64);
    let images = 9;
    let spec = cfg.slo_spec();
    let window_ns = cfg.window_ns;
    let threshold_ns = cfg.slo_threshold_ns;
    // One live SLO row per sample: (t, p50, p99, p999, fast burn ×1000).
    type Row = (u64, u64, u64, u64, u64);
    let series: Arc<Mutex<Vec<Row>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&series);
    let stream = StreamConfig::new(20_000, 512)
        .with_window_metric("serve_latency_ns")
        .with_requests()
        .with_consumer(Arc::new(move |s: &StreamSample| {
            if s.windows.is_empty() {
                return;
            }
            let refs: Vec<&WindowEntry> = s.windows.iter().collect();
            let report = spec.evaluate_series(window_ns, &refs);
            if let Some(w) = report.windows.last() {
                sink.lock().unwrap().push((s.t_ns, w.p50, w.p99, w.p999, w.fast_burn_x1000));
            }
        }));
    let ring = stream.ring();
    let sim = std::thread::spawn(move || {
        // Tracing on: the request records feed the live tail-cause panel
        // and the final run-level tail attribution (no virtual clock moves).
        with_forced_tracing(true, || {
            with_forced_stream(stream, || {
                with_forced_aggregation(true, || {
                    with_forced_plan(
                        FaultPlan::new(cfg.seed).with_pe_failure(victim_pe, deadline),
                        || run_serve_outcome(Platform::Titan, Backend::Shmem, images, cfg, true),
                    )
                })
            })
        })
    });

    let live_tty = std::io::stdout().is_terminal();
    let mut last_seen: Option<u64> = None;
    while !sim.is_finished() {
        if let Some(s) = ring.latest() {
            if last_seen != Some(s.seq) {
                last_seen = Some(s.seq);
                render_frame(&s, live_tty);
                if let Some(&(t, p50, p99, p999, burn)) = series.lock().unwrap().last() {
                    println!(
                        "  slo: p50 {p50} ns  p99 {p99} ns  p999 {p999} ns  \
                         fast burn {:.1}x at t={t} ns",
                        burn as f64 / 1000.0
                    );
                }
                // Live "top tail causes": decompose the completed slow
                // requests in the snapshot into their critical-path phases
                // (queue wait from the open-loop schedule, the tracer's
                // running nic/wire/sync/fault sums, handler compute as the
                // busy remainder) and rank where tail time is going so far.
                let mut phase = [0u64; 6];
                let mut slow = 0u64;
                for r in &s.requests {
                    if r.end_ns.saturating_sub(r.arrival_ns) <= threshold_ns {
                        continue;
                    }
                    slow += 1;
                    let attributed = r.nic_ns + r.wire_ns + r.sync_ns + r.fault_ns;
                    phase[0] += r.begin_ns.saturating_sub(r.arrival_ns);
                    phase[1] += r.wire_ns;
                    phase[2] += r.nic_ns;
                    phase[3] += r.sync_ns;
                    phase[4] += r.fault_ns;
                    phase[5] +=
                        r.end_ns.saturating_sub(r.begin_ns).saturating_sub(attributed);
                }
                let total: u64 = phase.iter().sum();
                if slow > 0 && total > 0 {
                    let mut ranked: Vec<(usize, u64)> =
                        phase.iter().copied().enumerate().filter(|&(_, ns)| ns > 0).collect();
                    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                    println!("  top tail causes ({slow} slow requests so far):");
                    for &(k, ns) in ranked.iter().take(3) {
                        println!(
                            "    {:>15} {ns:>10} ns [{}]",
                            REQ_PHASES[k].label(),
                            bar(ns as f64 / total as f64, 18)
                        );
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let (result, _out) = sim.join().expect("simulation thread panicked");

    let rows = series.lock().unwrap().clone();
    println!("\nlive SLO series ({} samples from the stream consumer):", rows.len());
    let peak_p999 = rows.iter().map(|r| r.3).max().unwrap_or(1).max(1);
    let mut last_window = None;
    for &(t, _p50, p99, p999, burn) in &rows {
        // One line per virtual-time window (samples inside a window repeat).
        let w = t / window_ns;
        if last_window == Some(w) {
            continue;
        }
        last_window = Some(w);
        println!(
            "  t={t:>8} ns  p99 {p99:>8} ns  p999 {p999:>8} ns [{}] burn {:>6.1}x",
            bar(p999 as f64 / peak_p999 as f64, 18),
            burn as f64 / 1000.0
        );
    }
    println!(
        "\nserve: {} completed + {} drained ({} dropped with the victim), detect epoch {:?}",
        result.completed, result.drained, result.dropped, result.detect_epoch
    );
    println!(
        "zero lost acknowledged writes: checksum {:#018x} {} acked sum {:#018x}",
        result.checksum,
        if result.checksum == result.acked_sum { "==" } else { "!=" },
        result.acked_sum
    );
    println!("final worker team: {:?}\n", result.members_after);
    println!("{}", result.slo.render());
    if let Some(tail) = &result.tail {
        println!("{}", tail.render());
    }
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("churn") {
        churn_top();
        return;
    }
    if std::env::args().nth(1).as_deref() == Some("serve") {
        serve_top();
        return;
    }
    let images = 8;
    let cfg = HimenoConfig::size_xs();
    let stream = StreamConfig::new(CADENCE_NS, 256);
    let ring = stream.ring();

    // The simulation runs on its own thread; `main` stays the consumer so a
    // slow terminal can never stall a PE (the ring just evicts old frames).
    let sim = std::thread::spawn(move || {
        with_forced_stream(stream, || {
            with_forced_tracing(true, || {
                with_forced_metrics(true, || {
                    run_himeno_outcome(
                        Platform::Stampede,
                        Backend::Shmem,
                        Some(StridedAlgorithm::Naive),
                        images,
                        cfg,
                    )
                })
            })
        })
    });

    let live = std::io::stdout().is_terminal();
    let mut last_seen: Option<u64> = None;
    while !sim.is_finished() {
        if let Some(s) = ring.latest() {
            if last_seen != Some(s.seq) {
                last_seen = Some(s.seq);
                render_frame(&s, live);
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let (result, out) = sim.join().expect("simulation thread panicked");

    // Show what the consumer missed plus the stream's lifetime accounting.
    let leftover = ring.drain();
    if let Some(s) = leftover.last() {
        if last_seen != Some(s.seq) {
            render_frame(s, live);
        }
    }
    if live {
        println!();
    }
    println!(
        "stream: {} samples produced ({} dropped to ring overflow), cadence {} ns virtual",
        ring.total(),
        ring.dropped(),
        CADENCE_NS,
    );

    println!(
        "himeno {}x{}x{} on {images} images: {:.0} MFLOPS, {:.2} ms virtual",
        cfg.imax, cfg.jmax, cfg.kmax, result.mflops, result.time_ms
    );
    println!("captured {} spans, {} metric series\n", out.trace.len(), out.metrics.counters.len());

    let report = out.critical_path();
    println!("{}", report.render());
    assert_eq!(
        report.total_ns(),
        out.makespan_ns(),
        "critical-path components must sum to the run's total virtual time"
    );

    // This example runs the Figure 10 workload, and the stream moves no
    // clocks — so the sidecar normally matches the committed fig10 one byte
    // for byte. Only write ours when it actually differs.
    let sidecar = report.to_sidecar_json().pretty();
    let fig10 = std::fs::read_to_string("results/fig10_himeno.critpath.json").unwrap_or_default();
    let path = "results/pgas_top.critpath.json";
    if sidecar == fig10 {
        println!("\ncritical path matches results/fig10_himeno.critpath.json — no sidecar written");
        if std::fs::remove_file(path).is_ok() {
            println!("removed stale {path}");
        }
    } else {
        std::fs::create_dir_all("results").ok();
        std::fs::write(path, &sidecar).expect("write critical-path sidecar");
        println!("\nwrote {path}");
    }
}
