//! Critical-path profiler walkthrough: run the CAF Himeno benchmark with
//! tracing and metrics forced on, then explain where the virtual time went.
//!
//! The profiler walks the completed span/flow graph backwards from the PE
//! that finished last and attributes every nanosecond of the makespan to
//! compute, wire time, NIC queueing, synchronization, or fault delay — the
//! component sum equals the run's total virtual time exactly, so a
//! regression in any later PR shows up as a shifted breakdown, not just a
//! bigger number.
//!
//! Run with: `cargo run --release --example pgas_top`

use caf::{Backend, StridedAlgorithm};
use caf_apps::himeno::{run_himeno_outcome, HimenoConfig};
use pgas_machine::{with_forced_metrics, with_forced_tracing, Platform};

fn main() {
    let images = 8;
    let cfg = HimenoConfig::size_xs();
    let (result, out) = with_forced_tracing(true, || {
        with_forced_metrics(true, || {
            run_himeno_outcome(
                Platform::Stampede,
                Backend::Shmem,
                Some(StridedAlgorithm::Naive),
                images,
                cfg,
            )
        })
    });

    println!(
        "himeno {}x{}x{} on {images} images: {:.0} MFLOPS, {:.2} ms virtual",
        cfg.imax, cfg.jmax, cfg.kmax, result.mflops, result.time_ms
    );
    println!("captured {} spans, {} metric series\n", out.trace.len(), out.metrics.counters.len());

    let report = out.critical_path();
    println!("{}", report.render());

    // The acceptance invariant of the profiler: the per-category breakdown
    // tiles the makespan with no gaps and no double counting.
    assert_eq!(
        report.total_ns(),
        out.makespan_ns(),
        "critical-path components must sum to the run's total virtual time"
    );

    println!("\nop counts (all PEs):");
    for name in ["put", "get", "amo", "quiet", "barrier", "collective"] {
        let n = out.metrics.counter_total(name);
        if n > 0 {
            println!("  {name:<12} {n}");
        }
    }
    let (count, sum) = out.metrics.histogram_totals("nic_queue_ns");
    if count > 0 {
        println!("\nNIC queueing: {count} delayed transfers, {sum} ns total queue wait");
    }

    std::fs::create_dir_all("results").ok();
    let path = "results/pgas_top.critpath.json";
    std::fs::write(path, report.to_json().pretty()).expect("write critical-path report");
    println!("\nwrote {path}");
}
