//! Heat diffusion: a 1-D explicit finite-difference solver distributed over
//! CAF images, with halo exchange through co-indexed puts and neighbour-only
//! `sync images` synchronization. Verifies against the sequential solver and
//! prints the temperature profile.
//!
//! Run with: `cargo run --release --example heat_diffusion`

use caf::Backend;
use caf_apps::heat::{parallel_heat, serial_heat, HeatConfig};
use pgas_machine::Platform;

fn main() {
    let cfg = HeatConfig { cells: 64, steps: 600, alpha: 0.25, left_t: 1.0, right_t: 0.0 };
    let images = 8;

    println!(
        "1-D heat equation: {} cells, {} steps, {} images on simulated Titan",
        cfg.cells, cfg.steps, images
    );
    let parallel = parallel_heat(Platform::Titan, Backend::Shmem, images, cfg);
    let serial = serial_heat(&cfg);

    let max_err = parallel.iter().zip(&serial).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!("max |parallel - serial| = {max_err:.3e}");
    assert!(max_err < 1e-12, "decomposition must not change the physics");

    // Render the temperature profile as a bar chart.
    println!("\ntemperature profile (hot boundary on the left):");
    for (i, t) in parallel.iter().enumerate().step_by(4) {
        let bar = "#".repeat((t * 50.0).round() as usize);
        println!("cell {i:>3} | {t:>6.3} {bar}");
    }
}
