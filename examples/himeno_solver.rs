//! The Himeno pressure solver (the paper's §V-D workload): 19-point Jacobi
//! stencil with matrix-oriented strided halo exchange, on the two runtime
//! backends the paper compares on Stampede.
//!
//! Run with: `cargo run --release --example himeno_solver`

use caf::{Backend, StridedAlgorithm};
use caf_apps::himeno::{run_himeno, serial_gosa, HimenoConfig};
use pgas_machine::Platform;

fn main() {
    let cfg = HimenoConfig::size_xs();
    let images = 8;
    println!(
        "Himeno XS ({}x{}x{}), {} iterations, {} images on simulated Stampede\n",
        cfg.imax, cfg.jmax, cfg.kmax, cfg.iters, images
    );

    let serial = *serial_gosa(&cfg).last().unwrap();
    println!("{:<42} {:>10} {:>14} {:>12}", "configuration", "MFLOPS", "residual", "vs serial");
    for (label, backend, strided) in [
        ("UHCAF over MVAPICH2-X SHMEM (naive halo)", Backend::Shmem, Some(StridedAlgorithm::Naive)),
        ("UHCAF over MVAPICH2-X SHMEM (2dim halo)", Backend::Shmem, Some(StridedAlgorithm::TwoDim)),
        ("UHCAF over GASNet", Backend::Gasnet, None),
        ("UHCAF over GASNet with AM packing", Backend::Gasnet, Some(StridedAlgorithm::AmPacked)),
    ] {
        let r = run_himeno(Platform::Stampede, backend, strided, images, cfg);
        let rel = (r.gosa - serial).abs() / serial;
        println!("{label:<42} {:>10.0} {:>14.6e} {:>11.1e}", r.mflops, r.gosa, rel);
        assert!(rel < 1e-5, "parallel residual must match the sequential solver");
    }
    println!("\n(residuals match the sequential solver; MFLOPS are virtual-time)");
}
