//! Quickstart: the paper's Figure 1 program, in this library's API.
//!
//! ```fortran
//! integer :: coarray_x(4)[*]
//! integer, allocatable :: coarray_y(:)[:]
//! allocate(coarray_y(4)[*])
//! coarray_x = this_image();  coarray_y = 0
//! coarray_y(2) = coarray_x(3)[4]
//! coarray_x(1)[4] = coarray_y(2)
//! sync all
//! ```
//!
//! Run with: `cargo run --release --example quickstart`

use caf::{run_caf, Backend, CafConfig};
use pgas_machine::{generic_smp, Platform};

fn main() {
    let machine = generic_smp(4);
    let config = CafConfig::new(Backend::Shmem, Platform::GenericSmp);

    let out = run_caf(machine, config, |img| {
        // integer :: coarray_x(4)[*]   (a "save" coarray)
        let x = img.coarray::<i32>(&[4]).unwrap();
        // integer, allocatable :: coarray_y(:)[:]; allocate(coarray_y(4)[*])
        let y = img.coarray::<i32>(&[4]).unwrap();

        let me = img.this_image() as i32;
        x.write_local(img, &[me; 4]); // coarray_x = this_image()
        y.write_local(img, &[0; 4]); // coarray_y = 0
        img.sync_all();

        // coarray_y(2) = coarray_x(3)[4]  — read image 4's x(3)
        let v = x.get_elem(img, 4, &[2]);
        y.set_local_elem(img, &[1], v);

        // coarray_x(1)[4] = coarray_y(2)  — write image 4's x(1)
        x.put_elem(img, 4, &[0], y.local_elem(img, &[1]));

        img.sync_all();
        (img.this_image(), y.local_elem(img, &[1]), x.read_local(img))
    });

    println!("image | y(2) | local x after the exchange");
    for (image, y2, xs) in &out.results {
        println!("{image:>5} | {y2:>4} | {xs:?}");
    }
    println!();
    println!(
        "virtual makespan: {:.2} us on simulated '{}' ({} puts, {} gets)",
        out.makespan_ns() as f64 / 1000.0,
        out.machine,
        out.stats.puts,
        out.stats.gets
    );
    assert!(out.results.iter().all(|(_, y2, _)| *y2 == 4), "everyone read image 4's value");
}
