//! Workspace façade: re-exports the public API of the CAF-over-OpenSHMEM
//! reproduction so examples and integration tests can use one crate.
pub use caf;
pub use caf_apps as apps;
pub use openshmem;
pub use pgas_conduit as conduit;
pub use pgas_machine as machine;
pub use pgas_microbench as microbench;
