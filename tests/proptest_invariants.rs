//! Property-based tests (proptest) on the core data structures and
//! algorithms: the symmetric allocator, remote-pointer packing, section
//! arithmetic, strided-transfer equivalence, heap byte access and
//! reductions.

use caf::{run_caf, Backend, CafConfig, DimRange, RemotePtr, Section, StridedAlgorithm};
use openshmem::SymAlloc;
use pgas_machine::heap::Heap;
use pgas_machine::Platform;
use proptest::prelude::*;

// ---------- symmetric heap allocator ----------------------------------------

#[derive(Debug, Clone)]
enum AllocOp {
    Alloc { size: usize, align_pow: u32 },
    FreeNth(usize),
}

fn alloc_ops() -> impl Strategy<Value = Vec<AllocOp>> {
    prop::collection::vec(
        prop_oneof![
            (1usize..2048, 3u32..9)
                .prop_map(|(size, align_pow)| AllocOp::Alloc { size, align_pow }),
            (0usize..64).prop_map(AllocOp::FreeNth),
        ],
        1..80,
    )
}

proptest! {
    #[test]
    fn allocator_never_overlaps_and_always_coalesces(ops in alloc_ops()) {
        let mut a = SymAlloc::new(64 * 1024);
        let mut live: Vec<(usize, usize)> = Vec::new(); // (off, size)
        for op in ops {
            match op {
                AllocOp::Alloc { size, align_pow } => {
                    if let Ok(off) = a.alloc_aligned(size, 1 << align_pow) {
                        prop_assert_eq!(off % (1usize << align_pow), 0);
                        for &(o, s) in &live {
                            let s_rounded = s.max(1).div_ceil(8) * 8;
                            prop_assert!(
                                off + size <= o || o + s_rounded <= off,
                                "overlap: new ({}, {}) vs live ({}, {})", off, size, o, s
                            );
                        }
                        live.push((off, size));
                    }
                }
                AllocOp::FreeNth(n) => {
                    if !live.is_empty() {
                        let (off, _) = live.remove(n % live.len());
                        prop_assert!(a.free(off).is_ok());
                    }
                }
            }
            a.check_invariants().map_err(TestCaseError::fail)?;
        }
        for (off, _) in live {
            prop_assert!(a.free(off).is_ok());
        }
        prop_assert_eq!(a.in_use(), 0);
        prop_assert_eq!(a.largest_free(), a.capacity());
    }

    #[test]
    fn allocator_is_deterministic(sizes in prop::collection::vec(1usize..512, 1..40)) {
        let run = |sizes: &[usize]| {
            let mut a = SymAlloc::new(1 << 16);
            sizes.iter().map(|&s| a.alloc(s).unwrap()).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(&sizes), run(&sizes));
    }

    // ---------- remote pointer packing ---------------------------------------

    #[test]
    fn remote_ptr_roundtrips(image in 0usize..(1 << 20), offset in 0usize..(1usize << 36), flags in any::<u8>()) {
        let p = RemotePtr { image, offset, flags };
        let w = p.pack();
        let q = RemotePtr::unpack(w).expect("packed pointers are valid");
        prop_assert_eq!(q.image, image);
        prop_assert_eq!(q.offset, offset);
        prop_assert_ne!(w, caf::remote_ptr::NIL);
    }

    // ---------- machine heap byte access -------------------------------------

    #[test]
    fn heap_bytes_roundtrip(off in 0usize..64, data in prop::collection::vec(any::<u8>(), 0..96)) {
        let h = Heap::new(256);
        h.write_bytes(off, &data);
        let mut out = vec![0u8; data.len()];
        h.read_bytes(off, &mut out);
        prop_assert_eq!(out, data);
    }

    #[test]
    fn heap_disjoint_writes_do_not_interfere(
        a in prop::collection::vec(any::<u8>(), 1..40),
        b in prop::collection::vec(any::<u8>(), 1..40),
    ) {
        let h = Heap::new(256);
        let off_a = 10;
        let off_b = 10 + a.len(); // adjacent, not overlapping
        h.write_bytes(off_a, &a);
        h.write_bytes(off_b, &b);
        let mut ra = vec![0u8; a.len()];
        let mut rb = vec![0u8; b.len()];
        h.read_bytes(off_a, &mut ra);
        h.read_bytes(off_b, &mut rb);
        prop_assert_eq!(ra, a);
        prop_assert_eq!(rb, b);
    }

    // ---------- section arithmetic -------------------------------------------

    #[test]
    fn section_elements_are_unique_and_in_bounds(
        dims in prop::collection::vec((0usize..4, 1usize..6, 1usize..4), 1..4)
    ) {
        let shape: Vec<usize> = dims.iter().map(|&(s, c, st)| s + (c - 1) * st + 1).collect();
        let sec = Section::new(
            dims.iter().map(|&(start, count, step)| DimRange { start, count, step }).collect(),
        );
        sec.validate(&shape).map_err(TestCaseError::fail)?;
        let elems = sec.elements(&shape);
        prop_assert_eq!(elems.len(), sec.total());
        let total_cells: usize = shape.iter().product();
        let mut seen = std::collections::HashSet::new();
        for (i, &(arr, packed)) in elems.iter().enumerate() {
            prop_assert!(arr < total_cells);
            prop_assert_eq!(packed, i, "packed order is dense and sequential");
            prop_assert!(seen.insert(arr), "duplicate array offset {}", arr);
        }
    }
}

// ---------- pooled-scheduler determinism -------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Tentpole invariant: multiplexing PEs onto a bounded worker pool is
    /// pure scheduling. On a contended fig3-style workload — half the PEs
    /// streaming non-blocking puts across the node boundary, racing AMOs on
    /// a shared counter, and a consumer side blocked in `wait_until` — every
    /// worker count must reproduce the legacy thread-per-PE run bit for bit:
    /// same run digest, same metrics snapshot, same critical path.
    #[test]
    fn worker_pool_size_never_changes_the_simulation(
        payload_pow in 10usize..16,
        reps in 1usize..5,
    ) {
        use pgas_conduit::ctx::AmoOp;
        use pgas_conduit::{ConduitProfile, Ctx, CtxOptions};
        use pgas_machine::critdiff::RunDigest;
        use pgas_machine::{
            stampede, with_forced_metrics, with_forced_tracing, with_forced_workers, FaultPlan,
        };

        let run_once = |workers: usize| {
            with_forced_workers(workers, || {
                with_forced_tracing(true, || {
                    with_forced_metrics(true, || {
                        let payload = 1usize << payload_pow;
                        let mcfg = stampede(2, 8)
                            .with_heap_bytes(1 << 18)
                            .with_faults(FaultPlan::none())
                            .with_deterministic_nic();
                        pgas_machine::run(mcfg, move |pe| {
                            let ctx =
                                Ctx::new(pe, ConduitProfile::mvapich_shmem(), CtxOptions::default());
                            let n = pe.n();
                            ctx.barrier_all();
                            if pe.id() < n / 2 {
                                let dst = pe.id() + n / 2;
                                let data = vec![1u8; payload];
                                for _ in 0..reps {
                                    ctx.put_nbi(dst, 64, &data);
                                }
                                ctx.quiet();
                                ctx.amo(dst, 0, AmoOp::Add(1));
                            } else {
                                ctx.wait_until(0, |v| v == 1);
                            }
                            ctx.barrier_all();
                        })
                    })
                })
            })
        };
        let legacy = run_once(0);
        let legacy_digest = RunDigest::from_run(&legacy.critical_path(), &legacy.metrics);
        // 16 == num_pes on stampede(2, 8); 8 and 2 force real multiplexing.
        for workers in [1usize, 2, 8, 16] {
            let pooled = run_once(workers);
            prop_assert_eq!(
                &pooled.metrics, &legacy.metrics,
                "metrics diverged under {} workers", workers
            );
            prop_assert_eq!(
                pooled.critical_path(), legacy.critical_path(),
                "critical path diverged under {} workers", workers
            );
            prop_assert_eq!(
                RunDigest::from_run(&pooled.critical_path(), &pooled.metrics),
                legacy_digest.clone(),
                "digest diverged under {} workers", workers
            );
        }
    }
}

// ---------- strided algorithms move identical bytes --------------------------
// (runs real simulations; kept outside proptest! to control case counts)

#[test]
fn strided_algorithms_agree_on_random_sections() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    for case in 0..12 {
        let rank = rng.gen_range(1..=3);
        let dims: Vec<DimRange> = (0..rank)
            .map(|_| DimRange {
                start: rng.gen_range(0..3),
                count: rng.gen_range(1..6),
                step: rng.gen_range(1..4),
            })
            .collect();
        let shape: Vec<usize> = dims
            .iter()
            .map(|d| d.start + (d.count - 1) * d.step + 1 + rng.gen_range(0..2))
            .collect();
        let sec = Section::new(dims);
        let total = sec.total();
        let mut landed: Vec<Vec<i32>> = Vec::new();
        for algo in [
            StridedAlgorithm::Naive,
            StridedAlgorithm::OneDim,
            StridedAlgorithm::TwoDim,
            StridedAlgorithm::BestOfAll,
            StridedAlgorithm::AmPacked,
        ] {
            let sec = sec.clone();
            let shape = shape.clone();
            let out = run_caf(
                Platform::CrayXc30.config(2, 1).with_heap_bytes(1 << 18),
                CafConfig::new(Backend::Shmem, Platform::CrayXc30).with_strided(algo),
                move |img| {
                    let a = img.coarray::<i32>(&shape).unwrap();
                    if img.this_image() == 1 {
                        let data: Vec<i32> = (0..total as i32).map(|i| i * 3 + 1).collect();
                        a.put_section(img, 2, &sec, &data);
                    }
                    img.sync_all();
                    a.read_local(img)
                },
            );
            landed.push(out.results[1].clone());
        }
        for w in landed.windows(2) {
            assert_eq!(w[0], w[1], "case {case}: algorithms diverged for {sec:?} in {shape:?}");
        }
    }
}

#[test]
fn reductions_match_serial_fold_on_random_inputs() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(42);
    for _ in 0..6 {
        let n_images = rng.gen_range(2..=7);
        let len = rng.gen_range(1..=17);
        let inputs: Vec<Vec<i64>> =
            (0..n_images).map(|_| (0..len).map(|_| rng.gen_range(-1000..1000)).collect()).collect();
        let expect_sum: Vec<i64> = (0..len).map(|i| inputs.iter().map(|v| v[i]).sum()).collect();
        let expect_max: Vec<i64> =
            (0..len).map(|i| inputs.iter().map(|v| v[i]).max().unwrap()).collect();
        let inputs2 = inputs.clone();
        let out = run_caf(
            Platform::GenericSmp.config(1, n_images).with_heap_bytes(1 << 17),
            CafConfig::new(Backend::Shmem, Platform::GenericSmp),
            move |img| {
                let mut sum = inputs2[img.this_image() - 1].clone();
                img.co_sum(&mut sum, None);
                let mut max = inputs2[img.this_image() - 1].clone();
                img.co_max(&mut max, None);
                (sum, max)
            },
        );
        for (sum, max) in out.results {
            assert_eq!(sum, expect_sum);
            assert_eq!(max, expect_max);
        }
    }
}
