//! Failure-injection tests for §IV-B of the paper: CAF requires program-order
//! completion of remote accesses; OpenSHMEM does not. The runtime must insert
//! `shmem_quiet` — these tests prove both directions:
//! with quiet insertion the stack is hazard-free, and with it disabled the
//! conduit's ordering checker catches the violation.

use caf::{run_caf, run_caf_result, Backend, CafConfig};
use pgas_machine::Platform;

fn base_cfg() -> CafConfig {
    CafConfig::new(Backend::Shmem, Platform::Stampede)
}

fn machine() -> pgas_machine::MachineConfig {
    Platform::Stampede.config(2, 1).with_heap_bytes(1 << 17)
}

/// The paper's Figure 4 sequence: `coarray_a(:)[2] = coarray_b(:)` followed
/// by `coarray_c(:) = coarray_a(:)[2]` — erroneous in raw OpenSHMEM without
/// a quiet between the transfers.
fn figure4_sequence(img: &caf::Image<'_>) -> Vec<i64> {
    let a = img.coarray::<i64>(&[4]).unwrap();
    if img.this_image() == 1 {
        a.put_to(img, 2, &[11, 22, 33, 44]);
        a.get_from(img, 2)
    } else {
        Vec::new()
    }
}

#[test]
fn quiet_insertion_makes_figure4_safe() {
    let out = run_caf(machine(), base_cfg().with_strict_ordering(true), |img| {
        let r = figure4_sequence(img);
        img.sync_all();
        r
    });
    assert_eq!(out.results[0], vec![11, 22, 33, 44]);
    assert_eq!(out.stats.hazards, 0);
}

#[test]
fn disabling_quiet_is_detected_as_a_hazard() {
    let err = run_caf_result(
        machine(),
        base_cfg().with_insert_quiet(false).with_strict_ordering(true),
        |img| {
            let r = figure4_sequence(img);
            img.sync_all();
            r
        },
    )
    .unwrap_err();
    assert!(err.message.contains("ordering hazard"), "got: {}", err.message);
}

#[test]
fn disabling_quiet_without_strict_mode_counts_hazards() {
    let out = run_caf(machine(), base_cfg().with_insert_quiet(false), |img| {
        figure4_sequence(img);
        img.sync_all();
    });
    assert!(out.stats.hazards >= 1, "the checker must flag the RAW conflict");
}

#[test]
fn overlapping_puts_also_hazard_without_quiet() {
    // Pin coalescing off: this WAW is a *direct-path* hazard. Staged, the
    // second put write-combines over the first in the coalescing buffer
    // (FIFO, last writer wins) and there is legitimately nothing to flag.
    let cfg = base_cfg().with_insert_quiet(false).with_aggregation(caf::CoalescePolicy::Off);
    let out = run_caf(machine(), cfg, |img| {
        let a = img.coarray::<i64>(&[4]).unwrap();
        if img.this_image() == 1 {
            a.put_to(img, 2, &[1, 1, 1, 1]);
            a.put_to(img, 2, &[2, 2, 2, 2]); // WAW to the same location
        }
        img.sync_all();
    });
    assert!(out.stats.hazards >= 1);
}

#[test]
fn every_synchronization_primitive_orders_memory() {
    // After sync_all / sync_images / events / locks, a reader must observe
    // the writer's data: run each primitive in a loop and verify.
    for mode in ["sync_all", "sync_images", "event", "lock"] {
        let out = run_caf(machine(), base_cfg().with_strict_ordering(true), move |img| {
            let c = img.coarray::<i64>(&[1]).unwrap();
            let ev = img.event_var();
            let lck = img.lock_var();
            img.sync_all();
            let mut seen = Vec::new();
            for round in 0..5i64 {
                match mode {
                    "sync_all" => {
                        if img.this_image() == 1 {
                            c.put_to(img, 2, &[round]);
                        }
                        img.sync_all();
                        if img.this_image() == 2 {
                            seen.push(c.read_local(img)[0]);
                        }
                        img.sync_all();
                    }
                    "sync_images" => {
                        let partner = if img.this_image() == 1 { 2 } else { 1 };
                        if img.this_image() == 1 {
                            c.put_to(img, 2, &[round]);
                        }
                        img.sync_images(&[partner]);
                        if img.this_image() == 2 {
                            seen.push(c.read_local(img)[0]);
                        }
                        img.sync_images(&[partner]);
                    }
                    "event" => {
                        if img.this_image() == 1 {
                            c.put_to(img, 2, &[round]);
                            img.event_post(&ev, 2);
                            img.event_wait(&ev, 1); // ack from 2
                        } else {
                            img.event_wait(&ev, 1);
                            seen.push(c.read_local(img)[0]);
                            img.event_post(&ev, 1);
                        }
                    }
                    "lock" => {
                        // Image 1 writes under the lock; image 2 polls under
                        // the lock until it sees the round value.
                        if img.this_image() == 1 {
                            img.lock(&lck, 1);
                            c.put_to(img, 2, &[round]);
                            img.unlock(&lck, 1);
                            img.sync_all(); // publish
                        } else {
                            img.sync_all(); // wait for the write
                            img.lock(&lck, 1);
                            seen.push(c.read_local(img)[0]);
                            img.unlock(&lck, 1);
                        }
                        img.sync_all(); // round complete
                    }
                    _ => unreachable!(),
                }
            }
            seen
        });
        assert_eq!(out.results[1], vec![0, 1, 2, 3, 4], "mode {mode}");
        assert_eq!(out.stats.hazards, 0, "mode {mode}");
    }
}
