//! The paper's headline quantitative claims, checked end-to-end at reduced
//! scale. Exact factors differ from the 2015 testbeds (our substrate is a
//! simulator); each assertion encodes the *shape*: who wins and roughly by
//! how much. EXPERIMENTS.md records the full-size numbers.

use caf::{Backend, StridedAlgorithm};
use caf_apps::dht::{run_dht, DhtConfig};
use caf_apps::himeno::{run_himeno, HimenoConfig};
use pgas_conduit::ConduitProfile;
use pgas_machine::Platform;
use pgas_microbench::lock_bench::LockBench;
use pgas_microbench::{CafPairBench, PairBench};

/// §V-B1: "an average of 18% improvement in UHCAF implementation over
/// OpenSHMEM [vs GASNet] in both the Cray XC30 and Stampede environment".
#[test]
fn claim_contiguous_put_improvement() {
    for platform in [Platform::CrayXc30, Platform::Stampede] {
        let mk = |backend| {
            let mut b = CafPairBench::new(platform, backend, 1);
            b.iters = 5;
            b
        };
        let mut gains = Vec::new();
        for size in [4 * 1024, 64 * 1024, 512 * 1024] {
            let s = mk(Backend::Shmem).contiguous_put_bw_mbs(size);
            let g = mk(Backend::Gasnet).contiguous_put_bw_mbs(size);
            gains.push(s / g - 1.0);
        }
        let avg = gains.iter().sum::<f64>() / gains.len() as f64;
        assert!(
            avg > 0.08 && avg < 0.50,
            "{platform:?}: average gain {:.0}% should be near the paper's 18%",
            avg * 100.0
        );
    }
}

/// §V-B2: "around 3x improvement in bandwidth using UHCAF implementation
/// over Cray SHMEM compared to Cray CAF, and 9x improvement compared to the
/// naive implementation".
#[test]
fn claim_strided_speedups_on_cray() {
    // The paper's UHCAF did not aggregate: its naive algorithm pays one
    // wire transfer per element row. Pin coalescing off so an ambient
    // PGAS_COALESCE=on (which batches exactly those small puts and
    // collapses the 9x gap this claim encodes) keeps the comparison in
    // the paper's measurement conditions.
    pgas_machine::with_forced_aggregation(false, claim_strided_speedups_on_cray_inner)
}

fn claim_strided_speedups_on_cray_inner() {
    let mk = |backend, algo: Option<StridedAlgorithm>| {
        let mut b = CafPairBench::new(Platform::CrayXc30, backend, 1);
        b.iters = 3;
        if let Some(a) = algo {
            b = b.with_strided(a);
        }
        b
    };
    let two = mk(Backend::Shmem, Some(StridedAlgorithm::TwoDim)).strided_put_bw_mbs(8);
    let naive = mk(Backend::Shmem, Some(StridedAlgorithm::Naive)).strided_put_bw_mbs(8);
    let cray = mk(Backend::CrayCaf, None).strided_put_bw_mbs(8);
    let vs_cray = two / cray;
    let vs_naive = two / naive;
    assert!((1.5..8.0).contains(&vs_cray), "2dim vs Cray-CAF: {vs_cray:.1}x (paper: ~3x)");
    assert!((4.0..20.0).contains(&vs_naive), "2dim vs naive: {vs_naive:.1}x (paper: ~9x)");
}

/// §V-B2 / §V-D: on MVAPICH2-X, `shmem_iput` is a loop of contiguous puts,
/// so the naive and 2dim algorithms perform the same.
#[test]
fn claim_naive_equals_twodim_on_stampede() {
    let mk = |algo| {
        let mut b = CafPairBench::new(Platform::Stampede, Backend::Shmem, 1).with_strided(algo);
        b.iters = 3;
        b
    };
    let two = mk(StridedAlgorithm::TwoDim).strided_put_bw_mbs(4);
    let naive = mk(StridedAlgorithm::Naive).strided_put_bw_mbs(4);
    let ratio = two / naive;
    assert!((0.85..1.18).contains(&ratio), "parity expected, got {ratio:.2}");
}

/// §V-B3: "using UHCAF over Cray SHMEM is 22% faster than using Cray CAF and
/// 11% faster than using UHCAF over GASNet" for the lock microbenchmark.
#[test]
fn claim_lock_ordering() {
    let run = |backend| {
        LockBench { acquires: 8, ..LockBench::new(Platform::Titan, backend, 32) }.run_ms()
    };
    let shmem = run(Backend::Shmem);
    let gasnet = run(Backend::Gasnet);
    let cray = run(Backend::CrayCaf);
    assert!(shmem < gasnet && shmem < cray, "SHMEM {shmem:.2} GASNet {gasnet:.2} Cray {cray:.2}");
    let vs_cray = cray / shmem - 1.0;
    assert!(vs_cray > 0.05, "vs Cray-CAF: {:.0}% (paper: 22%)", vs_cray * 100.0);
}

/// §V-C: "the DHT benchmark using the UHCAF over Cray SHMEM implementation
/// is 28% faster than the Cray CAF implementation and 18% faster than the
/// UHCAF over GASNet implementation".
#[test]
fn claim_dht_ordering() {
    let cfg =
        DhtConfig { slots_per_image: 64, updates_per_image: 30, seed: 9, ..Default::default() };
    let run = |backend| run_dht(Platform::Titan, backend, 16, cfg).time_ms;
    let shmem = run(Backend::Shmem);
    let gasnet = run(Backend::Gasnet);
    let cray = run(Backend::CrayCaf);
    assert!(shmem < gasnet && shmem < cray, "SHMEM {shmem:.2} GASNet {gasnet:.2} Cray {cray:.2}");
}

/// §V-D: Himeno over MVAPICH2-X SHMEM beats GASNet ("on average 6%, up to
/// 22%") for >= 16 images; the naive algorithm is the right choice there.
#[test]
fn claim_himeno_ordering() {
    let cfg = HimenoConfig::size_xs();
    let naive = Some(StridedAlgorithm::Naive);
    let shmem = run_himeno(Platform::Stampede, Backend::Shmem, naive, 16, cfg).mflops;
    let gasnet = run_himeno(Platform::Stampede, Backend::Gasnet, naive, 16, cfg).mflops;
    let gain = shmem / gasnet - 1.0;
    assert!(gain > 0.0, "SHMEM {shmem:.0} vs GASNet {gasnet:.0} MFLOPS");
    assert!(gain < 0.6, "gain {:.0}% should be moderate like the paper's 6-22%", gain * 100.0);
}

/// §III: library-level ordering — SHMEM and GASNet beat MPI-3 on small-put
/// latency; SHMEM beats GASNet on bandwidth everywhere.
#[test]
fn claim_library_level_ordering() {
    for platform in [Platform::Stampede, Platform::Titan] {
        let shmem_profile = ConduitProfile::native_shmem(platform);
        let mk = |profile| {
            let mut b = PairBench::new(platform, profile, 1);
            b.iters = 5;
            b
        };
        let shmem_lat = mk(shmem_profile).put_latency_us(8);
        let gasnet_lat = mk(ConduitProfile::gasnet(platform)).put_latency_us(8);
        let mpi_lat = mk(ConduitProfile::mpi3(platform)).put_latency_us(8);
        assert!(shmem_lat < mpi_lat, "{platform:?} SHMEM vs MPI latency");
        assert!(gasnet_lat < mpi_lat, "{platform:?} GASNet vs MPI latency");
        let shmem_bw = mk(shmem_profile).put_bandwidth_mbs(1 << 20);
        let gasnet_bw = mk(ConduitProfile::gasnet(platform)).put_bandwidth_mbs(1 << 20);
        assert!(shmem_bw > gasnet_bw, "{platform:?} SHMEM vs GASNet bandwidth");
    }
}
