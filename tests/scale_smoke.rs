//! Paper-scale smoke runs: the pooled scheduler and the targeted-wake
//! parking discipline exist so sweeps at 1024/2048 images (and beyond) are
//! routine. This file guards that an order of magnitude past the figures.
//!
//! The runs are *smoke* tests — they assert liveness (no deadlock, no slot
//! leak at thousands of PE threads), delivery (every put arrives), and the
//! per-PE results — not timing. Stacks are trimmed well below the 512 KiB
//! platform default so the virtual-memory footprint stays modest
//! (10k × 128 KiB ≈ 1.2 GiB reserved, mostly never touched).
//!
//! `SMOKE_NODES` / `SMOKE_WORKERS` override the scale for ad-hoc probing.

use pgas_machine::{run, stampede, with_forced_workers};

/// Ring exchange at `nodes × 16` PEs under a forced worker limit: PE i puts
/// its id+1 into PE (i+1) % n, waits on its own cell, and barriers — every
/// PE is both source and sink, and every PE transits every yield point
/// (ready queue, NIC arbiter parking, `wait_until`, barrier).
fn ring_smoke(default_nodes: usize, default_workers: usize) {
    let nodes: usize =
        std::env::var("SMOKE_NODES").ok().and_then(|v| v.parse().ok()).unwrap_or(default_nodes);
    let workers: usize =
        std::env::var("SMOKE_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(default_workers);
    const CORES: usize = 16;
    let n = nodes * CORES;

    let mcfg = stampede(nodes, CORES)
        .with_heap_bytes(1 << 12)
        .with_stack_bytes(1 << 17)
        .with_deterministic_nic();
    let out = with_forced_workers(workers, || {
        run(mcfg, |pe| {
            use pgas_conduit::{ConduitProfile, Ctx, CtxOptions};
            let ctx = Ctx::new(pe, ConduitProfile::mvapich_shmem(), CtxOptions::default());
            let n = pe.n();
            ctx.barrier_all();
            let next = (pe.id() + 1) % n;
            ctx.put(next, 0, &(pe.id() as u64 + 1).to_le_bytes());
            let got = ctx.wait_until(0, |v| v != 0);
            assert_eq!(got, ((pe.id() + n - 1) % n) as u64 + 1, "wrong neighbor value");
            ctx.barrier_all();
            got
        })
    });
    assert_eq!(out.results.len(), n);
    for (pe, &got) in out.results.iter().enumerate() {
        assert_eq!(got, ((pe + n - 1) % n) as u64 + 1);
    }
}

/// Tier-1 guard: 2496 PEs on 8 workers — past the largest figure sweep
/// point, quick enough for every test run.
#[test]
fn pooled_smoke_past_figure_scale() {
    ring_smoke(156, 8);
}

/// The 10k-PE smoke run (625 nodes × 16 cores on 8 workers). ~40 s in
/// release on a throttled single-core host; run explicitly:
/// `cargo test --release --test scale_smoke -- --ignored`.
#[test]
#[ignore = "minutes-scale; run explicitly with --ignored"]
fn ten_thousand_pes_smoke() {
    ring_smoke(625, 8);
}
