//! Integration tests spanning the whole stack:
//! machine → conduit → openshmem → caf → applications.

use caf::{run_caf, Backend, CafConfig, DimRange, Section};
use caf_apps::dht::{expected_checksum, run_dht, DhtConfig};
use caf_apps::himeno::{run_himeno, serial_gosa, HimenoConfig};
use pgas_machine::Platform;

fn platforms_and_backends() -> Vec<(Platform, Backend)> {
    vec![
        (Platform::Stampede, Backend::Shmem),
        (Platform::Stampede, Backend::Gasnet),
        (Platform::Titan, Backend::Shmem),
        (Platform::Titan, Backend::CrayCaf),
        (Platform::CrayXc30, Backend::Shmem),
        (Platform::CrayXc30, Backend::Gasnet),
        (Platform::GenericSmp, Backend::Shmem),
    ]
}

#[test]
fn full_stack_smoke_on_every_configuration() {
    for (platform, backend) in platforms_and_backends() {
        let out = run_caf(
            platform.config(2, 2).with_heap_bytes(1 << 17),
            CafConfig::new(backend, platform),
            |img| {
                let n = img.num_images();
                let a = img.coarray::<i64>(&[8]).unwrap();
                let next = img.this_image() % n + 1;
                a.put_to(img, next, &[img.this_image() as i64; 8]);
                img.sync_all();
                let from = (img.this_image() + n - 2) % n + 1;
                assert_eq!(a.read_local(img)[0], from as i64);
                // A reduction and a lock round for good measure.
                let mut v = [1i64];
                img.co_sum(&mut v, None);
                assert_eq!(v[0], n as i64);
                let lck = img.lock_var();
                img.lock(&lck, 1);
                img.unlock(&lck, 1);
                img.this_image()
            },
        );
        // GenericSmp is single-node by definition; others have 2 nodes here.
        assert_eq!(
            out.results.len(),
            platform.config(2, 2).total_pes(),
            "{platform:?}/{backend:?}"
        );
        assert_eq!(out.stats.hazards, 0, "{platform:?}/{backend:?} must be hazard-free");
    }
}

#[test]
fn applications_are_hazard_free() {
    // The §IV-B quiet-insertion discipline must make whole applications run
    // with zero ordering hazards. (The DHT and Himeno runners assert their
    // own correctness; here we re-run small instances and check the hazard
    // counters stay clean.)
    let dht = run_dht(
        Platform::Titan,
        Backend::Shmem,
        8,
        DhtConfig { slots_per_image: 32, updates_per_image: 20, seed: 3, ..Default::default() },
    );
    assert_eq!(
        dht.checksum,
        expected_checksum(
            8,
            &DhtConfig {
                slots_per_image: 32,
                updates_per_image: 20,
                seed: 3,
                ..Default::default()
            }
        )
    );
    let cfg = HimenoConfig::tiny();
    let r = run_himeno(Platform::Stampede, Backend::Shmem, None, 4, cfg);
    let serial = *serial_gosa(&cfg).last().unwrap();
    assert!((r.gosa - serial).abs() / serial < 1e-5);
}

#[test]
fn strided_section_crosses_the_whole_stack() {
    // A 3-D strided put through the public facade, verified element-wise.
    let shape = [12usize, 10, 8];
    let sec = Section::new(vec![
        DimRange::triplet(1, 11, 2),
        DimRange::triplet(0, 9, 3),
        DimRange::triplet(2, 6, 2),
    ]);
    let expected_elems = sec.elements(&shape);
    let total = sec.total();
    let out = run_caf(
        Platform::CrayXc30.config(2, 1).with_heap_bytes(1 << 18),
        CafConfig::new(Backend::Shmem, Platform::CrayXc30),
        move |img| {
            let a = img.coarray::<f64>(&shape).unwrap();
            if img.this_image() == 1 {
                let data: Vec<f64> = (0..total).map(|i| i as f64 * 1.25).collect();
                a.put_section(img, 2, &sec, &data);
            }
            img.sync_all();
            a.read_local(img)
        },
    );
    let landed = &out.results[1];
    for (arr, packed) in expected_elems {
        assert_eq!(landed[arr], packed as f64 * 1.25);
    }
}

#[test]
fn makespan_reflects_platform_speed() {
    // The same program must be faster (in virtual time) on the faster wire.
    let prog = |platform: Platform| {
        run_caf(
            platform.config(2, 1).with_heap_bytes(1 << 18),
            CafConfig::new(Backend::Shmem, platform),
            |img| {
                let a = img.coarray::<u8>(&[1 << 15]).unwrap();
                if img.this_image() == 1 {
                    for _ in 0..20 {
                        a.put_to(img, 2, &vec![1u8; 1 << 15]);
                    }
                }
                img.sync_all();
            },
        )
        .makespan_ns()
    };
    let xc30 = prog(Platform::CrayXc30);
    let titan = prog(Platform::Titan);
    assert!(xc30 < titan, "Aries ({xc30} ns) should beat Gemini ({titan} ns)");
}

#[test]
fn large_job_many_images() {
    // 64 images across 4 nodes: exercises thread scale, subset barriers,
    // events and collectives together.
    let out = run_caf(
        Platform::Titan.config(4, 16).with_heap_bytes(1 << 16),
        CafConfig::new(Backend::Shmem, Platform::Titan).with_nonsym_bytes(2048),
        |img| {
            let n = img.num_images();
            let me = img.this_image();
            let ev = img.event_var();
            // Ring of event posts.
            let next = me % n + 1;
            img.event_post(&ev, next);
            img.event_wait(&ev, 1);
            // Global reduction.
            let mut v = [me as i64];
            img.co_sum(&mut v, None);
            v[0]
        },
    );
    let expect = (64 * 65 / 2) as i64;
    assert!(out.results.iter().all(|&r| r == expect));
}
