//! End-to-end validation of the benchmark regression differ.
//!
//! Three contracts from the regression-harness design:
//!
//! 1. Determinism — two runs of the same configuration digest identically,
//!    so a self-diff is exactly zero everywhere (this is what lets CI treat
//!    *any* delta beyond tolerance as a real change).
//! 2. A NIC bandwidth-degradation window shows up as a positive
//!    `nic_contention` delta attributed to the PEs/peer node it hit.
//! 3. An artificially slowed conduit profile is caught by
//!    `CritDiff::regressions` with the makespan growth attributed to the
//!    correct critical-path segment.

use pgas_conduit::{ConduitProfile, Ctx, CtxOptions};
use pgas_machine::critdiff::{CritDiff, RunDigest};
use pgas_machine::{
    stampede, with_forced_metrics, with_forced_tracing, DegradedWindow, FaultPlan, PathCategory,
};

/// The Figure 3 contention pattern: 8 sender PEs on node 0 each stream four
/// 32 KiB non-blocking puts to a partner on node 1, then quiet. The fault
/// plan is always explicit (config beats the `PGAS_FAULT_PLAN` environment
/// default) so the baseline digest is stable even under the CI fault job.
fn digest_with(profile: ConduitProfile, plan: FaultPlan) -> RunDigest {
    let mcfg = stampede(2, 8).with_heap_bytes(1 << 18).with_faults(plan).with_deterministic_nic();
    let out = with_forced_tracing(true, || {
        with_forced_metrics(true, || {
            pgas_machine::run(mcfg, move |pe| {
                let ctx = Ctx::new(pe, profile, CtxOptions::default());
                let n = pe.n();
                ctx.barrier_all();
                if pe.id() < n / 2 {
                    let dst = pe.id() + n / 2;
                    let data = vec![1u8; 32 * 1024];
                    for _ in 0..4 {
                        ctx.put_nbi(dst, 0, &data);
                    }
                    ctx.quiet();
                }
                ctx.barrier_all();
            })
        })
    });
    RunDigest::from_run(&out.critical_path(), &out.metrics)
}

#[test]
fn self_diff_of_two_identical_runs_is_zero_everywhere() {
    let a = digest_with(ConduitProfile::mvapich_shmem(), FaultPlan::none());
    let b = digest_with(ConduitProfile::mvapich_shmem(), FaultPlan::none());
    assert_eq!(a, b, "deterministic virtual time => bit-identical digests");
    let diff = CritDiff::between(&a, &b);
    assert!(diff.is_zero(), "self-diff must be exactly zero:\n{}", diff.render());
    assert!(diff.regressions(0.0).is_empty(), "zero tolerance, zero regressions");
}

#[test]
fn nic_degradation_window_is_attributed_to_nic_contention() {
    let base = digest_with(ConduitProfile::mvapich_shmem(), FaultPlan::none());
    // Cut the receiving node's NIC to a quarter of nominal bandwidth for the
    // whole run: transfers stretch, and the senders' quiet waits queue
    // behind the slowed receiver.
    let degraded = FaultPlan::none().with_degraded_window(DegradedWindow {
        node: 1,
        begin_ns: 0,
        end_ns: u64::MAX,
        bandwidth_factor: 0.25,
    });
    let cand = digest_with(ConduitProfile::mvapich_shmem(), degraded);

    let diff = CritDiff::between(&base, &cand);
    assert!(diff.makespan_delta_ns() > 0, "degradation must slow the run");
    let nic = diff
        .categories
        .iter()
        .find(|c| c.category == PathCategory::NicContention)
        .expect("differ always reports all five categories");
    assert!(
        nic.delta_ns() > 0,
        "NIC queueing behind the degraded link must grow:\n{}",
        diff.render()
    );

    // The regression verdicts call out the category, and the per-PE
    // attribution lands on a sender (node 0 holds PEs 0..8).
    let regs = diff.regressions(0.02);
    assert!(regs.iter().any(|r| r.contains("nic_contention")), "{regs:?}");
    let grown_pe = diff
        .by_pe
        .iter()
        .find(|p| p.category == PathCategory::NicContention && p.delta_ns() > 0)
        .expect("per-PE slice for the grown category");
    assert!(grown_pe.pe < 8, "attribution lands on a node-0 sender, got PE {}", grown_pe.pe);

    // Metric series keyed by peer node point at the degraded target node.
    assert!(
        diff.metrics.iter().any(|m| m.peer_node == Some(1) && m.sum_delta() > 0),
        "some op-kind series toward node 1 must have grown:\n{}",
        diff.render()
    );

    // The unchanged tree stays green even at zero tolerance (determinism),
    // and the degraded run passes only under a huge tolerance.
    assert!(CritDiff::between(&base, &base).regressions(0.0).is_empty());
    assert!(diff.regressions(100.0).is_empty());
}

/// The serving anchor's shape (the serve tests' calibrated failure
/// scenario), digested *with* its per-request critical paths: the digest
/// gains a request-phase table that the differ judges alongside the
/// machine-level categories.
fn serving_digest() -> RunDigest {
    use caf::Backend;
    use caf_apps::serve::{run_serve_outcome, ServeConfig};
    use pgas_machine::{with_forced_aggregation, with_forced_plan, Platform};
    let cfg = ServeConfig {
        keyspace: 10_000,
        requests_per_image: 40,
        epochs: 2,
        slots_per_shard: 64,
        mean_gap_ns: 1_500.0,
        ..Default::default()
    };
    let plan = FaultPlan::new(cfg.seed).with_pe_failure(4, 12_000);
    let out = with_forced_tracing(true, || {
        with_forced_metrics(true, || {
            with_forced_aggregation(true, || {
                with_forced_plan(plan, || {
                    run_serve_outcome(Platform::Titan, Backend::Shmem, 9, cfg, true).1
                })
            })
        })
    });
    RunDigest::from_run_with_requests(&out.critical_path(), &out.metrics, &out.req_paths())
}

#[test]
fn serving_self_diff_is_zero_including_request_phases() {
    let a = serving_digest();
    let b = serving_digest();
    assert_eq!(a, b, "deterministic serving => bit-identical digests");
    assert!(a.req_count > 0, "the serving run marks requests");
    assert!(a.req_phase_ns.iter().sum::<u64>() > 0, "request phases attribute real time");
    let diff = CritDiff::between(&a, &b);
    assert!(diff.is_zero(), "self-diff must be exactly zero:\n{}", diff.render());
    assert!(diff.regressions(0.0).is_empty(), "zero tolerance, zero regressions");
    // The request-phase table survives the baseline JSON roundtrip.
    let back = RunDigest::from_json(&a.to_json()).expect("digest roundtrips");
    assert_eq!(a, back);
}

#[test]
fn request_phase_growth_is_attributed_by_name() {
    let base = serving_digest();
    // A synthetic candidate whose fault-delay share of request time grew by
    // half the total request-phase budget: the differ must name the phase.
    let mut cand = base.clone();
    let total: u64 = base.req_phase_ns.iter().sum();
    cand.req_phase_ns[4] += total / 2 + 1; // ReqPhase::FaultDelay
    let diff = CritDiff::between(&base, &cand);
    assert!(!diff.is_zero());
    let regs = diff.regressions(0.02);
    assert!(
        regs.iter().any(|r| r.contains("fault_delay")),
        "the grown request phase is called out by name: {regs:?}"
    );
    // A pre-request baseline (old BENCH files) never flags phantom request
    // regressions, whatever the candidate carries.
    let mut old = base.clone();
    old.req_count = 0;
    old.req_phase_ns = [0; 6];
    assert!(
        CritDiff::between(&old, &cand).regressions(0.0).iter().all(|r| !r.contains("request")),
        "request phases are only judged against request-carrying baselines"
    );
}

#[test]
fn slowed_conduit_profile_is_caught_and_attributed_to_wire() {
    let base = digest_with(ConduitProfile::mvapich_shmem(), FaultPlan::none());
    // An artificially slowed library build: the protocol sustains a quarter
    // of the wire bandwidth it used to.
    let mut slow = ConduitProfile::mvapich_shmem();
    slow.bandwidth_efficiency /= 4.0;
    let cand = digest_with(slow, FaultPlan::none());

    let diff = CritDiff::between(&base, &cand);
    assert!(diff.makespan_delta_ns() > 0);
    let wire = diff.categories.iter().find(|c| c.category == PathCategory::Wire).unwrap();
    assert!(wire.delta_ns() > 0, "payload serialization must grow:\n{}", diff.render());

    let regs = diff.regressions(0.05);
    assert!(regs.iter().any(|r| r.contains("makespan regressed")), "{regs:?}");
    assert!(regs.iter().any(|r| r.contains("wire")), "{regs:?}");
}
