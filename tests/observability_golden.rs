//! Golden-snapshot validation of the observability exports.
//!
//! The simulator is deterministic in virtual time, so a race-free workload
//! must reproduce its metrics byte-for-byte on every machine and every run.
//! This test pins the Prometheus text export of one such workload to a
//! committed fixture: any change to op accounting, metric naming, bucket
//! boundaries or export formatting shows up as a diff against
//! `tests/fixtures/observability_golden.prom` and has to be re-recorded
//! deliberately (run with `UPDATE_GOLDEN=1` to regenerate).
//!
//! It also validates that the Perfetto/chrome-trace export is well-formed
//! JSON with the expected metadata, that the critical-path report tiles the
//! makespan exactly, and that turning the observability layer off does not
//! change a single virtual clock.

use caf::{run_caf, Backend, CafConfig};
use pgas_machine::trace::chrome_trace_json;
use pgas_machine::{
    generic_smp, with_forced_metrics, with_forced_stream, with_forced_tracing, FaultPlan, Platform,
    StreamConfig,
};

const FIXTURE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/observability_golden.prom");
const SERVING_FIXTURE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/serving_windows.prom");

/// A deterministic, race-free workload touching every op kind the metrics
/// registry accounts: puts, gets, locks (uncontended instances), sync_all
/// and a reduction. Every remotely accessed word has a single accessing
/// image and the layout is one PE per node, so virtual clocks — and
/// therefore every latency histogram — are independent of host scheduling
/// (multi-PE nodes arbitrate same-instant NIC reservations in host order,
/// which would make a byte-exact golden impossible).
fn workload() -> pgas_machine::SimOutcome<i64> {
    // Pin coalescing off for the same reason as the zero fault plan: the
    // golden fixture records the *direct* op path's metrics, and an ambient
    // PGAS_COALESCE=on (the test-aggregated CI job) would re-route small
    // puts through staging buffers and change the byte-exact counters.
    pgas_machine::with_forced_aggregation(false, || {
        run_caf(
            // Byte-exact goldens need a clean interconnect: the explicit zero
            // plan opts out of the PGAS_FAULT_PLAN environment default (the CI
            // test-faulted job), whose injected retries would add AMOs and
            // quiets to the counters.
            generic_smp(4).with_heap_bytes(1 << 17).with_faults(FaultPlan::none()),
            CafConfig::new(Backend::Shmem, Platform::GenericSmp),
            |img| {
                let n = img.num_images();
                let me = img.this_image();
                let ring = img.coarray::<i64>(&[8]).unwrap();
                let lck = img.lock_var();
                img.sync_all();
                let next = me % n + 1;
                for round in 0..3 {
                    // `ring[next]` is written and read only by `me`.
                    ring.put_to(img, next, &[(me * 10 + round) as i64; 8]);
                    img.sync_all();
                    let back = ring.get_from(img, next);
                    assert_eq!(back[0], (me * 10 + round) as i64);
                    img.sync_all();
                }
                // Each image cycles its own (uncontended) lock instance.
                img.lock(&lck, me);
                img.unlock(&lck, me);
                let mut v = [me as i64];
                img.co_sum(&mut v, None);
                v[0]
            },
        )
    })
}

fn traced_workload() -> pgas_machine::SimOutcome<i64> {
    with_forced_tracing(true, || with_forced_metrics(true, workload))
}

#[test]
fn prometheus_export_matches_golden_fixture() {
    let out = traced_workload();
    let text = out.metrics.to_prometheus();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(FIXTURE, &text).expect("write golden fixture");
        return;
    }
    let golden = std::fs::read_to_string(FIXTURE)
        .expect("missing tests/fixtures/observability_golden.prom — run with UPDATE_GOLDEN=1");
    assert_eq!(
        text, golden,
        "Prometheus export drifted from the committed fixture; if the change \
         is intentional, re-record with UPDATE_GOLDEN=1"
    );
}

/// The open-loop serving scenario behind the `serving_slo` figure's probe:
/// 9 images on one Titan node, Am-mode writes, worker PE 4 dying at 12 µs.
/// Every env-sensitive layer is forced (aggregation, checksums, fault plan,
/// metrics) and the NIC arbiter is deterministic, so the export — including
/// the virtual-time *windowed* series the SLO report is computed from — is
/// byte-stable on any machine and under any CI job's ambient knobs.
fn serving_workload() -> pgas_machine::SimOutcome<caf_apps::serve::ServeImageOut> {
    use caf_apps::serve::{run_serve_outcome, ServeConfig};
    let cfg = ServeConfig {
        keyspace: 10_000,
        requests_per_image: 40,
        epochs: 2,
        slots_per_shard: 64,
        mean_gap_ns: 1_500.0,
        ..Default::default()
    };
    let plan = FaultPlan::new(cfg.seed).with_pe_failure(4, 12_000);
    pgas_machine::with_forced_aggregation(true, || {
        pgas_machine::with_forced_checksums(true, || {
            pgas_machine::with_forced_plan(plan, || {
                with_forced_metrics(true, || {
                    run_serve_outcome(Platform::Titan, Backend::Shmem, 9, cfg, true).1
                })
            })
        })
    })
}

/// Pins the windowed-series half of the Prometheus surface: histogram
/// windows render as per-window `summary` blocks labelled by virtual start
/// time, counter windows as `_window_total` series — and, since the tail
/// attributor landed, the p999 quantile of a window with SLO-violating
/// requests carries an OpenMetrics-style exemplar annotation naming the
/// worst request id and its dominant cause. Any change to window bucketing,
/// merge order, quantile extraction, label formatting or the exemplar
/// trailer lands here as a diff against `tests/fixtures/serving_windows.prom`.
#[test]
fn serving_windowed_export_matches_golden_fixture() {
    let out = with_forced_tracing(true, serving_workload);
    let tail = out.tail_attribution(
        20_000, // the serve default SLO threshold
        pgas_machine::tailprof::DEFAULT_EXEMPLARS,
        0x5E21, // the serve default seed
    );
    let text = out.metrics.to_prometheus_with_tail(&tail);
    for needle in
        ["pgas_serve_latency_ns_window", "pgas_serve_queue_ns_window", "pgas_serve_requests_window"]
    {
        assert!(text.contains(needle), "windowed series `{needle}` missing from the export");
    }
    assert!(
        text.contains("# {req="),
        "the outage window's p999 carries an exemplar annotation"
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(SERVING_FIXTURE, &text).expect("write serving golden fixture");
        return;
    }
    let golden = std::fs::read_to_string(SERVING_FIXTURE)
        .expect("missing tests/fixtures/serving_windows.prom — run with UPDATE_GOLDEN=1");
    assert_eq!(
        text, golden,
        "windowed Prometheus export drifted from the committed fixture; if the \
         change is intentional, re-record with UPDATE_GOLDEN=1"
    );
}

#[test]
fn chrome_trace_export_is_wellformed_and_critpath_tiles_makespan() {
    let out = traced_workload();
    assert!(!out.trace.is_empty(), "traced run must capture spans");

    let json = chrome_trace_json(&out.trace, 1);
    let parsed = pgas_machine::json::parse(&json).expect("chrome trace JSON parses");
    let events = parsed.as_array().expect("chrome trace export is a JSON array of events");
    assert!(events.len() > out.trace.len(), "metadata + flow events ride along with spans");
    assert!(json.contains("\"process_name\""), "process naming metadata present");
    assert!(json.contains("\"thread_name\""), "thread naming metadata present");

    let report = out.critical_path();
    assert_eq!(
        report.total_ns(),
        out.makespan_ns(),
        "critical-path components must sum to the makespan"
    );
    let cp =
        pgas_machine::json::parse(&report.to_json().pretty()).expect("critical-path JSON parses");
    assert!(cp.get("makespan_ns").is_some());

    let metrics_json = out.metrics.to_json().pretty();
    pgas_machine::json::parse(&metrics_json).expect("metrics JSON parses");
}

#[test]
fn streaming_channel_does_not_change_virtual_time() {
    // The live `pgas_top` contract: attaching a snapshot stream (sampling at
    // a virtual-time cadence into a bounded ring) only ever *reads* machine
    // state — no virtual clock moves, same as tracing and metrics.
    let stream = StreamConfig::new(500, 64);
    let ring = stream.ring();
    let streamed = with_forced_stream(stream, traced_workload);
    let plain = traced_workload();
    assert_eq!(
        streamed.clocks, plain.clocks,
        "attaching the snapshot stream must not move a single virtual clock"
    );

    let samples = ring.drain();
    assert!(!samples.is_empty(), "a multi-microsecond run at 500 ns cadence produces samples");
    assert!(samples.windows(2).all(|w| w[0].seq < w[1].seq), "sample seq is strictly monotone");
    assert!(samples.windows(2).all(|w| w[0].t_ns <= w[1].t_ns), "sample time never goes back");
    let n = streamed.clocks.len();
    for s in &samples {
        assert_eq!(s.clocks.len(), n, "every sample covers every PE");
        assert!(s.t_ns <= streamed.makespan_ns(), "samples live inside the run");
    }
    assert_eq!(
        ring.total(),
        samples.len() as u64 + ring.dropped(),
        "lifetime accounting: buffered + dropped tiles everything produced"
    );
}

#[test]
fn observability_off_does_not_change_virtual_time() {
    let on = traced_workload();
    let off = with_forced_tracing(false, || with_forced_metrics(false, workload));
    assert!(off.trace.is_empty(), "tracing off captures nothing");
    assert!(off.metrics.counters.is_empty(), "metrics off records nothing");
    assert_eq!(
        on.clocks, off.clocks,
        "enabling observability must not move a single virtual clock"
    );
    assert_eq!(on.makespan_ns(), off.makespan_ns());
}
