//! Demo of the PGAS sanitizer: run a racy producer/consumer under
//! `SanitizerMode::Record` and print every hazard report, then show
//! `Panic` mode failing the job with the same diagnostic.
//!
//! ```bash
//! cargo run --release -p caf --example pgas_sanitizer
//! ```

use caf::{run_caf, run_caf_result, Backend, CafConfig, SanitizerMode};
use pgas_machine::{titan, Platform};

fn main() {
    let caf_cfg = || CafConfig::new(Backend::Shmem, Platform::Titan);
    let mcfg = |mode| titan(2, 1).with_heap_bytes(1 << 18).with_sanitizer(mode);

    // A put/get pair with no intervening quiet: OpenSHMEM gives no
    // ordering between them, so the get can observe stale bytes.
    let buggy = |img: &caf::Image| {
        let p = img.shmem().shmalloc::<u64>(8).unwrap();
        img.sync_all();
        if img.this_image() == 1 {
            img.shmem().put(p, &[7; 8], 1);
            let mut back = [0u64; 8];
            img.shmem().get(p, &mut back, 1); // BUG: no quiet first
        }
        img.sync_all();
    };

    println!("== Record mode: job completes, hazards are reported ==");
    let out = run_caf(mcfg(SanitizerMode::Record), caf_cfg(), buggy);
    for r in &out.hazard_reports {
        println!("  {r}");
    }
    println!(
        "  stats: {} conduit hazard(s), {} cross-image race(s)",
        out.stats.hazards, out.stats.races
    );

    println!("\n== Panic mode: the same bug fails the job ==");
    match run_caf_result(mcfg(SanitizerMode::Panic), caf_cfg(), buggy) {
        Ok(_) => println!("  unexpectedly clean?!"),
        Err(e) => println!("  job failed on image {}: {}", e.pe + 1, e.message),
    }

    println!("\n== Off (default): no reports, only the conduit's hazard counter ticks ==");
    let out = run_caf(mcfg(SanitizerMode::Off), caf_cfg(), buggy);
    println!("  {} report(s), {} hazard(s) counted", out.hazard_reports.len(), out.stats.hazards);
}
