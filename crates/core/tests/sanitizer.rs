//! End-to-end tests of the PGAS sanitizer: deliberately buggy programs
//! must trip it with the right classification, and correctly synchronized
//! programs must come out clean.

use caf::{run_caf, run_caf_result, Backend, CafConfig, HazardKind, SanitizerMode};
use pgas_machine::{titan, Platform};

fn caf_cfg() -> CafConfig {
    CafConfig::new(Backend::Shmem, Platform::Titan)
}

fn mcfg() -> pgas_machine::MachineConfig {
    // Two nodes so transfers actually cross the network (no local
    // fastpath shortcuts).
    titan(2, 1).with_heap_bytes(1 << 18).with_sanitizer(SanitizerMode::Record)
}

#[test]
fn quietless_strided_put_is_flagged_missing_quiet() {
    // An iput followed by an overlapping get with no intervening quiet:
    // OpenSHMEM gives no ordering between them, so the get can observe
    // stale bytes. The conduit's pending-put checker catches it and the
    // sanitizer classifies it as a missing quiet (the get covers a whole
    // outstanding transfer).
    let out = run_caf(mcfg(), caf_cfg(), |img| {
        let p = img.shmem().shmalloc::<i64>(16).unwrap();
        img.sync_all();
        if img.this_image() == 1 {
            let data: Vec<i64> = (0..8).collect();
            // Every other element of image 2's array.
            img.shmem().iput(p, 2, &data, 1, 8, 1);
            // BUG: no quiet before reading the same range back.
            let mut back = vec![0i64; 16];
            img.shmem().get(p, &mut back, 1);
        }
        img.sync_all();
    });
    let r = out.expect_hazard(HazardKind::MissingQuiet);
    assert_eq!(r.accessor, 0, "image 1 (PE 0) issued the unordered get");
    assert_eq!(r.target, 1);
    assert_eq!(r.op, "get");
    assert!(out.stats.hazards >= 1, "conduit checker counts it too");
}

#[test]
fn partially_overlapping_quietless_puts_are_flagged_torn() {
    // Two puts that strictly partially overlap with no quiet in between:
    // the overlap region may end up with a mix of bytes from both
    // transfers — a torn transfer, worse than merely stale data. A
    // *direct-path* property: staged puts ride one coalescing buffer and
    // apply FIFO, so pin aggregation off against an ambient
    // PGAS_COALESCE=on.
    let out = pgas_machine::with_forced_aggregation(false, || {
        run_caf(mcfg(), caf_cfg(), |img| {
            let p = img.shmem().shmalloc::<u64>(8).unwrap();
            img.sync_all();
            if img.this_image() == 1 {
                img.shmem().put(p, &[1, 1, 1, 1], 1); // words [0, 4)
                                                      // BUG: overlaps words [2, 6) while [0, 4) is outstanding.
                img.shmem().put(p.slice(2, 4), &[2, 2, 2, 2], 1);
                img.shmem().quiet();
            }
            img.sync_all();
        })
    });
    let r = out.expect_hazard(HazardKind::TornTransfer);
    assert_eq!(r.op, "put");
    assert_eq!(r.target, 1);
}

#[test]
fn syncless_producer_consumer_is_flagged_missing_sync() {
    // Image 1 produces into image 2's heap and "signals" through a raw
    // machine flag the PGAS model knows nothing about (standing in for a
    // program that simply forgot to synchronize). Image 2's read of the
    // produced data has no happens-before edge from the put: a data race.
    use std::sync::atomic::Ordering;
    let out = run_caf(mcfg(), caf_cfg(), |img| {
        let data = img.shmem().shmalloc::<u64>(4).unwrap();
        let flag = img.shmem().shmalloc::<u64>(1).unwrap();
        img.sync_all();
        let m = img.shmem().ctx().pe().machine();
        if img.this_image() == 1 {
            img.shmem().put(data, &[7, 7, 7, 7], 1);
            img.shmem().quiet(); // ordered, but never *synchronized*
            m.heap(1).atomic64(flag.offset()).store(1, Ordering::Release);
            m.notify_pe(1);
            0
        } else {
            m.wait_on(1, || m.heap(1).atomic64(flag.offset()).load(Ordering::Acquire) == 1);
            let mut v = [0u64; 4];
            // BUG: no sync statement between the remote put and this read.
            img.shmem().read_local(data, &mut v);
            v[0]
        }
    });
    assert_eq!(out.results[1], 7, "data did arrive — the bug is ordering, not delivery");
    let r = out.expect_hazard(HazardKind::MissingSync);
    assert_eq!(r.accessor, 1, "image 2 (PE 1) read without synchronizing");
    assert_eq!(r.conflict_pe, 0, "the racing writer is image 1 (PE 0)");
    assert_eq!(r.op, "local read");
    assert_eq!(out.stats.races, 1);
}

#[test]
fn second_reader_cannot_hide_the_first_readers_race() {
    // Three-PE regression for the adaptive read vector: the scalar
    // last-read-per-word shadow provably misses this race, because image 3's
    // read *replaces* image 2's record and image 1 is synchronized with
    // image 3 alone when it writes.
    //
    //   image 2 (PE 1): reads the word, signals image 3 through a raw
    //                   machine flag the sanitizer cannot see;
    //   image 3 (PE 2): reads the same word, then sets a visible atomic flag;
    //   image 1 (PE 0): waits on that flag (happens-before edge from image 3
    //                   only) and overwrites the word.
    //
    // Image 1's write races image 2's read — there is no sanitizer-visible
    // edge between them — and must be flagged even though the most recent
    // reader (image 3) is fully synchronized.
    use std::sync::atomic::Ordering;
    let out = run_caf(
        titan(3, 1).with_heap_bytes(1 << 18).with_sanitizer(SanitizerMode::Record),
        caf_cfg(),
        |img| {
            let data = img.shmem().shmalloc::<u64>(1).unwrap();
            let raw = img.shmem().shmalloc::<u64>(1).unwrap();
            let flag = img.shmem().shmalloc::<u64>(1).unwrap();
            img.sync_all();
            let m = img.shmem().ctx().pe().machine();
            let mut v = [0u64; 1];
            match img.this_image() {
                2 => {
                    // Local work first: the read must be *strictly after*
                    // the setup barrier, or its record carries the barrier
                    // instant and every PE counts as synchronized with it.
                    m.advance(1, 50.0);
                    img.shmem().get(data, &mut v, 0);
                    // BUG: "synchronizes" through a raw flag on image 3's
                    // heap that the PGAS model knows nothing about.
                    m.heap(2).atomic64(raw.offset()).store(1, Ordering::Release);
                    m.notify_pe(2);
                }
                3 => {
                    m.wait_on(2, || m.heap(2).atomic64(raw.offset()).load(Ordering::Acquire) == 1);
                    img.shmem().get(data, &mut v, 0);
                    img.shmem().atomic_set(flag, 1, 0);
                }
                _ => {
                    img.shmem().wait_until(flag, openshmem::shmem::Cmp::Eq, 1);
                    // Synchronized with image 3's read — but not image 2's.
                    img.shmem().put(data, &[42], 0);
                }
            }
            img.sync_all();
        },
    );
    let r = out.expect_hazard(HazardKind::MissingSync);
    assert_eq!(r.accessor, 0, "image 1 (PE 0) wrote over an unsynchronized read");
    assert_eq!(r.conflict_pe, 1, "the hidden racing reader is image 2 (PE 1)");
    assert_eq!(r.op, "put");
}

#[test]
fn synchronized_producer_consumer_is_clean() {
    // The same producer/consumer with the race fixed by `sync all` must
    // produce zero reports.
    let out = run_caf(mcfg(), caf_cfg(), |img| {
        let data = img.shmem().shmalloc::<u64>(4).unwrap();
        img.sync_all();
        if img.this_image() == 1 {
            img.shmem().put(data, &[7, 7, 7, 7], 1);
            img.shmem().quiet();
        }
        img.sync_all();
        if img.this_image() == 2 {
            let mut v = [0u64; 4];
            img.shmem().read_local(data, &mut v);
            v[0]
        } else {
            0
        }
    });
    assert_eq!(out.results[1], 7);
    out.expect_hazard_free();
    assert_eq!(out.stats.races, 0);
}

#[test]
fn wait_until_edge_makes_flag_protocols_clean() {
    // The canonical CAF event pattern: produce, quiet, set a flag with an
    // atomic, consumer waits on the flag. `wait_until` must create the
    // happens-before edge that keeps this clean.
    let out = run_caf(mcfg(), caf_cfg(), |img| {
        let data = img.shmem().shmalloc::<u64>(4).unwrap();
        let flag = img.shmem().shmalloc::<u64>(1).unwrap();
        img.sync_all();
        if img.this_image() == 1 {
            img.shmem().put(data, &[9, 9, 9, 9], 1);
            img.shmem().quiet();
            img.shmem().atomic_set(flag, 1, 1);
            img.shmem().quiet();
            0
        } else {
            img.shmem().wait_until(flag, openshmem::shmem::Cmp::Eq, 1);
            let mut v = [0u64; 4];
            img.shmem().read_local(data, &mut v);
            v[0]
        }
    });
    assert_eq!(out.results[1], 9);
    out.expect_hazard_free();
}

#[test]
fn panic_mode_fails_the_job_with_the_diagnostic() {
    let err = run_caf_result(
        titan(2, 1).with_heap_bytes(1 << 18).with_sanitizer(SanitizerMode::Panic),
        caf_cfg(),
        |img| {
            let p = img.shmem().shmalloc::<u64>(8).unwrap();
            img.sync_all();
            if img.this_image() == 1 {
                img.shmem().put(p, &[1; 8], 1);
                let mut back = [0u64; 8];
                img.shmem().get(p, &mut back, 1); // no quiet
            }
            img.sync_all();
        },
    )
    .unwrap_err();
    assert!(
        err.message.contains("missing-quiet hazard"),
        "panic message should carry the structured diagnostic, got: {}",
        err.message
    );
}

#[test]
fn forced_mode_overrides_an_off_config() {
    // `with_forced_mode` is what the apps' clean-run tests rely on: it must
    // engage the sanitizer even when the machine config leaves it Off.
    let err = pgas_machine::with_forced_mode(SanitizerMode::Panic, || {
        run_caf_result(titan(2, 1).with_heap_bytes(1 << 18), caf_cfg(), |img| {
            let p = img.shmem().shmalloc::<u64>(8).unwrap();
            img.sync_all();
            if img.this_image() == 1 {
                img.shmem().put(p, &[1; 8], 1);
                let mut back = [0u64; 8];
                img.shmem().get(p, &mut back, 1); // no quiet
            }
            img.sync_all();
        })
    })
    .unwrap_err();
    assert!(err.message.contains("missing-quiet hazard"), "got: {}", err.message);
}

#[test]
fn caf_coindexed_assignment_is_clean_under_sanitizer() {
    // The runtime's own translation (put + quiet, barriers) of a plain
    // coarray exchange must be hazard-free — the sanitizer checks the
    // program, not the runtime's internals.
    let out = run_caf(mcfg(), caf_cfg(), |img| {
        let a = img.coarray::<i64>(&[8]).unwrap();
        img.sync_all();
        let next = img.this_image() % img.num_images() + 1;
        a.put_to(img, next, &[img.this_image() as i64; 8]);
        img.sync_all();
        a.read_local(img)[0]
    });
    assert_eq!(out.results, vec![2, 1]);
    out.expect_hazard_free();
}
