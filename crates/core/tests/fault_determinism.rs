//! Property: fault injection is fully deterministic. The same seed and
//! plan reproduce a bit-identical outcome — every counter, every fault
//! event, every virtual clock — while a different seed perturbs the fault
//! stream of a lossy run.

use caf::{run_caf, Backend, CafConfig};
use pgas_machine::stats::StatsSnapshot;
use pgas_machine::{
    generic_smp, with_forced_metrics, with_forced_tracing, FaultEvent, FaultPlan, MetricsSnapshot,
    SanitizerMode,
};
use proptest::prelude::*;

fn cfg() -> CafConfig {
    CafConfig::new(Backend::Shmem, pgas_machine::Platform::GenericSmp)
}

/// A communication-heavy workload touching every fallible path: co-indexed
/// puts/gets, lock acquire/release, `sync images`, and a reduction. Every
/// remotely accessed word has a single accessing PE and the locks are
/// uncontended: contended arbitration (who wins a tail swap) is decided by
/// the host scheduler, not virtual time, so a bit-identical-clock property
/// can only be stated over race-free programs — exactly like the machine
/// crate's own determinism suite.
fn workload(
    plan: FaultPlan,
) -> (StatsSnapshot, Vec<FaultEvent>, Vec<u64>, MetricsSnapshot, String) {
    // Pin the sanitizer off so an inherited PGAS_SANITIZER setting cannot
    // perturb the timing this test compares bit-for-bit; pin tracing and
    // metrics *on* so the observability layer is part of the determinism
    // contract (same seed => bit-identical MetricsSnapshot and rendered
    // critical-path report).
    with_forced_tracing(true, || {
        with_forced_metrics(true, || {
            pgas_machine::with_forced_mode(SanitizerMode::Off, workload_inner(plan))
        })
    })
}

fn workload_inner(
    plan: FaultPlan,
) -> impl FnOnce() -> (StatsSnapshot, Vec<FaultEvent>, Vec<u64>, MetricsSnapshot, String) {
    move || {
        let out =
            run_caf(generic_smp(4).with_heap_bytes(1 << 18).with_faults(plan), cfg(), |img| {
                let ring = img.coarray::<i64>(&[8]).unwrap();
                let cells = img.coarray::<i64>(&[8]).unwrap();
                let lck = img.lock_var();
                img.sync_all();
                let me = img.this_image();
                let next = me % img.num_images() + 1;
                let prev = if me == 1 { img.num_images() } else { me - 1 };
                for round in 0..5 {
                    // `ring[next]` is written and read only by `me`.
                    ring.put_to_stat(img, next, &[(me * 10 + round) as i64; 8]).unwrap();
                    img.sync_all();
                    let back = ring.get_from_stat(img, next).unwrap();
                    assert_eq!(back[0], (me * 10 + round) as i64);
                    // Each image read-modify-writes its private slot on image 1
                    // under its own (uncontended) lock instance.
                    img.lock(&lck, me);
                    let v = cells.get_elem_stat(img, 1, &[me - 1]).unwrap();
                    assert_eq!(v, round as i64, "retried RMW stays correct");
                    cells.put_elem_stat(img, 1, &[me - 1], v + 1).unwrap();
                    img.unlock(&lck, me);
                    img.sync_images_stat(&[next, prev]).unwrap();
                }
                let mut v = [me as i64];
                img.co_sum_stat(&mut v, None).unwrap();
                v[0]
            });
        for r in &out.results {
            assert_eq!(*r, 10, "workload correctness under faults");
        }
        let report = out.critical_path();
        assert_eq!(
            report.total_ns(),
            out.makespan_ns(),
            "critical-path components must sum to the makespan"
        );
        (out.stats, out.fault_events, out.clocks, out.metrics.clone(), report.render())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed, same plan -> bit-identical stats, fault log and clocks.
    #[test]
    fn same_seed_reproduces_bit_identical_outcomes(seed in any::<u64>()) {
        let plan = FaultPlan::transient_drops(seed, 0.02);
        let a = workload(plan.clone());
        let b = workload(plan);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
        prop_assert_eq!(a.3, b.3, "metrics snapshots must be bit-identical");
        prop_assert_eq!(a.4, b.4, "critical-path reports must be bit-identical");
    }

    /// Different seeds perturb the fault stream: a lossy plan draws its
    /// faults from the seeded per-PE streams, so two seeds (almost surely)
    /// disagree on where the drops land. We assert on the full fault log
    /// rather than the count — the drop *probability* is identical.
    #[test]
    fn different_seed_perturbs_the_fault_stream(seed in 0u64..u64::MAX / 2) {
        let a = workload(FaultPlan::transient_drops(seed, 0.05));
        let b = workload(FaultPlan::transient_drops(seed ^ 0x9E37_79B9_7F4A_7C15, 0.05));
        prop_assert!(!a.1.is_empty(), "5% drops over hundreds of ops must fault at least once");
        prop_assert_ne!(a.1, b.1, "independent seeds, identical fault logs");
    }
}
