//! Stress and interaction tests of the CAF runtime: many features active at
//! once, repeated allocation cycles, mixed synchronization.

use caf::{run_caf, Backend, CafConfig, DimRange, Section};
use pgas_machine::{titan, Platform};

#[test]
fn kitchen_sink_under_one_job() {
    // Coarrays + sections + locks + events + atomics + collectives +
    // sync images, all interleaved across 8 images on 2 nodes, repeated.
    let out = run_caf(
        titan(2, 4).with_heap_bytes(1 << 18),
        CafConfig::new(Backend::Shmem, Platform::Titan),
        |img| {
            let n = img.num_images();
            let me = img.this_image();
            let grid = img.coarray::<f64>(&[6, 6]).unwrap();
            let lck = img.lock_var();
            let ev = img.event_var();
            let acc = img.atomic_var(0);
            let mut checks = 0u32;

            for round in 0..5i64 {
                // Strided section write to the next image.
                let next = me % n + 1;
                let sec = Section::new(vec![
                    DimRange { start: 0, count: 3, step: 2 },
                    DimRange { start: 1, count: 2, step: 2 },
                ]);
                let data: Vec<f64> = (0..6).map(|k| (round * 100 + k) as f64).collect();
                grid.put_section(img, next, &sec, &data);
                img.sync_all();
                // Verify what the previous image sent us.
                let got = grid.get_section(img, me, &sec);
                assert_eq!(got, data);
                checks += 1;

                // Locked update on image 1 + event signal + atomic count.
                img.lock(&lck, 1);
                let v = grid.get_elem(img, 1, &[5, 5]);
                grid.put_elem(img, 1, &[5, 5], v + 1.0);
                img.unlock(&lck, 1);
                img.atomic_add(&acc, 1, 1);
                img.event_post(&ev, next);
                img.event_wait(&ev, 1);
                checks += 1;

                // Collective check.
                let mut s = [1i64];
                img.co_sum(&mut s, None);
                assert_eq!(s[0], n as i64);
                checks += 1;

                // Pairwise sync with both neighbours.
                let prev = (me + n - 2) % n + 1;
                let mut partners = vec![prev, next];
                partners.sort_unstable();
                partners.dedup();
                img.sync_images(&partners);
                checks += 1;
            }
            img.sync_all();
            let total_locked = grid.get_elem(img, 1, &[5, 5]);
            let total_atomic = img.atomic_ref(&acc, 1);
            (checks, total_locked, total_atomic)
        },
    );
    for (checks, locked, atomic) in &out.results {
        assert_eq!(*checks, 20);
        assert_eq!(*locked, 40.0, "8 images x 5 locked increments");
        assert_eq!(*atomic, 40);
    }
    assert_eq!(out.stats.hazards, 0);
}

#[test]
fn allocation_churn_stays_symmetric() {
    run_caf(
        pgas_machine::generic_smp(4).with_heap_bytes(1 << 18),
        CafConfig::new(Backend::Shmem, Platform::GenericSmp),
        |img| {
            let mut live = Vec::new();
            for round in 1..=12usize {
                let c = img.coarray::<i32>(&[round * 4]).unwrap();
                // Everyone writes to everyone else's fresh coarray.
                for target in 1..=img.num_images() {
                    c.put_elem(img, target, &[0], img.this_image() as i32);
                }
                img.sync_all();
                live.push(c);
                if round % 2 == 0 {
                    let victim = live.remove(0);
                    img.free_coarray(victim).unwrap();
                }
            }
            for c in live.drain(..) {
                img.free_coarray(c).unwrap();
            }
        },
    );
}

#[test]
fn many_locks_many_homes() {
    // 16 lock variables, each exercised on every image as home, from every
    // image — a cross product of lock instances.
    let out = run_caf(
        titan(2, 3).with_heap_bytes(1 << 17),
        CafConfig::new(Backend::Shmem, Platform::Titan).with_nonsym_bytes(8192),
        |img| {
            let n = img.num_images();
            let locks = img.lock_vars(4);
            let counters = img.coarray::<i64>(&[4]).unwrap();
            img.sync_all();
            for (li, l) in locks.iter().enumerate() {
                for home in 1..=n {
                    img.lock(l, home);
                    let v = counters.get_elem(img, home, &[li]);
                    counters.put_elem(img, home, &[li], v + 1);
                    img.unlock(l, home);
                }
            }
            img.sync_all();
            // Every (lock, home) pair was incremented once per image.
            let mine = counters.read_local(img);
            assert_eq!(mine, vec![n as i64; 4]);
            img.nonsym_in_use()
        },
    );
    for used in out.results {
        assert_eq!(used, 0, "all qnodes recycled");
    }
}

#[test]
fn deep_event_chains() {
    // A long dependency chain: image i waits for i-1's post, 1 <- n wraps.
    let out = run_caf(
        pgas_machine::generic_smp(6).with_heap_bytes(1 << 17),
        CafConfig::new(Backend::Shmem, Platform::GenericSmp).with_nonsym_bytes(4096),
        |img| {
            let ev = img.event_var();
            let me = img.this_image();
            let n = img.num_images();
            let token = img.coarray::<i64>(&[1]).unwrap();
            img.sync_all();
            if me == 1 {
                token.put_to(img, 2, &[1]);
                img.event_post(&ev, 2);
                img.event_wait(&ev, 1); // token came all the way around
                token.read_local(img)[0]
            } else {
                img.event_wait(&ev, 1);
                let v = token.read_local(img)[0];
                let next = me % n + 1;
                token.put_to(img, next, &[v + 1]);
                img.event_post(&ev, next);
                v
            }
        },
    );
    assert_eq!(out.results, vec![6, 1, 2, 3, 4, 5]);
}
