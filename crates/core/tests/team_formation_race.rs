//! Regression: team formation racing a scheduled PE death on a multi-node
//! machine.
//!
//! `form_team`'s member exchange once consulted the host-racy failure flag
//! to decide membership. A death landing mid-exchange — inevitable once
//! setup costs push formation past the deadline on larger machines — could
//! be observed by some images and not others, so survivors computed
//! *different* member lists and then waited behind *different* subset
//! barriers: a deadlock with every thread parked at ~0% CPU. Membership is
//! now a pure function of the fault plan and the barrier-aligned clock
//! (`pe_dead_at` at the post-exchange `sync all` instant), so every live
//! image derives the same list by construction.
//!
//! The test sweeps the death deadline across the whole formation window on
//! a 2-node machine (cross-node clock skew is what staggered the old
//! exchange). For every deadline the run must complete — completion *is*
//! the assertion, the old code deadlocked — and all survivors must agree
//! on the final membership.

use caf::{run_caf, Backend, CafConfig, CafStat};
use pgas_machine::{FaultPlan, Platform};

const WORKER_TEAM: i64 = 7;

/// Traffic + formation cycle at 8 images on two Titan nodes with worker
/// PE 2 (image 3) scheduled to die at `deadline`. Returns each live
/// image's final member list (`None` for the victim).
fn formation_cycle(deadline: u64) -> pgas_machine::SimOutcome<Option<Vec<usize>>> {
    let mcfg = Platform::Titan
        .config(2, 4)
        .with_heap_bytes(1 << 18)
        .with_deterministic_nic()
        .with_faults(FaultPlan::new(0xF0B1).with_pe_failure(2, deadline));
    let ccfg = CafConfig::new(Backend::Shmem, Platform::Titan);
    let out = run_caf(mcfg, ccfg, |img| {
        let n = img.num_images();
        let me = img.this_image();
        let a = img.coarray::<u64>(&[8]).expect("scratch coarray");
        img.sync_all();
        let mut team = img.form_team(WORKER_TEAM);
        for round in 0..4u64 {
            if img.this_image_failed() {
                return None;
            }
            // Cross-node puts stagger the image clocks, so each round's
            // re-formation starts from skewed instants — the shape that
            // split the old flag-based exchange.
            let peer = (me % n) + 1;
            if !img.image_dead_by_now(peer) {
                let _ = a.put_elem_stat(img, peer, &[(round % 8) as usize], me as u64);
            }
            match img.sync_all_stat() {
                Ok(()) | Err(CafStat::FailedImage { .. }) => {}
                Err(e) => panic!("unexpected stat: {e:?}"),
            }
            if img.this_image_failed() {
                return None;
            }
            // Re-form every round: some sweep deadlines land inside this
            // call's exchange, some inside the barrier before or after it.
            team = img.form_team(WORKER_TEAM);
        }
        Some(team.members().to_vec())
    });
    out
}

#[test]
fn formation_survives_a_death_anywhere_in_its_window() {
    // The healthy cycle spans roughly 3–60 µs of virtual time at this
    // size; step fine enough that deadlines land between, before, and
    // inside the formation calls.
    for deadline in (3_000..=63_000).step_by(4_000) {
        let out = formation_cycle(deadline);
        assert_eq!(out.stats.pe_failures, 1, "the death landed (deadline {deadline})");
        let results = out.results;
        let survivors: Vec<&Vec<usize>> = results.iter().flatten().collect();
        assert!(
            survivors.len() >= results.len() - 1,
            "only the victim may drop out (deadline {deadline}): {results:?}"
        );
        for m in &survivors {
            assert_eq!(
                *m, survivors[0],
                "every survivor derives the same membership (deadline {deadline})"
            );
        }
        // Once the death lands before the last re-formation, the final
        // membership must exclude the victim (image 3).
        if survivors.iter().any(|m| !m.contains(&3)) {
            assert!(
                survivors.iter().all(|m| !m.contains(&3)),
                "the victim's exclusion is agreed unanimously (deadline {deadline})"
            );
        }
    }
}
