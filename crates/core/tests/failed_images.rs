//! End-to-end Fortran 2018 failed-image semantics: a scheduled PE death
//! mid-run, observed by the survivors through `stat=` interfaces, with the
//! MCS lock the dead image held repaired by the next waiter.

use caf::{run_caf, Backend, CafConfig, CafStat, LockStat};
use pgas_machine::{generic_smp, FaultPlan, Platform, SanitizerMode};

fn cfg() -> CafConfig {
    CafConfig::new(Backend::Shmem, Platform::GenericSmp)
}

fn mcfg(n: usize) -> pgas_machine::MachineConfig {
    generic_smp(n).with_heap_bytes(1 << 18)
}

/// The acceptance scenario: image 2 acquires a lock homed on image 1, dies
/// at its scheduled instant, and returns early without unlocking (the
/// cooperative failure model). Image 3, queued behind it, evicts the dead
/// holder (one lock repair); the survivors see STAT_FAILED_IMAGE from
/// `sync all`, `failed_images()` reports the death, and a survivor-side
/// `co_sum` still completes.
#[test]
fn scheduled_death_is_survivable_and_lock_is_repaired() {
    let deadline = 300_000; // ns, comfortably after the setup barriers
    let plan = FaultPlan::new(0xDEAD).with_pe_failure(1, deadline);
    let out = run_caf(mcfg(4).with_faults(plan), cfg(), |img| {
        let lck = img.lock_var();
        let me = img.this_image();
        img.sync_all();
        if me == 2 {
            img.lock(&lck, 1);
            img.sync_all(); // publish: the lock is now held
                            // Run the clock over the scheduled failure instant, then
                            // cooperate: return without unlocking.
            while !img.this_image_failed() {
                img.machine().advance(me - 1, 10_000.0);
            }
            assert_eq!(img.sync_all_stat(), Err(CafStat::FailedImage { image: 2 }));
            assert_eq!(
                img.lock_stat(&lck, 2),
                Err(LockStat::StatFailedImage),
                "a dead image's own lock attempts observe its failure"
            );
            return (Vec::new(), Ok(()), 0);
        }
        img.sync_all(); // matches image 2's post-acquire barrier
        if me == 3 {
            // Queues behind the (soon to be dead) holder; the repair path
            // steals the lock once image 2's death is marked.
            img.lock(&lck, 1);
            img.unlock(&lck, 1);
        }
        // Enter the post-failure collective phase only after observing the
        // failure — the survivor-set discipline.
        img.machine().wait_on(me - 1, || img.image_failed(2));
        let stat = img.sync_all_stat();
        let failed = img.failed_images();
        let mut v = [me as i64];
        let cs = img.co_sum_stat(&mut v, None);
        assert_eq!(cs, Err(CafStat::FailedImage { image: 2 }));
        (failed, stat, v[0])
    });

    for pe in [0, 2, 3] {
        let (failed, stat, sum) = &out.results[pe];
        assert_eq!(failed, &vec![2], "PE {pe} failed_images()");
        assert_eq!(stat, &Err(CafStat::FailedImage { image: 2 }), "PE {pe} sync_all_stat");
        assert_eq!(*sum, 1 + 3 + 4, "PE {pe} survivor co_sum");
    }
    assert_eq!(out.stats.pe_failures, 1);
    assert_eq!(out.stats.lock_repairs, 1, "image 3 evicted the dead holder exactly once");
    assert_eq!(out.stats.lock_leaks, 1, "image 2's held lock leaked at teardown");
    assert_eq!(out.failed_pes, vec![1]);
    assert!(
        out.fault_events.iter().any(|e| e.kind == "pe-failure" && e.pe == 1),
        "death logged: {:?}",
        out.fault_events
    );
    assert!(
        out.fault_events.iter().any(|e| e.kind == "lock-repair" && e.pe == 2 && e.target == 1),
        "repair logged: {:?}",
        out.fault_events
    );
}

/// `sync images` with a partner that dies before arriving abandons the
/// handshake with STAT_FAILED_IMAGE; handshakes with live partners in the
/// same list still complete.
#[test]
fn sync_images_stat_abandons_dead_partner() {
    let plan = FaultPlan::new(7).with_pe_failure(2, 100_000);
    let out = run_caf(mcfg(3).with_faults(plan), cfg(), |img| {
        let me = img.this_image();
        img.sync_all();
        match me {
            3 => {
                // Die without ever syncing.
                while !img.this_image_failed() {
                    img.machine().advance(2, 10_000.0);
                }
                Ok(())
            }
            _ => {
                img.machine().wait_on(me - 1, || img.image_failed(3));
                let partner = if me == 1 { 2 } else { 1 };
                img.sync_images_stat(&[partner, 3])
            }
        }
    });
    assert_eq!(out.results[0], Err(CafStat::FailedImage { image: 3 }));
    assert_eq!(out.results[1], Err(CafStat::FailedImage { image: 3 }));
}

/// A dead source image turns `co_broadcast_stat` into an error on every
/// survivor; a live source among survivors still replicates.
#[test]
fn survivor_broadcast_and_dead_source() {
    let plan = FaultPlan::new(9).with_pe_failure(0, 100_000);
    let out = run_caf(mcfg(4).with_faults(plan), cfg(), |img| {
        let me = img.this_image();
        img.sync_all();
        if me == 1 {
            while !img.this_image_failed() {
                img.machine().advance(0, 10_000.0);
            }
            return (Err(CafStat::FailedImage { image: 1 }), 0);
        }
        img.machine().wait_on(me - 1, || img.image_failed(1));
        let mut dead_src = [me as i64];
        let from_dead = img.co_broadcast_stat(&mut dead_src, 1);
        assert_eq!(dead_src[0], me as i64, "buffer untouched when the source is dead");
        let mut live_src = [if me == 2 { 77 } else { 0 }];
        let from_live = img.co_broadcast_stat(&mut live_src, 2);
        assert_eq!(from_live, Err(CafStat::FailedImage { image: 1 }), "stat still reports");
        (from_dead, live_src[0])
    });
    for pe in 1..4 {
        let (from_dead, v) = out.results[pe];
        assert_eq!(from_dead, Err(CafStat::FailedImage { image: 1 }));
        assert_eq!(v, 77, "PE {pe} received the live source's payload");
    }
}

/// Stat-bearing co-indexed access: puts/gets to a dead image return
/// STAT_FAILED_IMAGE instead of panicking, and the survivors' transfers
/// still land.
#[test]
fn coarray_stat_ops_observe_dead_targets() {
    let plan = FaultPlan::new(3).with_pe_failure(1, 100_000);
    let out = run_caf(mcfg(3).with_faults(plan), cfg(), |img| {
        let c = img.coarray::<i64>(&[2]).unwrap();
        let me = img.this_image();
        img.sync_all();
        if me == 2 {
            while !img.this_image_failed() {
                img.machine().advance(1, 10_000.0);
            }
            return (Ok(()), Ok(0), 0);
        }
        img.machine().wait_on(me - 1, || img.image_failed(2));
        let to_dead = c.put_to_stat(img, 2, &[5, 5]);
        let from_dead = c.get_elem_stat(img, 2, &[0]);
        let partner = if me == 1 { 3 } else { 1 };
        c.put_elem_stat(img, partner, &[0], me as i64).unwrap();
        img.sync_images_stat(&[partner]).unwrap();
        (to_dead, from_dead, c.get_elem_stat(img, partner, &[1]).unwrap_or(-1))
    });
    for pe in [0, 2] {
        let (to_dead, from_dead, _) = &out.results[pe];
        assert_eq!(to_dead, &Err(CafStat::FailedImage { image: 2 }));
        assert_eq!(from_dead, &Err(CafStat::FailedImage { image: 2 }));
    }
}

/// `event wait` with a poster that dies reports STAT_FAILED_IMAGE; posts
/// that arrived before the death stay consumable.
#[test]
fn event_wait_stat_observes_poster_death() {
    let plan = FaultPlan::new(5).with_pe_failure(1, 100_000);
    let out = run_caf(mcfg(2).with_faults(plan), cfg(), |img| {
        let ev = img.event_var();
        let me = img.this_image();
        if me == 2 {
            img.event_post(&ev, 1); // one post, then die
            while !img.this_image_failed() {
                img.machine().advance(1, 10_000.0);
            }
            return (Ok(()), 0);
        }
        let first = img.event_wait_stat(&ev, 1, 2); // satisfied by the post
        let second = img.event_wait_stat(&ev, 1, 2); // poster dies instead
        assert_eq!(second, Err(CafStat::FailedImage { image: 2 }));
        (first, img.event_query(&ev))
    });
    assert_eq!(out.results[0], (Ok(()), 0), "the delivered post was consumed, none leak");
}

/// Satellite: deallocating a *held* lock variable (then recycling its slot)
/// is caught by the sanitizer's teardown audit as a stale-lock hazard.
#[test]
fn stale_lock_audit_reports_erroneous_deallocation() {
    pgas_machine::sanitizer::with_forced_mode(SanitizerMode::Record, || {
        let out = run_caf(mcfg(2), cfg(), |img| {
            let lck1 = img.lock_var();
            if img.this_image() == 1 {
                img.lock(&lck1, 1);
            }
            img.sync_all();
            // Erroneous: the lock is still held by image 1.
            img.shmem().shfree(lck1.tail_ptr()).unwrap();
            let lck2 = img.lock_var(); // recycles the freed slot
            assert_eq!(lck2.tail_ptr().offset(), lck1.tail_ptr().offset());
            img.sync_all();
        });
        let stale: Vec<_> =
            out.hazard_reports.iter().filter(|r| r.kind == caf::HazardKind::StaleLock).collect();
        assert_eq!(stale.len(), 1, "exactly image 1's held entry is stale: {stale:?}");
        assert_eq!(stale[0].accessor, 0, "image 1 held it");
        assert_eq!(out.stats.lock_leaks, 1, "still counted as a leak too");
    });
}

/// Balanced lock use with no deallocation produces no stale-lock reports —
/// the audit has no false positives on clean runs.
#[test]
fn stale_lock_audit_is_quiet_on_clean_runs() {
    pgas_machine::sanitizer::with_forced_mode(SanitizerMode::Record, || {
        let out = run_caf(mcfg(2), cfg(), |img| {
            let lck = img.lock_var();
            img.sync_all();
            img.lock(&lck, 1);
            img.unlock(&lck, 1);
            img.critical(|| ());
            img.sync_all();
        });
        assert!(
            out.hazard_reports.iter().all(|r| r.kind != caf::HazardKind::StaleLock),
            "{:?}",
            out.hazard_reports
        );
    });
}
