//! Fortran 2008 coarray semantics, tested against the runtime: the
//! behaviours a CAF program may rely on per the standard (and which the
//! paper's translation must preserve on top of OpenSHMEM's weaker model).

use caf::{run_caf, run_caf_result, Backend, CafConfig, CoDims, DimRange, Section};
use pgas_machine::{generic_smp, Platform};

fn cfg() -> CafConfig {
    CafConfig::new(Backend::Shmem, Platform::GenericSmp)
}

fn mcfg(n: usize) -> pgas_machine::MachineConfig {
    generic_smp(n).with_heap_bytes(1 << 18)
}

/// Fortran 8.5.2: `sync all` — all images execute it, and statements before
/// it on any image precede statements after it on every image.
#[test]
fn sync_all_orders_segments() {
    let out = run_caf(mcfg(4), cfg(), |img| {
        let a = img.coarray::<i64>(&[4]).unwrap();
        // Segment 1: everyone writes its slot on image 1.
        a.put_elem(img, 1, &[img.this_image() - 1], img.this_image() as i64);
        img.sync_all();
        // Segment 2: everyone must observe all four writes.
        a.get_from(img, 1)
    });
    for r in out.results {
        assert_eq!(r, vec![1, 2, 3, 4]);
    }
}

/// Fortran 8.5.3: `sync images` is pairwise — a third image is NOT
/// synchronized and may proceed independently.
#[test]
fn sync_images_does_not_block_non_members() {
    let out = run_caf(mcfg(3), cfg(), |img| {
        match img.this_image() {
            1 => {
                img.sync_images(&[2]);
                "synced"
            }
            2 => {
                img.sync_images(&[1]);
                "synced"
            }
            _ => "free", // image 3 never syncs and must terminate fine
        }
    });
    assert_eq!(out.results, vec!["synced", "synced", "free"]);
}

/// Fortran 8.5.1: allocate/deallocate of coarrays are collective with
/// implicit synchronization; remote access right after allocate is safe.
#[test]
fn allocate_implies_synchronization() {
    let out = run_caf(mcfg(2), cfg(), |img| {
        // Without the implicit sync, image 1's put could race image 2's
        // zero-initialization. Run many rounds to give a race every chance.
        let mut ok = true;
        for round in 0..20i64 {
            let a = img.coarray::<i64>(&[1]).unwrap();
            if img.this_image() == 1 {
                a.put_to(img, 2, &[round]);
            }
            img.sync_all();
            if img.this_image() == 2 {
                ok &= a.read_local(img)[0] == round;
            }
            img.free_coarray(a).unwrap();
        }
        ok
    });
    assert!(out.results.iter().all(|&b| b));
}

/// Fortran 13.7.{19,20}: `lcobound`/`ucobound` and `image_index` are
/// consistent: every valid cosubscript tuple maps to an image and back.
#[test]
fn cobounds_and_image_index_agree() {
    let cd = CoDims::new(&[2, 3]);
    let images = 12;
    let mut seen = std::collections::HashSet::new();
    for c3 in 1..=cd.ucobound(2, images) {
        for c2 in 1..=cd.ucobound(1, images) {
            for c1 in 1..=cd.ucobound(0, images) {
                let img = cd.image_of(&[c1, c2, c3]);
                if img <= images {
                    assert_eq!(cd.cosubscripts_of(img), vec![c1, c2, c3]);
                    assert!(seen.insert(img), "image {img} mapped twice");
                }
            }
        }
    }
    assert_eq!(seen.len(), images);
}

/// Fortran 6.6: array sections with vector-free triplets — the co-indexed
/// section write touches exactly the selected elements.
#[test]
fn section_write_touches_only_selected_elements() {
    let shape = [8usize, 8];
    let sec = Section::new(vec![DimRange::triplet(2, 6, 2), DimRange::triplet(1, 7, 3)]);
    let sec_inner = sec.clone();
    let out = run_caf(mcfg(2), cfg(), move |img| {
        let a = img.coarray_filled::<i32>(&shape, -1).unwrap();
        if img.this_image() == 1 {
            a.put_section(img, 2, &sec_inner, &vec![9; sec_inner.total()]);
        }
        img.sync_all();
        a.read_local(img)
    });
    let selected: std::collections::HashSet<usize> =
        sec.elements(&shape).iter().map(|&(a, _)| a).collect();
    for (i, v) in out.results[1].iter().enumerate() {
        if selected.contains(&i) {
            assert_eq!(*v, 9, "element {i} selected");
        } else {
            assert_eq!(*v, -1, "element {i} untouched");
        }
    }
}

/// Fortran 8.5.6: `lock`/`unlock` with the same lock variable on different
/// images are independent instances; with `stat=` re-acquisition reports
/// STAT_LOCKED instead of deadlocking.
#[test]
fn lock_stat_instead_of_deadlock() {
    let out = run_caf(mcfg(2), cfg(), |img| {
        let lck = img.lock_var();
        img.sync_all();
        img.lock(&lck, 1);
        let again = img.lock_stat(&lck, 1);
        let other = img.lock_stat(&lck, 2);
        if other.is_ok() {
            img.unlock(&lck, 2);
        }
        img.unlock(&lck, 1);
        img.sync_all();
        (again.is_err(), other.is_ok())
    });
    // Both images acquire lck[1] in turn (the MCS queue serializes them);
    // the re-acquisition errors with STAT_LOCKED while lck[2] stays free.
    for (again_err, other_ok) in out.results {
        assert!(again_err, "STAT_LOCKED on re-acquisition");
        assert!(other_ok, "the other image's instance is independent");
    }
}

/// Fortran 13.1: image numbering is 1-based everywhere; 0 and n+1 are
/// runtime errors.
#[test]
fn image_zero_is_invalid() {
    let err = run_caf_result(mcfg(2), cfg(), |img| {
        let a = img.coarray::<i64>(&[1]).unwrap();
        let _ = a.get_from(img, 0);
    })
    .unwrap_err();
    assert!(err.message.contains("out of range"));
}

/// Atomic subroutines act on single variables without requiring any
/// synchronization for their own consistency (Fortran 13.5.4).
#[test]
fn atomics_are_coherent_without_sync() {
    let out = run_caf(mcfg(6), cfg(), |img| {
        let a = img.atomic_var(0);
        for _ in 0..25 {
            img.atomic_add(&a, 1, 1);
        }
        img.sync_all();
        img.atomic_ref(&a, 1)
    });
    for r in out.results {
        assert_eq!(r, 150);
    }
}

/// `critical` sections are mutually exclusive across all images and may be
/// entered repeatedly (Fortran 8.1.5).
#[test]
fn critical_repeated_entry() {
    let out = run_caf(mcfg(4), cfg(), |img| {
        let c = img.coarray::<i64>(&[1]).unwrap();
        img.sync_all();
        for _ in 0..15 {
            img.critical(|| {
                let v = c.get_elem(img, 1, &[0]);
                c.put_elem(img, 1, &[0], v + 1);
            });
        }
        img.sync_all();
        c.get_elem(img, 1, &[0])
    });
    for r in out.results {
        assert_eq!(r, 60);
    }
}

/// Events accumulate counts and `event_query` never consumes
/// (Fortran 2018 16.9.72, as prefigured by the OpenUH extension).
#[test]
fn event_query_is_nondestructive() {
    let out = run_caf(mcfg(2), cfg(), |img| {
        let ev = img.event_var();
        img.sync_all();
        if img.this_image() == 2 {
            for _ in 0..4 {
                img.event_post(&ev, 1);
            }
        }
        img.sync_all();
        if img.this_image() == 1 {
            let q1 = img.event_query(&ev);
            let q2 = img.event_query(&ev);
            img.event_wait(&ev, 4);
            (q1, q2, img.event_query(&ev))
        } else {
            (0, 0, 0)
        }
    });
    assert_eq!(out.results[0], (4, 4, 0));
}

/// The hybrid model (§I of the paper): raw OpenSHMEM calls interoperate
/// with coarray accesses on the same symmetric heap.
#[test]
fn hybrid_shmem_calls_see_coarray_data() {
    let out = run_caf(mcfg(2), cfg(), |img| {
        let a = img.coarray::<i64>(&[2]).unwrap();
        a.write_local(img, &[41, 42]);
        img.sync_all();
        // Read image 1's coarray via a raw SHMEM get on its SymPtr.
        let mut got = [0i64; 2];
        img.shmem().get(a.ptr(), &mut got, 0);
        got
    });
    for r in out.results {
        assert_eq!(r, [41, 42]);
    }
}
