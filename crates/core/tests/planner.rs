//! End-to-end tests for the `StridedPlanner` subsystem: the measured
//! (`TunedPlanner`) scorer must never lose to the PR 1 heuristic or to the
//! fixed Naive/TwoDim algorithms on any platform/backend profile — and must
//! strictly beat the heuristic where the heuristic's hard-coded locality
//! penalty mispredicts.

use caf::planner::{Coefficients, StridedPlanner, TransferDir, TunedPlanner};
use caf::{Backend, CafConfig, DimRange, Section, StridedAlgorithm};
use pgas_conduit::CostModel;
use pgas_machine::{generic_smp, Machine, Platform};

/// Virtual time of three repetitions of `put_section` under `algo`.
fn time_with(
    platform: Platform,
    backend: Backend,
    algo: StridedAlgorithm,
    dims: &[DimRange],
    shape: &[usize],
) -> u64 {
    let sec = Section::new(dims.to_vec());
    let shape = shape.to_vec();
    let cfg = match platform {
        Platform::GenericSmp => generic_smp(2),
        _ => platform.config(2, 1),
    };
    let out = caf::run_caf(
        cfg.with_heap_bytes(1 << 20),
        CafConfig::new(backend, platform).with_strided(algo),
        move |img| {
            let a = img.coarray::<i32>(&shape).unwrap();
            if img.this_image() == 1 {
                let data = vec![1i32; sec.total()];
                let t0 = img.shmem().ctx().pe().now();
                for _ in 0..3 {
                    a.put_section(img, 2, &sec, &data);
                }
                img.shmem().ctx().pe().now() - t0
            } else {
                0
            }
        },
    );
    out.results[0]
}

/// Virtual time of three repetitions of `get_section` under `algo` — the
/// get-heavy mirror of [`time_with`]. Gets are blocking, so the elapsed
/// clock is the full transfer cost with no tail hidden behind `quiet`.
fn time_with_get(
    platform: Platform,
    backend: Backend,
    algo: StridedAlgorithm,
    dims: &[DimRange],
    shape: &[usize],
) -> u64 {
    let sec = Section::new(dims.to_vec());
    let shape = shape.to_vec();
    let cfg = match platform {
        Platform::GenericSmp => generic_smp(2),
        _ => platform.config(2, 1),
    };
    let out = caf::run_caf(
        cfg.with_heap_bytes(1 << 20),
        CafConfig::new(backend, platform).with_strided(algo),
        move |img| {
            let a = img.coarray::<i32>(&shape).unwrap();
            img.sync_all();
            if img.this_image() == 1 {
                let t0 = img.shmem().ctx().pe().now();
                for _ in 0..3 {
                    let back = a.get_section(img, 2, &sec);
                    assert_eq!(back.len(), sec.total());
                }
                img.shmem().ctx().pe().now() - t0
            } else {
                0
            }
        },
    );
    out.results[0]
}

/// The profile matrix the EXPERIMENTS sweep covers.
const COMBOS: [(Platform, Backend); 6] = [
    (Platform::Stampede, Backend::Shmem), // emulated iput (loop)
    (Platform::Stampede, Backend::Gasnet),
    (Platform::Titan, Backend::Shmem), // native iput
    (Platform::CrayXc30, Backend::Shmem),
    (Platform::CrayXc30, Backend::CrayCaf),
    (Platform::GenericSmp, Backend::Shmem),
];

/// Sections exercising the planner's three regimes: contiguous rows,
/// all-strided pencils, and a deep-stride layout crafted so the heuristic's
/// cache-line locality penalty (8·log2(stride/64) per element) outweighs its
/// per-call term and it picks the 48-pencil dimension over the 32-pencil
/// one — a misprediction the measured coefficients don't share (the real
/// cost model charges iput scatter by element count, not stride depth).
fn sections() -> Vec<(Vec<DimRange>, Vec<usize>)> {
    vec![
        // Matrix-oriented: contiguous rows, strided columns.
        (
            vec![
                DimRange { start: 0, count: 32, step: 1 },
                DimRange { start: 0, count: 8, step: 3 },
            ],
            vec![32, 24],
        ),
        // All-strided, dim1 dominant: pencil plans at their best.
        (
            vec![
                DimRange { start: 0, count: 8, step: 2 },
                DimRange { start: 0, count: 32, step: 2 },
            ],
            vec![16, 64],
        ),
        // Deep-stride misprediction bait: dim0 stride 64 B (no penalty) but
        // only 32-long pencils; dim1 stride 4 KiB (penalty 48 ns/elem) with
        // 48-long pencils.
        (
            vec![
                DimRange { start: 0, count: 32, step: 16 },
                DimRange { start: 0, count: 48, step: 2 },
            ],
            vec![512, 96],
        ),
    ]
}

#[test]
fn tuned_never_worse_than_heuristic_naive_or_twodim() {
    for (dims, shape) in sections() {
        for (platform, backend) in COMBOS {
            let tuned = time_with(platform, backend, StridedAlgorithm::Tuned, &dims, &shape);
            for rival in
                [StridedAlgorithm::Adaptive, StridedAlgorithm::Naive, StridedAlgorithm::TwoDim]
            {
                let other = time_with(platform, backend, rival, &dims, &shape);
                assert!(
                    tuned <= other,
                    "{platform:?}/{backend:?} {dims:?}: tuned {tuned} > {rival:?} {other}"
                );
            }
        }
    }
}

#[test]
fn tuned_never_worse_than_rivals_on_get_heavy_sections() {
    // The get-side drift satellite: the heuristic prices gets with put
    // coefficients (it has no `dir` awareness), underpricing call-heavy
    // plans by the request round trip each call pays. The tuned planner's
    // measured get fits must never lose to the heuristic or to the fixed
    // algorithms on any profile-matrix combo.
    for (dims, shape) in sections() {
        for (platform, backend) in COMBOS {
            let tuned = time_with_get(platform, backend, StridedAlgorithm::Tuned, &dims, &shape);
            for rival in
                [StridedAlgorithm::Adaptive, StridedAlgorithm::Naive, StridedAlgorithm::TwoDim]
            {
                let other = time_with_get(platform, backend, rival, &dims, &shape);
                assert!(
                    tuned <= other,
                    "{platform:?}/{backend:?} {dims:?}: tuned get {tuned} > {rival:?} {other}"
                );
            }
        }
    }
}

#[test]
fn tuned_strictly_beats_heuristic_on_deep_strides() {
    let (dims, shape) = sections().into_iter().nth(2).unwrap();
    let tuned =
        time_with(Platform::CrayXc30, Backend::Shmem, StridedAlgorithm::Tuned, &dims, &shape);
    let heuristic =
        time_with(Platform::CrayXc30, Backend::Shmem, StridedAlgorithm::Adaptive, &dims, &shape);
    assert!(
        tuned < heuristic,
        "expected a strict win on the misprediction case: tuned {tuned} vs heuristic {heuristic}"
    );
}

#[test]
fn calibration_cache_round_trips_with_identical_plans() {
    let machine = Machine::new(Platform::CrayXc30.config(2, 2));
    let profile = Backend::Shmem.profile(Platform::CrayXc30);
    let co = Coefficients::calibrate(&CostModel::new(&machine, profile));

    let dir = std::env::temp_dir().join(format!("pgas-planner-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fit.json");
    co.save(&path).unwrap();
    let reloaded = Coefficients::load(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(co, reloaded, "shortest-round-trip floats reload bit-exactly");

    // And the reloaded fit makes the same choice on every probe section.
    let out = caf::run_caf(
        Platform::CrayXc30.config(2, 2).with_heap_bytes(1 << 20),
        CafConfig::new(Backend::Shmem, Platform::CrayXc30),
        move |img| {
            let fresh = TunedPlanner::from_coefficients(co.clone());
            let disk = TunedPlanner::from_coefficients(reloaded.clone());
            let mut plans = Vec::new();
            for (dims, shape) in sections() {
                let sec = Section::new(dims);
                for target in [1usize, 2, 3, 4] {
                    if target == img.this_image() {
                        continue;
                    }
                    for dir in [TransferDir::Put, TransferDir::Get] {
                        let a = fresh.plan(img.shmem(), target - 1, &sec, &shape, 4, dir);
                        let b = disk.plan(img.shmem(), target - 1, &sec, &shape, 4, dir);
                        assert_eq!(a, b, "saved and reloaded fits diverged ({dir:?})");
                        plans.push(a.plan);
                    }
                }
            }
            plans
        },
    );
    assert!(!out.results[0].is_empty());
}

#[test]
fn plan_decisions_are_recorded_with_candidates() {
    let (dims, shape) = sections().into_iter().nth(1).unwrap();
    for (algo, expected_planner) in
        [(StridedAlgorithm::Adaptive, "heuristic"), (StridedAlgorithm::Tuned, "tuned")]
    {
        let sec = Section::new(dims.clone());
        let shape = shape.clone();
        let out = caf::run_caf(
            Platform::CrayXc30.config(2, 1).with_heap_bytes(1 << 20),
            CafConfig::new(Backend::Shmem, Platform::CrayXc30).with_strided(algo),
            move |img| {
                let a = img.coarray::<i32>(&shape).unwrap();
                img.sync_all();
                if img.this_image() == 1 {
                    a.put_section(img, 2, &sec, &vec![1i32; sec.total()]);
                }
                img.sync_all();
            },
        );
        assert_eq!(out.plan_decisions.len(), 1, "{algo:?}: one planned transfer");
        assert_eq!(out.stats.plans, 1, "{algo:?}: counter matches the log");
        let d = &out.plan_decisions[0];
        assert_eq!(d.pe, 0, "{algo:?}: image 1 planned it");
        assert_eq!(d.planner, expected_planner);
        assert!(d.candidates.len() >= 3, "{algo:?}: runs + both dims costed");
        let min = d.candidates.iter().map(|&(_, c)| c).fold(f64::INFINITY, f64::min);
        assert_eq!(d.predicted_ns, min, "{algo:?}: chose the cheapest candidate");
        assert!(
            d.candidates.iter().any(|(label, c)| label == &d.chosen && *c == d.predicted_ns),
            "{algo:?}: chosen plan appears among candidates"
        );
    }
}

#[test]
fn fixed_algorithms_record_no_decisions() {
    let (dims, shape) = sections().into_iter().next().unwrap();
    let sec = Section::new(dims);
    let out = caf::run_caf(
        Platform::CrayXc30.config(2, 1).with_heap_bytes(1 << 20),
        CafConfig::new(Backend::Shmem, Platform::CrayXc30).with_strided(StridedAlgorithm::TwoDim),
        move |img| {
            let a = img.coarray::<i32>(&shape).unwrap();
            img.sync_all();
            if img.this_image() == 1 {
                a.put_section(img, 2, &sec, &vec![1i32; sec.total()]);
            }
            img.sync_all();
        },
    );
    assert!(out.plan_decisions.is_empty());
    assert_eq!(out.stats.plans, 0);
}

#[test]
fn tuned_moves_identical_bytes_to_other_algorithms() {
    // The planner only changes *how* bytes move, never *what* arrives.
    let shape = [7usize, 6, 5];
    let sec = Section::new(vec![
        DimRange::triplet(1, 5, 2),
        DimRange::triplet(0, 5, 3),
        DimRange::triplet(2, 4, 2),
    ]);
    let total = sec.total();
    let mut reference: Option<Vec<f64>> = None;
    for algo in [StridedAlgorithm::Naive, StridedAlgorithm::Tuned] {
        let sec = sec.clone();
        let out = caf::run_caf(
            generic_smp(2).with_heap_bytes(1 << 18),
            CafConfig::new(Backend::Shmem, Platform::GenericSmp).with_strided(algo),
            move |img| {
                let a = img.coarray::<f64>(&shape).unwrap();
                img.sync_all();
                if img.this_image() == 1 {
                    let data: Vec<f64> = (0..total).map(|i| i as f64 + 0.5).collect();
                    a.put_section(img, 2, &sec, &data);
                }
                img.sync_all();
                a.read_local(img)
            },
        );
        let got = out.results[1].clone();
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(&got, r, "{algo:?} diverged from Naive"),
        }
    }
}
