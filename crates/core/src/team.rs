//! Fortran 2018 teams: `form team`, `change team`, `sync team`, and
//! team-scoped collectives.
//!
//! A [`CafTeam`] is the runtime object behind a `team_type` variable:
//! the set of images that passed the same team number to [`Image::form_team`],
//! plus a machine-wide attribution id drawn from the OpenSHMEM layer's team
//! id space ([`openshmem::Shmem::reserve_team_ids`]). Operations issued
//! inside [`Image::change_team`] carry that id through every `OpDesc`, so
//! the sanitizer, metrics, and flow traces break traffic down per team.
//!
//! **Failure & re-formation.** Teams are the recovery unit of this runtime:
//! after a scheduled image failure, the survivors observe the death at an
//! image-control point (`sync_all_stat` & co.), then call `form_team` again
//! — dead images are excluded from the member exchange, a spare image can
//! pass the workers' team number to rejoin in a dead image's place, and the
//! new team's barriers and collectives run entirely among its live members.
//! With a fixed plan and seed, membership, team ids, and every team
//! collective are deterministic.

use crate::failure::CafStat;
use crate::image::{Image, ImageId};
use openshmem::data::Scalar;

/// A formed team: the images that supplied the same team number, ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CafTeam {
    number: i64,
    id: u32,
    members: Vec<ImageId>,
}

impl CafTeam {
    /// The team number this team was formed with.
    #[inline]
    pub fn number(&self) -> i64 {
        self.number
    }

    /// The machine-wide attribution id carried by operations issued under
    /// this team's scope.
    #[inline]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Member images (1-based, ascending) as of formation time.
    #[inline]
    pub fn members(&self) -> &[ImageId] {
        &self.members
    }

    /// `num_images(team)`.
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Membership test (1-based image index).
    pub fn contains(&self, image: ImageId) -> bool {
        self.members.binary_search(&image).is_ok()
    }

    /// `this_image(team)`: 1-based rank of `image` within the team.
    pub fn rank_of(&self, image: ImageId) -> Option<usize> {
        self.members.binary_search(&image).ok().map(|k| k + 1)
    }
}

impl<'m> Image<'m> {
    /// `form team(number, team)`: images passing the same (positive) number
    /// form a team together. Collective over the *live* images — every
    /// image that has not failed must call, in the same statement order
    /// (the member exchange and the id reservation are both symmetric).
    /// Failed images are excluded from membership; calling again after a
    /// failure re-forms the team among the survivors, and a previously
    /// idle image may pass the same number to join in a dead one's place.
    pub fn form_team(&self, number: i64) -> CafTeam {
        assert!(number > 0, "team numbers must be positive, got {number}");
        let m = self.machine();
        let shmem = self.shmem();
        let n = self.num_images();
        let me0 = self.this_image() - 1;
        // Exchange team numbers by *pushing*: every image writes its number
        // into its own slot of every peer's table before the barrier, then
        // reads only locally afterwards. Membership is then decided by the
        // deadline probe at the barrier-aligned clock — a pure function of
        // the fault plan and a clock every live image shares — never by the
        // host-racy failure flag. A death racing the exchange is excluded
        // (or included) identically on every image; split membership would
        // put survivors behind *different* team barriers, which deadlocks.
        let slots = shmem.shmalloc::<i64>(n).expect("form team: scratch allocation failed");
        shmem.write_local(slots.at(me0), &[number]);
        for q in (0..n).filter(|&q| q != me0) {
            // A push to a dying image just vanishes with it; nobody reads
            // a dead image's table.
            let _ = shmem.try_put(slots.at(me0), &[number], q);
        }
        // Drain deferred dead-target errors from the pushes so the barrier
        // (whose implicit quiet panics on them) stays clean.
        let _ = shmem.ctx().try_quiet();
        self.sync_all();
        let t_form = shmem.ctx().pe().now();
        let mut numbers: Vec<Option<i64>> = vec![None; n];
        numbers[me0] = Some(number);
        for p in (0..n).filter(|&p| p != me0) {
            if m.pe_dead_at(p, t_form) {
                continue;
            }
            let mut got = [0i64];
            shmem.read_local(slots.at(p), &mut got);
            numbers[p] = Some(got[0]);
        }
        // Sibling teams minted by this statement share one deterministic id
        // block: sorted distinct numbers index into it, so every live image
        // computes the same id for the same number.
        let mut distinct: Vec<i64> = numbers.iter().flatten().copied().collect();
        distinct.sort_unstable();
        distinct.dedup();
        let base = shmem.reserve_team_ids(distinct.len() as u32);
        let idx = distinct.binary_search(&number).expect("own team number present");
        let members: Vec<ImageId> =
            (0..n).filter(|&p| numbers[p] == Some(number)).map(|p| p + 1).collect();
        self.sync_all(); // all reads done before the scratch is recycled
        shmem.shfree(slots).expect("form team: scratch free");
        CafTeam { number, id: base + idx as u32, members }
    }

    /// `change team(team) ... end team`: run `f` scoped to `team`. Entry
    /// and exit synchronize the team's live members (as the construct's
    /// implicit `sync team` pair), and every operation `f` issues is
    /// attributed to the team.
    pub fn change_team<R>(&self, team: &CafTeam, f: impl FnOnce() -> R) -> R {
        debug_assert!(
            team.contains(self.this_image()),
            "change team on image {} outside the team",
            self.this_image()
        );
        self.sync_team(team);
        let prev = self.shmem().ctx().set_team_scope(team.id());
        let r = f();
        self.shmem().ctx().set_team_scope(prev);
        self.sync_team(team);
        r
    }

    /// `sync team(team)`: barrier over the team's live members, with memory
    /// completion. Dead members are detached automatically; use
    /// [`Self::sync_team_stat`] to observe them.
    pub fn sync_team(&self, team: &CafTeam) {
        let prev = self.shmem().ctx().set_team_scope(team.id());
        self.shmem().ctx().barrier_group(&Self::member_pes(team));
        self.shmem().ctx().set_team_scope(prev);
    }

    /// `sync team(team, stat=s)`: like [`Self::sync_team`], but deferred
    /// communication errors (a coalesced put whose target died before the
    /// flush) and failed members surface as a [`CafStat`] instead of
    /// hanging or panicking. The barrier itself always completes among the
    /// survivors, so live members stay in step even on the error path.
    pub fn sync_team_stat(&self, team: &CafTeam) -> Result<(), CafStat> {
        if self.this_image_failed() {
            return Err(CafStat::FailedImage { image: self.this_image() });
        }
        let prev = self.shmem().ctx().set_team_scope(team.id());
        let r = self.shmem().ctx().try_barrier_group(&Self::member_pes(team));
        self.shmem().ctx().set_team_scope(prev);
        r.map_err(CafStat::from)?;
        match team.members().iter().find(|&&img| self.image_failed(img)) {
            Some(&img) => Err(CafStat::FailedImage { image: img }),
            None => Ok(()),
        }
    }

    /// `co_reduce` scoped to a team: combine `data` element-wise across the
    /// team's live members; every live member receives the result. Linear
    /// over the team's lowest live member (teams name arbitrary image
    /// subsets, which the tree collectives' active sets cannot), with the
    /// same deterministic combine order on every image. Reports the first
    /// failed member or communication fault as its stat; the data exchange
    /// still completes among the survivors.
    pub fn team_reduce<T: Scalar>(
        &self,
        team: &CafTeam,
        data: &mut [T],
        op: impl Fn(T, T) -> T + Copy,
    ) -> Result<(), CafStat> {
        let m = self.machine();
        let me0 = self.this_image() - 1;
        if m.pe_failed(me0) {
            return Err(CafStat::FailedImage { image: me0 + 1 });
        }
        let prev = self.shmem().ctx().set_team_scope(team.id());
        let r = self.team_reduce_inner(team, data, op);
        self.shmem().ctx().set_team_scope(prev);
        r
    }

    fn team_reduce_inner<T: Scalar>(
        &self,
        team: &CafTeam,
        data: &mut [T],
        op: impl Fn(T, T) -> T + Copy,
    ) -> Result<(), CafStat> {
        let m = self.machine();
        let shmem = self.shmem();
        let me0 = self.this_image() - 1;
        let len = data.len();
        let n = self.num_images();
        let live: Vec<usize> =
            team.members().iter().map(|&img| img - 1).filter(|&p| !m.pe_failed(p)).collect();
        let root = live[0];
        let mut stat: Option<CafStat> = None;
        // One slot per image (global indexing keeps the layout independent
        // of the survivor set); slot 0 doubles as the result slot.
        let slots =
            shmem.shmalloc::<T>((n * len).max(1)).expect("team collective: scratch allocation");
        let barrier = |live: &[usize]| -> Option<CafStat> {
            self.shmem().ctx().try_barrier_group(live).err().map(CafStat::from)
        };
        stat = stat.or_else(|| barrier(&live));
        if len > 0 && me0 != root {
            if let Err(e) = shmem.try_put(slots.slice(me0 * len, len), data, root) {
                stat.get_or_insert(e.into());
            }
            shmem.quiet();
        }
        stat = stat.or_else(|| barrier(&live)); // contributions landed
        if me0 == root && len > 0 {
            let mut acc = data.to_vec();
            let mut part = data.to_vec();
            for &p in live.iter().filter(|&&p| p != root) {
                shmem.read_local(slots.slice(p * len, len), &mut part);
                for (a, &b) in acc.iter_mut().zip(part.iter()) {
                    *a = op(*a, b);
                }
            }
            for &p in live.iter().filter(|&&p| p != root) {
                if let Err(e) = shmem.try_put(slots.slice(0, len), &acc, p) {
                    stat.get_or_insert(e.into());
                }
            }
            shmem.quiet();
            data.copy_from_slice(&acc);
        }
        stat = stat.or_else(|| barrier(&live)); // result delivered
        if len > 0 && me0 != root {
            shmem.read_local(slots.slice(0, len), data);
        }
        stat = stat.or_else(|| barrier(&live)); // reads done before recycling
        shmem.shfree(slots).expect("team collective: scratch free");
        match stat.or_else(|| {
            team.members()
                .iter()
                .find(|&&img| self.image_failed(img))
                .map(|&img| CafStat::FailedImage { image: img })
        }) {
            Some(s) => Err(s),
            None => Ok(()),
        }
    }

    /// `co_sum` scoped to a team.
    pub fn team_sum<T: Scalar + std::ops::Add<Output = T>>(
        &self,
        team: &CafTeam,
        data: &mut [T],
    ) -> Result<(), CafStat> {
        self.team_reduce(team, data, |a, b| a + b)
    }

    /// `co_broadcast` scoped to a team: replicate `data` from the member
    /// with team rank `source_rank` (1-based, counting dead members — ranks
    /// are stable across failures) to every live member.
    pub fn team_broadcast<T: Scalar>(
        &self,
        team: &CafTeam,
        data: &mut [T],
        source_rank: usize,
    ) -> Result<(), CafStat> {
        let m = self.machine();
        let me0 = self.this_image() - 1;
        if m.pe_failed(me0) {
            return Err(CafStat::FailedImage { image: me0 + 1 });
        }
        assert!(
            (1..=team.size()).contains(&source_rank),
            "source rank {source_rank} outside team of {}",
            team.size()
        );
        let source = team.members()[source_rank - 1];
        let root = self.pe_of(source);
        if m.pe_failed(root) {
            return Err(CafStat::FailedImage { image: source });
        }
        let prev = self.shmem().ctx().set_team_scope(team.id());
        let r = self.team_broadcast_inner(team, data, root);
        self.shmem().ctx().set_team_scope(prev);
        r
    }

    fn team_broadcast_inner<T: Scalar>(
        &self,
        team: &CafTeam,
        data: &mut [T],
        root: usize,
    ) -> Result<(), CafStat> {
        let m = self.machine();
        let shmem = self.shmem();
        let me0 = self.this_image() - 1;
        let len = data.len();
        let live: Vec<usize> =
            team.members().iter().map(|&img| img - 1).filter(|&p| !m.pe_failed(p)).collect();
        let mut stat: Option<CafStat> = None;
        let slots = shmem.shmalloc::<T>(len.max(1)).expect("team collective: scratch allocation");
        let barrier = |live: &[usize]| -> Option<CafStat> {
            self.shmem().ctx().try_barrier_group(live).err().map(CafStat::from)
        };
        stat = stat.or_else(|| barrier(&live));
        if len > 0 && me0 == root {
            for &p in live.iter().filter(|&&p| p != root) {
                if let Err(e) = shmem.try_put(slots, data, p) {
                    stat.get_or_insert(e.into());
                }
            }
            shmem.quiet();
        }
        stat = stat.or_else(|| barrier(&live)); // payload delivered
        if len > 0 && me0 != root {
            shmem.read_local(slots, data);
        }
        stat = stat.or_else(|| barrier(&live));
        shmem.shfree(slots).expect("team collective: scratch free");
        match stat.or_else(|| {
            team.members()
                .iter()
                .find(|&&img| self.image_failed(img))
                .map(|&img| CafStat::FailedImage { image: img })
        }) {
            Some(s) => Err(s),
            None => Ok(()),
        }
    }

    /// Member images as sorted 0-based PEs, for the machine's group
    /// barriers.
    fn member_pes(team: &CafTeam) -> Vec<usize> {
        team.members().iter().map(|&img| img - 1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Backend, CafConfig};
    use crate::runtime::run_caf;
    use pgas_machine::fault::{with_forced_plan, FaultPlan};
    use pgas_machine::{generic_smp, Platform};

    fn cfg() -> CafConfig {
        CafConfig::new(Backend::Shmem, Platform::GenericSmp)
    }

    fn mcfg(n: usize) -> pgas_machine::MachineConfig {
        generic_smp(n).with_heap_bytes(1 << 18)
    }

    #[test]
    fn form_team_partitions_by_number() {
        let out = run_caf(mcfg(6), cfg(), |img| {
            let color = if img.this_image() <= 2 { 7 } else { 9 };
            let team = img.form_team(color);
            (team.number(), team.id(), team.members().to_vec(), team.rank_of(img.this_image()))
        });
        let (n0, id0, m0, r0) = &out.results[0];
        assert_eq!((*n0, m0.clone()), (7, vec![1, 2]));
        let (n5, id5, m5, r5) = &out.results[5];
        assert_eq!((*n5, m5.clone()), (9, vec![3, 4, 5, 6]));
        assert_ne!(id0, id5, "sibling teams get distinct ids");
        assert_eq!(*r0, Some(1));
        assert_eq!(*r5, Some(4));
        // Every member of a team agrees on its id.
        assert_eq!(out.results[0].1, out.results[1].1);
        assert_eq!(out.results[2].1, out.results[5].1);
    }

    #[test]
    fn change_team_scopes_and_synchronizes() {
        let out = run_caf(mcfg(4), cfg(), |img| {
            let a = img.coarray::<i64>(&[1]).unwrap();
            img.sync_all();
            let team = img.form_team(if img.this_image() <= 2 { 1 } else { 2 });
            img.change_team(&team, || {
                // Ring put within the team: rank k writes to rank k+1.
                let rank = team.rank_of(img.this_image()).unwrap();
                let next = team.members()[rank % team.size()];
                a.put_to(img, next, &[img.this_image() as i64 * 10]);
                img.sync_team(&team);
            });
            a.read_local(img)[0]
        });
        // Teams {1,2} and {3,4}: 1<->2 and 3<->4 exchanged.
        assert_eq!(out.results, vec![20, 10, 40, 30]);
    }

    #[test]
    fn team_sum_and_broadcast_stay_inside_the_team() {
        let out = run_caf(mcfg(5), cfg(), |img| {
            let color = if img.this_image() % 2 == 1 { 11 } else { 22 };
            let team = img.form_team(color);
            let mut v = [img.this_image() as i64];
            img.team_sum(&team, &mut v).unwrap();
            let mut b = [img.this_image() as i64 * 100];
            img.team_broadcast(&team, &mut b, 1).unwrap();
            (v[0], b[0])
        });
        // Odd team {1,3,5}: sum 9, broadcast from image 1. Even {2,4}:
        // sum 6, broadcast from image 2.
        assert_eq!(out.results[0], (9, 100));
        assert_eq!(out.results[2], (9, 100));
        assert_eq!(out.results[4], (9, 100));
        assert_eq!(out.results[1], (6, 200));
        assert_eq!(out.results[3], (6, 200));
    }

    #[test]
    fn reformation_excludes_a_dead_image_and_admits_a_spare() {
        // Images 1..4 work, image 5 idles as a spare. Image 3 dies; the
        // survivors re-form and the spare joins under the same number.
        let plan = FaultPlan::new(42).with_pe_failure(2, 50_000);
        let out = with_forced_plan(plan, || {
            run_caf(mcfg(5), cfg(), |img| {
                let me = img.this_image();
                let first = img.form_team(if me <= 4 { 3 } else { 4 });
                // Everyone (spare included) advances past the death
                // instant, then observes it at an image-control point.
                img.machine().advance(me - 1, 60_000.0);
                if me == 3 {
                    // Dead image: cooperative exit.
                    return (first.members().to_vec(), Vec::new(), 0);
                }
                let err = img.sync_all_stat().unwrap_err();
                assert_eq!(err, CafStat::FailedImage { image: 3 });
                // Re-form: survivors and the spare all pass number 3 now.
                // The reformed team contains no dead member, so its
                // collectives succeed again.
                let second = img.form_team(3);
                let mut v = [1i64];
                img.team_sum(&second, &mut v).unwrap();
                (first.members().to_vec(), second.members().to_vec(), v[0])
            })
        });
        let (first, second, sum) = &out.results[0];
        assert_eq!(*first, vec![1, 2, 3, 4]);
        assert_eq!(*second, vec![1, 2, 4, 5], "dead image out, spare in");
        assert_eq!(*sum, 4, "reduction ran over the four live members");
        // All live images agree on the reformed membership.
        for pe in [1usize, 3, 4] {
            assert_eq!(out.results[pe].1, *second);
        }
    }
}
