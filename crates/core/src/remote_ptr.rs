//! Packed remote pointers for lock queue nodes.
//!
//! The paper (§IV-D): "The tail and next fields, functioning as pointers to
//! qnodes belonging to a remote image, are represented using 20 bits for the
//! image index, 36 bits for the offset of the qnode within the
//! remote-accessible buffer space, and the final 8 bits reserved for other
//! flags. By packing this remote pointer within a 64-bit representation, we
//! can utilize support for 8-byte remote atomics provided by OpenSHMEM."
//!
//! Layout (most significant first): `[ image:20 | offset:36 | flags:8 ]`.
//! Flag bit 0 marks a valid pointer, so the all-zero word can serve as NIL
//! even when image 0 holds a qnode at offset 0.

/// Number of bits for each field.
pub const IMAGE_BITS: u32 = 20;
pub const OFFSET_BITS: u32 = 36;
pub const FLAG_BITS: u32 = 8;

/// Flag bit marking a live pointer (distinguishes packed 0/0 from NIL).
pub const FLAG_VALID: u8 = 0b1;

/// The null remote pointer.
pub const NIL: u64 = 0;

/// A decoded remote pointer: a qnode location in another image's
/// remotely-accessible buffer space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemotePtr {
    /// 0-based image (PE) index, < 2^20.
    pub image: usize,
    /// Byte offset within the non-symmetric buffer space, < 2^36.
    pub offset: usize,
    /// Spare flag bits (bit 0 is the validity mark and is managed by
    /// `pack`/`unpack`).
    pub flags: u8,
}

impl RemotePtr {
    /// Encode into the 64-bit on-wire representation.
    pub fn pack(self) -> u64 {
        assert!(self.image < (1 << IMAGE_BITS), "image {} exceeds 20 bits", self.image);
        assert!(self.offset < (1usize << OFFSET_BITS), "offset {} exceeds 36 bits", self.offset);
        ((self.image as u64) << (OFFSET_BITS + FLAG_BITS))
            | ((self.offset as u64) << FLAG_BITS)
            | u64::from(self.flags | FLAG_VALID)
    }

    /// Decode a packed pointer; `None` for NIL / invalid words.
    pub fn unpack(word: u64) -> Option<RemotePtr> {
        if word & u64::from(FLAG_VALID) == 0 {
            return None;
        }
        Some(RemotePtr {
            image: (word >> (OFFSET_BITS + FLAG_BITS)) as usize,
            offset: ((word >> FLAG_BITS) & ((1u64 << OFFSET_BITS) - 1)) as usize,
            flags: (word & 0xFF) as u8,
        })
    }

    /// Convenience constructor with no extra flags.
    pub fn new(image: usize, offset: usize) -> RemotePtr {
        RemotePtr { image, offset, flags: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let p = RemotePtr::new(12, 4096);
        let w = p.pack();
        let q = RemotePtr::unpack(w).unwrap();
        assert_eq!(q.image, 12);
        assert_eq!(q.offset, 4096);
        assert_eq!(q.flags & FLAG_VALID, FLAG_VALID);
    }

    #[test]
    fn zero_zero_is_distinguishable_from_nil() {
        let w = RemotePtr::new(0, 0).pack();
        assert_ne!(w, NIL);
        assert!(RemotePtr::unpack(w).is_some());
        assert!(RemotePtr::unpack(NIL).is_none());
    }

    #[test]
    fn extreme_values_fit() {
        let p = RemotePtr::new((1 << 20) - 1, (1usize << 36) - 1);
        let q = RemotePtr::unpack(p.pack()).unwrap();
        assert_eq!(q.image, (1 << 20) - 1);
        assert_eq!(q.offset, (1usize << 36) - 1);
    }

    #[test]
    #[should_panic(expected = "20 bits")]
    fn image_overflow_rejected() {
        RemotePtr::new(1 << 20, 0).pack();
    }

    #[test]
    #[should_panic(expected = "36 bits")]
    fn offset_overflow_rejected() {
        RemotePtr::new(0, 1usize << 36).pack();
    }

    #[test]
    fn flags_survive() {
        let p = RemotePtr { image: 3, offset: 16, flags: 0b1010_0000 };
        let q = RemotePtr::unpack(p.pack()).unwrap();
        assert_eq!(q.flags & 0b1010_0000, 0b1010_0000);
    }

    #[test]
    fn fields_do_not_bleed() {
        // Neighbouring extreme fields must not corrupt each other.
        let p = RemotePtr { image: 0xFFFFF, offset: 0, flags: 0 };
        let q = RemotePtr::unpack(p.pack()).unwrap();
        assert_eq!(q.offset, 0);
        let p = RemotePtr { image: 0, offset: 0xF_FFFF_FFFF, flags: 0 };
        let q = RemotePtr::unpack(p.pack()).unwrap();
        assert_eq!(q.image, 0);
        assert_eq!(q.offset, 0xF_FFFF_FFFF);
    }
}
