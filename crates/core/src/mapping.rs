//! The CAF → OpenSHMEM feature mapping of the paper's Table II, as data.
//!
//! Besides documenting the translation, this table drives the
//! `table2_mapping` reproduction binary and a test asserting that every
//! feature the paper lists is actually implemented somewhere in this
//! workspace.

/// How a CAF feature maps onto OpenSHMEM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingKind {
    /// One-to-one translation onto an existing OpenSHMEM routine.
    Direct,
    /// No OpenSHMEM equivalent: implemented by this runtime's own algorithm
    /// (the paper's contributions).
    RuntimeAlgorithm,
}

/// One row of Table II.
#[derive(Debug, Clone, Copy)]
pub struct MappingRow {
    pub property: &'static str,
    pub caf: &'static str,
    pub openshmem: &'static str,
    pub kind: MappingKind,
    /// Where the mapping lives in this codebase.
    pub implemented_by: &'static str,
}

/// The full table (paper Table II, plus the rows §IV adds in prose).
pub const TABLE2: &[MappingRow] = &[
    MappingRow {
        property: "Symmetric data allocation",
        caf: "allocate",
        openshmem: "shmalloc",
        kind: MappingKind::Direct,
        implemented_by: "caf::Image::coarray -> openshmem::Shmem::shmalloc",
    },
    MappingRow {
        property: "Total image count",
        caf: "num_images()",
        openshmem: "num_pes()",
        kind: MappingKind::Direct,
        implemented_by: "caf::Image::num_images -> openshmem::Shmem::n_pes",
    },
    MappingRow {
        property: "Current image ID",
        caf: "this_image()",
        openshmem: "my_pe()",
        kind: MappingKind::Direct,
        implemented_by: "caf::Image::this_image -> openshmem::Shmem::my_pe",
    },
    MappingRow {
        property: "Collectives - reduction",
        caf: "co_sum / co_min / co_max / co_reduce",
        openshmem: "shmem_{op}_to_all",
        kind: MappingKind::Direct,
        implemented_by: "caf::Image::co_reduce -> openshmem::Shmem::reduce_to_all",
    },
    MappingRow {
        property: "Collectives - broadcast",
        caf: "co_broadcast",
        openshmem: "shmem_broadcast",
        kind: MappingKind::Direct,
        implemented_by: "caf::Image::co_broadcast -> openshmem::Shmem::broadcast",
    },
    MappingRow {
        property: "Barrier synchronization",
        caf: "sync all",
        openshmem: "shmem_barrier_all",
        kind: MappingKind::Direct,
        implemented_by: "caf::Image::sync_all -> openshmem::Shmem::barrier_all",
    },
    MappingRow {
        property: "Point-to-point synchronization",
        caf: "sync images",
        openshmem: "shmem_inc + shmem_wait_until",
        kind: MappingKind::RuntimeAlgorithm,
        implemented_by: "caf::Image::sync_images",
    },
    MappingRow {
        property: "Atomic swapping",
        caf: "atomic_cas",
        openshmem: "shmem_swap / shmem_cswap",
        kind: MappingKind::Direct,
        implemented_by: "caf::Image::atomic_cas -> openshmem::Shmem::cswap",
    },
    MappingRow {
        property: "Atomic addition",
        caf: "atomic_fetch_add",
        openshmem: "shmem_add / shmem_fadd",
        kind: MappingKind::Direct,
        implemented_by: "caf::Image::atomic_fetch_add -> openshmem::Shmem::fadd",
    },
    MappingRow {
        property: "Atomic AND operation",
        caf: "atomic_fetch_and",
        openshmem: "shmem_and",
        kind: MappingKind::Direct,
        implemented_by: "caf::Image::atomic_fetch_and -> openshmem::Shmem::fetch_and",
    },
    MappingRow {
        property: "Atomic OR operation",
        caf: "atomic_or",
        openshmem: "shmem_or",
        kind: MappingKind::Direct,
        implemented_by: "caf::Image::atomic_or -> openshmem::Shmem::atomic_or",
    },
    MappingRow {
        property: "Atomic XOR operation",
        caf: "atomic_xor",
        openshmem: "shmem_xor",
        kind: MappingKind::Direct,
        implemented_by: "caf::Image::atomic_xor -> openshmem::Shmem::atomic_xor",
    },
    MappingRow {
        property: "Remote memory put operation",
        caf: "a(:)[j] = ...",
        openshmem: "shmem_put (+ shmem_quiet for CAF ordering)",
        kind: MappingKind::Direct,
        implemented_by: "caf::Coarray::put_to -> openshmem::Shmem::put + quiet",
    },
    MappingRow {
        property: "Remote memory get operation",
        caf: "... = a(:)[j]",
        openshmem: "shmem_get",
        kind: MappingKind::Direct,
        implemented_by: "caf::Coarray::get_from -> openshmem::Shmem::get",
    },
    MappingRow {
        property: "Single dimensional strided put",
        caf: "a(1:n:s)[j] = ...",
        openshmem: "shmem_iput",
        kind: MappingKind::Direct,
        implemented_by: "caf::strided::put_section -> openshmem::Shmem::iput",
    },
    MappingRow {
        property: "Single dimensional strided get",
        caf: "... = a(1:n:s)[j]",
        openshmem: "shmem_iget",
        kind: MappingKind::Direct,
        implemented_by: "caf::strided::get_section -> openshmem::Shmem::iget",
    },
    MappingRow {
        property: "Multi dimensional strided put",
        caf: "a(1:n:s, 1:m:t, ...)[j] = ...",
        openshmem: "(none) — 2dim_strided over shmem_iput",
        kind: MappingKind::RuntimeAlgorithm,
        implemented_by: "caf::strided::put_section (StridedAlgorithm::TwoDim)",
    },
    MappingRow {
        property: "Multi dimensional strided get",
        caf: "... = a(1:n:s, 1:m:t, ...)[j]",
        openshmem: "(none) — 2dim_strided over shmem_iget",
        kind: MappingKind::RuntimeAlgorithm,
        implemented_by: "caf::strided::get_section (StridedAlgorithm::TwoDim)",
    },
    MappingRow {
        property: "Remote locks",
        caf: "lock(lck[j]) / unlock(lck[j])",
        openshmem: "(unsuitable) — MCS queue over shmem_swap/cswap",
        kind: MappingKind::RuntimeAlgorithm,
        implemented_by: "caf::Image::lock / unlock (caf::locks)",
    },
    MappingRow {
        property: "Non-symmetric remote data",
        caf: "allocatable components of coarray derived types",
        openshmem: "managed slices of a pre-shmalloc'd buffer",
        kind: MappingKind::RuntimeAlgorithm,
        implemented_by: "caf::Image::alloc_nonsym",
    },
];

/// Render the table as aligned text (the `table2_mapping` binary's output).
pub fn render_table2() -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<34} {:<38} {:<48} {}\n", "Property", "CAF", "OpenSHMEM", "Mapping"));
    out.push_str(&"-".repeat(140));
    out.push('\n');
    for row in TABLE2 {
        out.push_str(&format!(
            "{:<34} {:<38} {:<48} {}\n",
            row.property,
            row.caf,
            row.openshmem,
            match row.kind {
                MappingKind::Direct => "direct",
                MappingKind::RuntimeAlgorithm => "runtime algorithm",
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_paper_rows() {
        // The paper's Table II has 18 rows; we add the two §IV prose rows
        // (sync images, non-symmetric data).
        assert_eq!(TABLE2.len(), 20);
        let props: Vec<&str> = TABLE2.iter().map(|r| r.property).collect();
        for needle in [
            "Symmetric data allocation",
            "Remote locks",
            "Multi dimensional strided put",
            "Multi dimensional strided get",
            "Atomic swapping",
            "Barrier synchronization",
        ] {
            assert!(props.contains(&needle), "missing row {needle}");
        }
    }

    #[test]
    fn paper_contributions_are_runtime_algorithms() {
        for row in TABLE2 {
            let is_contribution = row.property.contains("Multi dimensional")
                || row.property.contains("locks")
                || row.property.contains("Non-symmetric")
                || row.property.contains("Point-to-point");
            if is_contribution {
                assert_eq!(row.kind, MappingKind::RuntimeAlgorithm, "{}", row.property);
            }
        }
    }

    #[test]
    fn rendering_contains_every_row() {
        let text = render_table2();
        for row in TABLE2 {
            assert!(text.contains(row.property));
        }
    }
}
