//! Coarrays: symmetric, remotely accessible arrays with co-indexed access.

use crate::failure::CafStat;
use crate::image::{Image, ImageId};
use crate::section::Section;
use openshmem::alloc::AllocError;
use openshmem::data::{Scalar, SymPtr};

/// A coarray of element type `T` with a local array of `shape`
/// (column-major, Fortran-style). Both `save` coarrays and `allocatable`
/// coarrays map to the same symmetric allocation (paper §IV-A); the
/// difference in CAF is purely syntactic.
///
/// Co-indexed remote access (`a(i,j)[k]`) maps to the `*_to`/`*_from`
/// methods, which take 1-based image indices like Fortran.
pub struct Coarray<T: Scalar> {
    ptr: SymPtr<T>,
    shape: Box<[usize]>,
}

impl<T: Scalar> Coarray<T> {
    /// Element count of the local array.
    pub fn len(&self) -> usize {
        self.shape.iter().product()
    }

    /// True when the local array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Local array shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The symmetric allocation behind the coarray.
    pub fn ptr(&self) -> SymPtr<T> {
        self.ptr
    }

    /// Column-major linear index of `idx`.
    pub fn linear(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut lin = 0;
        let mut stride = 1;
        for (d, (&i, &n)) in idx.iter().zip(self.shape.iter()).enumerate() {
            assert!(i < n, "index {i} out of bounds for dimension {d} of extent {n}");
            lin += i * stride;
            stride *= n;
        }
        lin
    }

    // ---- local access -------------------------------------------------------

    /// Read this image's entire local array.
    pub fn read_local(&self, img: &Image<'_>) -> Vec<T> {
        let mut out = vec![zero::<T>(); self.len()];
        img.shmem().read_local(self.ptr, &mut out);
        out
    }

    /// Overwrite this image's local array.
    pub fn write_local(&self, img: &Image<'_>, data: &[T]) {
        assert!(data.len() <= self.len());
        img.shmem().write_local(self.ptr, data);
    }

    /// Read one local element.
    pub fn local_elem(&self, img: &Image<'_>, idx: &[usize]) -> T {
        img.shmem().read_local_one(self.ptr.at(self.linear(idx)))
    }

    /// Write one local element.
    pub fn set_local_elem(&self, img: &Image<'_>, idx: &[usize], v: T) {
        img.shmem().write_local(self.ptr.at(self.linear(idx)), &[v]);
    }

    // ---- co-indexed contiguous access ----------------------------------------

    /// `a(:)[image] = data`: contiguous put of the whole array.
    pub fn put_to(&self, img: &Image<'_>, image: ImageId, data: &[T]) {
        assert!(data.len() <= self.len());
        img.shmem().put(self.ptr, data, img.pe_of(image));
        img.statement_quiet();
    }

    /// `data = a(:)[image]`: contiguous get of the whole array.
    pub fn get_from(&self, img: &Image<'_>, image: ImageId) -> Vec<T> {
        let mut out = vec![zero::<T>(); self.len()];
        img.statement_quiet();
        img.shmem().get(self.ptr, &mut out, img.pe_of(image));
        out
    }

    /// `a(idx)[image] = v`.
    pub fn put_elem(&self, img: &Image<'_>, image: ImageId, idx: &[usize], v: T) {
        img.shmem().p(self.ptr.at(self.linear(idx)), v, img.pe_of(image));
        img.statement_quiet();
    }

    /// `v = a(idx)[image]`.
    pub fn get_elem(&self, img: &Image<'_>, image: ImageId, idx: &[usize]) -> T {
        img.statement_quiet();
        img.shmem().g(self.ptr.at(self.linear(idx)), img.pe_of(image))
    }

    // ---- stat-bearing co-indexed access (Fortran 2018 stat= on the
    // ---- assignment's image selector) ----------------------------------------

    /// `a(:)[image] = data (stat=s)`: fallible contiguous put. Reports
    /// STAT_FAILED_IMAGE for a dead target and a communication failure when
    /// the conduit's retry budget runs out.
    pub fn put_to_stat(&self, img: &Image<'_>, image: ImageId, data: &[T]) -> Result<(), CafStat> {
        assert!(data.len() <= self.len());
        img.shmem().try_put(self.ptr, data, img.pe_of(image))?;
        img.try_statement_quiet()?;
        Ok(())
    }

    /// `data = a(:)[image] (stat=s)`: fallible contiguous get.
    pub fn get_from_stat(&self, img: &Image<'_>, image: ImageId) -> Result<Vec<T>, CafStat> {
        let mut out = vec![zero::<T>(); self.len()];
        img.try_statement_quiet()?;
        img.shmem().try_get(self.ptr, &mut out, img.pe_of(image))?;
        Ok(out)
    }

    /// `a(idx)[image] = v (stat=s)`.
    pub fn put_elem_stat(
        &self,
        img: &Image<'_>,
        image: ImageId,
        idx: &[usize],
        v: T,
    ) -> Result<(), CafStat> {
        img.shmem().try_put(self.ptr.at(self.linear(idx)), &[v], img.pe_of(image))?;
        img.try_statement_quiet()?;
        Ok(())
    }

    /// `v = a(idx)[image] (stat=s)`.
    pub fn get_elem_stat(
        &self,
        img: &Image<'_>,
        image: ImageId,
        idx: &[usize],
    ) -> Result<T, CafStat> {
        let mut out = [zero::<T>()];
        img.try_statement_quiet()?;
        img.shmem().try_get(self.ptr.at(self.linear(idx)), &mut out, img.pe_of(image))?;
        Ok(out[0])
    }

    // ---- co-indexed section access (strided RMA, §IV-C) -----------------------

    /// `a(section)[image] = data`: strided put using the runtime's configured
    /// algorithm. `data` holds the section's elements packed column-major.
    pub fn put_section(&self, img: &Image<'_>, image: ImageId, sec: &Section, data: &[T]) {
        crate::strided::put_section(
            img.shmem(),
            img.config().strided_algorithm(),
            img.pe_of(image),
            self.ptr,
            &self.shape,
            sec,
            data,
        );
        img.statement_quiet();
    }

    /// `data = a(section)[image]`: strided get; returns packed elements.
    pub fn get_section(&self, img: &Image<'_>, image: ImageId, sec: &Section) -> Vec<T> {
        img.statement_quiet();
        crate::strided::get_section(
            img.shmem(),
            img.config().strided_algorithm(),
            img.pe_of(image),
            self.ptr,
            &self.shape,
            sec,
        )
    }
}

#[inline]
fn zero<T: Scalar>() -> T {
    T::load(&vec![0u8; T::BYTES])
}

impl<'m> Image<'m> {
    /// Allocate a coarray (`allocate(a(shape)[*])`) — collective, symmetric.
    /// Like Fortran's `allocate` of a coarray, this implies `sync all`: no
    /// image returns until every image's instance exists (and here, is
    /// zero-initialized), so remote access is immediately safe.
    pub fn coarray<T: Scalar>(&self, shape: &[usize]) -> Result<Coarray<T>, AllocError> {
        self.coarray_filled(shape, zero::<T>())
    }

    /// Allocate and fill with `value`. Collective; implies `sync all`.
    pub fn coarray_filled<T: Scalar>(
        &self,
        shape: &[usize],
        value: T,
    ) -> Result<Coarray<T>, AllocError> {
        assert!(!shape.is_empty(), "coarrays must have at least one dimension");
        let len: usize = shape.iter().product();
        let ptr = self.shmem().shmalloc::<T>(len)?;
        let c = Coarray { ptr, shape: shape.into() };
        self.shmem().write_local(ptr, &vec![value; len]);
        self.sync_all();
        Ok(c)
    }

    /// Deallocate a coarray (`deallocate`) — collective. Implies `sync all`
    /// (per Fortran semantics) so no image frees storage a peer may still
    /// be accessing.
    pub fn free_coarray<T: Scalar>(&self, c: Coarray<T>) -> Result<(), AllocError> {
        self.sync_all();
        self.shmem().shfree(c.ptr)
    }
}

/// Codimension mapping: CAF's `[d1, d2, ..., *]` cosubscript-to-image rule
/// (Fortran 2008 §2.4.7 semantics, 1-based cosubscripts).
#[derive(Debug, Clone)]
pub struct CoDims {
    /// Extents of all but the last codimension (the last is `*`).
    fixed: Vec<usize>,
}

impl CoDims {
    /// `[*]` — the common single-codimension case.
    pub fn star() -> CoDims {
        CoDims { fixed: Vec::new() }
    }

    /// `[d1, d2, ..., *]`.
    pub fn new(fixed: &[usize]) -> CoDims {
        assert!(fixed.iter().all(|&d| d > 0), "codimension extents must be positive");
        CoDims { fixed: fixed.to_vec() }
    }

    /// Number of cosubscripts (including the final `*`).
    pub fn corank(&self) -> usize {
        self.fixed.len() + 1
    }

    /// Map 1-based cosubscripts to a 1-based image index.
    pub fn image_of(&self, cosubs: &[usize]) -> ImageId {
        assert_eq!(cosubs.len(), self.corank(), "cosubscript rank mismatch");
        let mut image = 0;
        let mut stride = 1;
        for (i, (&c, &d)) in cosubs.iter().zip(self.fixed.iter()).enumerate() {
            assert!(c >= 1 && c <= d, "cosubscript {i} = {c} outside 1..={d}");
            image += (c - 1) * stride;
            stride *= d;
        }
        image += (cosubs[self.corank() - 1] - 1) * stride;
        image + 1
    }

    /// `lcobound`: lower cosubscript bound of codimension `d` (always 1 in
    /// this model, as with default Fortran cobounds).
    pub fn lcobound(&self, d: usize) -> usize {
        assert!(d < self.corank(), "codimension {d} out of range");
        1
    }

    /// `ucobound`: upper cosubscript bound of codimension `d` for a job of
    /// `num_images` images. The final codimension's bound follows from the
    /// image count (Fortran 2008 rules for `[*]`).
    pub fn ucobound(&self, d: usize, num_images: usize) -> usize {
        assert!(d < self.corank(), "codimension {d} out of range");
        if d < self.fixed.len() {
            self.fixed[d]
        } else {
            let inner: usize = self.fixed.iter().product();
            num_images.div_ceil(inner)
        }
    }

    /// Inverse mapping: the cosubscripts of a 1-based image
    /// (`this_image(coarray)` in Fortran).
    pub fn cosubscripts_of(&self, image: ImageId) -> Vec<usize> {
        assert!(image >= 1);
        let mut rem = image - 1;
        let mut out = Vec::with_capacity(self.corank());
        for &d in &self.fixed {
            out.push(rem % d + 1);
            rem /= d;
        }
        out.push(rem + 1);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Backend, CafConfig};
    use crate::runtime::run_caf;
    use crate::section::{DimRange, Section};
    use pgas_machine::{generic_smp, Platform};

    fn cfg() -> CafConfig {
        CafConfig::new(Backend::Shmem, Platform::GenericSmp)
    }

    fn mcfg(n: usize) -> pgas_machine::MachineConfig {
        generic_smp(n).with_heap_bytes(1 << 18)
    }

    #[test]
    fn figure1_program() {
        // The CAF side of the paper's Figure 1, faithfully:
        //   integer :: coarray_x(4)[*]
        //   integer, allocatable :: coarray_y(:)[:]
        //   coarray_x = my_image; coarray_y = 0
        //   coarray_y(2) = coarray_x(3)[4]
        //   coarray_x(1)[4] = coarray_y(2)
        //   sync all
        let out = run_caf(mcfg(4), cfg(), |img| {
            let x = img.coarray::<i32>(&[4]).unwrap();
            let y = img.coarray::<i32>(&[4]).unwrap(); // "allocatable"
            let me = img.this_image() as i32;
            x.write_local(img, &[me; 4]);
            y.write_local(img, &[0; 4]);
            img.sync_all();
            let v = x.get_elem(img, 4, &[2]);
            y.set_local_elem(img, &[1], v);
            x.put_elem(img, 4, &[0], y.local_elem(img, &[1]));
            img.sync_all();
            (y.local_elem(img, &[1]), x.read_local(img))
        });
        for (i, (y2, xs)) in out.results.iter().enumerate() {
            assert_eq!(*y2, 4);
            if i == 3 {
                assert_eq!(xs[0], 4, "image 4's x(1) was overwritten with 4");
            } else {
                assert_eq!(xs[0], (i + 1) as i32);
            }
        }
    }

    #[test]
    fn multidim_linear_index() {
        let out = run_caf(mcfg(1), cfg(), |img| {
            let a = img.coarray::<f64>(&[3, 4, 5]).unwrap();
            (a.linear(&[0, 0, 0]), a.linear(&[2, 0, 0]), a.linear(&[0, 1, 0]), a.linear(&[1, 2, 3]))
        });
        assert_eq!(out.results[0], (0, 2, 3, 1 + 2 * 3 + 3 * 12));
    }

    #[test]
    fn ring_exchange() {
        let out = run_caf(mcfg(4), cfg(), |img| {
            let a = img.coarray::<i64>(&[8]).unwrap();
            let me = img.this_image();
            let next = me % img.num_images() + 1;
            let data: Vec<i64> = (0..8).map(|k| (me * 100 + k) as i64).collect();
            img.sync_all();
            a.put_to(img, next, &data);
            img.sync_all();
            a.read_local(img)
        });
        for (i, r) in out.results.iter().enumerate() {
            let from = if i == 0 { 4 } else { i }; // image that wrote to me
            let expect: Vec<i64> = (0..8).map(|k| (from * 100 + k) as i64).collect();
            assert_eq!(r, &expect);
        }
    }

    #[test]
    fn section_roundtrip_via_runtime_algorithms() {
        use crate::config::StridedAlgorithm::*;
        for algo in [Naive, OneDim, TwoDim, BestOfAll, AmPacked] {
            let out = run_caf(mcfg(2), cfg().with_strided(algo), |img| {
                let a = img.coarray::<i32>(&[10, 8]).unwrap();
                img.sync_all();
                let sec =
                    Section::new(vec![DimRange::triplet(1, 9, 2), DimRange::triplet(0, 7, 3)]);
                if img.this_image() == 1 {
                    let data: Vec<i32> = (0..sec.total() as i32).collect();
                    a.put_section(img, 2, &sec, &data);
                }
                img.sync_all();
                if img.this_image() == 2 {
                    let local = a.read_local(img);
                    let fetched = a.get_section(img, 2, &sec);
                    Some((local, fetched))
                } else {
                    None
                }
            });
            let (local, fetched) = out.results[1].clone().unwrap();
            // The section selects rows {1,3,5,7,9} x cols {0,3,6}.
            let mut expect_packed = Vec::new();
            let mut k = 0;
            for col in [0usize, 3, 6] {
                for row in [1usize, 3, 5, 7, 9] {
                    assert_eq!(local[row + 10 * col], k, "{algo:?} elem ({row},{col})");
                    expect_packed.push(k);
                    k += 1;
                }
            }
            assert_eq!(fetched, expect_packed, "{algo:?} get_section");
            // Unselected elements stay zero.
            assert_eq!(local.iter().filter(|&&v| v != 0).count() + 1, 15, "{algo:?}");
        }
    }

    #[test]
    fn allocatable_coarray_free_and_reuse() {
        run_caf(mcfg(2), cfg(), |img| {
            let a = img.coarray::<f64>(&[1000]).unwrap();
            let before = img.shmem().symmetric_in_use();
            img.free_coarray(a).unwrap();
            assert!(img.shmem().symmetric_in_use() < before);
            let b = img.coarray_filled::<f64>(&[1000], 1.5).unwrap();
            assert_eq!(b.read_local(img)[999], 1.5);
        });
    }

    #[test]
    fn codims_star_is_identity() {
        let cd = CoDims::star();
        assert_eq!(cd.corank(), 1);
        for img in 1..=10 {
            assert_eq!(cd.image_of(&[img]), img);
            assert_eq!(cd.cosubscripts_of(img), vec![img]);
        }
    }

    #[test]
    fn codims_grid_mapping() {
        // [3, *] over 12 images: image = c1 + 3*(c2-1).
        let cd = CoDims::new(&[3]);
        assert_eq!(cd.corank(), 2);
        assert_eq!(cd.image_of(&[1, 1]), 1);
        assert_eq!(cd.image_of(&[3, 1]), 3);
        assert_eq!(cd.image_of(&[1, 2]), 4);
        assert_eq!(cd.image_of(&[2, 4]), 11);
        for img in 1..=12 {
            assert_eq!(cd.image_of(&cd.cosubscripts_of(img)), img);
        }
    }

    #[test]
    fn cobound_queries() {
        let cd = CoDims::new(&[3, 2]);
        assert_eq!(cd.lcobound(0), 1);
        assert_eq!(cd.lcobound(2), 1);
        assert_eq!(cd.ucobound(0, 24), 3);
        assert_eq!(cd.ucobound(1, 24), 2);
        assert_eq!(cd.ucobound(2, 24), 4, "24 images / (3*2) = 4");
        assert_eq!(cd.ucobound(2, 23), 4, "partial final coplane rounds up");
        assert_eq!(CoDims::star().ucobound(0, 7), 7);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn codims_bounds_checked() {
        CoDims::new(&[3]).image_of(&[4, 1]);
    }
}
