//! Fortran 2018 failed-image semantics over the machine's fault layer.
//!
//! A [`pgas_machine::FaultPlan`] can schedule PE deaths at virtual-time
//! instants; the machine marks a PE dead the first time its clock crosses
//! the deadline and detaches it from every barrier. This module gives CAF
//! programs the standard's view of that state:
//!
//! * `failed_images()` / `image_failed()` — the F2018 inquiry functions;
//! * `sync_all_stat` / `sync_images_stat` — image control with `stat=`,
//!   returning [`CafStat::FailedImage`] (STAT_FAILED_IMAGE) instead of
//!   hanging on a dead partner;
//! * `co_sum_stat` / `co_reduce_stat` / `co_broadcast_stat` — collectives
//!   that complete among the survivors (the plain `co_*` entry points also
//!   switch to the survivor path once any image has failed);
//! * stat-bearing co-indexed access lives on [`crate::coarray::Coarray`]
//!   (`put_to_stat` etc.), built on the conduit's fallible operations.
//!
//! **Execution model — cooperative death.** Image failure is a virtual-time
//! event: the *simulated* PE is dead, but the OS thread driving it keeps
//! running. A well-formed resilient program checks for failure at its image
//! control points (`sync_all_stat`, `image_failed(this_image())`, ...) and
//! returns early, exactly as a Fortran program polls `stat=`. Code that
//! ignores the stat keeps executing — the simulator does not tear threads
//! down mid-statement — but its communication targets observe
//! STAT_FAILED_IMAGE and its barrier arrivals are no-ops.
//!
//! **Determinism.** With a fixed plan and seed the failure instants, the
//! survivor sets, and every retry/backoff delay are functions of the
//! virtual clocks alone, so outcomes are reproducible bit-for-bit. The one
//! discipline required of test programs: enter post-failure collectives
//! only after an image-control statement has observed the failure, so all
//! survivors agree on the survivor set.

use crate::image::{Image, ImageId};
use openshmem::data::Scalar;
use openshmem::shmem::Cmp;
use pgas_conduit::ConduitError;
use std::sync::atomic::Ordering;

/// Fortran `stat=` conditions involving failed images (ISO_FORTRAN_ENV's
/// STAT_FAILED_IMAGE) and unrecoverable communication faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CafStat {
    /// STAT_FAILED_IMAGE: the named image (1-based) has failed.
    FailedImage { image: ImageId },
    /// Communication with `image` kept hitting transient faults until the
    /// retry budget ran out, without the image being marked failed — a
    /// sick-but-not-dead link.
    CommFailure { image: ImageId, attempts: u32 },
}

impl CafStat {
    /// The image the condition is about (1-based).
    pub fn image(&self) -> ImageId {
        match *self {
            CafStat::FailedImage { image } => image,
            CafStat::CommFailure { image, .. } => image,
        }
    }
}

impl std::fmt::Display for CafStat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            CafStat::FailedImage { image } => {
                write!(f, "STAT_FAILED_IMAGE: image {image} has failed")
            }
            CafStat::CommFailure { image, attempts } => {
                write!(
                    f,
                    "communication with image {image} still failing after {attempts} attempts"
                )
            }
        }
    }
}

impl std::error::Error for CafStat {}

impl From<ConduitError> for CafStat {
    fn from(e: ConduitError) -> CafStat {
        match e {
            ConduitError::TargetFailed { target, .. } => CafStat::FailedImage { image: target + 1 },
            ConduitError::RetriesExhausted { target, attempts, .. } => {
                CafStat::CommFailure { image: target + 1, attempts }
            }
            // End-to-end checksum verification failed on every attempt: the
            // link is delivering garbage, which Fortran has no finer stat
            // for than "communication with that image keeps failing".
            ConduitError::PayloadCorrupt { target, attempts, .. } => {
                CafStat::CommFailure { image: target + 1, attempts }
            }
        }
    }
}

impl<'m> Image<'m> {
    // ---- inquiry -------------------------------------------------------------

    /// `failed_images()`: every image marked dead so far, ascending, 1-based.
    pub fn failed_images(&self) -> Vec<ImageId> {
        self.machine().failed_pes().iter().map(|&pe| pe + 1).collect()
    }

    /// `image_status(image) == STAT_FAILED_IMAGE`: has `image` (1-based)
    /// failed?
    pub fn image_failed(&self, image: ImageId) -> bool {
        self.machine().pe_failed(self.pe_of(image))
    }

    /// Has *this* image failed? Resilient kernels poll this (or any `stat=`
    /// result) at image-control points and return early — the cooperative
    /// half of the failure model.
    pub fn this_image_failed(&self) -> bool {
        self.machine().pe_failed(self.this_image() - 1)
    }

    /// Deterministic liveness probe: has `image`'s *scheduled* failure
    /// deadline passed by this image's own virtual clock? Unlike
    /// [`Self::image_failed`] — which reads a flag another OS thread flips
    /// and therefore races real time — this is a pure function of the fault
    /// plan and the caller's clock, the same predicate the conduit's
    /// dead-target gates use. Resilient kernels that branch on it make
    /// bit-identical decisions under any worker count.
    pub fn image_dead_by_now(&self, image: ImageId) -> bool {
        self.machine().pe_dead_at(self.pe_of(image), self.shmem().ctx().pe().now())
    }

    /// STAT_FAILED_IMAGE for the lowest-numbered failed image, if any.
    pub(crate) fn first_failed_stat(&self) -> Option<CafStat> {
        self.machine().failed_pes().first().map(|&pe| CafStat::FailedImage { image: pe + 1 })
    }

    // ---- image control with stat= -------------------------------------------

    /// `sync all (stat=s)`: the barrier completes among the surviving
    /// images (the machine detaches dead PEs from the global barrier), then
    /// reports STAT_FAILED_IMAGE if any image has failed.
    pub fn sync_all_stat(&self) -> Result<(), CafStat> {
        if self.this_image_failed() {
            return Err(CafStat::FailedImage { image: self.this_image() });
        }
        self.sync_all();
        match self.first_failed_stat() {
            Some(s) => Err(s),
            None => Ok(()),
        }
    }

    /// `sync images(list, stat=s)`: pairwise synchronization that skips
    /// partners already dead and abandons the wait for a partner that dies
    /// before arriving, reporting STAT_FAILED_IMAGE for the first such
    /// image. Live handshakes in `list` still complete normally.
    pub fn sync_images_stat(&self, images: &[ImageId]) -> Result<(), CafStat> {
        let m = self.machine();
        if !m.faults_active() {
            self.sync_images(images);
            return Ok(());
        }
        let me0 = self.this_image() - 1;
        if m.pe_failed(me0) {
            return Err(CafStat::FailedImage { image: me0 + 1 });
        }
        let mut stat: Option<CafStat> = None;
        self.shmem().quiet();
        for &img in images {
            let pe = self.pe_of(img);
            if m.pe_failed(pe) {
                stat.get_or_insert(CafStat::FailedImage { image: img });
                continue;
            }
            if let Err(e) = self.shmem().try_add(self.sync_counters.at(me0), 1u64, pe) {
                stat.get_or_insert(e.into());
            }
        }
        self.shmem().quiet();
        let mut expected = self.sync_expected.borrow_mut();
        for &img in images {
            let pe = self.pe_of(img);
            let slot = self.sync_counters.at(pe);
            let target = expected[pe] + 1;
            // Block on arrival-or-death; the machine wakes all waiters when
            // a PE is marked dead, so the predicate re-evaluates promptly.
            let word = m.heap(me0).atomic64(slot.offset());
            m.wait_on(me0, || word.load(Ordering::Acquire) >= target || m.pe_failed(pe));
            if word.load(Ordering::Acquire) >= target {
                expected[pe] = target;
                // Re-issue through the ordinary path: charges the wait in
                // virtual time and gives the sanitizer its sync edge.
                self.shmem().wait_until(slot, Cmp::Ge, target);
            } else {
                // The partner died before arriving; this round's handshake
                // is abandoned (`expected` stays put — the image stays dead).
                stat.get_or_insert(CafStat::FailedImage { image: img });
            }
        }
        drop(expected);
        match stat {
            Some(s) => Err(s),
            None => Ok(()),
        }
    }

    // ---- collectives among survivors ----------------------------------------

    /// `co_reduce` with `stat=`: fault-free jobs take the ordinary
    /// reduction tree; once any image has failed, the survivors run the
    /// linear fallback and the call reports STAT_FAILED_IMAGE even though
    /// the reduction over the survivors' contributions completed.
    pub fn co_reduce_stat<T: Scalar>(
        &self,
        data: &mut [T],
        result_image: Option<ImageId>,
        op: impl Fn(T, T) -> T + Copy,
    ) -> Result<(), CafStat> {
        if !self.machine().any_pe_failed() {
            self.co_reduce(data, result_image, op);
            return Ok(());
        }
        self.co_reduce_survivors(data, result_image, op)
    }

    /// `co_sum` with `stat=`.
    pub fn co_sum_stat<T: Scalar + std::ops::Add<Output = T>>(
        &self,
        data: &mut [T],
        result_image: Option<ImageId>,
    ) -> Result<(), CafStat> {
        self.co_reduce_stat(data, result_image, |a, b| a + b)
    }

    /// `co_broadcast` with `stat=`.
    pub fn co_broadcast_stat<T: Scalar>(
        &self,
        data: &mut [T],
        source_image: ImageId,
    ) -> Result<(), CafStat> {
        if !self.machine().any_pe_failed() {
            self.co_broadcast(data, source_image);
            return Ok(());
        }
        self.co_broadcast_survivors(data, source_image)
    }

    /// Linear survivor-set reduction. The tree algorithms beneath the plain
    /// collectives assume every rank of an [`openshmem::ActiveSet`]
    /// participates, and active sets are strided triples that cannot name an
    /// arbitrary survivor subset — so after a failure the images gather on
    /// the lowest surviving PE through fresh symmetric scratch, with
    /// `sync all` separating the phases (dead images have left the global
    /// barrier, so the survivors rendezvous among themselves).
    pub(crate) fn co_reduce_survivors<T: Scalar>(
        &self,
        data: &mut [T],
        result_image: Option<ImageId>,
        op: impl Fn(T, T) -> T + Copy,
    ) -> Result<(), CafStat> {
        let m = self.machine();
        let me0 = self.this_image() - 1;
        if m.pe_failed(me0) {
            return Err(CafStat::FailedImage { image: me0 + 1 });
        }
        let n = self.num_images();
        let len = data.len();
        let survivors: Vec<usize> = (0..n).filter(|&p| !m.pe_failed(p)).collect();
        let root = survivors[0];
        let mut stat: Option<CafStat> = None;
        // One contribution slot per image on every PE; slot 0 doubles as the
        // result slot (the root contributes straight from `data`).
        let slots =
            self.shmem().shmalloc::<T>((n * len).max(1)).expect("co_* scratch allocation failed");
        self.sync_all();
        if len > 0 && me0 != root {
            if let Err(e) = self.shmem().try_put(slots.slice(me0 * len, len), data, root) {
                stat.get_or_insert(e.into());
            }
            self.shmem().quiet();
        }
        self.sync_all(); // all surviving contributions have landed
        if me0 == root && len > 0 {
            let mut acc = data.to_vec();
            let mut part = data.to_vec();
            for &p in &survivors[1..] {
                self.shmem().read_local(slots.slice(p * len, len), &mut part);
                for (a, &b) in acc.iter_mut().zip(part.iter()) {
                    *a = op(*a, b);
                }
            }
            for &p in &survivors[1..] {
                if self.wants_result(p, result_image) {
                    if let Err(e) = self.shmem().try_put(slots.slice(0, len), &acc, p) {
                        stat.get_or_insert(e.into());
                    }
                }
            }
            self.shmem().quiet();
            if self.wants_result(root, result_image) {
                data.copy_from_slice(&acc);
            }
        }
        self.sync_all(); // result delivered
        if len > 0 && me0 != root && self.wants_result(me0, result_image) {
            self.shmem().read_local(slots.slice(0, len), data);
        }
        self.sync_all(); // no image recycles the scratch before all have read
        self.shmem().shfree(slots).expect("scratch free");
        match stat.or_else(|| self.first_failed_stat()) {
            Some(s) => Err(s),
            None => Ok(()),
        }
    }

    /// Linear survivor-set broadcast; see [`Self::co_reduce_survivors`].
    pub(crate) fn co_broadcast_survivors<T: Scalar>(
        &self,
        data: &mut [T],
        source_image: ImageId,
    ) -> Result<(), CafStat> {
        let m = self.machine();
        let me0 = self.this_image() - 1;
        if m.pe_failed(me0) {
            return Err(CafStat::FailedImage { image: me0 + 1 });
        }
        let root = self.pe_of(source_image);
        if m.pe_failed(root) {
            // The source died: nothing can be replicated. Every survivor
            // observes the same dead source (entry discipline) and returns
            // without touching the scratch phases.
            return Err(CafStat::FailedImage { image: source_image });
        }
        let n = self.num_images();
        let len = data.len();
        let mut stat: Option<CafStat> = None;
        let slots = self.shmem().shmalloc::<T>(len.max(1)).expect("co_* scratch allocation failed");
        self.sync_all();
        if len > 0 && me0 == root {
            for p in (0..n).filter(|&p| p != root && !m.pe_failed(p)) {
                if let Err(e) = self.shmem().try_put(slots, data, p) {
                    stat.get_or_insert(e.into());
                }
            }
            self.shmem().quiet();
        }
        self.sync_all(); // payload delivered
        if len > 0 && me0 != root {
            self.shmem().read_local(slots, data);
        }
        self.sync_all();
        self.shmem().shfree(slots).expect("scratch free");
        match stat.or_else(|| self.first_failed_stat()) {
            Some(s) => Err(s),
            None => Ok(()),
        }
    }

    #[inline]
    fn wants_result(&self, pe: usize, result_image: Option<ImageId>) -> bool {
        match result_image {
            None => true,
            Some(r) => self.pe_of(r) == pe,
        }
    }
}
