//! Strided plan selection behind a first-class API (paper §VII).
//!
//! PR 1 grew `adaptive_plan` — a free function whose per-call/per-byte
//! coefficients are a *heuristic mirror* of the simulator's cost model. That
//! mirror drifts whenever `conduit/cost.rs` or a platform preset changes.
//! This module redesigns plan selection around a [`StridedPlanner`] trait
//! with two implementations:
//!
//! * [`HeuristicPlanner`] — the PR 1 logic, preserved byte-for-byte. Fast,
//!   conduit-aware, but hard-coded.
//! * [`TunedPlanner`] — calibrates its coefficients by running micro-probe
//!   transfers through the real [`CostModel`] (via the pure `*_estimate`
//!   entry points, which reserve no NIC time) and scores candidate plans
//!   with the fitted [`Coefficients`]. Fits are memoised process-wide per
//!   (platform, profile) and can be persisted as JSON (`PGAS_PLANNER_CACHE`)
//!   so repeated runs skip calibration entirely.
//!
//! Every planner decision (chosen plan, predicted cost, all candidate costs)
//! is recorded in the machine's [`Stats`](pgas_machine::stats::Stats) by the
//! transfer layer, so EXPERIMENTS figures can contrast predictions against
//! measured virtual time and show mispredictions.

use crate::section::Section;
use crate::strided::Plan;
use openshmem::Shmem;
use pgas_conduit::{AmoSupport, CostModel};
use pgas_machine::config::MachineConfig;
use pgas_machine::json::{self, Json};
use pgas_machine::MetricsSnapshot;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Cache-line size assumed by the locality term of the heuristic planner.
const CACHE_LINE: f64 = 64.0;

/// Which way a section transfer moves data. Plan costs are not symmetric:
/// a get pays the request round trip (`get_issue + control message + 2
/// latencies`) on *every* call, so call-heavy plans hurt roughly twice as
/// much as on the put side, and no conduit in the matrix has a get-side
/// rendezvous cliff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransferDir {
    #[default]
    Put,
    Get,
}

/// A planner's verdict on one section transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanChoice {
    /// The plan to execute.
    pub plan: Plan,
    /// The planner's predicted cost of `plan`, ns.
    pub predicted_ns: f64,
    /// Every candidate the planner costed, in scoring order.
    pub candidates: Vec<(Plan, f64)>,
}

/// Strategy interface for choosing how to move a strided section.
///
/// Implementations must be pure with respect to the simulation: scoring a
/// plan may read the machine and profile but must not advance clocks or
/// reserve NIC time.
pub trait StridedPlanner {
    /// Short name recorded with each decision ("heuristic", "tuned").
    fn name(&self) -> &'static str;

    /// Choose a plan for transferring `sec` of an array of `shape` (elements
    /// of `elem` bytes) between the calling PE and `target_pe`, in direction
    /// `dir` (a put writes the section, a get reads it back).
    #[allow(clippy::too_many_arguments)]
    fn plan(
        &self,
        shmem: &Shmem<'_>,
        target_pe: usize,
        sec: &Section,
        shape: &[usize],
        elem: usize,
        dir: TransferDir,
    ) -> PlanChoice;
}

fn pick_best(candidates: Vec<(Plan, f64)>) -> PlanChoice {
    // First-listed wins ties: candidates are scored in the same order the
    // PR 1 heuristic tried them, and replacement is strict `<`.
    let mut best = candidates[0];
    for &c in &candidates[1..] {
        if c.1 < best.1 {
            best = c;
        }
    }
    PlanChoice { plan: best.0, predicted_ns: best.1, candidates }
}

/// The PR 1 `adaptive_plan` cost heuristic, unchanged: per-call overhead,
/// payload bandwidth, the conduit's `iput` capability, and target-side
/// locality (elements whose stride spans many cache lines are charged a
/// penalty). Ignores `target_pe` — the heuristic prices every target as a
/// remote inter-node peer — and ignores `dir`, pricing gets with the same
/// put coefficients; both are exactly the drift the tuned planner exists
/// to fix.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeuristicPlanner;

impl StridedPlanner for HeuristicPlanner {
    fn name(&self) -> &'static str {
        "heuristic"
    }

    fn plan(
        &self,
        shmem: &Shmem<'_>,
        _target_pe: usize,
        sec: &Section,
        shape: &[usize],
        elem: usize,
        _dir: TransferDir,
    ) -> PlanChoice {
        use pgas_conduit::StridedSupport;
        let profile = shmem.profile();
        let wire = &shmem.machine().config().wire;
        let per_call = profile.put_issue_ns + wire.nic_msg_overhead_ns + profile.msg_occupancy_ns;
        let per_byte = 1.0 / (wire.inter.bytes_per_ns * profile.bandwidth_efficiency);
        let total = sec.total() as f64;
        let total_bytes = total * elem as f64;
        let payload = total_bytes * per_byte;

        let locality_penalty = |stride_elems: usize| -> f64 {
            let stride_bytes = (stride_elems * elem) as f64;
            if stride_bytes <= CACHE_LINE {
                0.0
            } else {
                // Each element lands on its own cache line; deeper strides
                // cost progressively more of the target's memory system.
                8.0 * (stride_bytes / CACHE_LINE).log2()
            }
        };

        // Plan A: contiguous runs.
        let n_runs = crate::strided::plan_call_count(Plan::Runs, sec) as f64;
        let mut candidates = vec![(Plan::Runs, n_runs * per_call + payload)];

        // Plan B: one 1-D strided call per pencil along each candidate
        // dimension. Costed on *every* profile so the candidate set covers
        // every non-adaptive arm of `plan_of` (Naive/OneDim/TwoDim/
        // BestOfAll): on native-iput conduits a pencil is one NIC
        // descriptor; on emulated-iput conduits (MVAPICH2-X) the library
        // loops, issuing one putmem per element — the modeled Cray-compiler
        // behaviour — so every element pays the full per-call overhead and
        // the pencil structure buys nothing. The strict `<` in `pick_best`
        // then guarantees the planner never prefers such a loop over `Runs`
        // (which issues at most as many calls), i.e. the planner is never
        // worse than Naive or TwoDim.
        for d in 0..sec.rank() {
            let pencils = (sec.total() / sec.dims()[d].count) as f64;
            let cost = match profile.strided {
                StridedSupport::Native { per_elem_ns } => {
                    pencils * per_call
                        + payload
                        + total * (per_elem_ns + locality_penalty(sec.array_stride(shape, d)))
                }
                StridedSupport::LoopContiguous => total * per_call + payload,
            };
            candidates.push((Plan::BaseDim(d), cost));
        }

        // Plan C: AM packing — only where an active-message layer exists
        // (GASNet); SHMEM conduits have no handler to unpack at the target.
        if matches!(profile.amo, AmoSupport::AmEmulated { .. }) {
            let cost = per_call
                + payload
                + profile.am_handler_ns
                + total * 2.0 * shmem.machine().config().compute.local_op_ns;
            candidates.push((Plan::Packed, cost));
        }
        pick_best(candidates)
    }
}

/// Fitted cost coefficients for one (source node, target node) relationship
/// — one fit for same-node peers, one for remote peers.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFit {
    /// Fixed cost of one contiguous put, ns.
    pub put_call_ns: f64,
    /// Marginal cost per payload byte, ns.
    pub put_byte_ns: f64,
    /// Extra latency until remote completion (what `quiet` waits for beyond
    /// the last local completion), ns.
    pub tail_ns: f64,
    /// Rendezvous cliff, if the link has one: payloads strictly larger than
    /// `.0` bytes pay an extra `.1` ns handshake.
    pub rendezvous: Option<(usize, f64)>,
    /// Native 1-D `iput` cost as (per-call, per-byte, per-element) ns;
    /// `None` when the conduit loops over contiguous puts in software.
    pub iput: Option<(f64, f64, f64)>,
    /// AM-packed unpack cost as (per-message handler, per-element) ns;
    /// `None` where no active-message layer exists.
    pub am: Option<(f64, f64)>,
    /// Fixed cost of one blocking get, ns. Carries the request round trip
    /// (issue + control message + two wire latencies), so it is much larger
    /// than `put_call_ns` on every inter-node link — the reason a
    /// direction-blind planner underprices call-heavy get plans.
    pub get_call_ns: f64,
    /// Marginal cost per fetched byte, ns. No conduit in the matrix has a
    /// get-side rendezvous cliff, so the fit is a clean line.
    pub get_byte_ns: f64,
    /// Native 1-D `iget` cost as (per-call, per-byte, per-element) ns;
    /// `None` when the conduit loops over contiguous gets in software.
    pub iget: Option<(f64, f64, f64)>,
    /// AM-packed gather cost as (per-message handler, per-element) ns.
    pub am_get: Option<(f64, f64)>,
}

/// Residual above which a probe is considered to have crossed the
/// rendezvous cliff. Rounding noise is < 2 ns; a real rendezvous handshake
/// is at least two wire latencies (thousands of ns on every preset).
const RDV_TOLERANCE_NS: f64 = 16.0;

impl LinkFit {
    /// Fit one link by probing the cost model's pure estimators between
    /// `src` and `dst`.
    fn probe(cost: &CostModel<'_>, src: usize, dst: usize) -> LinkFit {
        let local = |bytes: usize| cost.put_estimate(src, dst, bytes).local_complete as f64;

        // Bandwidth slope from two huge probes: both sit above any real
        // rendezvous threshold (or below a usize::MAX one), so the constant
        // handshake term cancels.
        let big = 64 * 1024 * 1024;
        let slope = (local(2 * big) - local(big)) / big as f64;
        // An 8-byte probe sits below every threshold: intercept is clean.
        let small = cost.put_estimate(src, dst, 8);
        let put_call_ns = small.local_complete as f64 - 8.0 * slope;
        let tail_ns = (small.remote_complete - small.local_complete) as f64;

        // Rendezvous cliff: scan a size ladder for the first probe whose
        // residual over the linear fit exceeds tolerance, then bisect to
        // recover the exact strict-`>` threshold.
        let residual = |bytes: usize| local(bytes) - (put_call_ns + bytes as f64 * slope);
        let mut rendezvous = None;
        let mut prev = 8usize;
        for rung in [64, 512, 4 * 1024, 32 * 1024, 256 * 1024, 2 * 1024 * 1024] {
            if residual(rung) > RDV_TOLERANCE_NS {
                let (mut lo, mut hi) = (prev, rung);
                while hi - lo > 1 {
                    let mid = lo + (hi - lo) / 2;
                    if residual(mid) > RDV_TOLERANCE_NS {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                rendezvous = Some((lo, residual(hi)));
                break;
            }
            prev = rung;
        }

        // Native iput: three probes solve the (per-call, per-byte,
        // per-element) model exactly.
        let iput = cost.strided_put_estimate(src, dst, 8, 8).map(|c1| {
            let c1 = c1.local_complete as f64;
            let c2 = cost.strided_put_estimate(src, dst, 256, 8).unwrap().local_complete as f64;
            let c3 = cost.strided_put_estimate(src, dst, 8, 64).unwrap().local_complete as f64;
            // c(n, e) = call + n*e*byte + n*elem:
            //   c1 = call +   64*byte +   8*elem
            //   c2 = call + 2048*byte + 256*elem
            //   c3 = call +  512*byte +   8*elem
            let byte = (c3 - c1) / 448.0;
            let elem = ((c2 - c1) - 1984.0 * byte) / 248.0;
            let call = c1 - 64.0 * byte - 8.0 * elem;
            (call, byte, elem)
        });

        // AM unpack cost: only meaningful where the planner may choose
        // Packed, i.e. conduits with an active-message layer.
        let am = matches!(cost.profile().amo, AmoSupport::AmEmulated { .. }).then(|| {
            let unpack = |n: usize| {
                (cost.am_packed_put_estimate(src, dst, n, 8).remote_complete
                    - cost.put_estimate(src, dst, n * 8).remote_complete) as f64
            };
            let elem = (unpack(256) - unpack(8)) / 248.0;
            let handler = unpack(8) - 8.0 * elem;
            (handler, elem)
        });

        // Get direction: same probe discipline against `get_estimate_ns`.
        // No rendezvous scan — the get path of every profile is linear in
        // the payload (the request/reply handshake is part of every call).
        let get = |bytes: usize| cost.get_estimate_ns(src, dst, bytes) as f64;
        let get_byte_ns = (get(2 * big) - get(big)) / big as f64;
        let get_call_ns = get(8) - 8.0 * get_byte_ns;

        let iget = cost.strided_get_estimate_ns(src, dst, 8, 8).map(|c1| {
            let c1 = c1 as f64;
            let c2 = cost.strided_get_estimate_ns(src, dst, 256, 8).unwrap() as f64;
            let c3 = cost.strided_get_estimate_ns(src, dst, 8, 64).unwrap() as f64;
            // Same three-probe solve as iput: c(n, e) = call + n*e*byte + n*elem.
            let byte = (c3 - c1) / 448.0;
            let elem = ((c2 - c1) - 1984.0 * byte) / 248.0;
            let call = c1 - 64.0 * byte - 8.0 * elem;
            (call, byte, elem)
        });

        let am_get = matches!(cost.profile().amo, AmoSupport::AmEmulated { .. }).then(|| {
            let pack = |n: usize| {
                (cost.am_packed_get_estimate_ns(src, dst, n, 8)
                    - cost.get_estimate_ns(src, dst, n * 8)) as f64
            };
            let elem = (pack(256) - pack(8)) / 248.0;
            let handler = pack(8) - 8.0 * elem;
            (handler, elem)
        });

        LinkFit {
            put_call_ns,
            put_byte_ns: slope,
            tail_ns,
            rendezvous,
            iput,
            am,
            get_call_ns,
            get_byte_ns,
            iget,
            am_get,
        }
    }

    /// Predicted local-completion cost of one contiguous put of `bytes`.
    fn put_ns(&self, bytes: usize) -> f64 {
        let rdv = match self.rendezvous {
            Some((threshold, extra)) if bytes > threshold => extra,
            _ => 0.0,
        };
        self.put_call_ns + bytes as f64 * self.put_byte_ns + rdv
    }

    /// Predicted completion cost of one blocking get of `bytes`.
    fn get_ns(&self, bytes: usize) -> f64 {
        self.get_call_ns + bytes as f64 * self.get_byte_ns
    }

    fn to_json(&self) -> Json {
        let pair = |a: f64, b: f64| Json::Array(vec![Json::float(a), Json::float(b)]);
        Json::Object(vec![
            ("put_call_ns".into(), Json::float(self.put_call_ns)),
            ("put_byte_ns".into(), Json::float(self.put_byte_ns)),
            ("tail_ns".into(), Json::float(self.tail_ns)),
            (
                "rendezvous".into(),
                match self.rendezvous {
                    Some((t, e)) => Json::Array(vec![Json::uint(t), Json::float(e)]),
                    None => Json::Null,
                },
            ),
            (
                "iput".into(),
                match self.iput {
                    Some((c, b, e)) => {
                        Json::Array(vec![Json::float(c), Json::float(b), Json::float(e)])
                    }
                    None => Json::Null,
                },
            ),
            (
                "am".into(),
                match self.am {
                    Some((h, e)) => pair(h, e),
                    None => Json::Null,
                },
            ),
            ("get_call_ns".into(), Json::float(self.get_call_ns)),
            ("get_byte_ns".into(), Json::float(self.get_byte_ns)),
            (
                "iget".into(),
                match self.iget {
                    Some((c, b, e)) => {
                        Json::Array(vec![Json::float(c), Json::float(b), Json::float(e)])
                    }
                    None => Json::Null,
                },
            ),
            (
                "am_get".into(),
                match self.am_get {
                    Some((h, e)) => pair(h, e),
                    None => Json::Null,
                },
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<LinkFit, String> {
        let f = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("link fit: missing float field `{key}`"))
        };
        let arr = |key: &str, n: usize| -> Result<Option<Vec<f64>>, String> {
            match v.get(key) {
                None => Err(format!("link fit: missing field `{key}`")),
                Some(Json::Null) => Ok(None),
                Some(other) => {
                    let items = other
                        .as_array()
                        .ok_or_else(|| format!("link fit: `{key}` is not an array"))?;
                    if items.len() != n {
                        return Err(format!("link fit: `{key}` wants {n} entries"));
                    }
                    items
                        .iter()
                        .map(|x| {
                            x.as_f64().ok_or_else(|| format!("link fit: `{key}` entry not numeric"))
                        })
                        .collect::<Result<Vec<_>, _>>()
                        .map(Some)
                }
            }
        };
        // Strict fields on purpose: a cache file from before the get-side
        // calibration existed fails to parse, `Coefficients::load` errors,
        // and the caller falls through to a fresh (full) calibration.
        Ok(LinkFit {
            put_call_ns: f("put_call_ns")?,
            put_byte_ns: f("put_byte_ns")?,
            tail_ns: f("tail_ns")?,
            rendezvous: arr("rendezvous", 2)?.map(|p| (p[0] as usize, p[1])),
            iput: arr("iput", 3)?.map(|p| (p[0], p[1], p[2])),
            am: arr("am", 2)?.map(|p| (p[0], p[1])),
            get_call_ns: f("get_call_ns")?,
            get_byte_ns: f("get_byte_ns")?,
            iget: arr("iget", 3)?.map(|p| (p[0], p[1], p[2])),
            am_get: arr("am_get", 2)?.map(|p| (p[0], p[1])),
        })
    }
}

/// A full calibration: link fits for same-node and (where the machine has
/// more than one node) remote peers, tagged with the (platform, profile) key
/// they were measured on.
#[derive(Debug, Clone, PartialEq)]
pub struct Coefficients {
    /// Cache key: `{platform}-{nodes}x{cores}-{profile}`.
    pub key: String,
    /// Fit for same-node targets.
    pub intra: LinkFit,
    /// Fit for remote targets; `None` on single-node machines.
    pub inter: Option<LinkFit>,
}

impl Coefficients {
    /// The memo/disk key for a machine + profile pairing.
    pub fn cache_key(cost: &CostModel<'_>) -> String {
        cache_key_for(cost.machine().config(), cost.profile().label())
    }

    /// Calibrate against the live cost model by micro-probing its pure
    /// estimators. Costs virtual-time nothing: estimators reserve no NIC
    /// time and advance no clocks.
    pub fn calibrate(cost: &CostModel<'_>) -> Coefficients {
        let cfg = cost.machine().config();
        let intra = LinkFit::probe(cost, 0, 0);
        let inter = (cfg.nodes > 1).then(|| LinkFit::probe(cost, 0, cfg.cores_per_node));
        Coefficients { key: Self::cache_key(cost), intra, inter }
    }

    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("key".into(), Json::str(self.key.clone())),
            ("intra".into(), self.intra.to_json()),
            (
                "inter".into(),
                match &self.inter {
                    Some(fit) => fit.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }

    pub fn from_json(v: &Json) -> Result<Coefficients, String> {
        let key = v
            .get("key")
            .and_then(Json::as_str)
            .ok_or_else(|| "coefficients: missing `key`".to_string())?
            .to_string();
        let intra = LinkFit::from_json(
            v.get("intra").ok_or_else(|| "coefficients: missing `intra`".to_string())?,
        )?;
        let inter = match v.get("inter") {
            None => return Err("coefficients: missing `inter`".into()),
            Some(Json::Null) => None,
            Some(other) => Some(LinkFit::from_json(other)?),
        };
        Ok(Coefficients { key, intra, inter })
    }

    /// Persist as pretty JSON.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().pretty() + "\n")
    }

    /// Reload a persisted calibration.
    pub fn load(path: &std::path::Path) -> Result<Coefficients, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Coefficients::from_json(&json::parse(&text)?)
    }
}

/// Build the memo/disk cache key without a live machine — what the post-run
/// recalibration check uses, having only the launch config and the profile
/// label in hand.
pub fn cache_key_for(cfg: &MachineConfig, profile_label: &str) -> String {
    format!("{}-{}x{}-{}", cfg.name, cfg.nodes, cfg.cores_per_node, profile_label)
}

fn memo() -> &'static Mutex<HashMap<String, Coefficients>> {
    static MEMO: OnceLock<Mutex<HashMap<String, Coefficients>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Healthy band for the mean `plan_cost_ratio_pct` misprediction ratio
/// (measured issue-side time over predicted cost, 100 = perfect). The low
/// side allows the predictions' deliberate conservatism (tail latency is
/// predicted but `quiet` often overlaps it); the high side allows NIC
/// queueing the pure estimators cannot see.
pub const RATIO_HEALTHY_MIN_PCT: u64 = 80;
pub const RATIO_HEALTHY_MAX_PCT: u64 = 125;

/// Post-run recalibration check: aggregate the run's `plan_cost_ratio_pct`
/// misprediction histogram and, when the mean falls outside the healthy
/// band, drop the cached [`Coefficients`] under `key` from both the
/// process-wide memo and the `PGAS_PLANNER_CACHE` directory — so the *next*
/// run re-probes the cost model instead of keep planning with a calibration
/// the measurements just contradicted. Returns the skewed mean when the
/// calibration was flagged stale, `None` when it is healthy (or the run
/// recorded no ratios).
pub fn invalidate_if_skewed(key: &str, metrics: &MetricsSnapshot) -> Option<u64> {
    let (mut count, mut sum) = (0u64, 0u64);
    for h in metrics.histograms_named("plan_cost_ratio_pct") {
        count += h.count;
        sum += h.sum;
    }
    if count == 0 {
        return None;
    }
    let mean = (sum as f64 / count as f64).round() as u64;
    if (RATIO_HEALTHY_MIN_PCT..=RATIO_HEALTHY_MAX_PCT).contains(&mean) {
        return None;
    }
    memo().lock().unwrap().remove(key);
    if let Ok(dir) = std::env::var("PGAS_PLANNER_CACHE") {
        let _ = std::fs::remove_file(cache_file(&dir, key));
    }
    Some(mean)
}

/// File name for one calibration inside the `PGAS_PLANNER_CACHE` directory.
fn cache_file(dir: &str, key: &str) -> std::path::PathBuf {
    let safe: String =
        key.chars().map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '_' }).collect();
    std::path::Path::new(dir).join(format!("{safe}.json"))
}

/// Plan scorer backed by measured [`Coefficients`].
#[derive(Debug, Clone, PartialEq)]
pub struct TunedPlanner {
    co: Coefficients,
}

impl TunedPlanner {
    /// Build from an existing calibration (e.g. one reloaded from disk).
    pub fn from_coefficients(co: Coefficients) -> TunedPlanner {
        TunedPlanner { co }
    }

    /// The calibration this planner scores with.
    pub fn coefficients(&self) -> &Coefficients {
        &self.co
    }

    /// The planner for `shmem`'s machine + profile. Resolution order:
    /// process-wide memo, then the `PGAS_PLANNER_CACHE` directory (if set),
    /// then a fresh calibration (stored back in both). `Image::new` warms
    /// this when the configured algorithm is `Tuned`, so per-transfer calls
    /// are a map lookup.
    pub fn for_shmem(shmem: &Shmem<'_>) -> TunedPlanner {
        let cost = CostModel::new(shmem.machine(), *shmem.profile());
        let key = Coefficients::cache_key(&cost);
        let mut memo = memo().lock().unwrap();
        if let Some(co) = memo.get(&key) {
            return TunedPlanner { co: co.clone() };
        }
        let cache_dir = std::env::var("PGAS_PLANNER_CACHE").ok();
        if let Some(dir) = &cache_dir {
            if let Ok(co) = Coefficients::load(&cache_file(dir, &key)) {
                if co.key == key {
                    memo.insert(key, co.clone());
                    return TunedPlanner { co };
                }
            }
        }
        let co = Coefficients::calibrate(&cost);
        if let Some(dir) = &cache_dir {
            // Best-effort persistence; an unwritable cache dir only costs
            // recalibration next process.
            let _ = std::fs::create_dir_all(dir);
            let _ = co.save(&cache_file(dir, &key));
        }
        memo.insert(key, co.clone());
        TunedPlanner { co }
    }
}

impl StridedPlanner for TunedPlanner {
    fn name(&self) -> &'static str {
        "tuned"
    }

    fn plan(
        &self,
        shmem: &Shmem<'_>,
        target_pe: usize,
        sec: &Section,
        shape: &[usize],
        elem: usize,
        dir: TransferDir,
    ) -> PlanChoice {
        // Unlike the heuristic, price the actual link to the target.
        let fit = if shmem.machine().same_node(shmem.my_pe(), target_pe) {
            &self.co.intra
        } else {
            self.co.inter.as_ref().unwrap_or(&self.co.intra)
        };
        let _ = shape; // locality is in the measured iput per-element term
        let total = sec.total();

        // Direction-aware pricing: one contiguous call, the strided-native
        // fit, the AM fit, and the completion tail (gets are blocking — the
        // caller has the data at local completion, there is no pending tail
        // for `quiet` to collect).
        let call_ns: &dyn Fn(usize) -> f64 = match dir {
            TransferDir::Put => &|bytes| fit.put_ns(bytes),
            TransferDir::Get => &|bytes| fit.get_ns(bytes),
        };
        let (strided_fit, am_fit, tail_ns) = match dir {
            TransferDir::Put => (fit.iput, fit.am, fit.tail_ns),
            TransferDir::Get => (fit.iget, fit.am_get, 0.0),
        };

        // Plan A: contiguous runs.
        let contiguous = sec.dims()[0].step == 1;
        let (n_runs, run_bytes) = if contiguous {
            (total / sec.dims()[0].count, sec.dims()[0].count * elem)
        } else {
            (total, elem)
        };
        let mut candidates = vec![(Plan::Runs, n_runs as f64 * call_ns(run_bytes) + tail_ns)];

        // Plan B: pencils along each dimension. Same candidate order and
        // strict-`<` replacement as the heuristic, so exact-cost ties (e.g.
        // element-wise loops on emulated-iput conduits, which cost the same
        // floats as non-contiguous Runs) resolve identically.
        for d in 0..sec.rank() {
            let count = sec.dims()[d].count;
            let pencils = (total / count) as f64;
            let cost = match strided_fit {
                Some((call, byte, elem_ns)) => {
                    pencils * (call + (count * elem) as f64 * byte + count as f64 * elem_ns)
                        + tail_ns
                }
                None => total as f64 * call_ns(elem) + tail_ns,
            };
            candidates.push((Plan::BaseDim(d), cost));
        }

        // Plan C: AM packing, where a handler exists.
        if let Some((handler, elem_ns)) = am_fit {
            let cost = call_ns(total * elem) + tail_ns + handler + total as f64 * elem_ns;
            candidates.push((Plan::Packed, cost));
        }
        pick_best(candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_conduit::ConduitProfile;
    use pgas_machine::{cray_xc30, stampede, Machine, Platform};

    #[test]
    fn fit_reproduces_cost_model_put_times() {
        let m = Machine::new(stampede(2, 16));
        let cost = CostModel::new(&m, ConduitProfile::mvapich_shmem());
        let co = Coefficients::calibrate(&cost);
        let inter = co.inter.as_ref().expect("two nodes => inter fit");
        for bytes in [8usize, 256, 4096, 60_000, 70_000, 1 << 20] {
            let real = cost.put_estimate(0, 16, bytes).local_complete as f64;
            let fitted = inter.put_ns(bytes);
            assert!((real - fitted).abs() <= 2.0, "{bytes} B: model {real} vs fit {fitted}");
        }
        for bytes in [8usize, 4096, 1 << 20] {
            let real = cost.put_estimate(0, 1, bytes).local_complete as f64;
            let fitted = co.intra.put_ns(bytes);
            assert!((real - fitted).abs() <= 2.0, "intra {bytes} B: model {real} vs fit {fitted}");
        }
    }

    #[test]
    fn fit_reproduces_cost_model_get_times() {
        let m = Machine::new(stampede(2, 16));
        let cost = CostModel::new(&m, ConduitProfile::mvapich_shmem());
        let co = Coefficients::calibrate(&cost);
        let inter = co.inter.as_ref().expect("two nodes => inter fit");
        for bytes in [8usize, 256, 4096, 60_000, 1 << 20] {
            let real = cost.get_estimate_ns(0, 16, bytes) as f64;
            let fitted = inter.get_ns(bytes);
            assert!((real - fitted).abs() <= 2.0, "{bytes} B: model {real} vs fit {fitted}");
        }
        for bytes in [8usize, 4096, 1 << 20] {
            let real = cost.get_estimate_ns(0, 1, bytes) as f64;
            let fitted = co.intra.get_ns(bytes);
            assert!((real - fitted).abs() <= 2.0, "intra {bytes} B: model {real} vs fit {fitted}");
        }
        // The get call constant must carry the request round trip: on an
        // inter-node link it dwarfs the put-side call constant.
        assert!(
            inter.get_call_ns > inter.put_call_ns,
            "get {} <= put {}",
            inter.get_call_ns,
            inter.put_call_ns
        );
    }

    #[test]
    fn iget_fit_reproduces_strided_get_estimates() {
        let m = Machine::new(cray_xc30(2, 16));
        let cost = CostModel::new(&m, ConduitProfile::cray_shmem(Platform::CrayXc30));
        let co = Coefficients::calibrate(&cost);
        let (call, byte, elem) = co.inter.as_ref().unwrap().iget.unwrap();
        for (n, e) in [(16usize, 4usize), (100, 8), (500, 16)] {
            let real = cost.strided_get_estimate_ns(0, 16, n, e).unwrap() as f64;
            let fitted = call + (n * e) as f64 * byte + n as f64 * elem;
            assert!((real - fitted).abs() <= 2.0, "iget n={n} e={e}: {real} vs {fitted}");
        }
        // Same capability surface as the put side: native iget on cray,
        // AM gather only where an AM layer exists.
        assert!(co.inter.as_ref().unwrap().am_get.is_none());
        let m = Machine::new(stampede(2, 16));
        let gasnet = Coefficients::calibrate(&CostModel::new(
            &m,
            ConduitProfile::gasnet(Platform::Stampede),
        ));
        assert!(gasnet.inter.as_ref().unwrap().iget.is_none(), "gasnet loops iget");
        let (handler, elem) = gasnet.inter.unwrap().am_get.expect("gasnet has AM gather");
        assert!(handler > 0.0 && elem > 0.0);
    }

    #[test]
    fn fit_recovers_exact_rendezvous_thresholds() {
        // mvapich: 64 KiB cliff.
        let m = Machine::new(stampede(2, 16));
        let cost = CostModel::new(&m, ConduitProfile::mvapich_shmem());
        let co = Coefficients::calibrate(&cost);
        let (threshold, extra) = co.inter.unwrap().rendezvous.expect("mvapich has a cliff");
        assert_eq!(threshold, 64 * 1024);
        assert!(extra > 1000.0, "handshake is ~2 round trips, got {extra}");
        // mpi3: 8 KiB cliff.
        let m = Machine::new(stampede(2, 16));
        let cost = CostModel::new(&m, ConduitProfile::mpi3(Platform::Stampede));
        let co = Coefficients::calibrate(&cost);
        assert_eq!(co.inter.unwrap().rendezvous.unwrap().0, 8 * 1024);
        // cray: no cliff at all (threshold usize::MAX).
        let m = Machine::new(cray_xc30(2, 16));
        let cost = CostModel::new(&m, ConduitProfile::cray_shmem(Platform::CrayXc30));
        let co = Coefficients::calibrate(&cost);
        assert_eq!(co.inter.unwrap().rendezvous, None);
        // Intra links never pay rendezvous.
        assert_eq!(co.intra.rendezvous, None);
    }

    #[test]
    fn fit_reflects_conduit_capabilities() {
        let m = Machine::new(cray_xc30(2, 16));
        let cray = Coefficients::calibrate(&CostModel::new(
            &m,
            ConduitProfile::cray_shmem(Platform::CrayXc30),
        ));
        assert!(cray.inter.as_ref().unwrap().iput.is_some(), "cray has native iput");
        assert!(cray.inter.as_ref().unwrap().am.is_none(), "no AM layer on SHMEM");

        let m = Machine::new(stampede(2, 16));
        let gasnet = Coefficients::calibrate(&CostModel::new(
            &m,
            ConduitProfile::gasnet(Platform::Stampede),
        ));
        assert!(gasnet.inter.as_ref().unwrap().iput.is_none(), "gasnet loops iput");
        let (handler, elem) = gasnet.inter.unwrap().am.expect("gasnet has AM");
        assert!(handler > 0.0 && elem > 0.0);
    }

    #[test]
    fn iput_fit_reproduces_strided_estimates() {
        let m = Machine::new(cray_xc30(2, 16));
        let cost = CostModel::new(&m, ConduitProfile::cray_shmem(Platform::CrayXc30));
        let co = Coefficients::calibrate(&cost);
        let (call, byte, elem) = co.inter.unwrap().iput.unwrap();
        for (n, e) in [(16usize, 4usize), (100, 8), (500, 16)] {
            let real = cost.strided_put_estimate(0, 16, n, e).unwrap().local_complete as f64;
            let fitted = call + (n * e) as f64 * byte + n as f64 * elem;
            assert!((real - fitted).abs() <= 2.0, "iput n={n} e={e}: {real} vs {fitted}");
        }
    }

    #[test]
    fn coefficients_json_round_trip_is_exact() {
        for (cfg, profile) in [
            (stampede(2, 16), ConduitProfile::mvapich_shmem()),
            (stampede(2, 16), ConduitProfile::gasnet(Platform::Stampede)),
            (cray_xc30(2, 16), ConduitProfile::cray_shmem(Platform::CrayXc30)),
            (cray_xc30(1, 16), ConduitProfile::cray_shmem(Platform::CrayXc30)),
        ] {
            let m = Machine::new(cfg);
            let co = Coefficients::calibrate(&CostModel::new(&m, profile));
            let text = co.to_json().pretty();
            let back = Coefficients::from_json(&json::parse(&text).unwrap()).unwrap();
            assert_eq!(co, back, "{}", co.key);
        }
    }

    #[test]
    fn single_node_machines_fit_no_inter_link() {
        let m = Machine::new(pgas_machine::generic_smp(4));
        let co = Coefficients::calibrate(&CostModel::new(&m, ConduitProfile::mvapich_shmem()));
        assert!(co.inter.is_none());
    }

    fn ratio_snapshot(ratios: &[u64]) -> pgas_machine::MetricsSnapshot {
        let reg = pgas_machine::MetricsRegistry::new(true, 2);
        for (i, &r) in ratios.iter().enumerate() {
            reg.observe(i % 2, "plan_cost_ratio_pct", Some(1), r);
        }
        reg.snapshot(pgas_machine::StatsSnapshot::default())
    }

    #[test]
    fn skewed_ratio_invalidates_the_memoised_calibration() {
        // Seed the memo under a synthetic key no real run uses.
        let key = "testonly-skew-2x4-fake-profile".to_string();
        let m = Machine::new(pgas_machine::generic_smp(4));
        let co = Coefficients::calibrate(&CostModel::new(&m, ConduitProfile::mvapich_shmem()));
        memo().lock().unwrap().insert(key.clone(), co.clone());

        // Healthy mean (100): the calibration stays cached.
        assert_eq!(invalidate_if_skewed(&key, &ratio_snapshot(&[90, 100, 110])), None);
        assert!(memo().lock().unwrap().contains_key(&key));

        // No observations at all: nothing to judge, keep the cache.
        assert_eq!(invalidate_if_skewed(&key, &ratio_snapshot(&[])), None);
        assert!(memo().lock().unwrap().contains_key(&key));

        // Mean 300: measurements contradict the fit — the entry is dropped.
        assert_eq!(invalidate_if_skewed(&key, &ratio_snapshot(&[280, 320])), Some(300));
        assert!(!memo().lock().unwrap().contains_key(&key));

        // Underprediction skew (mean far below 100) is just as stale.
        memo().lock().unwrap().insert(key.clone(), co);
        assert_eq!(invalidate_if_skewed(&key, &ratio_snapshot(&[40, 60])), Some(50));
        assert!(!memo().lock().unwrap().contains_key(&key));
    }

    #[test]
    fn cache_key_for_matches_live_cache_key() {
        let cfg = stampede(2, 16);
        let m = Machine::new(cfg.clone());
        let cost = CostModel::new(&m, ConduitProfile::mvapich_shmem());
        assert_eq!(
            Coefficients::cache_key(&cost),
            cache_key_for(&cfg, ConduitProfile::mvapich_shmem().label())
        );
    }
}
