//! SPMD entry points for CAF programs.

use crate::config::CafConfig;
use crate::image::Image;
use pgas_machine::config::MachineConfig;
use pgas_machine::launch::{SimError, SimOutcome};

/// Launch a CAF program: one image per simulated core, each running `f`.
/// Panics if any image fails.
pub fn run_caf<R, F>(machine: MachineConfig, caf: CafConfig, f: F) -> SimOutcome<R>
where
    F: Fn(&Image<'_>) -> R + Send + Sync,
    R: Send,
{
    pgas_machine::run(machine, move |pe| {
        let img = Image::new(pe, caf);
        f(&img)
    })
}

/// Like [`run_caf`] but reporting failures as values (used by tests that
/// expect runtime errors such as STAT_LOCKED).
pub fn run_caf_result<R, F>(
    machine: MachineConfig,
    caf: CafConfig,
    f: F,
) -> Result<SimOutcome<R>, SimError>
where
    F: Fn(&Image<'_>) -> R + Send + Sync,
    R: Send,
{
    pgas_machine::run_with_result(machine, move |pe| {
        let img = Image::new(pe, caf);
        f(&img)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Backend;
    use pgas_machine::{generic_smp, Platform};

    #[test]
    fn run_caf_returns_per_image_results_and_stats() {
        let out = run_caf(
            generic_smp(3).with_heap_bytes(1 << 17),
            CafConfig::new(Backend::Shmem, Platform::GenericSmp),
            |img| {
                let a = img.coarray::<i64>(&[2]).unwrap();
                img.sync_all();
                a.put_to(img, img.this_image() % img.num_images() + 1, &[1, 2]);
                img.sync_all();
                img.this_image()
            },
        );
        assert_eq!(out.results, vec![1, 2, 3]);
        assert_eq!(out.stats.puts, 3);
        assert!(out.stats.barriers >= 2);
    }

    #[test]
    fn failures_propagate_with_image_context() {
        let err = run_caf_result(
            generic_smp(2).with_heap_bytes(1 << 17),
            CafConfig::new(Backend::Shmem, Platform::GenericSmp),
            |img| {
                if img.this_image() == 2 {
                    panic!("image 2 exploded");
                }
                img.sync_all();
            },
        )
        .unwrap_err();
        assert_eq!(err.pe, 1);
        assert!(err.message.contains("exploded"));
    }
}
