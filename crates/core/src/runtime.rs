//! SPMD entry points for CAF programs.

use crate::config::{CafConfig, StridedAlgorithm};
use crate::image::Image;
use pgas_machine::config::MachineConfig;
use pgas_machine::launch::{SimError, SimOutcome};

/// The planner-cache key a Tuned run will calibrate under, or `None` when
/// the run doesn't use the tuned planner at all.
fn tuned_cache_key(machine: &MachineConfig, caf: &CafConfig) -> Option<String> {
    (caf.strided_algorithm() == StridedAlgorithm::Tuned)
        .then(|| crate::planner::cache_key_for(machine, caf.backend.profile(caf.platform).label()))
}

/// Post-run planner hygiene: feed the run's `plan_cost_ratio_pct`
/// misprediction histogram back into the tuned planner's cache — a skewed
/// mean flags the memoised/persisted calibration stale so the *next* run
/// re-probes the cost model (see `planner::invalidate_if_skewed`).
fn recalibrate_if_skewed<R>(key: Option<String>, out: &SimOutcome<R>) {
    if let Some(key) = key {
        if let Some(mean) = crate::planner::invalidate_if_skewed(&key, &out.metrics) {
            eprintln!(
                "[caf] tuned-planner calibration `{key}` flagged stale \
                 (mean plan_cost_ratio_pct {mean}); next run re-probes"
            );
        }
    }
}

/// Launch a CAF program: one image per simulated core, each running `f`.
/// Panics if any image fails.
pub fn run_caf<R, F>(machine: MachineConfig, caf: CafConfig, f: F) -> SimOutcome<R>
where
    F: Fn(&Image<'_>) -> R + Send + Sync,
    R: Send,
{
    let recal = tuned_cache_key(&machine, &caf);
    let out = pgas_machine::run(machine, move |pe| {
        let img = Image::new(pe, caf);
        f(&img)
    });
    recalibrate_if_skewed(recal, &out);
    out
}

/// Like [`run_caf`] but reporting failures as values (used by tests that
/// expect runtime errors such as STAT_LOCKED).
pub fn run_caf_result<R, F>(
    machine: MachineConfig,
    caf: CafConfig,
    f: F,
) -> Result<SimOutcome<R>, SimError>
where
    F: Fn(&Image<'_>) -> R + Send + Sync,
    R: Send,
{
    let recal = tuned_cache_key(&machine, &caf);
    let out = pgas_machine::run_with_result(machine, move |pe| {
        let img = Image::new(pe, caf);
        f(&img)
    });
    if let Ok(out) = &out {
        recalibrate_if_skewed(recal, out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Backend;
    use pgas_machine::{generic_smp, Platform};

    #[test]
    fn run_caf_returns_per_image_results_and_stats() {
        let out = run_caf(
            generic_smp(3).with_heap_bytes(1 << 17),
            CafConfig::new(Backend::Shmem, Platform::GenericSmp),
            |img| {
                let a = img.coarray::<i64>(&[2]).unwrap();
                img.sync_all();
                a.put_to(img, img.this_image() % img.num_images() + 1, &[1, 2]);
                img.sync_all();
                img.this_image()
            },
        );
        assert_eq!(out.results, vec![1, 2, 3]);
        assert_eq!(out.stats.puts, 3);
        assert!(out.stats.barriers >= 2);
    }

    #[test]
    fn tuned_run_records_healthy_misprediction_ratios() {
        use crate::section::{DimRange, Section};
        let mcfg = generic_smp(2).with_heap_bytes(1 << 17);
        // The planner's calibration predicts *direct* wire costs; pin
        // coalescing off so an ambient PGAS_COALESCE=on (the
        // test-aggregated CI job) cannot re-time the strided puts it
        // calibrated against.
        let ccfg = CafConfig::new(Backend::Shmem, Platform::GenericSmp)
            .with_strided(crate::config::StridedAlgorithm::Tuned)
            .with_aggregation(pgas_conduit::CoalescePolicy::Off);
        let out = pgas_machine::with_forced_metrics(true, || {
            run_caf(mcfg, ccfg, |img| {
                let a = img.coarray::<i32>(&[16, 16]).unwrap();
                let sec = Section::new(vec![
                    DimRange { start: 0, count: 8, step: 2 },
                    DimRange { start: 0, count: 8, step: 2 },
                ]);
                let data = vec![7i32; sec.total()];
                img.sync_all();
                if img.this_image() == 1 {
                    a.put_section(img, 2, &sec, &data);
                }
                img.sync_all();
            })
        });
        // The post-run hook judged these same numbers: a calibrated planner
        // on an unchanged machine must land inside the healthy band, i.e.
        // its calibration survives for the next run.
        let (mut count, mut sum) = (0u64, 0u64);
        for h in out.metrics.histograms_named("plan_cost_ratio_pct") {
            count += h.count;
            sum += h.sum;
        }
        assert!(count > 0, "tuned run records misprediction ratios");
        let mean = (sum as f64 / count as f64).round() as u64;
        assert!(
            (crate::planner::RATIO_HEALTHY_MIN_PCT..=crate::planner::RATIO_HEALTHY_MAX_PCT)
                .contains(&mean),
            "calibrated planner should predict its own cost model well, mean {mean}%"
        );
    }

    #[test]
    fn failures_propagate_with_image_context() {
        let err = run_caf_result(
            generic_smp(2).with_heap_bytes(1 << 17),
            CafConfig::new(Backend::Shmem, Platform::GenericSmp),
            |img| {
                if img.this_image() == 2 {
                    panic!("image 2 exploded");
                }
                img.sync_all();
            },
        )
        .unwrap_err();
        assert_eq!(err.pe, 1);
        assert!(err.message.contains("exploded"));
    }
}
