//! Remote access to multi-dimensional strided sections (paper §IV-C).
//!
//! OpenSHMEM's strided interface (`shmem_iput`/`shmem_iget`) handles only
//! one dimension, so the runtime must compose multi-dimensional transfers.
//! The algorithms:
//!
//! * **Naive** — one contiguous transfer per stride-1 run. With a strided
//!   innermost dimension this is one `putmem` per *element* — the 50×40×25
//!   calls of the paper's example.
//! * **OneDim** — one `iput` per pencil along dimension 1, regardless of
//!   element counts (our model of the Cray compiler's runtime).
//! * **TwoDim** — the paper's `2dim_strided`: choose the base dimension with
//!   the most elements among the first two dimensions (bounding the choice
//!   preserves locality at the target), then one `iput` per remaining
//!   pencil: 1×40×25 calls in the example.
//! * **BestOfAll** — ablation: choose the best dimension among all of them.
//! * **AmPacked** — pack everything into one active message (GASNet VIS).

use crate::config::StridedAlgorithm;
use crate::planner::{HeuristicPlanner, StridedPlanner, TransferDir, TunedPlanner};
use crate::section::Section;
use openshmem::data::{from_bytes, to_bytes, Scalar, SymPtr};
use openshmem::Shmem;

/// An execution plan for a section transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plan {
    /// One contiguous transfer per stride-1 run.
    Runs,
    /// One 1-D strided call per pencil along the given dimension.
    BaseDim(usize),
    /// One AM-packed message.
    Packed,
}

/// Label a concrete plan for the decision log ("runs", "dim1", "packed").
pub fn plan_label(plan: Plan) -> String {
    match plan {
        Plan::Runs => "runs".into(),
        Plan::BaseDim(d) => format!("dim{d}"),
        Plan::Packed => "packed".into(),
    }
}

/// Run a [`StridedPlanner`] and record its decision (chosen plan, predicted
/// cost, every candidate cost) in the machine's stats, so figures can
/// contrast predictions against measured virtual time.
#[allow(clippy::too_many_arguments)]
fn plan_and_record(
    planner: &dyn StridedPlanner,
    shmem: &Shmem<'_>,
    target_pe: usize,
    sec: &Section,
    shape: &[usize],
    elem: usize,
    dir: TransferDir,
) -> (Plan, Option<f64>) {
    let choice = planner.plan(shmem, target_pe, sec, shape, elem, dir);
    shmem.machine().stats().record_plan(pgas_machine::stats::PlanDecision {
        pe: shmem.my_pe(),
        planner: planner.name(),
        chosen: plan_label(choice.plan),
        predicted_ns: choice.predicted_ns,
        candidates: choice.candidates.iter().map(|&(p, c)| (plan_label(p), c)).collect(),
    });
    (choice.plan, Some(choice.predicted_ns))
}

/// Choose a plan; for planner-backed algorithms also return the predicted
/// cost so callers can compare it against measured virtual time.
#[allow(clippy::too_many_arguments)]
fn plan_of(
    shmem: &Shmem<'_>,
    algo: StridedAlgorithm,
    target_pe: usize,
    sec: &Section,
    shape: &[usize],
    elem: usize,
    dir: TransferDir,
) -> (Plan, Option<f64>) {
    match algo {
        StridedAlgorithm::Naive => (Plan::Runs, None),
        StridedAlgorithm::OneDim => (Plan::BaseDim(0), None),
        StridedAlgorithm::TwoDim => (Plan::BaseDim(sec.best_dim(2)), None),
        StridedAlgorithm::BestOfAll => (Plan::BaseDim(sec.best_dim(usize::MAX)), None),
        StridedAlgorithm::AmPacked => (Plan::Packed, None),
        StridedAlgorithm::Adaptive => {
            plan_and_record(&HeuristicPlanner, shmem, target_pe, sec, shape, elem, dir)
        }
        StridedAlgorithm::Tuned => {
            let planner = TunedPlanner::for_shmem(shmem);
            plan_and_record(&planner, shmem, target_pe, sec, shape, elem, dir)
        }
    }
}

/// Surface a planner misprediction as a metric: the measured issue-side
/// virtual time of the transfer over the planner's predicted cost, as an
/// integer percentage (100 = perfect, 200 = twice as slow as predicted).
fn record_misprediction(shmem: &Shmem<'_>, target_pe: usize, predicted_ns: Option<f64>, t0: u64) {
    let Some(pred) = predicted_ns else { return };
    let m = shmem.machine();
    if !m.metrics().enabled() || pred <= 0.0 {
        return;
    }
    let actual = shmem.ctx().pe().now().saturating_sub(t0);
    let ratio_pct = ((actual as f64 / pred) * 100.0).round() as u64;
    m.metrics().observe(
        shmem.my_pe(),
        "plan_cost_ratio_pct",
        Some(m.node_of(target_pe)),
        ratio_pct,
    );
}

/// The §VII extension: pick the cheapest plan under a per-conduit cost
/// heuristic that accounts for per-call overhead, payload bandwidth, the
/// conduit's `iput` capability, and target-side locality (elements whose
/// stride spans many cache lines are charged a penalty).
///
/// Kept as a thin shim over [`HeuristicPlanner`] for callers that only want
/// the plan; new code should use the [`crate::planner::StridedPlanner`]
/// trait, which also reports predicted and candidate costs.
pub fn adaptive_plan(shmem: &Shmem<'_>, sec: &Section, shape: &[usize], elem: usize) -> Plan {
    HeuristicPlanner.plan(shmem, 0, sec, shape, elem, TransferDir::Put).plan
}

/// Byte regions (offset, len) of the section's stride-1 runs, in packed
/// order, for the AM-packed path.
fn byte_runs<T: Scalar>(ptr: SymPtr<T>, shape: &[usize], sec: &Section) -> Vec<(usize, usize)> {
    let run_contiguous = sec.dims()[0].step == 1;
    let run_len = if run_contiguous { sec.dims()[0].count } else { 1 };
    let mut regions = Vec::new();
    if run_contiguous {
        for (arr, _) in sec.pencils(shape, 0) {
            regions.push((ptr.offset() + arr * T::BYTES, run_len * T::BYTES));
        }
    } else {
        for (arr, _) in sec.elements(shape) {
            regions.push((ptr.offset() + arr * T::BYTES, T::BYTES));
        }
    }
    regions
}

/// Write `data` (the section's elements, packed column-major) into
/// `target_pe`'s copy of the array at `ptr`/`shape`, selected by `sec`.
pub fn put_section<T: Scalar>(
    shmem: &Shmem<'_>,
    algo: StridedAlgorithm,
    target_pe: usize,
    ptr: SymPtr<T>,
    shape: &[usize],
    sec: &Section,
    data: &[T],
) {
    sec.validate(shape).unwrap_or_else(|e| panic!("invalid section: {e}"));
    assert_eq!(data.len(), sec.total(), "packed data length must equal the section size");
    assert_eq!(ptr.count(), shape.iter().product::<usize>(), "pointer/shape mismatch");
    if sec.is_full_contiguous(shape) {
        shmem.put(ptr, data, target_pe);
        return;
    }
    let (plan, predicted) = plan_of(shmem, algo, target_pe, sec, shape, T::BYTES, TransferDir::Put);
    let t0 = shmem.ctx().pe().now();
    match plan {
        Plan::Runs => {
            let contiguous = sec.dims()[0].step == 1;
            if contiguous {
                let run = sec.dims()[0].count;
                for (arr, packed) in sec.pencils(shape, 0) {
                    shmem.put(ptr.at(arr), &data[packed..packed + run], target_pe);
                }
            } else {
                for (arr, packed) in sec.elements(shape) {
                    shmem.put(ptr.at(arr), &data[packed..packed + 1], target_pe);
                }
            }
        }
        Plan::BaseDim(base) => {
            let n = sec.dims()[base].count;
            let tst = sec.array_stride(shape, base);
            let sst = sec.packed_stride(base);
            for (arr, packed) in sec.pencils(shape, base) {
                shmem.iput(ptr.at(arr), tst, &data[packed..], sst, n, target_pe);
            }
        }
        Plan::Packed => {
            let regions = byte_runs(ptr, shape, sec);
            shmem.ctx().am_put_regions(target_pe, &regions, &to_bytes(data));
        }
    }
    record_misprediction(shmem, target_pe, predicted, t0);
}

/// Read the section of `target_pe`'s copy of the array into a packed vector.
pub fn get_section<T: Scalar>(
    shmem: &Shmem<'_>,
    algo: StridedAlgorithm,
    target_pe: usize,
    ptr: SymPtr<T>,
    shape: &[usize],
    sec: &Section,
) -> Vec<T> {
    sec.validate(shape).unwrap_or_else(|e| panic!("invalid section: {e}"));
    assert_eq!(ptr.count(), shape.iter().product::<usize>(), "pointer/shape mismatch");
    let zero = T::load(&vec![0u8; T::BYTES]);
    let mut out = vec![zero; sec.total()];
    if sec.is_full_contiguous(shape) {
        shmem.get(ptr, &mut out, target_pe);
        return out;
    }
    let (plan, predicted) = plan_of(shmem, algo, target_pe, sec, shape, T::BYTES, TransferDir::Get);
    let t0 = shmem.ctx().pe().now();
    match plan {
        Plan::Runs => {
            let contiguous = sec.dims()[0].step == 1;
            if contiguous {
                let run = sec.dims()[0].count;
                for (arr, packed) in sec.pencils(shape, 0) {
                    shmem.get(ptr.at(arr), &mut out[packed..packed + run], target_pe);
                }
            } else {
                for (arr, packed) in sec.elements(shape) {
                    shmem.get(ptr.at(arr), &mut out[packed..packed + 1], target_pe);
                }
            }
        }
        Plan::BaseDim(base) => {
            let n = sec.dims()[base].count;
            let sst = sec.array_stride(shape, base);
            let tst = sec.packed_stride(base);
            for (arr, packed) in sec.pencils(shape, base) {
                shmem.iget(ptr.at(arr), sst, &mut out[packed..], tst, n, target_pe);
            }
        }
        Plan::Packed => {
            // Runs/elements regions arrive in packed order either way.
            let regions = byte_runs(ptr, shape, sec);
            let mut buf = vec![0u8; sec.total() * T::BYTES];
            shmem.ctx().am_get_regions(target_pe, &regions, &mut buf);
            from_bytes(&buf, &mut out);
        }
    }
    record_misprediction(shmem, target_pe, predicted, t0);
    out
}

/// Number of communication calls each (static) algorithm issues for a
/// section — the quantity the paper's §IV-C analysis counts
/// (50·40·25 vs 1·40·25). For `Adaptive`, use [`adaptive_plan`] and
/// [`plan_call_count`] instead (the choice depends on the conduit).
pub fn call_count(algo: StridedAlgorithm, sec: &Section) -> usize {
    let plan = match algo {
        StridedAlgorithm::Naive => Plan::Runs,
        StridedAlgorithm::OneDim => Plan::BaseDim(0),
        StridedAlgorithm::TwoDim => Plan::BaseDim(sec.best_dim(2)),
        StridedAlgorithm::BestOfAll => Plan::BaseDim(sec.best_dim(usize::MAX)),
        StridedAlgorithm::AmPacked => Plan::Packed,
        StridedAlgorithm::Adaptive | StridedAlgorithm::Tuned => {
            panic!("call_count({algo:?}) is conduit-dependent; use a planner + plan_call_count")
        }
    };
    plan_call_count(plan, sec)
}

/// Communication calls a concrete [`Plan`] issues for a section.
pub fn plan_call_count(plan: Plan, sec: &Section) -> usize {
    match plan {
        Plan::Runs => {
            if sec.dims()[0].step == 1 {
                sec.total() / sec.dims()[0].count
            } else {
                sec.total()
            }
        }
        Plan::Packed => 1,
        Plan::BaseDim(base) => sec.total() / sec.dims()[base].count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Backend, CafConfig, StridedAlgorithm::*};
    use crate::runtime::run_caf;
    use crate::section::DimRange;
    use pgas_machine::{generic_smp, stampede, Platform};

    #[test]
    fn paper_call_count_example() {
        // 3-D example from §IV-C: section (1:100:2, 1:80:2, 1:100:4) of
        // X(100,100,100) -> naive 50*40*25, 2dim 40*25.
        let sec = Section::new(vec![
            DimRange::triplet(0, 99, 2),
            DimRange::triplet(0, 79, 2),
            DimRange::triplet(0, 99, 4),
        ]);
        assert_eq!(call_count(Naive, &sec), 50 * 40 * 25);
        assert_eq!(call_count(TwoDim, &sec), 40 * 25);
        assert_eq!(call_count(OneDim, &sec), 40 * 25); // dim0 happens to be best
        assert_eq!(call_count(AmPacked, &sec), 1);
    }

    #[test]
    fn call_counts_where_dim1_dominates() {
        // dim0 has 8 elements, dim1 has 64: the 2dim algorithm picks dim1;
        // the Cray model (OneDim) is stuck with dim0 and pays 8x the calls.
        let sec = Section::new(vec![
            DimRange { start: 0, count: 8, step: 2 },
            DimRange { start: 0, count: 64, step: 2 },
        ]);
        assert_eq!(call_count(TwoDim, &sec), 8);
        assert_eq!(call_count(OneDim, &sec), 64);
        assert_eq!(call_count(Naive, &sec), 512);
    }

    #[test]
    fn naive_coalesces_contiguous_rows() {
        // Matrix-oriented halo: contiguous rows, strided columns (§V-D).
        let sec = Section::new(vec![
            DimRange { start: 0, count: 100, step: 1 },
            DimRange { start: 0, count: 30, step: 3 },
        ]);
        assert_eq!(call_count(Naive, &sec), 30, "one putmem per row");
        assert_eq!(call_count(TwoDim, &sec), 30, "iput along the contiguous rows");
    }

    #[test]
    fn all_algorithms_move_identical_bytes_3d() {
        let shape = [7, 6, 5];
        let sec = Section::new(vec![
            DimRange::triplet(1, 5, 2),
            DimRange::triplet(0, 5, 3),
            DimRange::triplet(2, 4, 2),
        ]);
        let total = sec.total();
        let mut reference: Option<Vec<f64>> = None;
        for algo in [Naive, OneDim, TwoDim, BestOfAll, AmPacked] {
            let out = run_caf(
                generic_smp(2).with_heap_bytes(1 << 18),
                CafConfig::new(Backend::Shmem, Platform::GenericSmp).with_strided(algo),
                |img| {
                    let a = img.coarray::<f64>(&shape).unwrap();
                    img.sync_all();
                    if img.this_image() == 1 {
                        let data: Vec<f64> = (0..total).map(|i| i as f64 + 0.5).collect();
                        a.put_section(img, 2, &sec, &data);
                    }
                    img.sync_all();
                    a.read_local(img)
                },
            );
            let got = out.results[1].clone();
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(&got, r, "{algo:?} diverged from Naive"),
            }
        }
        // Sanity: the reference itself contains the packed values at the
        // section's element positions.
        let r = reference.unwrap();
        for (i, (arr, packed)) in sec.elements(&shape).iter().enumerate() {
            assert_eq!(r[*arr], *packed as f64 + 0.5, "element {i}");
        }
    }

    #[test]
    fn message_counts_observed_by_machine_stats() {
        let shape = [16, 16];
        let sec = Section::new(vec![
            DimRange { start: 0, count: 8, step: 2 },
            DimRange { start: 0, count: 8, step: 2 },
        ]);
        // On a Cray-like SHMEM (native iput), 2dim issues 8 messages,
        // naive issues 64.
        let count_for = |algo| {
            let out = run_caf(
                pgas_machine::titan(2, 1).with_heap_bytes(1 << 18),
                CafConfig::new(Backend::Shmem, Platform::Titan).with_strided(algo),
                |img| {
                    let a = img.coarray::<i64>(&shape).unwrap();
                    img.sync_all();
                    if img.this_image() == 1 {
                        let data = vec![7i64; sec.total()];
                        a.put_section(img, 2, &sec, &data);
                    }
                    img.sync_all();
                },
            );
            out.stats.puts
        };
        assert_eq!(count_for(TwoDim), 8);
        assert_eq!(count_for(Naive), 64);
        assert_eq!(count_for(AmPacked), 1);
        // On MVAPICH2-X (loop iput), 2dim degenerates to 64 messages — the
        // key §V-B2 observation.
        let out = run_caf(
            stampede(2, 1).with_heap_bytes(1 << 18),
            CafConfig::new(Backend::Shmem, Platform::Stampede).with_strided(TwoDim),
            |img| {
                let a = img.coarray::<i64>(&shape).unwrap();
                img.sync_all();
                if img.this_image() == 1 {
                    a.put_section(img, 2, &sec, &vec![7i64; sec.total()]);
                }
                img.sync_all();
            },
        );
        assert_eq!(out.stats.puts, 64);
    }

    #[test]
    fn get_section_round_trips_on_all_algorithms() {
        let shape = [9, 4];
        let sec = Section::new(vec![DimRange::triplet(0, 8, 4), DimRange::triplet(1, 3, 2)]);
        for algo in [Naive, OneDim, TwoDim, BestOfAll, AmPacked] {
            let out = run_caf(
                generic_smp(2).with_heap_bytes(1 << 18),
                CafConfig::new(Backend::Shmem, Platform::GenericSmp).with_strided(algo),
                |img| {
                    let a = img.coarray::<i32>(&shape).unwrap();
                    let mine: Vec<i32> =
                        (0..36).map(|k| k + 100 * img.this_image() as i32).collect();
                    a.write_local(img, &mine);
                    img.sync_all();
                    a.get_section(img, 2, &sec)
                },
            );
            // Rows {0,4,8}, cols {1,3} of image 2's data (200 + k).
            let expect: Vec<i32> = [9, 13, 17, 27, 31, 35].iter().map(|k| 200 + k).collect();
            assert_eq!(out.results[0], expect, "{algo:?}");
        }
    }

    #[test]
    fn adaptive_plans_match_conduit_capabilities() {
        use super::Plan;
        // All-strided 3-D section: dim1 dominates.
        let strided_sec = Section::new(vec![
            DimRange { start: 0, count: 8, step: 2 },
            DimRange { start: 0, count: 64, step: 2 },
            DimRange { start: 0, count: 4, step: 2 },
        ]);
        let strided_shape = [16usize, 128, 8];
        // Matrix-oriented section: contiguous rows.
        let matrix_sec = Section::new(vec![
            DimRange { start: 0, count: 64, step: 1 },
            DimRange { start: 0, count: 16, step: 4 },
        ]);
        let matrix_shape = [64usize, 64];
        let plan_on = |platform: Platform, backend, sec: Section, shape: Vec<usize>| {
            run_caf(
                platform.config(2, 1).with_heap_bytes(1 << 18),
                CafConfig::new(backend, platform),
                move |img| super::adaptive_plan(img.shmem(), &sec, &shape, 4),
            )
            .results[0]
        };
        // Cray SHMEM, all-strided: use native iput along the dominant dim.
        assert_eq!(
            plan_on(
                Platform::CrayXc30,
                Backend::Shmem,
                strided_sec.clone(),
                strided_shape.to_vec()
            ),
            Plan::BaseDim(1)
        );
        // MVAPICH2-X (iput = loop): contiguous runs are the only sane plan.
        assert_eq!(
            plan_on(Platform::Stampede, Backend::Shmem, matrix_sec.clone(), matrix_shape.to_vec()),
            Plan::Runs
        );
        // GASNet, all-strided small elements: AM packing wins (one message
        // vs thousands).
        assert_eq!(
            plan_on(Platform::Stampede, Backend::Gasnet, strided_sec, strided_shape.to_vec()),
            Plan::Packed
        );
        // Cray SHMEM, matrix-oriented: contiguous rows beat per-element
        // iput scatter charges (§V-D's observation).
        assert_eq!(
            plan_on(Platform::CrayXc30, Backend::Shmem, matrix_sec, matrix_shape.to_vec()),
            Plan::Runs
        );
    }

    #[test]
    fn adaptive_never_loses_badly_to_fixed_algorithms() {
        // For several section shapes and conduits, the adaptive plan's
        // virtual time must be within 10% of the best fixed algorithm.
        let cases: Vec<(Platform, Backend, Vec<DimRange>, Vec<usize>)> = vec![
            (
                Platform::CrayXc30,
                Backend::Shmem,
                vec![
                    DimRange { start: 0, count: 8, step: 2 },
                    DimRange { start: 0, count: 32, step: 2 },
                ],
                vec![16, 64],
            ),
            (
                Platform::Stampede,
                Backend::Shmem,
                vec![
                    DimRange { start: 0, count: 32, step: 1 },
                    DimRange { start: 0, count: 8, step: 3 },
                ],
                vec![32, 24],
            ),
            (
                Platform::Stampede,
                Backend::Gasnet,
                vec![
                    DimRange { start: 0, count: 16, step: 3 },
                    DimRange { start: 0, count: 16, step: 3 },
                ],
                vec![48, 48],
            ),
        ];
        for (platform, backend, dims, shape) in cases {
            let time_with = |algo: StridedAlgorithm| {
                let sec = Section::new(dims.clone());
                let shape = shape.clone();
                let out = run_caf(
                    platform.config(2, 1).with_heap_bytes(1 << 20),
                    CafConfig::new(backend, platform).with_strided(algo),
                    move |img| {
                        let a = img.coarray::<i32>(&shape).unwrap();
                        if img.this_image() == 1 {
                            let data = vec![1i32; sec.total()];
                            let t0 = img.shmem().ctx().pe().now();
                            for _ in 0..3 {
                                a.put_section(img, 2, &sec, &data);
                            }
                            img.shmem().ctx().pe().now() - t0
                        } else {
                            0
                        }
                    },
                );
                out.results[0]
            };
            // AM packing is only a real option where an active-message
            // layer exists (GASNet), matching the planner's candidate set.
            let mut fixed = vec![Naive, OneDim, TwoDim, BestOfAll];
            if backend == Backend::Gasnet {
                fixed.push(StridedAlgorithm::AmPacked);
            }
            let fixed_best = fixed.into_iter().map(time_with).min().unwrap();
            let adaptive = time_with(StridedAlgorithm::Adaptive);
            assert!(
                adaptive as f64 <= fixed_best as f64 * 1.10,
                "{platform:?}/{backend:?}: adaptive {adaptive} vs best fixed {fixed_best}"
            );
        }
    }

    #[test]
    fn adaptive_ablation_never_worse_than_naive_or_twodim() {
        // The planner's candidate set must cover every non-adaptive arm of
        // `plan_of` on *every* profile — including emulated-iput conduits
        // (mvapich-shmem), where BaseDim plans degenerate to a putmem
        // loop. Assert the virtual time of Adaptive never exceeds Naive or
        // TwoDim for any platform/backend combination, on both a
        // contiguous-rows section and an all-strided one.
        let sections: Vec<(Vec<DimRange>, Vec<usize>)> = vec![
            // Matrix-oriented: contiguous rows, strided columns.
            (
                vec![
                    DimRange { start: 0, count: 32, step: 1 },
                    DimRange { start: 0, count: 8, step: 3 },
                ],
                vec![32, 24],
            ),
            // All-strided, dim1 dominant: pencil plans are at their best.
            (
                vec![
                    DimRange { start: 0, count: 8, step: 2 },
                    DimRange { start: 0, count: 32, step: 2 },
                ],
                vec![16, 64],
            ),
        ];
        let combos = [
            (Platform::Stampede, Backend::Shmem), // emulated iput (loop)
            (Platform::Stampede, Backend::Gasnet),
            (Platform::Titan, Backend::Shmem), // native iput
            (Platform::CrayXc30, Backend::Shmem),
            (Platform::CrayXc30, Backend::CrayCaf),
            (Platform::GenericSmp, Backend::Shmem),
        ];
        for (dims, shape) in &sections {
            for (platform, backend) in combos {
                let time_with = |algo: StridedAlgorithm| {
                    let sec = Section::new(dims.clone());
                    let shape = shape.clone();
                    let cfg = match platform {
                        Platform::GenericSmp => generic_smp(2),
                        _ => platform.config(2, 1),
                    };
                    let out = run_caf(
                        cfg.with_heap_bytes(1 << 20),
                        CafConfig::new(backend, platform).with_strided(algo),
                        move |img| {
                            let a = img.coarray::<i32>(&shape).unwrap();
                            if img.this_image() == 1 {
                                let data = vec![1i32; sec.total()];
                                let t0 = img.shmem().ctx().pe().now();
                                for _ in 0..3 {
                                    a.put_section(img, 2, &sec, &data);
                                }
                                img.shmem().ctx().pe().now() - t0
                            } else {
                                0
                            }
                        },
                    );
                    out.results[0]
                };
                let adaptive = time_with(Adaptive);
                let naive = time_with(Naive);
                let twodim = time_with(TwoDim);
                assert!(
                    adaptive <= naive,
                    "{platform:?}/{backend:?} {dims:?}: adaptive {adaptive} > naive {naive}"
                );
                assert!(
                    adaptive <= twodim,
                    "{platform:?}/{backend:?} {dims:?}: adaptive {adaptive} > twodim {twodim}"
                );
            }
        }
    }

    #[test]
    fn full_contiguous_section_is_one_message() {
        let out = run_caf(
            pgas_machine::titan(2, 1).with_heap_bytes(1 << 18),
            CafConfig::new(Backend::Shmem, Platform::Titan),
            |img| {
                let a = img.coarray::<i64>(&[32, 4]).unwrap();
                img.sync_all();
                if img.this_image() == 1 {
                    a.put_section(img, 2, &Section::full(&[32, 4]), &vec![1i64; 128]);
                }
                img.sync_all();
            },
        );
        assert_eq!(out.stats.puts, 1);
    }
}
