//! Runtime configuration: which communication backend UHCAF runs over and
//! which strided-transfer algorithm it uses.

use pgas_conduit::{CoalescePolicy, ConduitProfile, CtxOptions};
use pgas_machine::Platform;

/// The communication substrate beneath the CAF runtime — the axis the paper
/// evaluates (UHCAF over OpenSHMEM vs UHCAF over GASNet vs the Cray CAF
/// compiler's DMAPP runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// UHCAF over the platform's native OpenSHMEM (Cray SHMEM on Gemini /
    /// Aries machines, MVAPICH2-X SHMEM on InfiniBand).
    Shmem,
    /// UHCAF over GASNet with the platform's conduit.
    Gasnet,
    /// The Cray Fortran compiler's own runtime over DMAPP (baseline).
    CrayCaf,
}

impl Backend {
    /// The conduit profile this backend links against on `platform`.
    pub fn profile(self, platform: Platform) -> ConduitProfile {
        match self {
            Backend::Shmem => ConduitProfile::native_shmem(platform),
            Backend::Gasnet => ConduitProfile::gasnet(platform),
            Backend::CrayCaf => ConduitProfile::dmapp(platform),
        }
    }

    /// The strided algorithm the backend uses unless overridden: the paper's
    /// `2dim_strided` for UHCAF-over-SHMEM, plain contiguous chunks for
    /// GASNet (no `iput` worth exploiting), and an always-dimension-1 strided
    /// descriptor for the Cray runtime.
    pub fn default_strided(self) -> StridedAlgorithm {
        match self {
            Backend::Shmem => StridedAlgorithm::TwoDim,
            Backend::Gasnet => StridedAlgorithm::Naive,
            Backend::CrayCaf => StridedAlgorithm::OneDim,
        }
    }

    /// Legend label used by the figure harnesses ("UHCAF-Cray-SHMEM", ...).
    pub fn label(self, platform: Platform) -> String {
        match self {
            Backend::Shmem => match platform {
                Platform::Titan | Platform::CrayXc30 => "UHCAF-Cray-SHMEM".into(),
                Platform::Stampede => "UHCAF-MVAPICH2-X-SHMEM".into(),
                Platform::GenericSmp => "UHCAF-SHMEM".into(),
            },
            Backend::Gasnet => "UHCAF-GASNet".into(),
            Backend::CrayCaf => "Cray-CAF".into(),
        }
    }
}

/// Algorithms for remote access to multi-dimensional strided sections
/// (paper §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StridedAlgorithm {
    /// One contiguous transfer per stride-1 run (a run degenerates to one
    /// element when the innermost dimension is strided). The paper's naive
    /// baseline.
    Naive,
    /// 1-D strided `iput`/`iget` always along dimension 1 — our model of the
    /// Cray compiler's runtime.
    OneDim,
    /// The paper's `2dim_strided`: pick the base dimension with the most
    /// elements among the *first two* dimensions (locality-bounded), then
    /// issue one `iput`/`iget` per remaining pencil.
    TwoDim,
    /// Ablation: pick the best dimension among *all* dimensions, ignoring
    /// the locality argument of §IV-C.
    BestOfAll,
    /// Pack the whole section into one active-message transfer, unpacked by
    /// a handler at the target (GASNet VIS; the Himeno figure's "with-AM").
    AmPacked,
    /// The paper's §VII future work, implemented: score every base
    /// dimension, the contiguous-run (naive) plan and the AM-packed plan
    /// with a cost model that weighs call count against locality (stride
    /// length vs cache lines) and the conduit's actual `iput` capability,
    /// then execute the cheapest.
    Adaptive,
    /// Like [`Self::Adaptive`] but scored by the `TunedPlanner`, whose
    /// coefficients are calibrated against the live `CostModel` by micro-probe
    /// transfers at image construction (and cached per platform/profile)
    /// instead of being hard-coded.
    Tuned,
}

impl StridedAlgorithm {
    /// Every selectable algorithm, in presentation order.
    pub const ALL: [StridedAlgorithm; 7] = [
        StridedAlgorithm::Naive,
        StridedAlgorithm::OneDim,
        StridedAlgorithm::TwoDim,
        StridedAlgorithm::BestOfAll,
        StridedAlgorithm::AmPacked,
        StridedAlgorithm::Adaptive,
        StridedAlgorithm::Tuned,
    ];

    pub fn label(self) -> &'static str {
        match self {
            StridedAlgorithm::Naive => "naive",
            StridedAlgorithm::OneDim => "1dim",
            StridedAlgorithm::TwoDim => "2dim",
            StridedAlgorithm::BestOfAll => "best-of-all",
            StridedAlgorithm::AmPacked => "with-AM",
            StridedAlgorithm::Adaptive => "adaptive",
            StridedAlgorithm::Tuned => "tuned",
        }
    }

    /// Look an algorithm up by its [`Self::label`] name, so apps and bench
    /// harnesses can select one from a CLI flag or environment string.
    pub fn from_name(name: &str) -> Option<StridedAlgorithm> {
        StridedAlgorithm::ALL.into_iter().find(|a| a.label() == name.trim())
    }
}

/// Full CAF runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct CafConfig {
    pub backend: Backend,
    /// Platform (selects wire parameters and vendor libraries).
    pub platform: Platform,
    /// Override the backend's default strided algorithm.
    pub strided: Option<StridedAlgorithm>,
    /// Size of the pre-allocated symmetric buffer that backs non-symmetric
    /// remotely-accessible data (derived-type components, lock qnodes).
    pub nonsym_bytes: usize,
    /// Insert `shmem_quiet` after puts / before gets, as §IV-B requires.
    /// Disabled only by tests that demonstrate the resulting hazards.
    pub insert_quiet: bool,
    /// Panic on ordering hazards (failure injection for runtime tests).
    pub strict_ordering: bool,
    /// Use direct load/store for same-node transfers (`shmem_ptr`, §VII).
    pub fastpath: bool,
    /// Small-op aggregation policy handed to the conduit: coalesce small
    /// puts and non-fetching AMOs into per-destination-node buffers.
    /// `Auto` (the default) defers to the machine/environment
    /// (`PGAS_COALESCE`).
    pub aggregation: CoalescePolicy,
}

impl CafConfig {
    pub fn new(backend: Backend, platform: Platform) -> CafConfig {
        CafConfig {
            backend,
            platform,
            strided: None,
            nonsym_bytes: 64 * 1024,
            insert_quiet: true,
            strict_ordering: false,
            fastpath: false,
            aggregation: CoalescePolicy::Auto,
        }
    }

    /// The effective strided algorithm.
    pub fn strided_algorithm(&self) -> StridedAlgorithm {
        self.strided.unwrap_or_else(|| self.backend.default_strided())
    }

    pub fn with_strided(mut self, algo: StridedAlgorithm) -> Self {
        self.strided = Some(algo);
        self
    }

    pub fn with_nonsym_bytes(mut self, bytes: usize) -> Self {
        self.nonsym_bytes = bytes;
        self
    }

    pub fn with_strict_ordering(mut self, on: bool) -> Self {
        self.strict_ordering = on;
        self
    }

    pub fn with_insert_quiet(mut self, on: bool) -> Self {
        self.insert_quiet = on;
        self
    }

    pub fn with_fastpath(mut self, on: bool) -> Self {
        self.fastpath = on;
        self
    }

    pub fn with_aggregation(mut self, policy: CoalescePolicy) -> Self {
        self.aggregation = policy;
        self
    }

    pub(crate) fn ctx_options(&self) -> CtxOptions {
        CtxOptions {
            strict_ordering: self.strict_ordering,
            shmem_ptr_fastpath: self.fastpath,
            coalesce: self.aggregation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_conduit::ConduitKind;

    #[test]
    fn backend_profiles_match_paper_configurations() {
        assert_eq!(Backend::Shmem.profile(Platform::Titan).kind, ConduitKind::CrayShmem);
        assert_eq!(Backend::Shmem.profile(Platform::Stampede).kind, ConduitKind::MvapichShmem);
        assert_eq!(Backend::Gasnet.profile(Platform::Titan).kind, ConduitKind::Gasnet);
        assert_eq!(Backend::CrayCaf.profile(Platform::CrayXc30).kind, ConduitKind::Dmapp);
    }

    #[test]
    fn default_strided_per_backend() {
        assert_eq!(Backend::Shmem.default_strided(), StridedAlgorithm::TwoDim);
        assert_eq!(Backend::CrayCaf.default_strided(), StridedAlgorithm::OneDim);
        assert_eq!(Backend::Gasnet.default_strided(), StridedAlgorithm::Naive);
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(Backend::Shmem.label(Platform::Titan), "UHCAF-Cray-SHMEM");
        assert_eq!(Backend::Shmem.label(Platform::Stampede), "UHCAF-MVAPICH2-X-SHMEM");
        assert_eq!(Backend::Gasnet.label(Platform::Titan), "UHCAF-GASNet");
        assert_eq!(Backend::CrayCaf.label(Platform::CrayXc30), "Cray-CAF");
    }

    #[test]
    fn from_name_round_trips_every_label() {
        for algo in StridedAlgorithm::ALL {
            assert_eq!(StridedAlgorithm::from_name(algo.label()), Some(algo));
        }
        assert_eq!(StridedAlgorithm::from_name("tuned"), Some(StridedAlgorithm::Tuned));
        assert_eq!(StridedAlgorithm::from_name(" adaptive "), Some(StridedAlgorithm::Adaptive));
        assert_eq!(StridedAlgorithm::from_name("3dim"), None);
    }

    #[test]
    fn strided_override() {
        let cfg = CafConfig::new(Backend::Shmem, Platform::Titan);
        assert_eq!(cfg.strided_algorithm(), StridedAlgorithm::TwoDim);
        let cfg = cfg.with_strided(StridedAlgorithm::Naive);
        assert_eq!(cfg.strided_algorithm(), StridedAlgorithm::Naive);
    }
}
