//! Non-symmetric, remotely accessible coarray data (paper §IV-A).
//!
//! CAF programs can make *non-symmetric* data remotely accessible through
//! coarrays of derived type: an `allocatable` component may have a different
//! size — or not exist — on each image, yet other images can reach it
//! through the coarray. OpenSHMEM only exposes symmetric objects, so the
//! translation "shmallocs a buffer of equal size on all PEs at the
//! beginning of the program, and explicitly manages non-symmetric, but
//! remotely accessible, data allocations out of this buffer".
//!
//! [`NonSymArray<T>`] is that pattern, packaged: a symmetric *descriptor*
//! (packed [`RemotePtr`] + length, one per image) plus per-image payload
//! carved from the non-symmetric buffer space. Remote access first reads the
//! target's descriptor, then moves the data — exactly what a compiler emits
//! for `x[i]%comp(j)`.

use crate::image::{Image, ImageId, NonSymHandle};
use crate::remote_ptr::{RemotePtr, NIL};
use openshmem::alloc::AllocError;
use openshmem::data::{Scalar, SymPtr};

/// A coarray of derived type with one allocatable array component:
/// conceptually `type t; real, allocatable :: comp(:); end type t` with
/// `type(t) :: x[*]`.
///
/// Every image participates in creation (the descriptor is symmetric), but
/// each image chooses its own component length — including zero for "not
/// allocated".
pub struct NonSymArray<T: Scalar> {
    /// Symmetric descriptor: [packed remote pointer, element count].
    descriptor: SymPtr<u64>,
    /// This image's payload, if allocated.
    local: Option<(NonSymHandle, usize)>,
    _t: std::marker::PhantomData<T>,
}

impl<T: Scalar> NonSymArray<T> {
    /// Number of elements allocated on this image.
    pub fn local_len(&self) -> usize {
        self.local.as_ref().map(|&(_, n)| n).unwrap_or(0)
    }

    /// Is this image's component allocated?
    pub fn is_local_allocated(&self) -> bool {
        self.local.is_some()
    }
}

impl<'m> Image<'m> {
    /// Collectively create the derived-type coarray, allocating `local_len`
    /// elements of component data on this image (may differ per image;
    /// zero means "component not allocated here"). Implies `sync all`, like
    /// any coarray allocation.
    pub fn nonsym_array<T: Scalar>(&self, local_len: usize) -> Result<NonSymArray<T>, AllocError> {
        let descriptor = self.shmem().shmalloc::<u64>(2)?;
        let local = if local_len > 0 {
            let h = self.alloc_nonsym(local_len * T::BYTES)?;
            let ptr = RemotePtr::new(self.this_image() - 1, h.offset).pack();
            self.shmem().write_local(descriptor, &[ptr, local_len as u64]);
            Some((h, local_len))
        } else {
            self.shmem().write_local(descriptor, &[NIL, 0]);
            None
        };
        self.sync_all();
        Ok(NonSymArray { descriptor, local, _t: std::marker::PhantomData })
    }

    /// Read the remote descriptor of `image`'s component: `(data location,
    /// element count)`, or `None` when not allocated there.
    pub fn nonsym_descriptor<T: Scalar>(
        &self,
        arr: &NonSymArray<T>,
        image: ImageId,
    ) -> Option<(RemotePtr, usize)> {
        let pe = self.pe_of(image);
        let mut desc = [0u64; 2];
        self.statement_quiet();
        self.shmem().get(arr.descriptor, &mut desc, pe);
        RemotePtr::unpack(desc[0]).map(|p| (p, desc[1] as usize))
    }

    /// `data = x[image]%comp(:)` — fetch the whole remote component.
    /// Panics if the component is not allocated on `image` (a CAF error
    /// condition).
    pub fn nonsym_get<T: Scalar>(&self, arr: &NonSymArray<T>, image: ImageId) -> Vec<T> {
        let (ptr, len) = self
            .nonsym_descriptor(arr, image)
            .unwrap_or_else(|| panic!("component not allocated on image {image}"));
        let mut out = vec![T::load(&vec![0u8; T::BYTES]); len];
        let data = SymPtr::<T>::from_raw_parts(self.nonsym_abs(ptr.offset), len);
        // The data lives on the image recorded in the pointer (== `image`).
        self.shmem().get(data, &mut out, ptr.image);
        out
    }

    /// `x[image]%comp(start..) = data` — overwrite part of the remote
    /// component.
    pub fn nonsym_put<T: Scalar>(
        &self,
        arr: &NonSymArray<T>,
        image: ImageId,
        start: usize,
        data: &[T],
    ) {
        let (ptr, len) = self
            .nonsym_descriptor(arr, image)
            .unwrap_or_else(|| panic!("component not allocated on image {image}"));
        assert!(
            start + data.len() <= len,
            "write of {} elements at {start} overruns component of {len}",
            data.len()
        );
        let data_ptr =
            SymPtr::<T>::from_raw_parts(self.nonsym_abs(ptr.offset) + start * T::BYTES, data.len());
        self.shmem().put(data_ptr, data, ptr.image);
        self.statement_quiet();
    }

    /// Read this image's own component.
    pub fn nonsym_read_local<T: Scalar>(&self, arr: &NonSymArray<T>) -> Vec<T> {
        match arr.local {
            None => Vec::new(),
            Some((h, n)) => {
                let ptr = SymPtr::<T>::from_raw_parts(self.nonsym_abs(h.offset), n);
                let mut out = vec![T::load(&vec![0u8; T::BYTES]); n];
                self.shmem().read_local(ptr, &mut out);
                out
            }
        }
    }

    /// Overwrite this image's own component.
    pub fn nonsym_write_local<T: Scalar>(&self, arr: &NonSymArray<T>, data: &[T]) {
        let (h, n) = arr.local.expect("component not allocated on this image");
        assert!(data.len() <= n);
        let ptr = SymPtr::<T>::from_raw_parts(self.nonsym_abs(h.offset), n);
        self.shmem().write_local(ptr, data);
    }

    /// Collectively deallocate (frees the local payload and the symmetric
    /// descriptor). Implies `sync all`.
    pub fn free_nonsym_array<T: Scalar>(&self, arr: NonSymArray<T>) -> Result<(), AllocError> {
        self.sync_all();
        if let Some((h, _)) = arr.local {
            self.free_nonsym(h)?;
        }
        self.shmem().shfree(arr.descriptor)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{Backend, CafConfig};
    use crate::runtime::{run_caf, run_caf_result};
    use pgas_machine::{generic_smp, Platform};

    fn cfg() -> CafConfig {
        CafConfig::new(Backend::Shmem, Platform::GenericSmp)
    }

    fn mcfg(n: usize) -> pgas_machine::MachineConfig {
        generic_smp(n).with_heap_bytes(1 << 18)
    }

    #[test]
    fn different_lengths_per_image() {
        let out = run_caf(mcfg(4), cfg(), |img| {
            // Image i allocates i*3 elements (image 4: none).
            let len = if img.this_image() == 4 { 0 } else { img.this_image() * 3 };
            let arr = img.nonsym_array::<i64>(len).unwrap();
            let mine: Vec<i64> =
                (0..len as i64).map(|k| img.this_image() as i64 * 100 + k).collect();
            if len > 0 {
                img.nonsym_write_local(&arr, &mine);
            }
            img.sync_all();
            // Everyone reads image 2's component (6 elements).
            let remote = img.nonsym_get(&arr, 2);
            let not_alloc = img.nonsym_descriptor(&arr, 4).is_none();
            img.sync_all();
            (remote, not_alloc)
        });
        for (remote, not_alloc) in out.results {
            assert_eq!(remote, vec![200, 201, 202, 203, 204, 205]);
            assert!(not_alloc, "image 4's component reads as unallocated");
        }
    }

    #[test]
    fn remote_writes_into_component() {
        let out = run_caf(mcfg(3), cfg(), |img| {
            let arr = img.nonsym_array::<f64>(8).unwrap();
            img.nonsym_write_local(&arr, &[0.0; 8]);
            img.sync_all();
            if img.this_image() == 1 {
                // Write into the middle of image 3's component.
                img.nonsym_put(&arr, 3, 2, &[1.5, 2.5, 3.5]);
            }
            img.sync_all();
            img.nonsym_read_local(&arr)
        });
        assert_eq!(out.results[2], vec![0.0, 0.0, 1.5, 2.5, 3.5, 0.0, 0.0, 0.0]);
        assert_eq!(out.results[0], vec![0.0; 8], "other images untouched");
    }

    #[test]
    fn descriptor_roundtrip_and_free() {
        run_caf(mcfg(2), cfg(), |img| {
            let used_before = img.nonsym_in_use();
            let arr = img.nonsym_array::<i32>(10).unwrap();
            assert_eq!(arr.local_len(), 10);
            assert!(arr.is_local_allocated());
            let (ptr, len) = img.nonsym_descriptor(&arr, img.this_image()).unwrap();
            assert_eq!(ptr.image, img.this_image() - 1);
            assert_eq!(len, 10);
            img.free_nonsym_array(arr).unwrap();
            assert_eq!(img.nonsym_in_use(), used_before, "payload reclaimed");
        });
    }

    #[test]
    fn get_from_unallocated_component_is_an_error() {
        let err = run_caf_result(mcfg(2), cfg(), |img| {
            let len = if img.this_image() == 1 { 4 } else { 0 };
            let arr = img.nonsym_array::<i64>(len).unwrap();
            img.sync_all();
            let _ = img.nonsym_get(&arr, 2); // image 2 never allocated
            img.sync_all();
        })
        .unwrap_err();
        assert!(err.message.contains("not allocated"), "got: {}", err.message);
    }

    #[test]
    fn out_of_bounds_component_write_is_an_error() {
        let err = run_caf_result(mcfg(2), cfg(), |img| {
            let arr = img.nonsym_array::<i64>(4).unwrap();
            img.sync_all();
            if img.this_image() == 1 {
                img.nonsym_put(&arr, 2, 3, &[1, 2]); // 3 + 2 > 4
            }
            img.sync_all();
        })
        .unwrap_err();
        assert!(err.message.contains("overruns"), "got: {}", err.message);
    }
}
