//! Multi-dimensional array sections (the co-indexed `A(1:100:2, 1:80:2)`
//! syntax of CAF), in Fortran column-major layout.

/// One dimension of a section: elements `start, start+step, ...`
/// (`count` of them), all within the array's extent for that dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimRange {
    pub start: usize,
    pub count: usize,
    pub step: usize,
}

impl DimRange {
    /// The whole extent of a dimension of size `n`.
    pub fn full(n: usize) -> DimRange {
        DimRange { start: 0, count: n, step: 1 }
    }

    /// Fortran triplet `start:end:step` with **0-based, inclusive** bounds.
    pub fn triplet(start: usize, end: usize, step: usize) -> DimRange {
        assert!(step > 0, "section step must be positive");
        assert!(end >= start, "section end before start");
        DimRange { start, count: (end - start) / step + 1, step }
    }

    /// Index of the last element selected.
    pub fn last(&self) -> usize {
        self.start + (self.count - 1) * self.step
    }
}

/// A rectangular strided section of a multi-dimensional array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    dims: Vec<DimRange>,
}

/// Column-major (Fortran) linear strides of an array `shape`.
pub fn fortran_strides(shape: &[usize]) -> Vec<usize> {
    let mut s = Vec::with_capacity(shape.len());
    let mut acc = 1;
    for &d in shape {
        s.push(acc);
        acc *= d;
    }
    s
}

impl Section {
    /// Build from per-dimension ranges.
    pub fn new(dims: Vec<DimRange>) -> Section {
        assert!(!dims.is_empty(), "sections must have at least one dimension");
        for d in &dims {
            assert!(d.count > 0, "empty dimension range");
            assert!(d.step > 0, "section step must be positive");
        }
        Section { dims }
    }

    /// The full array of the given shape.
    pub fn full(shape: &[usize]) -> Section {
        Section::new(shape.iter().map(|&n| DimRange::full(n)).collect())
    }

    /// Per-dimension ranges.
    pub fn dims(&self) -> &[DimRange] {
        &self.dims
    }

    /// Rank.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Elements selected along each dimension.
    pub fn counts(&self) -> Vec<usize> {
        self.dims.iter().map(|d| d.count).collect()
    }

    /// Total elements selected.
    pub fn total(&self) -> usize {
        self.dims.iter().map(|d| d.count).product()
    }

    /// Check the section fits an array of `shape`.
    pub fn validate(&self, shape: &[usize]) -> Result<(), String> {
        if self.rank() != shape.len() {
            return Err(format!("section rank {} vs array rank {}", self.rank(), shape.len()));
        }
        for (i, (d, &n)) in self.dims.iter().zip(shape).enumerate() {
            if d.last() >= n {
                return Err(format!(
                    "dimension {i}: section reaches index {} but extent is {n}",
                    d.last()
                ));
            }
        }
        Ok(())
    }

    /// Does this section select the whole array contiguously?
    pub fn is_full_contiguous(&self, shape: &[usize]) -> bool {
        self.rank() == shape.len()
            && self
                .dims
                .iter()
                .zip(shape)
                .all(|(d, &n)| d.start == 0 && d.step == 1 && d.count == n)
    }

    /// The `2dim_strided` base-dimension rule: among the first
    /// `consider` dimensions, pick the one with the most selected elements
    /// (ties go to the lower dimension for locality).
    pub fn best_dim(&self, consider: usize) -> usize {
        let limit = consider.clamp(1, self.rank());
        let mut best = 0;
        for d in 1..limit {
            if self.dims[d].count > self.dims[best].count {
                best = d;
            }
        }
        best
    }

    /// Linear element offset of the section's first element.
    pub fn base_linear(&self, shape: &[usize]) -> usize {
        self.dims.iter().zip(fortran_strides(shape)).map(|(d, s)| d.start * s).sum()
    }

    /// For each "pencil" along `base_dim` (i.e. each combination of the other
    /// dimensions' coordinates), the pair of
    /// `(array element offset, packed element offset)` of the pencil's first
    /// element. Packed offsets address the section's elements laid out
    /// column-major in a dense buffer.
    pub fn pencils(&self, shape: &[usize], base_dim: usize) -> Vec<(usize, usize)> {
        assert!(base_dim < self.rank());
        let strides = fortran_strides(shape);
        let packed_strides = fortran_strides(&self.counts());
        let outer: Vec<usize> = (0..self.rank()).filter(|&d| d != base_dim).collect();
        let n_pencils: usize = outer.iter().map(|&d| self.dims[d].count).product();
        let base = self.base_linear(shape);
        let mut out = Vec::with_capacity(n_pencils);
        let mut coord = vec![0usize; outer.len()];
        for _ in 0..n_pencils {
            let mut arr = base;
            let mut packed = 0;
            for (ci, &d) in outer.iter().enumerate() {
                arr += coord[ci] * self.dims[d].step * strides[d];
                packed += coord[ci] * packed_strides[d];
            }
            out.push((arr, packed));
            // Increment the odometer (first outer dim fastest, matching
            // column-major packed order).
            for (ci, &d) in outer.iter().enumerate() {
                coord[ci] += 1;
                if coord[ci] < self.dims[d].count {
                    break;
                }
                coord[ci] = 0;
                let _ = d;
            }
        }
        out
    }

    /// Enumerate every selected element as
    /// `(array element offset, packed element offset)`, in packed
    /// (column-major) order. The reference oracle for transfer algorithms.
    pub fn elements(&self, shape: &[usize]) -> Vec<(usize, usize)> {
        let strides = fortran_strides(shape);
        let total = self.total();
        let mut out = Vec::with_capacity(total);
        let mut coord = vec![0usize; self.rank()];
        for packed in 0..total {
            let arr: usize = self
                .dims
                .iter()
                .zip(&strides)
                .zip(&coord)
                .map(|((d, s), &c)| (d.start + c * d.step) * s)
                .sum();
            out.push((arr, packed));
            for (c, d) in coord.iter_mut().zip(&self.dims) {
                *c += 1;
                if *c < d.count {
                    break;
                }
                *c = 0;
            }
        }
        out
    }

    /// Element stride (in array elements) along `dim`, accounting for the
    /// section step.
    pub fn array_stride(&self, shape: &[usize], dim: usize) -> usize {
        self.dims[dim].step * fortran_strides(shape)[dim]
    }

    /// Packed-buffer stride (in elements) along `dim`.
    pub fn packed_stride(&self, dim: usize) -> usize {
        fortran_strides(&self.counts())[dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplet_counts() {
        // The paper's example: X(1:100:2) on a 100-extent dim -> 50 elements.
        let d = DimRange::triplet(0, 99, 2);
        assert_eq!(d.count, 50);
        assert_eq!(d.last(), 98);
        assert_eq!(DimRange::triplet(0, 79, 2).count, 40);
        assert_eq!(DimRange::triplet(0, 99, 4).count, 25);
        assert_eq!(DimRange::triplet(5, 5, 3).count, 1);
    }

    #[test]
    fn paper_example_call_counts() {
        // coarray_X(100,100,100), section (1:100:2, 1:80:2, 1:100:4):
        // 50 * 40 * 25 elements; best of first two dims is dim 0 (50 > 40),
        // leaving 40*25 = 1000 pencils.
        let sec = Section::new(vec![
            DimRange::triplet(0, 99, 2),
            DimRange::triplet(0, 79, 2),
            DimRange::triplet(0, 99, 4),
        ]);
        let shape = [100, 100, 100];
        sec.validate(&shape).unwrap();
        assert_eq!(sec.total(), 50 * 40 * 25);
        assert_eq!(sec.best_dim(2), 0);
        assert_eq!(sec.pencils(&shape, 0).len(), 40 * 25);
        assert_eq!(sec.pencils(&shape, 1).len(), 50 * 25);
        assert_eq!(sec.pencils(&shape, 2).len(), 50 * 40);
    }

    #[test]
    fn best_dim_considers_only_first_k() {
        let sec = Section::new(vec![
            DimRange { start: 0, count: 10, step: 2 },
            DimRange { start: 0, count: 40, step: 2 },
            DimRange { start: 0, count: 90, step: 1 },
        ]);
        assert_eq!(sec.best_dim(2), 1, "locality-limited choice");
        assert_eq!(sec.best_dim(usize::MAX), 2, "unrestricted choice (ablation)");
        assert_eq!(sec.best_dim(1), 0);
    }

    #[test]
    fn full_section_is_contiguous() {
        let shape = [4, 5];
        let sec = Section::full(&shape);
        assert!(sec.is_full_contiguous(&shape));
        assert_eq!(sec.total(), 20);
        assert_eq!(sec.base_linear(&shape), 0);
        let strided = Section::new(vec![DimRange::triplet(0, 3, 2), DimRange::full(5)]);
        assert!(!strided.is_full_contiguous(&shape));
    }

    #[test]
    fn column_major_strides() {
        assert_eq!(fortran_strides(&[10, 20, 30]), vec![1, 10, 200]);
        assert_eq!(fortran_strides(&[7]), vec![1]);
    }

    #[test]
    fn elements_enumeration_matches_manual_2d() {
        // 4x3 array, section (1:3:2, 0:2:1) -> rows {1,3}, cols {0,1,2}.
        let shape = [4, 3];
        let sec = Section::new(vec![DimRange::triplet(1, 3, 2), DimRange::full(3)]);
        let elems = sec.elements(&shape);
        // Column-major: (1,0)=1, (3,0)=3, (1,1)=5, (3,1)=7, (1,2)=9, (3,2)=11.
        assert_eq!(elems, vec![(1, 0), (3, 1), (5, 2), (7, 3), (9, 4), (11, 5)]);
    }

    #[test]
    fn pencils_match_elements() {
        let shape = [6, 5, 4];
        let sec = Section::new(vec![
            DimRange::triplet(1, 5, 2),
            DimRange::triplet(0, 4, 2),
            DimRange::triplet(1, 3, 1),
        ]);
        let elems = sec.elements(&shape);
        for base in 0..3 {
            let pencils = sec.pencils(&shape, base);
            let astride = sec.array_stride(&shape, base);
            let pstride = sec.packed_stride(base);
            let mut reconstructed: Vec<(usize, usize)> = Vec::new();
            for (a0, p0) in pencils {
                for k in 0..sec.dims()[base].count {
                    reconstructed.push((a0 + k * astride, p0 + k * pstride));
                }
            }
            reconstructed.sort_by_key(|&(_, p)| p);
            assert_eq!(reconstructed, elems, "base dim {base}");
        }
    }

    #[test]
    fn validate_rejects_overruns_and_rank_mismatch() {
        let sec = Section::new(vec![DimRange::triplet(0, 10, 1)]);
        assert!(sec.validate(&[10]).is_err());
        assert!(sec.validate(&[11]).is_ok());
        assert!(sec.validate(&[11, 2]).is_err());
    }

    #[test]
    fn base_linear_of_offset_section() {
        let shape = [10, 10];
        let sec = Section::new(vec![DimRange::triplet(3, 9, 2), DimRange::triplet(4, 8, 4)]);
        assert_eq!(sec.base_linear(&shape), 3 + 4 * 10);
    }
}
