//! Cartesian image grids: helpers for decomposing a domain across images
//! (the bookkeeping every halo-exchange application reinvents).

use crate::image::ImageId;

/// A Cartesian arrangement of images, e.g. a 3×4 grid of 12 images.
/// Dimension 0 varies fastest (column-major, consistent with coarray
/// cosubscripts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageGrid {
    dims: Vec<usize>,
}

impl ImageGrid {
    /// Grid with explicit extents; their product must equal the image count
    /// it is used with.
    pub fn from_dims(dims: &[usize]) -> ImageGrid {
        assert!(!dims.is_empty() && dims.iter().all(|&d| d > 0), "grid extents must be positive");
        ImageGrid { dims: dims.to_vec() }
    }

    /// Most-square 2-D factorization of `images` (like `MPI_Dims_create`).
    pub fn balanced_2d(images: usize) -> ImageGrid {
        assert!(images > 0);
        let mut best = (1, images);
        let mut d = 1;
        while d * d <= images {
            if images.is_multiple_of(d) {
                best = (d, images / d);
            }
            d += 1;
        }
        ImageGrid { dims: vec![best.0, best.1] }
    }

    /// Extents per grid dimension.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total images the grid describes.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True for a degenerate empty grid (never constructed by the public
    /// API; present for completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// 0-based grid coordinates of a 1-based image.
    pub fn coords_of(&self, image: ImageId) -> Vec<usize> {
        assert!((1..=self.len()).contains(&image), "image {image} outside the grid");
        let mut rem = image - 1;
        self.dims
            .iter()
            .map(|&d| {
                let c = rem % d;
                rem /= d;
                c
            })
            .collect()
    }

    /// 1-based image at 0-based grid coordinates.
    pub fn image_at(&self, coords: &[usize]) -> ImageId {
        assert_eq!(coords.len(), self.dims.len(), "coordinate rank mismatch");
        let mut image = 0;
        let mut stride = 1;
        for (&c, &d) in coords.iter().zip(&self.dims) {
            assert!(c < d, "coordinate {c} outside extent {d}");
            image += c * stride;
            stride *= d;
        }
        image + 1
    }

    /// Neighbouring image one step along `dim` (`delta` = ±1). `None` at a
    /// non-periodic boundary; wraps when `periodic`.
    pub fn neighbor(
        &self,
        image: ImageId,
        dim: usize,
        delta: isize,
        periodic: bool,
    ) -> Option<ImageId> {
        assert!(dim < self.dims.len());
        assert!(delta == 1 || delta == -1, "one step at a time");
        let mut coords = self.coords_of(image);
        let d = self.dims[dim] as isize;
        let next = coords[dim] as isize + delta;
        let wrapped = if periodic {
            next.rem_euclid(d)
        } else if (0..d).contains(&next) {
            next
        } else {
            return None;
        };
        coords[dim] = wrapped as usize;
        Some(self.image_at(&coords))
    }

    /// Block distribution of a global extent along `dim`: the (start, len)
    /// owned by `image`, with remainders spread over the leading blocks.
    pub fn block_range(&self, image: ImageId, dim: usize, extent: usize) -> (usize, usize) {
        let coords = self.coords_of(image);
        let parts = self.dims[dim];
        let c = coords[dim];
        let base = extent / parts;
        let extra = extent % parts;
        let start = c * base + c.min(extra);
        let len = base + usize::from(c < extra);
        (start, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_factorizations() {
        assert_eq!(ImageGrid::balanced_2d(12).dims(), &[3, 4]);
        assert_eq!(ImageGrid::balanced_2d(16).dims(), &[4, 4]);
        assert_eq!(ImageGrid::balanced_2d(7).dims(), &[1, 7]);
        assert_eq!(ImageGrid::balanced_2d(1).dims(), &[1, 1]);
        assert_eq!(ImageGrid::balanced_2d(36).dims(), &[6, 6]);
    }

    #[test]
    fn coords_roundtrip() {
        let g = ImageGrid::from_dims(&[3, 4]);
        for image in 1..=12 {
            assert_eq!(g.image_at(&g.coords_of(image)), image);
        }
        assert_eq!(g.coords_of(1), vec![0, 0]);
        assert_eq!(g.coords_of(2), vec![1, 0]);
        assert_eq!(g.coords_of(4), vec![0, 1]);
    }

    #[test]
    fn neighbors_respect_boundaries() {
        let g = ImageGrid::from_dims(&[3, 2]);
        // Image 1 is at (0,0).
        assert_eq!(g.neighbor(1, 0, -1, false), None);
        assert_eq!(g.neighbor(1, 0, 1, false), Some(2));
        assert_eq!(g.neighbor(1, 1, 1, false), Some(4));
        // Periodic wrap.
        assert_eq!(g.neighbor(1, 0, -1, true), Some(3));
        assert_eq!(g.neighbor(4, 1, 1, true), Some(1));
        // Image 6 at (2,1): right edge.
        assert_eq!(g.neighbor(6, 0, 1, false), None);
        assert_eq!(g.neighbor(6, 0, 1, true), Some(4));
    }

    #[test]
    fn block_ranges_cover_the_extent() {
        let g = ImageGrid::from_dims(&[4]);
        let extent = 10; // 3,3,2,2
        let mut covered = Vec::new();
        for image in 1..=4 {
            let (s, l) = g.block_range(image, 0, extent);
            covered.extend(s..s + l);
        }
        assert_eq!(covered, (0..10).collect::<Vec<_>>());
        assert_eq!(g.block_range(1, 0, extent), (0, 3));
        assert_eq!(g.block_range(4, 0, extent), (8, 2));
    }

    #[test]
    fn block_ranges_2d() {
        let g = ImageGrid::from_dims(&[2, 3]);
        // Image 5 is at coords (0, 2).
        assert_eq!(g.block_range(5, 0, 8), (0, 4));
        assert_eq!(g.block_range(5, 1, 9), (6, 3));
    }

    #[test]
    #[should_panic(expected = "outside the grid")]
    fn coords_bounds_checked() {
        ImageGrid::from_dims(&[2, 2]).coords_of(5);
    }
}
