//! # caf — Coarray Fortran runtime semantics over OpenSHMEM
//!
//! The core crate of this reproduction: the runtime design of
//! *"OpenSHMEM as a Portable Communication Layer for PGAS Models: A Case
//! Study with Coarray Fortran"* (CLUSTER 2015), re-implemented as a Rust
//! library. It plays the role of UHCAF — the CAF runtime of the OpenUH
//! compiler — re-targeted to OpenSHMEM:
//!
//! * **Images & coarrays** (§IV-A): SPMD images with 1-based indices;
//!   symmetric coarray allocation over `shmalloc`; non-symmetric remotely
//!   accessible data carved from a pre-allocated symmetric buffer.
//! * **Remote memory access** (§IV-B): co-indexed puts/gets over
//!   `shmem_put`/`shmem_get`, with the runtime inserting `shmem_quiet` to
//!   restore CAF's program-order completion guarantees on top of
//!   OpenSHMEM's weaker model.
//! * **Multi-dimensional strided transfers** (§IV-C): the `2dim_strided`
//!   algorithm composed from 1-D `shmem_iput`/`shmem_iget`, alongside the
//!   naive baseline, a Cray-runtime model, a best-of-all-dims ablation and
//!   an AM-packed variant.
//! * **Per-image locks** (§IV-D): the MCS queue lock adapted to CAF
//!   semantics, with qnodes in non-symmetric buffer space and 20/36/8-bit
//!   packed remote pointers updated through 8-byte OpenSHMEM atomics.
//! * **Synchronization & collectives**: `sync all`, `sync images`,
//!   `critical`, events, CAF atomics, and `co_sum`/`co_min`/`co_max`/
//!   `co_broadcast`/`co_reduce` over the OpenSHMEM collectives.
//!
//! The runtime is generic over the communication [`Backend`] — native
//! SHMEM, GASNet, or the Cray-CAF DMAPP baseline — mirroring the
//! configurations the paper evaluates.
//!
//! ## Quick start
//!
//! ```
//! use caf::{run_caf, Backend, CafConfig};
//! use pgas_machine::{generic_smp, Platform};
//!
//! let out = run_caf(
//!     generic_smp(4),
//!     CafConfig::new(Backend::Shmem, Platform::GenericSmp),
//!     |img| {
//!         let a = img.coarray::<i64>(&[4]).unwrap();
//!         img.sync_all();
//!         // a(:)[next] = this_image()
//!         let next = img.this_image() % img.num_images() + 1;
//!         a.put_to(img, next, &[img.this_image() as i64; 4]);
//!         img.sync_all();
//!         a.read_local(img)[0]
//!     },
//! );
//! assert_eq!(out.results, vec![4, 1, 2, 3]);
//! ```

pub mod atomics;
pub mod coarray;
pub mod config;
pub mod events;
pub mod failure;
pub mod grid;
pub mod image;
pub mod locks;
pub mod mapping;
pub mod nonsym;
pub mod planner;
pub mod remote_ptr;
pub mod runtime;
pub mod section;
pub mod strided;
pub mod team;

pub use atomics::AtomicVar;
pub use coarray::{CoDims, Coarray};
pub use config::{Backend, CafConfig, StridedAlgorithm};
pub use events::EventVar;
pub use failure::CafStat;
pub use grid::ImageGrid;
pub use image::{Image, ImageId, NonSymHandle};
pub use locks::{CafLock, LockStat};
pub use nonsym::NonSymArray;
pub use pgas_conduit::CoalescePolicy;
pub use pgas_machine::sanitizer::{HazardKind, HazardReport, SanitizerMode};
pub use pgas_machine::stats::PlanDecision;
pub use planner::{
    Coefficients, HeuristicPlanner, LinkFit, PlanChoice, StridedPlanner, TransferDir, TunedPlanner,
};
pub use remote_ptr::RemotePtr;
pub use runtime::{run_caf, run_caf_result};
pub use section::{DimRange, Section};
pub use strided::{adaptive_plan, plan_call_count, Plan};
pub use team::CafTeam;
