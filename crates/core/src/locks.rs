//! CAF per-image locks: the paper's adaptation of the MCS queue lock
//! (§IV-D).
//!
//! CAF locks are coarrays: `type(lock_type) :: lck[*]` declares one lock
//! *variable per image*, and `lock(lck[j])` acquires the instance living on
//! image `j`. OpenSHMEM's own locks are global entities, unusable here; the
//! naive alternative (an N-element array per lock) wastes space. Instead:
//!
//! * Each lock instance is a symmetric 2-word block on its home image: a
//!   **tail** word holding a packed [`RemotePtr`] to the last queue node,
//!   and a **holder** word (1-based image of the current owner; 0 = none)
//!   that is only maintained while a fault plan is active — it lets a
//!   waiter behind a *failed* image distinguish a dead lock holder (evict
//!   it and take over: a lock repair) from a dead queued waiter (whose
//!   thread, still running under the cooperative death model, will pass
//!   the lock along normally).
//! * Each contender allocates a 16-byte **qnode** (`locked`, `next` words)
//!   from its non-symmetric remotely-accessible buffer space.
//! * `lock`: fetch-and-store (swap) the tail with a pointer to your qnode;
//!   if there was a predecessor, point its `next` at you and spin on your
//!   *local* `locked` word (no remote polling — the MCS property).
//! * `unlock`: compare-and-swap the tail from yourself to NIL; if someone
//!   queued behind you, wait for your `next` to be set and reset the
//!   successor's `locked` word.
//! * A per-image hash table keyed by (lock variable, home image) finds the
//!   qnode of a held lock at `unlock` (an image may hold up to M locks plus
//!   one it is waiting on).

use crate::image::{Image, ImageId};
use crate::remote_ptr::{RemotePtr, NIL};
use openshmem::data::SymPtr;
use openshmem::shmem::Cmp;
use openshmem::{AmHandler, AmTarget};
use pgas_conduit::ctx::AmoOp;
use pgas_conduit::ConduitError;
use std::sync::atomic::Ordering;

/// Size of a queue node in the non-symmetric buffer: `locked` + `next`.
pub(crate) const QNODE_BYTES: usize = 16;

/// Active-message handler behind the MCS protocol's remote word writes
/// (chain link, handoff, holder publication): `arg` is `[offset, value]`
/// as two little-endian u64s, stored into the target heap word. Registered
/// once per image at construction (SPMD-symmetric, like the symmetric
/// allocations the protocol lives in).
pub(crate) struct QnodeSetAm;

impl AmHandler for QnodeSetAm {
    fn execute(&self, t: &mut AmTarget<'_>, arg: &[u8]) -> Option<Vec<u8>> {
        let off = u64::from_le_bytes(arg[0..8].try_into().expect("qnode-set arg")) as usize;
        let val = u64::from_le_bytes(arg[8..16].try_into().expect("qnode-set arg"));
        t.write_u64(off, val);
        None
    }
}

/// Virtual time charged per re-poll while a waiter sits behind a dead
/// queued (non-holder) image, waiting for the handoff chain upstream of it
/// to drain.
const REPAIR_POLL_NS: f64 = 200.0;

/// Pack a [`QnodeSetAm`] argument: target heap word offset + value.
fn qnode_set_arg(word: SymPtr<u64>, val: u64) -> [u8; 16] {
    let mut arg = [0u8; 16];
    arg[0..8].copy_from_slice(&(word.offset() as u64).to_le_bytes());
    arg[8..16].copy_from_slice(&val.to_le_bytes());
    arg
}

/// Ignore a dead target on a fault-aware protocol write (the holder word
/// and the repair path cover it); any other conduit failure is a runtime
/// bug. The one tolerance rule both the chain-write and handoff sites use.
fn tolerate_dead_target(r: Result<(), ConduitError>, what: &str, pe: usize) {
    match r {
        Ok(()) | Err(ConduitError::TargetFailed { .. }) => {}
        Err(e) => panic!("{what} to image {}: {e}", pe + 1),
    }
}

/// A CAF lock variable: one lockable instance per image.
#[derive(Debug, Clone, Copy)]
pub struct CafLock {
    tail: SymPtr<u64>,
    /// 1-based image currently holding this instance (0 = none). Written
    /// only when a fault plan is active, by whoever transfers ownership:
    /// the acquirer on an uncontended acquire / `try_lock` win / repair
    /// steal, the releaser on unlock and handoff.
    holder: SymPtr<u64>,
    /// Allocation generation. Symmetric-heap offsets are recycled by
    /// `shmem_free`, so the tail offset alone cannot identify a lock
    /// variable for the lifetime of an image: a held-lock table entry made
    /// against one variable would alias a different variable allocated
    /// later at the same offset. The generation — unique per `lock_var`
    /// call on each image — disambiguates (0 is reserved for the hidden
    /// `critical` lock, which is allocated once and never freed).
    gen: u64,
}

impl CafLock {
    /// Wrap a pre-allocated 2-word `[tail, holder]` block (the hidden
    /// `critical` lock).
    pub(crate) fn from_raw(words: SymPtr<u64>) -> CafLock {
        CafLock { tail: words.slice(0, 1), holder: words.slice(1, 1), gen: 0 }
    }

    /// The symmetric tail word.
    pub fn tail_ptr(&self) -> SymPtr<u64> {
        self.tail
    }

    /// Table key for the instance on PE `home`.
    fn key(&self, home: usize) -> (usize, u64, usize) {
        (self.tail.offset(), self.gen, home)
    }
}

impl<'m> Image<'m> {
    /// Declare a lock coarray (`type(lock_type) :: lck[*]`). Collective;
    /// returns with every image's instance initialized to unlocked.
    pub fn lock_var(&self) -> CafLock {
        let words = self.shmem().shmalloc::<u64>(2).expect("symmetric heap exhausted for lock");
        self.shmem().write_local(words, &[NIL, 0]);
        self.sync_all();
        let lck = CafLock {
            tail: words.slice(0, 1),
            holder: words.slice(1, 1),
            gen: self.next_lock_gen(),
        };
        self.lock_offsets.borrow_mut().insert(lck.tail.offset(), (lck.gen, words.offset()));
        lck
    }

    /// An array of lock variables (`type(lock_type) :: lck(n)[*]`).
    pub fn lock_vars(&self, n: usize) -> Vec<CafLock> {
        let words =
            self.shmem().shmalloc::<u64>(2 * n).expect("symmetric heap exhausted for locks");
        self.shmem().write_local(words, &vec![NIL; 2 * n]);
        self.sync_all();
        (0..n)
            .map(|i| {
                let lck = CafLock {
                    tail: words.slice(2 * i, 1),
                    holder: words.slice(2 * i + 1, 1),
                    gen: self.next_lock_gen(),
                };
                self.lock_offsets.borrow_mut().insert(lck.tail.offset(), (lck.gen, words.offset()));
                lck
            })
            .collect()
    }

    fn next_lock_gen(&self) -> u64 {
        let g = self.lock_gen.get() + 1;
        self.lock_gen.set(g);
        g
    }

    fn qnode_ptrs(&self, offset: usize) -> (SymPtr<u64>, SymPtr<u64>) {
        let abs = self.nonsym_abs(offset);
        (SymPtr::from_raw_parts(abs, 1), SymPtr::from_raw_parts(abs + 8, 1))
    }

    /// The MCS protocol's remote word write (chain link, handoff, holder
    /// publication). With aggregation on, a remote `atomic_set` would be
    /// *staged* in a coalescing buffer — correct for data, but the lock
    /// protocol needs these control words visible promptly (a waiter spins
    /// on the handoff; the repair path reads the holder word) — so it ships
    /// as one active message instead, executed at the target immediately
    /// and remote-complete at `quiet` like any put. With aggregation off
    /// this is exactly the pre-AM remote atomic.
    fn remote_word_set(&self, pe: usize, word: SymPtr<u64>, val: u64) {
        if self.shmem().ctx().coalescing() {
            self.shmem().am_send(pe, self.qnode_set_am(), &qnode_set_arg(word, val));
        } else {
            self.shmem().atomic_set(word, val, pe);
        }
    }

    /// Fallible [`Self::remote_word_set`], for the fault-aware paths that
    /// tolerate a dead target.
    fn try_remote_word_set(
        &self,
        pe: usize,
        word: SymPtr<u64>,
        val: u64,
    ) -> Result<(), ConduitError> {
        if self.shmem().ctx().coalescing() {
            self.shmem().try_am_send(pe, self.qnode_set_am(), &qnode_set_arg(word, val))
        } else {
            self.shmem().try_amo::<u64>(pe, word, AmoOp::Set(val)).map(|_| ())
        }
    }

    /// The Cray CAF runtime's lock path performs a remote state check
    /// (an extra fetch of the lock word) before mutating it — one reason the
    /// paper measures UHCAF-over-SHMEM locks ~22% faster than Cray CAF's.
    /// We model that behaviour when running as the Cray-CAF baseline.
    fn vendor_lock_overhead(&self, lck: &CafLock, home: usize) {
        if matches!(self.config().backend, crate::config::Backend::CrayCaf) {
            let _ = self.shmem().atomic_fetch(lck.tail, home);
        }
    }

    /// `lock(lck[image])`: acquire the lock instance on `image` (1-based).
    pub fn lock(&self, lck: &CafLock, image: ImageId) {
        let home = self.pe_of(image);
        let key = lck.key(home);
        assert!(
            !self.lock_table.borrow().contains_key(&key),
            "image {} already holds lock {:?} on image {image} (STAT_LOCKED)",
            self.this_image(),
            lck.tail
        );
        self.vendor_lock_overhead(lck, home);
        let q = self
            .alloc_nonsym(QNODE_BYTES)
            .expect("non-symmetric buffer exhausted allocating a lock qnode");
        let (locked, next) = self.qnode_ptrs(q.offset);
        self.shmem().write_local(locked, &[1]);
        self.shmem().write_local(next, &[NIL]);
        let me = RemotePtr::new(self.this_image() - 1, q.offset).pack();
        let prev = self.shmem().swap(lck.tail, me, home);
        match RemotePtr::unpack(prev) {
            Some(pred) => {
                // Chain behind the predecessor and spin locally.
                let pred_next = SymPtr::from_raw_parts(self.nonsym_abs(pred.offset) + 8, 1);
                if self.machine().faults_active() {
                    // The predecessor may already be marked dead (it can
                    // still be the lock holder): the link write is then
                    // undeliverable and unneeded — the repair path observes
                    // ownership through the holder word instead.
                    tolerate_dead_target(
                        self.try_remote_word_set(pred.image, pred_next, me),
                        "lock chain write",
                        pred.image,
                    );
                    self.shmem().quiet();
                    self.wait_or_repair(lck, home, locked, pred);
                } else {
                    self.remote_word_set(pred.image, pred_next, me);
                    self.shmem().quiet();
                    self.shmem().wait_until(locked, Cmp::Eq, 0);
                }
            }
            None => {
                // Uncontended: we are the holder; publish that (fault runs
                // only) so a successor can tell a dead holder from a dead
                // queued waiter.
                if self.machine().faults_active() {
                    self.remote_word_set(home, lck.holder, self.this_image() as u64);
                }
            }
        }
        self.lock_table.borrow_mut().insert(key, q.offset);
    }

    /// Failure-aware MCS spin: wait for the handoff that clears our local
    /// `locked` word, but also wake when the predecessor dies. A dead
    /// predecessor named by the lock's holder word is evicted and the lock
    /// taken over (a *lock repair*, counted and logged); a dead predecessor
    /// that was merely queued keeps its place — under the cooperative death
    /// model its thread still runs and will pass the lock along — so we
    /// re-poll after a charged delay until the chain upstream drains.
    fn wait_or_repair(&self, lck: &CafLock, home: usize, locked: SymPtr<u64>, pred: RemotePtr) {
        let m = self.machine();
        let me0 = self.this_image() - 1;
        let word = m.heap(me0).atomic64(locked.offset());
        loop {
            m.wait_on(me0, || {
                word.load(Ordering::Acquire) == 0 || m.pe_failed(pred.image) || m.pe_failed(me0)
            });
            if m.pe_failed(me0) && word.load(Ordering::Acquire) != 0 {
                // This image itself has failed while queued: stop waiting so
                // its thread can observe the death and return. The table
                // entry it keeps is the expected leak of a failed image.
                return;
            }
            if word.load(Ordering::Acquire) == 0 {
                // Normal handoff arrived: charge the wait through the
                // ordinary path (clock lift + sanitizer sync edge).
                self.shmem().wait_until(locked, Cmp::Eq, 0);
                return;
            }
            let holder = self.shmem().atomic_fetch(lck.holder, home);
            if holder == pred.image as u64 + 1 {
                // The dead predecessor owns the lock: evict it.
                self.remote_word_set(home, lck.holder, me0 as u64 + 1);
                self.shmem().quiet();
                let stats = m.stats();
                pgas_machine::stats::Stats::bump(&stats.lock_repairs);
                if m.metrics().enabled() {
                    m.metrics().count(me0, "lock_repair", Some(m.node_of(home)), 1);
                }
                stats.record_fault(pgas_machine::stats::FaultEvent {
                    pe: me0,
                    op: "lock",
                    target: pred.image,
                    kind: "lock-repair",
                    attempt: 0,
                    delay_ns: 0,
                    at_ns: m.clock(me0),
                });
                return;
            }
            // The dead predecessor was only queued; the handoff is still
            // somewhere upstream. Charge a poll interval and re-check.
            m.advance(me0, REPAIR_POLL_NS);
        }
    }

    /// `lock(lck[image], acquired_lock=ok)`: non-blocking attempt; returns
    /// whether the lock was acquired.
    pub fn try_lock(&self, lck: &CafLock, image: ImageId) -> bool {
        let home = self.pe_of(image);
        let key = lck.key(home);
        if self.lock_table.borrow().contains_key(&key) {
            // Fortran: acquired_lock=.false. if this image already holds it.
            return false;
        }
        let q = self
            .alloc_nonsym(QNODE_BYTES)
            .expect("non-symmetric buffer exhausted allocating a lock qnode");
        let (locked, next) = self.qnode_ptrs(q.offset);
        self.shmem().write_local(locked, &[0]);
        self.shmem().write_local(next, &[NIL]);
        let me = RemotePtr::new(self.this_image() - 1, q.offset).pack();
        if self.shmem().cswap(lck.tail, NIL, me, home) == NIL {
            if self.machine().faults_active() {
                self.remote_word_set(home, lck.holder, self.this_image() as u64);
            }
            self.lock_table.borrow_mut().insert(key, q.offset);
            true
        } else {
            self.free_nonsym(q).expect("qnode free");
            false
        }
    }

    /// `unlock(lck[image])`.
    pub fn unlock(&self, lck: &CafLock, image: ImageId) {
        let home = self.pe_of(image);
        let key = lck.key(home);
        let q_off = self.lock_table.borrow_mut().remove(&key).unwrap_or_else(|| {
            panic!(
                "image {} does not hold lock {:?} on image {image} (STAT_UNLOCKED)",
                self.this_image(),
                lck.tail
            )
        });
        self.vendor_lock_overhead(lck, home);
        let (_, next) = self.qnode_ptrs(q_off);
        let me = RemotePtr::new(self.this_image() - 1, q_off).pack();
        let faults = self.machine().faults_active();
        if faults {
            // Renounce ownership *before* releasing the tail: between the
            // clear and the next owner's claim the holder word reads 0,
            // which the repair path treats as "no eviction" — safe on both
            // sides of the window.
            self.remote_word_set(home, lck.holder, 0);
            self.shmem().quiet();
        }
        let old = self.shmem().cswap(lck.tail, me, NIL, home);
        if old != me {
            // A successor swapped the tail: wait for it to link itself,
            // then hand the lock over by clearing its local spin word.
            let next_val = self.shmem().wait_until(next, Cmp::Ne, NIL);
            let succ = RemotePtr::unpack(next_val).expect("corrupt qnode next pointer");
            if faults {
                // Transfer ownership before waking the successor so the
                // holder word never lags the actual owner.
                self.remote_word_set(home, lck.holder, succ.image as u64 + 1);
            }
            let succ_locked = SymPtr::from_raw_parts(self.nonsym_abs(succ.offset), 1);
            if faults {
                // A successor that died while queued cannot be woken; the
                // holder word (set to it above) already publishes the
                // transfer, so a live waiter behind it can repair.
                tolerate_dead_target(
                    self.try_remote_word_set(succ.image, succ_locked, 0),
                    "lock handoff",
                    succ.image,
                );
            } else {
                self.remote_word_set(succ.image, succ_locked, 0);
            }
            self.shmem().quiet();
        }
        self.free_nonsym(crate::image::NonSymHandle { offset: q_off, len: QNODE_BYTES })
            .expect("qnode free");
    }

    /// Does this image currently hold `lck[image]`?
    pub fn holds_lock(&self, lck: &CafLock, image: ImageId) -> bool {
        let home = self.pe_of(image);
        self.lock_table.borrow().contains_key(&lck.key(home))
    }

    /// `lock(lck[image], stat=s)`: like [`Self::lock`] but reporting the
    /// Fortran error condition instead of panicking when this image already
    /// holds the lock.
    pub fn lock_stat(&self, lck: &CafLock, image: ImageId) -> Result<(), LockStat> {
        if self.machine().pe_failed(self.pe_of(image)) {
            return Err(LockStat::StatFailedImage);
        }
        if self.holds_lock(lck, image) {
            return Err(LockStat::StatLocked);
        }
        self.lock(lck, image);
        Ok(())
    }

    /// `unlock(lck[image], stat=s)`: error-reporting unlock. A lock homed
    /// on a failed image cannot be released; the held-table entry remains
    /// (and is counted as a leak at teardown).
    pub fn unlock_stat(&self, lck: &CafLock, image: ImageId) -> Result<(), LockStat> {
        if self.machine().pe_failed(self.pe_of(image)) {
            return Err(LockStat::StatFailedImage);
        }
        if !self.holds_lock(lck, image) {
            return Err(LockStat::StatUnlocked);
        }
        self.unlock(lck, image);
        Ok(())
    }
}

/// Fortran lock statement error conditions (ISO_FORTRAN_ENV's STAT_LOCKED /
/// STAT_UNLOCKED).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockStat {
    /// The image already holds this lock (lock statement).
    StatLocked,
    /// The image does not hold this lock (unlock statement).
    StatUnlocked,
    /// The lock's home image has failed (Fortran 2018 STAT_FAILED_IMAGE).
    StatFailedImage,
}

impl std::fmt::Display for LockStat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockStat::StatLocked => write!(f, "STAT_LOCKED: image already holds the lock"),
            LockStat::StatUnlocked => write!(f, "STAT_UNLOCKED: image does not hold the lock"),
            LockStat::StatFailedImage => {
                write!(f, "STAT_FAILED_IMAGE: the lock's home image has failed")
            }
        }
    }
}

impl std::error::Error for LockStat {}

impl From<crate::failure::CafStat> for LockStat {
    fn from(s: crate::failure::CafStat) -> LockStat {
        match s {
            crate::failure::CafStat::FailedImage { .. }
            | crate::failure::CafStat::CommFailure { .. } => LockStat::StatFailedImage,
        }
    }
}

impl From<ConduitError> for LockStat {
    /// One conversion chain for every layer: `ConduitError` (from the
    /// conduit's `submit` path) → [`crate::failure::CafStat`] → `LockStat`,
    /// so `RetriesExhausted`/`TargetFailed`/STAT_FAILED_IMAGE never get
    /// re-interpreted by per-method match arms.
    fn from(e: ConduitError) -> LockStat {
        crate::failure::CafStat::from(e).into()
    }
}

#[cfg(test)]
mod tests {

    use crate::config::{Backend, CafConfig};
    use crate::runtime::{run_caf, run_caf_result};
    use pgas_machine::{generic_smp, titan, Platform};

    fn cfg() -> CafConfig {
        CafConfig::new(Backend::Shmem, Platform::GenericSmp)
    }

    fn mcfg(n: usize) -> pgas_machine::MachineConfig {
        generic_smp(n).with_heap_bytes(1 << 18)
    }

    #[test]
    fn mutual_exclusion_counter_torture() {
        let iters = 100;
        let out = run_caf(mcfg(8), cfg(), |img| {
            let lck = img.lock_var();
            let c = img.coarray::<i64>(&[1]).unwrap();
            img.sync_all();
            for _ in 0..iters {
                img.lock(&lck, 1);
                // Unprotected RMW on image 1 — only correct under the lock.
                let v = c.get_elem(img, 1, &[0]);
                c.put_elem(img, 1, &[0], v + 1);
                img.unlock(&lck, 1);
            }
            img.sync_all();
            c.get_elem(img, 1, &[0])
        });
        for r in out.results {
            assert_eq!(r, 8 * iters);
        }
    }

    #[test]
    fn per_image_instances_are_independent() {
        // Image 1 holds lck[1]; image 2 can still take lck[2] without
        // blocking — the property OpenSHMEM's global locks lack.
        let out = run_caf(mcfg(2), cfg(), |img| {
            let lck = img.lock_var();
            img.sync_all();
            let mine = img.this_image();
            img.lock(&lck, mine);
            img.sync_all(); // both hold simultaneously: no deadlock
            let held = img.holds_lock(&lck, mine);
            img.unlock(&lck, mine);
            img.sync_all();
            held
        });
        assert_eq!(out.results, vec![true, true]);
    }

    #[test]
    fn one_image_can_hold_many_locks() {
        run_caf(mcfg(3), cfg(), |img| {
            let locks = img.lock_vars(5);
            if img.this_image() == 1 {
                for (i, l) in locks.iter().enumerate() {
                    img.lock(l, i % 3 + 1);
                }
                // M held locks -> M live qnodes.
                assert_eq!(img.nonsym_in_use(), 5 * 16);
                for (i, l) in locks.iter().enumerate() {
                    img.unlock(l, i % 3 + 1);
                }
                assert_eq!(img.nonsym_in_use(), 0);
            }
            img.sync_all();
        });
    }

    #[test]
    fn try_lock_contention() {
        let out = run_caf(mcfg(4), cfg(), |img| {
            let lck = img.lock_var();
            img.sync_all();
            let got = img.try_lock(&lck, 1);
            img.sync_all();
            let held_count_probe = got; // collect per-image outcome
            if got {
                img.unlock(&lck, 1);
            }
            img.sync_all();
            // After release, try again: exactly one winner per round.
            let second = img.try_lock(&lck, 1);
            img.sync_all();
            if second {
                img.unlock(&lck, 1);
            }
            img.sync_all();
            (held_count_probe, second)
        });
        assert_eq!(out.results.iter().filter(|r| r.0).count(), 1, "one first-round winner");
        assert_eq!(out.results.iter().filter(|r| r.1).count(), 1, "one second-round winner");
    }

    #[test]
    fn try_lock_on_held_lock_by_self_is_false() {
        run_caf(mcfg(1), cfg(), |img| {
            let lck = img.lock_var();
            assert!(img.try_lock(&lck, 1));
            assert!(!img.try_lock(&lck, 1), "re-acquire by holder must fail");
            img.unlock(&lck, 1);
            assert!(img.try_lock(&lck, 1));
            img.unlock(&lck, 1);
        });
    }

    #[test]
    fn relock_already_held_is_an_error() {
        let err = run_caf_result(mcfg(1), cfg(), |img| {
            let lck = img.lock_var();
            img.lock(&lck, 1);
            img.lock(&lck, 1);
        })
        .unwrap_err();
        assert!(err.message.contains("STAT_LOCKED"), "got: {}", err.message);
    }

    #[test]
    fn unlock_without_holding_is_an_error() {
        let err = run_caf_result(mcfg(1), cfg(), |img| {
            let lck = img.lock_var();
            img.unlock(&lck, 1);
        })
        .unwrap_err();
        assert!(err.message.contains("STAT_UNLOCKED"), "got: {}", err.message);
    }

    #[test]
    fn fifo_handoff_under_queueing() {
        // With everyone queued before the holder releases, MCS hands the
        // lock over in queue order; we verify every image got the lock
        // exactly once per round (fairness proxy: the counter never skips).
        let out = run_caf(mcfg(6), cfg(), |img| {
            let lck = img.lock_var();
            let c = img.coarray::<i64>(&[1]).unwrap();
            img.sync_all();
            let mut observed = Vec::new();
            for _ in 0..10 {
                img.lock(&lck, 1);
                let v = c.get_elem(img, 1, &[0]);
                observed.push(v);
                c.put_elem(img, 1, &[0], v + 1);
                img.unlock(&lck, 1);
            }
            img.sync_all();
            (observed, c.get_elem(img, 1, &[0]))
        });
        for (obs, total) in out.results {
            assert_eq!(total, 60);
            // Each image's observations are strictly increasing.
            assert!(obs.windows(2).all(|w| w[1] > w[0]), "lock handoffs went backwards: {obs:?}");
        }
    }

    #[test]
    fn locks_on_remote_home_images_work_across_nodes() {
        let out = run_caf(
            titan(2, 2).with_heap_bytes(1 << 18),
            CafConfig::new(Backend::Shmem, Platform::Titan),
            |img| {
                let lck = img.lock_var();
                let c = img.coarray::<i64>(&[1]).unwrap();
                img.sync_all();
                // Everyone locks the instance on the *last* image (other node).
                let home = img.num_images();
                for _ in 0..20 {
                    img.lock(&lck, home);
                    let v = c.get_elem(img, home, &[0]);
                    c.put_elem(img, home, &[0], v + 1);
                    img.unlock(&lck, home);
                }
                img.sync_all();
                c.get_elem(img, home, &[0])
            },
        );
        for r in out.results {
            assert_eq!(r, 80);
        }
    }

    #[test]
    fn lock_stat_reports_error_conditions() {
        run_caf(mcfg(2), cfg(), |img| {
            let lck = img.lock_var();
            img.sync_all();
            assert_eq!(img.unlock_stat(&lck, 1), Err(super::LockStat::StatUnlocked));
            assert_eq!(img.lock_stat(&lck, img.this_image()), Ok(()));
            assert_eq!(img.lock_stat(&lck, img.this_image()), Err(super::LockStat::StatLocked));
            assert_eq!(img.unlock_stat(&lck, img.this_image()), Ok(()));
            img.sync_all();
        });
    }

    #[test]
    fn freed_and_reallocated_lock_slot_does_not_alias_held_entry() {
        // Deallocating a held lock variable is a program error per the
        // Fortran standard, but it must not corrupt *other* lock
        // variables: when the symmetric allocator recycles the freed tail
        // word for a new lock variable, the stale held-lock table entry
        // must not make the new lock appear held. Before the generation
        // key, the table was keyed by (offset, home) alone, so the new
        // variable aliased the old entry and `lock` died with a false
        // STAT_LOCKED.
        run_caf(mcfg(2), cfg(), |img| {
            let lck1 = img.lock_var();
            if img.this_image() == 1 {
                img.lock(&lck1, 1);
            }
            img.sync_all();
            // Erroneously deallocate while image 1 still holds it, then
            // allocate afresh: the allocator reuses the slot.
            img.shmem().shfree(lck1.tail_ptr()).unwrap();
            let lck2 = img.lock_var();
            assert_eq!(
                lck2.tail_ptr().offset(),
                lck1.tail_ptr().offset(),
                "repro requires the allocator to recycle the tail slot"
            );
            assert!(!img.holds_lock(&lck2, 1), "new lock variable must start unheld");
            if img.this_image() == 1 {
                img.lock(&lck2, 1);
                img.unlock(&lck2, 1);
            }
            img.sync_all();
        });
    }

    #[test]
    fn qnodes_come_from_nonsym_space_and_are_recycled() {
        run_caf(mcfg(2), cfg(), |img| {
            let lck = img.lock_var();
            img.sync_all();
            let before = img.nonsym_in_use();
            for _ in 0..100 {
                img.lock(&lck, 2);
                img.unlock(&lck, 2);
            }
            assert_eq!(img.nonsym_in_use(), before, "qnode leak");
            img.sync_all();
        });
    }
}
