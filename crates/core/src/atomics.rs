//! CAF atomic subroutines (`atomic_define`, `atomic_ref`, `atomic_add`,
//! `atomic_cas`, bitwise variants) — the direct mappings of the paper's
//! Table II onto OpenSHMEM atomics.

use crate::image::{Image, ImageId};
use openshmem::data::SymPtr;

/// A scalar atomic coarray variable (`integer(atomic_int_kind) :: a[*]`).
#[derive(Debug, Clone, Copy)]
pub struct AtomicVar {
    word: SymPtr<i64>,
}

impl AtomicVar {
    /// The underlying symmetric word.
    pub fn ptr(&self) -> SymPtr<i64> {
        self.word
    }
}

impl<'m> Image<'m> {
    /// Declare an atomic coarray variable, initialized to `init` everywhere.
    /// Collective.
    pub fn atomic_var(&self, init: i64) -> AtomicVar {
        let word =
            self.shmem().shmalloc::<i64>(1).expect("symmetric heap exhausted for atomic var");
        self.shmem().write_local(word, &[init]);
        self.sync_all();
        AtomicVar { word }
    }

    /// `call atomic_define(a[image], value)`.
    pub fn atomic_define(&self, a: &AtomicVar, image: ImageId, value: i64) {
        self.shmem().atomic_set(a.word, value, self.pe_of(image));
        self.statement_quiet();
    }

    /// `call atomic_ref(value, a[image])`.
    pub fn atomic_ref(&self, a: &AtomicVar, image: ImageId) -> i64 {
        self.shmem().atomic_fetch(a.word, self.pe_of(image))
    }

    /// `call atomic_add(a[image], value)` — maps to `shmem_add`.
    pub fn atomic_add(&self, a: &AtomicVar, image: ImageId, value: i64) {
        self.shmem().add(a.word, value, self.pe_of(image));
        self.statement_quiet();
    }

    /// `call atomic_fetch_add(a[image], value, old)` — maps to `shmem_fadd`.
    pub fn atomic_fetch_add(&self, a: &AtomicVar, image: ImageId, value: i64) -> i64 {
        self.shmem().fadd(a.word, value, self.pe_of(image))
    }

    /// `call atomic_cas(a[image], old, compare, new)` — maps to
    /// `shmem_cswap`; returns the previous value.
    pub fn atomic_cas(&self, a: &AtomicVar, image: ImageId, compare: i64, new: i64) -> i64 {
        self.shmem().cswap(a.word, compare, new, self.pe_of(image))
    }

    /// `call atomic_and(a[image], value)` / `atomic_fetch_and`.
    pub fn atomic_and(&self, a: &AtomicVar, image: ImageId, value: i64) {
        self.shmem().atomic_and(a.word, value, self.pe_of(image));
        self.statement_quiet();
    }

    pub fn atomic_fetch_and(&self, a: &AtomicVar, image: ImageId, value: i64) -> i64 {
        self.shmem().fetch_and(a.word, value, self.pe_of(image))
    }

    /// `call atomic_or(a[image], value)` / `atomic_fetch_or`.
    pub fn atomic_or(&self, a: &AtomicVar, image: ImageId, value: i64) {
        self.shmem().atomic_or(a.word, value, self.pe_of(image));
        self.statement_quiet();
    }

    pub fn atomic_fetch_or(&self, a: &AtomicVar, image: ImageId, value: i64) -> i64 {
        self.shmem().fetch_or(a.word, value, self.pe_of(image))
    }

    /// `call atomic_xor(a[image], value)` / `atomic_fetch_xor`.
    pub fn atomic_xor(&self, a: &AtomicVar, image: ImageId, value: i64) {
        self.shmem().atomic_xor(a.word, value, self.pe_of(image));
        self.statement_quiet();
    }

    pub fn atomic_fetch_xor(&self, a: &AtomicVar, image: ImageId, value: i64) -> i64 {
        self.shmem().fetch_xor(a.word, value, self.pe_of(image))
    }

    /// `call atomic_swap(a[image], value, old)` (OpenUH extension) — maps to
    /// `shmem_swap`, the fetch-and-store the MCS lock relies on.
    pub fn atomic_swap(&self, a: &AtomicVar, image: ImageId, value: i64) -> i64 {
        self.shmem().swap(a.word, value, self.pe_of(image))
    }
}

#[cfg(test)]
mod tests {

    use crate::config::{Backend, CafConfig};
    use crate::runtime::run_caf;
    use pgas_machine::{generic_smp, Platform};

    fn cfg() -> CafConfig {
        CafConfig::new(Backend::Shmem, Platform::GenericSmp)
    }

    fn mcfg(n: usize) -> pgas_machine::MachineConfig {
        generic_smp(n).with_heap_bytes(1 << 17)
    }

    #[test]
    fn define_and_ref_across_images() {
        let out = run_caf(mcfg(3), cfg(), |img| {
            let a = img.atomic_var(0);
            if img.this_image() == 1 {
                for target in 1..=3 {
                    img.atomic_define(&a, target, target as i64 * 11);
                }
            }
            img.sync_all();
            img.atomic_ref(&a, img.this_image())
        });
        assert_eq!(out.results, vec![11, 22, 33]);
    }

    #[test]
    fn concurrent_fetch_add_is_linearizable() {
        let out = run_caf(mcfg(8), cfg(), |img| {
            let a = img.atomic_var(0);
            let mut seen = Vec::new();
            for _ in 0..50 {
                seen.push(img.atomic_fetch_add(&a, 1, 1));
            }
            img.sync_all();
            (seen, img.atomic_ref(&a, 1))
        });
        let mut all: Vec<i64> = Vec::new();
        for (seen, total) in out.results {
            assert_eq!(total, 400);
            all.extend(seen);
        }
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<i64>>(), "every ticket exactly once");
    }

    #[test]
    fn cas_success_and_failure() {
        let out = run_caf(mcfg(1), cfg(), |img| {
            let a = img.atomic_var(5);
            let miss = img.atomic_cas(&a, 1, 4, 9);
            let hit = img.atomic_cas(&a, 1, 5, 9);
            (miss, hit, img.atomic_ref(&a, 1))
        });
        assert_eq!(out.results[0], (5, 5, 9));
    }

    #[test]
    fn bitwise_ops_and_swap() {
        let out = run_caf(mcfg(1), cfg(), |img| {
            let a = img.atomic_var(0b1111);
            img.atomic_and(&a, 1, 0b1010);
            let x = img.atomic_fetch_or(&a, 1, 0b0100);
            img.atomic_xor(&a, 1, 0b0001);
            let old = img.atomic_swap(&a, 1, -7);
            (x, old, img.atomic_ref(&a, 1))
        });
        assert_eq!(out.results[0], (0b1010, 0b1111, -7));
    }

    #[test]
    fn negative_values_roundtrip() {
        let out = run_caf(mcfg(2), cfg(), |img| {
            let a = img.atomic_var(-100);
            if img.this_image() == 2 {
                img.atomic_add(&a, 1, -28);
            }
            img.sync_all();
            img.atomic_ref(&a, 1)
        });
        for r in out.results {
            assert_eq!(r, -128);
        }
    }
}
