//! CAF events (`event_type` / `event post` / `event wait` / `event_query`)
//! — one of the "additional features, not presently in the Fortran standard
//! ... available in the CAF implementation in OpenUH" the paper mentions
//! (standardized later in Fortran 2018).
//!
//! An event variable is a symmetric counter word; `post` is a remote atomic
//! increment, `wait` spins locally (via `shmem_wait_until`) and then
//! consumes the requested count.

use crate::failure::CafStat;
use crate::image::{Image, ImageId};
use openshmem::data::SymPtr;
use openshmem::shmem::Cmp;
use std::sync::atomic::Ordering;

/// An event coarray variable (`type(event_type) :: ev[*]`).
#[derive(Debug, Clone, Copy)]
pub struct EventVar {
    count: SymPtr<u64>,
    /// Already-consumed posts (local bookkeeping word, stored symmetrically
    /// right after the counter so the pair stays one allocation).
    consumed: SymPtr<u64>,
}

impl<'m> Image<'m> {
    /// Declare an event coarray variable. Collective.
    pub fn event_var(&self) -> EventVar {
        let words =
            self.shmem().shmalloc::<u64>(2).expect("symmetric heap exhausted for event var");
        self.shmem().write_local(words, &[0, 0]);
        self.sync_all();
        EventVar { count: words.slice(0, 1), consumed: words.slice(1, 1) }
    }

    /// `event post(ev[image])`: increment the remote counter. Completes
    /// prior writes first (the Fortran semantics make `post` a release
    /// operation).
    pub fn event_post(&self, ev: &EventVar, image: ImageId) {
        self.shmem().quiet();
        self.shmem().inc(ev.count, self.pe_of(image));
        self.shmem().quiet();
    }

    /// `event wait(ev [, until_count])` on this image's own event variable:
    /// block until `until_count` un-consumed posts are available, then
    /// consume them.
    pub fn event_wait(&self, ev: &EventVar, until_count: u64) {
        assert!(until_count > 0, "event wait needs a positive count");
        let consumed = self.shmem().read_local_one(ev.consumed);
        let target = consumed + until_count;
        self.shmem().wait_until(ev.count, Cmp::Ge, target);
        self.shmem().write_local(ev.consumed, &[target]);
    }

    /// `event wait(ev, until_count, stat=s)`: failure-aware wait on this
    /// image's event variable. `poster` (1-based) is the image expected to
    /// supply the missing posts; if it dies before enough arrive, the wait
    /// abandons and reports STAT_FAILED_IMAGE instead of hanging. Posts
    /// that did arrive stay un-consumed.
    pub fn event_wait_stat(
        &self,
        ev: &EventVar,
        until_count: u64,
        poster: ImageId,
    ) -> Result<(), CafStat> {
        assert!(until_count > 0, "event wait needs a positive count");
        let m = self.machine();
        if !m.faults_active() {
            self.event_wait(ev, until_count);
            return Ok(());
        }
        let me0 = self.this_image() - 1;
        if m.pe_failed(me0) {
            return Err(CafStat::FailedImage { image: me0 + 1 });
        }
        let pe = self.pe_of(poster);
        let consumed = self.shmem().read_local_one(ev.consumed);
        let target = consumed + until_count;
        let word = m.heap(me0).atomic64(ev.count.offset());
        m.wait_on(me0, || word.load(Ordering::Acquire) >= target || m.pe_failed(pe));
        if word.load(Ordering::Acquire) < target {
            return Err(CafStat::FailedImage { image: poster });
        }
        // Charge the wait and take the sync edge through the ordinary path.
        self.shmem().wait_until(ev.count, Cmp::Ge, target);
        self.shmem().write_local(ev.consumed, &[target]);
        Ok(())
    }

    /// `call event_query(ev, count)`: un-consumed posts on this image's
    /// event variable.
    pub fn event_query(&self, ev: &EventVar) -> u64 {
        let posted = self.shmem().read_local_one(ev.count);
        posted - self.shmem().read_local_one(ev.consumed)
    }
}

#[cfg(test)]
mod tests {

    use crate::config::{Backend, CafConfig};
    use crate::runtime::run_caf;
    use pgas_machine::{generic_smp, Platform};

    fn cfg() -> CafConfig {
        CafConfig::new(Backend::Shmem, Platform::GenericSmp)
    }

    fn mcfg(n: usize) -> pgas_machine::MachineConfig {
        generic_smp(n).with_heap_bytes(1 << 17)
    }

    #[test]
    fn producer_consumer_handoff() {
        let out = run_caf(mcfg(2), cfg(), |img| {
            let ev = img.event_var();
            let c = img.coarray::<i64>(&[1]).unwrap();
            if img.this_image() == 1 {
                c.put_to(img, 2, &[99]);
                img.event_post(&ev, 2); // post implies completion of the put
                0
            } else {
                img.event_wait(&ev, 1);
                c.read_local(img)[0]
            }
        });
        assert_eq!(out.results[1], 99);
    }

    #[test]
    fn wait_for_multiple_posts() {
        let out = run_caf(mcfg(4), cfg(), |img| {
            let ev = img.event_var();
            if img.this_image() == 1 {
                img.event_wait(&ev, 3); // one post from each other image
                img.event_query(&ev)
            } else {
                img.event_post(&ev, 1);
                0
            }
        });
        assert_eq!(out.results[0], 0, "all three posts consumed");
    }

    #[test]
    fn query_counts_unconsumed() {
        let out = run_caf(mcfg(2), cfg(), |img| {
            let ev = img.event_var();
            img.sync_all();
            if img.this_image() == 2 {
                for _ in 0..5 {
                    img.event_post(&ev, 1);
                }
            }
            img.sync_all();
            if img.this_image() == 1 {
                let before = img.event_query(&ev);
                img.event_wait(&ev, 2);
                let after = img.event_query(&ev);
                (before, after)
            } else {
                (0, 0)
            }
        });
        assert_eq!(out.results[0], (5, 3));
    }

    #[test]
    fn repeated_rounds_accumulate_correctly() {
        let out = run_caf(mcfg(2), cfg(), |img| {
            let ev = img.event_var();
            for _ in 0..10 {
                if img.this_image() == 2 {
                    img.event_post(&ev, 1);
                } else {
                    img.event_wait(&ev, 1);
                }
            }
            if img.this_image() == 1 {
                img.event_query(&ev)
            } else {
                0
            }
        });
        assert_eq!(out.results[0], 0);
    }
}
