//! The image execution context — CAF's equivalent of a PE, with the
//! runtime state the paper's translation needs (non-symmetric buffer space,
//! sync-images counters, the held-locks table).

use crate::config::CafConfig;
use crate::failure::CafStat;
use openshmem::alloc::{AllocError, SymAlloc};
use openshmem::data::{Scalar, SymPtr};
use openshmem::shmem::{Cmp, Shmem, ShmemConfig};
use openshmem::AmHandlerId;
use pgas_machine::machine::{Machine, Pe};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// 1-based image index, as in Fortran.
pub type ImageId = usize;

/// Handle to a block of this image's non-symmetric, remotely accessible
/// buffer space (offsets are relative to the buffer, ready for
/// [`crate::remote_ptr::RemotePtr`] packing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonSymHandle {
    pub offset: usize,
    pub len: usize,
}

/// One CAF image: wraps the OpenSHMEM context plus the translation state of
/// §IV of the paper.
pub struct Image<'m> {
    shmem: Shmem<'m>,
    cfg: CafConfig,
    /// Symmetric buffer out of which non-symmetric remotely-accessible data
    /// is managed (paper §IV-A): "we shmalloc a buffer of equal size on all
    /// PEs at the beginning of the program, and explicitly manage
    /// non-symmetric ... data allocations out of this buffer."
    nonsym_base: SymPtr<u8>,
    nonsym_alloc: RefCell<SymAlloc>,
    /// Per-source-image arrival counters for `sync images` (also used by
    /// the failure-aware waits in `crate::failure`).
    pub(crate) sync_counters: SymPtr<u64>,
    pub(crate) sync_expected: RefCell<Vec<u64>>,
    /// Locks currently held (or being acquired) by this image:
    /// (lock variable offset, allocation generation, target image 0-based)
    /// → qnode offset. The hash-table lookup of §IV-D. The generation
    /// component keeps a stale entry from aliasing a *different* lock
    /// variable whose tail word was later allocated at the same symmetric
    /// offset (shmem_free + shmalloc reuse).
    pub(crate) lock_table: RefCell<HashMap<(usize, u64, usize), usize>>,
    /// Allocation generations handed out to lock variables; see
    /// `lock_table`.
    pub(crate) lock_gen: std::cell::Cell<u64>,
    /// Current occupant of each lock-variable tail offset this image has
    /// created: tail offset → (generation, symmetric block base). The
    /// teardown audit compares held `lock_table` entries against this to
    /// catch lock variables deallocated (or recycled) while still held —
    /// the stale-lock hazard.
    pub(crate) lock_offsets: RefCell<HashMap<usize, (u64, usize)>>,
    /// The hidden lock variable backing `critical` sections (a 2-word
    /// [tail, holder] block, like every lock variable).
    critical_lock: SymPtr<u64>,
    /// The MCS protocol's remote-word-set active message (chain link,
    /// handoff, holder publication), registered symmetrically at
    /// construction; used when the conduit aggregates small ops.
    qnode_set_am: AmHandlerId,
}

impl<'m> Image<'m> {
    /// Initialize the runtime on this PE. Collective: every PE constructs
    /// with an identical `cfg`.
    pub fn new(pe: Pe<'m>, cfg: CafConfig) -> Image<'m> {
        let profile = cfg.backend.profile(cfg.platform);
        let shmem = Shmem::new(pe, ShmemConfig::new(profile).with_options(cfg.ctx_options()));
        if matches!(cfg.strided_algorithm(), crate::config::StridedAlgorithm::Tuned) {
            // Warm the per-(platform, profile) calibration memo so transfer
            // calls only pay a map lookup. Costs no virtual time: the
            // planner probes the cost model's pure estimators.
            let _ = crate::planner::TunedPlanner::for_shmem(&shmem);
        }
        let n = shmem.n_pes();
        let nonsym_base = shmem
            .shmalloc::<u8>(cfg.nonsym_bytes)
            .expect("symmetric heap too small for the non-symmetric buffer space");
        let sync_counters =
            shmem.shmalloc::<u64>(n).expect("symmetric heap too small for sync-images counters");
        let critical_lock =
            shmem.shmalloc::<u64>(2).expect("symmetric heap too small for the critical lock");
        let qnode_set_am = shmem.register_am(Rc::new(crate::locks::QnodeSetAm));
        Image {
            nonsym_alloc: RefCell::new(SymAlloc::new(cfg.nonsym_bytes)),
            nonsym_base,
            sync_counters,
            sync_expected: RefCell::new(vec![0; n]),
            lock_table: RefCell::new(HashMap::new()),
            lock_gen: std::cell::Cell::new(0),
            lock_offsets: RefCell::new(HashMap::new()),
            critical_lock,
            qnode_set_am,
            shmem,
            cfg,
        }
    }

    /// The MCS remote-word-set active-message handler id (see
    /// [`crate::locks::QnodeSetAm`]).
    #[inline]
    pub(crate) fn qnode_set_am(&self) -> AmHandlerId {
        self.qnode_set_am
    }

    /// `this_image()`: 1-based, as in Fortran.
    #[inline]
    pub fn this_image(&self) -> ImageId {
        self.shmem.my_pe() + 1
    }

    /// `num_images()`.
    #[inline]
    pub fn num_images(&self) -> usize {
        self.shmem.n_pes()
    }

    /// The OpenSHMEM layer beneath this image.
    #[inline]
    pub fn shmem(&self) -> &Shmem<'m> {
        &self.shmem
    }

    /// The machine the job runs on.
    #[inline]
    pub fn machine(&self) -> &'m Machine {
        self.shmem.machine()
    }

    /// Runtime configuration.
    #[inline]
    pub fn config(&self) -> &CafConfig {
        &self.cfg
    }

    /// Convert a 1-based image index to a PE index, with bounds checking.
    /// Public so applications can address lower layers (e.g. active
    /// messages through [`Shmem`]) in image terms.
    #[inline]
    pub fn pe_of(&self, image: ImageId) -> usize {
        assert!(
            (1..=self.num_images()).contains(&image),
            "image {image} out of range 1..={}",
            self.num_images()
        );
        image - 1
    }

    /// Issue the post-statement `shmem_quiet` the translation requires
    /// (§IV-B), unless disabled for failure-injection tests.
    #[inline]
    pub(crate) fn statement_quiet(&self) {
        if self.cfg.insert_quiet {
            self.shmem.quiet();
        }
    }

    /// [`Self::statement_quiet`] for the stat-bearing accessors: with
    /// small-op coalescing a put *stages* successfully and its target may
    /// die before the flush, so the failure can only surface at the
    /// statement's completing quiet — as a `stat=`, not a panic.
    #[inline]
    pub(crate) fn try_statement_quiet(&self) -> Result<(), CafStat> {
        if self.cfg.insert_quiet {
            self.shmem.try_quiet()?;
        }
        Ok(())
    }

    // ---- image control ------------------------------------------------------

    /// `sync all`: global barrier with memory completion.
    pub fn sync_all(&self) {
        self.shmem.barrier_all();
    }

    /// `sync images(list)`: pairwise synchronization with each image in
    /// `list` (1-based). Each party counts the other's arrivals; the
    /// counters are symmetric words updated with remote atomics.
    pub fn sync_images(&self, images: &[ImageId]) {
        let me0 = self.this_image() - 1;
        // CAF requires prior remote writes to be visible first.
        self.shmem.quiet();
        for &img in images {
            let pe = self.pe_of(img);
            self.shmem.inc(self.sync_counters.at(me0), pe);
        }
        self.shmem.quiet();
        let mut expected = self.sync_expected.borrow_mut();
        for &img in images {
            let pe = self.pe_of(img);
            expected[pe] += 1;
            self.shmem.wait_until(self.sync_counters.at(pe), Cmp::Ge, expected[pe]);
        }
    }

    /// `sync images(*)`: synchronize with every image.
    pub fn sync_images_all(&self) {
        let all: Vec<ImageId> = (1..=self.num_images()).collect();
        self.sync_images(&all);
    }

    /// `sync memory`: complete all outstanding remote accesses by this image
    /// without any rendezvous (the memory-fence-only image control
    /// statement). Maps to `shmem_quiet`.
    pub fn sync_memory(&self) {
        self.shmem.quiet();
    }

    // ---- non-symmetric buffer space ------------------------------------------

    /// Allocate remotely accessible, non-symmetric storage (derived-type
    /// components, lock qnodes). Purely local: different images may hold
    /// different allocation patterns.
    pub fn alloc_nonsym(&self, bytes: usize) -> Result<NonSymHandle, AllocError> {
        let offset = self.nonsym_alloc.borrow_mut().alloc(bytes)?;
        Ok(NonSymHandle { offset, len: bytes })
    }

    /// Release non-symmetric storage.
    pub fn free_nonsym(&self, h: NonSymHandle) -> Result<(), AllocError> {
        self.nonsym_alloc.borrow_mut().free(h.offset)
    }

    /// Absolute symmetric-heap byte offset of a non-symmetric handle (valid
    /// on any image — the buffer is symmetric even though its contents are
    /// managed locally).
    #[inline]
    pub fn nonsym_abs(&self, offset: usize) -> usize {
        self.nonsym_base.offset() + offset
    }

    /// Bytes of non-symmetric buffer currently allocated on this image.
    pub fn nonsym_in_use(&self) -> usize {
        self.nonsym_alloc.borrow().in_use()
    }

    // ---- collectives (Table II: co_op -> shmem_op_to_all) --------------------

    fn with_scratch<T: Scalar, R>(&self, n: usize, f: impl FnOnce(SymPtr<T>, SymPtr<T>) -> R) -> R {
        let src = self.shmem.shmalloc::<T>(n).expect("co_* scratch allocation failed");
        let dst = self.shmem.shmalloc::<T>(n).expect("co_* scratch allocation failed");
        let r = f(src, dst);
        // No image may recycle these offsets until every image has read its
        // result out of them.
        self.sync_all();
        self.shmem.shfree(dst).expect("scratch free");
        self.shmem.shfree(src).expect("scratch free");
        r
    }

    /// `co_reduce`: combine `data` element-wise across all images with `op`.
    /// With `result_image = Some(r)`, only image `r` receives the result
    /// (others' buffers are left untouched), matching Fortran semantics.
    pub fn co_reduce<T: Scalar>(
        &self,
        data: &mut [T],
        result_image: Option<ImageId>,
        op: impl Fn(T, T) -> T + Copy,
    ) {
        if self.machine().any_pe_failed() {
            // The reduction tree would wait forever on dead ranks; run the
            // survivor fallback instead (stat discarded — use
            // `co_reduce_stat` to observe it).
            let _ = self.co_reduce_survivors(data, result_image, op);
            return;
        }
        let n = data.len();
        self.with_scratch::<T, ()>(n, |src, dst| {
            self.shmem.write_local(src, data);
            let world = self.shmem.world();
            self.shmem.reduce_to_all(dst, src, n, &world, op);
            let deliver = match result_image {
                Some(r) => self.pe_of(r) == self.this_image() - 1,
                None => true,
            };
            if deliver {
                self.shmem.read_local(dst, data);
            }
        });
    }

    /// `co_sum`.
    pub fn co_sum<T: Scalar + std::ops::Add<Output = T>>(
        &self,
        data: &mut [T],
        result_image: Option<ImageId>,
    ) {
        self.co_reduce(data, result_image, |a, b| a + b);
    }

    /// `co_max`.
    pub fn co_max<T: Scalar + PartialOrd>(&self, data: &mut [T], result_image: Option<ImageId>) {
        self.co_reduce(data, result_image, |a, b| if b > a { b } else { a });
    }

    /// `co_min`.
    pub fn co_min<T: Scalar + PartialOrd>(&self, data: &mut [T], result_image: Option<ImageId>) {
        self.co_reduce(data, result_image, |a, b| if b < a { b } else { a });
    }

    /// `co_broadcast`: replicate `data` from `source_image` to all images.
    pub fn co_broadcast<T: Scalar>(&self, data: &mut [T], source_image: ImageId) {
        if self.machine().any_pe_failed() {
            let _ = self.co_broadcast_survivors(data, source_image);
            return;
        }
        let n = data.len();
        let root_pe = self.pe_of(source_image);
        self.with_scratch::<T, ()>(n, |src, dst| {
            if self.this_image() == source_image {
                self.shmem.write_local(src, data);
            }
            let world = self.shmem.world();
            self.shmem.broadcast(dst, src, n, root_pe, &world);
            if self.this_image() != source_image {
                self.shmem.read_local(dst, data);
            }
        });
    }

    // ---- critical sections ---------------------------------------------------

    /// `critical ... end critical`: run `f` with global mutual exclusion.
    /// Implemented as a CAF lock on image 1, per the translation.
    pub fn critical<R>(&self, f: impl FnOnce() -> R) -> R {
        let lock = crate::locks::CafLock::from_raw(self.critical_lock);
        self.lock(&lock, 1);
        let r = f();
        self.unlock(&lock, 1);
        r
    }
}

impl Drop for Image<'_> {
    /// Image teardown: surface locks still held (a `lock` without a matching
    /// `unlock` — each leaks a qnode in the non-symmetric buffer, previously
    /// visible only as a residual `nonsym_in_use` count). Always counted in
    /// the machine stats; reported on stderr in debug builds, and never on
    /// panicking threads (tests that assert on deadlock or hazard panics
    /// legitimately unwind while holding locks).
    fn drop(&mut self) {
        let table = self.lock_table.borrow();
        if table.is_empty() {
            return;
        }
        let machine = self.shmem.machine();
        let stats = machine.stats();
        pgas_machine::stats::Stats::add(&stats.lock_leaks, table.len() as u64);
        if machine.metrics().enabled() {
            machine.metrics().count(self.this_image() - 1, "lock_leak", None, table.len() as u64);
        }
        if machine.san_on() && !std::thread::panicking() {
            // Stale-lock audit: a held entry whose lock variable was
            // deallocated — or recycled by a later `lock_var` at the same
            // offset — can no longer be released safely; the unlock this
            // image owes would target memory belonging to nobody (or to a
            // *different* lock). The generation in `lock_offsets` tracks
            // the current occupant of each tail offset this image created.
            let offsets = self.lock_offsets.borrow();
            let me = self.this_image() - 1;
            for &(tail, generation, home) in table.keys() {
                let stale = match offsets.get(&tail) {
                    Some(&(current_gen, block)) => {
                        current_gen != generation || !self.shmem.symmetric_block_live(block)
                    }
                    // No record: a lock this image did not create (e.g. the
                    // hidden critical lock, never freed) — not auditable.
                    None => false,
                };
                if stale {
                    machine.san_report(pgas_machine::sanitizer::HazardReport {
                        kind: pgas_machine::sanitizer::HazardKind::StaleLock,
                        op: "teardown audit",
                        accessor: me,
                        target: home,
                        conflict_pe: home,
                        offset: tail,
                        len: 8,
                        t_conflict: machine.clock(me),
                        t_known: machine.clock(me),
                    });
                }
            }
        }
        if cfg!(debug_assertions) && !std::thread::panicking() {
            let mut lines: Vec<String> = table
                .iter()
                .map(|(&(tail, generation, home), &qnode)| {
                    format!(
                        "  lock tail offset {tail} (gen {generation}) on image {} -> qnode offset {qnode}",
                        home + 1
                    )
                })
                .collect();
            lines.sort();
            eprintln!(
                "image {}: {} lock(s) still held at teardown ({} qnode bytes leaked):\n{}",
                self.this_image(),
                table.len(),
                table.len() * crate::locks::QNODE_BYTES,
                lines.join("\n")
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Backend;
    use crate::runtime::run_caf;
    use pgas_machine::{generic_smp, Platform};

    fn cfg() -> CafConfig {
        CafConfig::new(Backend::Shmem, Platform::GenericSmp)
    }

    fn mcfg(n: usize) -> pgas_machine::MachineConfig {
        generic_smp(n).with_heap_bytes(1 << 18)
    }

    #[test]
    fn image_identity_is_one_based() {
        let out = run_caf(mcfg(4), cfg(), |img| (img.this_image(), img.num_images()));
        assert_eq!(out.results, vec![(1, 4), (2, 4), (3, 4), (4, 4)]);
    }

    #[test]
    fn sync_images_pairwise() {
        // Image 1 writes, signals image 2; image 2 reads after sync.
        let out = run_caf(mcfg(2), cfg(), |img| {
            let c = img.coarray::<i64>(&[1]).unwrap();
            img.sync_all();
            if img.this_image() == 1 {
                c.put_to(img, 2, &[42]);
                img.sync_images(&[2]);
                0
            } else {
                img.sync_images(&[1]);
                c.read_local(img)[0]
            }
        });
        assert_eq!(out.results[1], 42);
    }

    #[test]
    fn sync_images_repeated_rounds() {
        let out = run_caf(mcfg(2), cfg(), |img| {
            let c = img.coarray::<i64>(&[1]).unwrap();
            img.sync_all();
            let partner = if img.this_image() == 1 { 2 } else { 1 };
            let mut seen = Vec::new();
            for round in 0..5i64 {
                if img.this_image() == 1 {
                    c.put_to(img, 2, &[round * 10]);
                }
                img.sync_images(&[partner]);
                if img.this_image() == 2 {
                    seen.push(c.read_local(img)[0]);
                }
                img.sync_images(&[partner]);
            }
            seen
        });
        assert_eq!(out.results[1], vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn co_sum_all_images() {
        let out = run_caf(mcfg(5), cfg(), |img| {
            let mut v = [img.this_image() as i64, 1];
            img.co_sum(&mut v, None);
            v
        });
        for r in out.results {
            assert_eq!(r, [15, 5]);
        }
    }

    #[test]
    fn co_sum_result_image_only() {
        let out = run_caf(mcfg(4), cfg(), |img| {
            let mut v = [img.this_image() as i64];
            img.co_sum(&mut v, Some(3));
            v[0]
        });
        assert_eq!(out.results, vec![1, 2, 10, 4]);
    }

    #[test]
    fn co_max_min_broadcast() {
        let out = run_caf(mcfg(4), cfg(), |img| {
            let me = img.this_image() as f64;
            let mut mx = [me];
            let mut mn = [me];
            let mut bc = [me * 100.0];
            img.co_max(&mut mx, None);
            img.co_min(&mut mn, None);
            img.co_broadcast(&mut bc, 2);
            (mx[0], mn[0], bc[0])
        });
        for r in out.results {
            assert_eq!(r, (4.0, 1.0, 200.0));
        }
    }

    #[test]
    fn co_reduce_custom_op() {
        let out = run_caf(mcfg(3), cfg(), |img| {
            let mut v = [img.this_image() as i64 + 1]; // 2, 3, 4
            img.co_reduce(&mut v, None, |a, b| a * b);
            v[0]
        });
        for r in out.results {
            assert_eq!(r, 24);
        }
    }

    #[test]
    fn nonsym_allocations_are_local_and_independent() {
        let out = run_caf(mcfg(3), cfg(), |img| {
            // Different images allocate different patterns — legal for
            // non-symmetric data.
            let mut handles = Vec::new();
            for _ in 0..img.this_image() {
                handles.push(img.alloc_nonsym(128).unwrap());
            }
            let used = img.nonsym_in_use();
            for h in handles {
                img.free_nonsym(h).unwrap();
            }
            (used, img.nonsym_in_use())
        });
        assert_eq!(out.results, vec![(128, 0), (256, 0), (384, 0)]);
    }

    #[test]
    fn critical_section_excludes() {
        let out = run_caf(mcfg(4), cfg(), |img| {
            let c = img.coarray::<i64>(&[1]).unwrap();
            img.sync_all();
            for _ in 0..10 {
                img.critical(|| {
                    let v = c.get_elem(img, 1, &[0]);
                    c.put_elem(img, 1, &[0], v + 1);
                });
            }
            img.sync_all();
            c.get_elem(img, 1, &[0])
        });
        for r in out.results {
            assert_eq!(r, 40);
        }
    }

    #[test]
    fn held_lock_at_teardown_is_counted_as_leak() {
        let out = run_caf(mcfg(2), cfg(), |img| {
            let lock = img.lock_var();
            img.sync_all();
            if img.this_image() == 1 {
                img.lock(&lock, 2); // never unlocked
            }
            img.sync_all();
        });
        assert_eq!(out.stats.lock_leaks, 1, "exactly image 1's held lock leaks");
    }

    #[test]
    fn balanced_lock_use_leaks_nothing() {
        let out = run_caf(mcfg(2), cfg(), |img| {
            let lock = img.lock_var();
            img.sync_all();
            img.lock(&lock, 1);
            img.unlock(&lock, 1);
            img.sync_all();
        });
        assert_eq!(out.stats.lock_leaks, 0);
    }

    #[test]
    fn image_index_bounds_checked() {
        let err = crate::runtime::run_caf_result(mcfg(2), cfg(), |img| {
            let c = img.coarray::<i64>(&[1]).unwrap();
            img.sync_all();
            c.put_to(img, 3, &[1]); // image 3 does not exist
        })
        .unwrap_err();
        assert!(err.message.contains("out of range"));
    }
}
