//! Result containers and rendering for the reproduction harnesses.

use pgas_machine::json::Json;

/// One line on a figure panel: a labelled series of (x, y) points.
#[derive(Debug, Clone)]
pub struct Series {
    pub label: String,
    pub points: Vec<(f64, f64)>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Series {
        Series { label: label.into(), points: Vec::new() }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// y value at the given x (exact match), if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|p| p.0 == x).map(|p| p.1)
    }

    /// Geometric-mean ratio of this series over `other` at common x values.
    /// The number used for "A is k× faster than B" claims.
    pub fn geomean_ratio_over(&self, other: &Series) -> f64 {
        let mut log_sum = 0.0;
        let mut n = 0;
        for &(x, y) in &self.points {
            if let Some(oy) = other.y_at(x) {
                if y > 0.0 && oy > 0.0 {
                    log_sum += (y / oy).ln();
                    n += 1;
                }
            }
        }
        assert!(n > 0, "series share no x values");
        (log_sum / n as f64).exp()
    }
}

/// One panel of a figure (e.g. "Put 1-pair, small sizes").
#[derive(Debug, Clone)]
pub struct Panel {
    pub title: String,
    pub xlabel: String,
    pub ylabel: String,
    pub series: Vec<Series>,
}

impl Panel {
    pub fn new(
        title: impl Into<String>,
        xlabel: impl Into<String>,
        ylabel: impl Into<String>,
    ) -> Panel {
        Panel {
            title: title.into(),
            xlabel: xlabel.into(),
            ylabel: ylabel.into(),
            series: Vec::new(),
        }
    }

    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render as an aligned text table: one row per x, one column per series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let mut xs: Vec<f64> =
            self.series.iter().flat_map(|s| s.points.iter().map(|p| p.0)).collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup();
        out.push_str(&format!("{:>14}", self.xlabel));
        for s in &self.series {
            out.push_str(&format!(" {:>26}", s.label));
        }
        out.push_str(&format!("   [{}]\n", self.ylabel));
        for x in xs {
            out.push_str(&format!("{:>14}", trim_float(x)));
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => out.push_str(&format!(" {:>26}", format_sig(y))),
                    None => out.push_str(&format!(" {:>26}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// A whole figure: several panels plus identification.
#[derive(Debug, Clone)]
pub struct Figure {
    pub id: String,
    pub caption: String,
    pub panels: Vec<Panel>,
    /// Optional critical-path attribution of a representative run of this
    /// figure, written as a sidecar `results/<id>.critpath.json` so a
    /// regression in the figure is explainable from the same artifact set.
    pub critpath: Option<Json>,
    /// Optional benchmark-baseline digest of the figure's probe run,
    /// aggregated by `repro_all` into `results/BENCH_<platform>.json`. Not
    /// written per-figure; the collector groups records by platform.
    pub bench: Option<Json>,
}

impl Figure {
    pub fn new(id: impl Into<String>, caption: impl Into<String>) -> Figure {
        Figure {
            id: id.into(),
            caption: caption.into(),
            panels: Vec::new(),
            critpath: None,
            bench: None,
        }
    }

    /// Attach a critical-path report (as JSON) to be emitted as a sidecar.
    pub fn with_critpath(mut self, report: Json) -> Figure {
        self.critpath = Some(report);
        self
    }

    /// Attach a bench-baseline record (`{figure, platform, digest}`) for the
    /// `repro_all` baseline collector.
    pub fn with_bench(mut self, record: Json) -> Figure {
        self.bench = Some(record);
        self
    }

    pub fn render(&self) -> String {
        let mut out = format!("# {} — {}\n\n", self.id, self.caption);
        for p in &self.panels {
            out.push_str(&p.render());
            out.push('\n');
        }
        out
    }

    /// Serialize to JSON for archival under `results/`.
    pub fn to_json(&self) -> String {
        let panels = self
            .panels
            .iter()
            .map(|p| {
                let series = p
                    .series
                    .iter()
                    .map(|s| {
                        let points = s
                            .points
                            .iter()
                            .map(|&(x, y)| Json::Array(vec![Json::float(x), Json::float(y)]))
                            .collect();
                        Json::Object(vec![
                            ("label".into(), Json::str(s.label.as_str())),
                            ("points".into(), Json::Array(points)),
                        ])
                    })
                    .collect();
                Json::Object(vec![
                    ("title".into(), Json::str(p.title.as_str())),
                    ("xlabel".into(), Json::str(p.xlabel.as_str())),
                    ("ylabel".into(), Json::str(p.ylabel.as_str())),
                    ("series".into(), Json::Array(series)),
                ])
            })
            .collect();
        Json::Object(vec![
            ("id".into(), Json::str(self.id.as_str())),
            ("caption".into(), Json::str(self.caption.as_str())),
            ("panels".into(), Json::Array(panels)),
        ])
        .pretty()
    }

    /// Print to stdout and persist under the workspace's `results/<id>.json`
    /// (best effort; override the directory with `REPRO_RESULTS_DIR`).
    pub fn emit(&self) {
        println!("{}", self.render());
        let dir = std::env::var("REPRO_RESULTS_DIR").unwrap_or_else(|_| {
            // Bench targets run with CWD = their package dir; anchor on the
            // workspace root instead.
            format!("{}/../../results", env!("CARGO_MANIFEST_DIR"))
        });
        let dir = std::path::Path::new(&dir);
        if std::fs::create_dir_all(dir).is_ok() {
            let _ = std::fs::write(dir.join(format!("{}.json", self.id)), self.to_json());
            if let Some(cp) = &self.critpath {
                let _ = std::fs::write(dir.join(format!("{}.critpath.json", self.id)), cp.pretty());
            }
        }
    }
}

fn trim_float(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

fn format_sig(y: f64) -> String {
    if y == 0.0 {
        "0".into()
    } else if y.abs() >= 1000.0 {
        format!("{y:.0}")
    } else if y.abs() >= 10.0 {
        format!("{y:.1}")
    } else {
        format!("{y:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_lookup_and_ratio() {
        let mut a = Series::new("a");
        let mut b = Series::new("b");
        for x in [1.0, 2.0, 4.0] {
            a.push(x, 10.0 * x);
            b.push(x, 5.0 * x);
        }
        assert_eq!(a.y_at(2.0), Some(20.0));
        assert_eq!(a.y_at(3.0), None);
        assert!((a.geomean_ratio_over(&b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn render_aligns_all_series() {
        let mut p = Panel::new("t", "bytes", "MB/s");
        let mut s1 = Series::new("one");
        s1.push(8.0, 100.0);
        s1.push(16.0, 200.0);
        let mut s2 = Series::new("two");
        s2.push(8.0, 50.0);
        p.series.push(s1);
        p.series.push(s2);
        let text = p.render();
        assert!(text.contains("one"));
        assert!(text.contains("two"));
        assert!(text.lines().count() >= 4);
        assert!(text.contains('-'), "missing point rendered as dash");
    }

    #[test]
    fn figure_json_roundtrips_structurally() {
        let mut fig = Figure::new("figX", "test");
        fig.panels.push(Panel::new("p", "x", "y"));
        let j = fig.to_json();
        assert!(j.contains("\"figX\""));
        assert!(j.contains("panels"));
        let parsed = pgas_machine::json::parse(&j).expect("emitted JSON is well-formed");
        assert_eq!(parsed.get("id").and_then(|v| v.as_str()), Some("figX"));
        assert_eq!(parsed.get("panels").and_then(|v| v.as_array()).map(|a| a.len()), Some(1));
    }

    #[test]
    #[should_panic(expected = "share no x")]
    fn ratio_requires_common_points() {
        let mut a = Series::new("a");
        a.push(1.0, 1.0);
        let mut b = Series::new("b");
        b.push(2.0, 1.0);
        a.geomean_ratio_over(&b);
    }
}
