//! # pgas-microbench — the PGAS Microbenchmark suite, reproduced
//!
//! The paper measures with the HPCTools PGAS Microbenchmark suite
//! (the paper's reference 20): point-to-point put/get latency and bandwidth between
//! node pairs, multi-dimensional strided put bandwidth, and a lock
//! contention kernel. This crate reproduces those kernels over the
//! simulated machines, at two levels:
//!
//! * [`rma::PairBench`] — library-level (raw OpenSHMEM / GASNet / MPI-3
//!   profiles), feeding Figures 2–3;
//! * [`caf_rma::CafPairBench`] and [`lock_bench::LockBench`] — CAF-level
//!   (through the full runtime), feeding Figures 6–8.
//!
//! [`report`] holds the series/panel/figure containers the reproduction
//! binaries print and archive.

pub mod caf_rma;
pub mod lock_bench;
pub mod report;
pub mod rma;

pub use caf_rma::CafPairBench;
pub use lock_bench::LockBench;
pub use report::{Figure, Panel, Series};
pub use rma::PairBench;
