//! Lock contention kernel (paper §V-B3, Figure 8): every image repeatedly
//! acquires and releases a lock homed on image 1.

use caf::{run_caf, Backend, CafConfig};
use pgas_machine::Platform;

/// The Figure 8 microbenchmark.
#[derive(Debug, Clone, Copy)]
pub struct LockBench {
    pub platform: Platform,
    pub backend: Backend,
    pub images: usize,
    /// Lock/unlock rounds per image.
    pub acquires: usize,
    pub cores_per_node: usize,
}

impl LockBench {
    pub fn new(platform: Platform, backend: Backend, images: usize) -> LockBench {
        LockBench { platform, backend, images, acquires: 10, cores_per_node: 16 }
    }

    /// Total execution time in milliseconds (virtual), as the paper plots.
    pub fn run_ms(&self) -> f64 {
        let acquires = self.acquires;
        let cores = self.cores_per_node.min(self.images);
        let nodes = self.images.div_ceil(cores);
        let mcfg = self.platform.config(nodes, cores).with_heap_bytes(1 << 16);
        let caf_cfg = CafConfig::new(self.backend, self.platform).with_nonsym_bytes(4096);
        let out = run_caf(mcfg, caf_cfg, move |img| {
            let lck = img.lock_var();
            img.sync_all();
            let t0 = img.shmem().ctx().pe().now();
            for _ in 0..acquires {
                img.lock(&lck, 1);
                img.unlock(&lck, 1);
            }
            img.sync_all();
            (img.shmem().ctx().pe().now() - t0) as f64 / 1e6
        });
        out.results.iter().copied().fold(0.0, f64::max)
    }
}

/// A naive CAF lock baseline for the ablation bench: spin with remote
/// compare-and-swap directly on the lock word (no queue, remote polling).
pub fn naive_spinlock_ms(
    platform: Platform,
    backend: Backend,
    images: usize,
    acquires: usize,
) -> f64 {
    let cores = 16.min(images);
    let nodes = images.div_ceil(cores);
    let mcfg = platform.config(nodes, cores).with_heap_bytes(1 << 16);
    let caf_cfg = CafConfig::new(backend, platform).with_nonsym_bytes(4096);
    let out = run_caf(mcfg, caf_cfg, move |img| {
        let word = img.shmem().shmalloc::<u64>(1).unwrap();
        img.shmem().write_local(word, &[0]);
        img.sync_all();
        let me = img.this_image() as u64;
        let t0 = img.shmem().ctx().pe().now();
        for _ in 0..acquires {
            let mut backoff = 200.0;
            let start = img.shmem().ctx().pe().now();
            while img.shmem().cswap(word, 0u64, me, 0) != 0 {
                img.shmem().ctx().pe().advance(backoff);
                backoff = (backoff * 2.0).min(20_000.0);
                std::thread::yield_now();
            }
            // Spin-wait accounting (see openshmem::lock::charge_spin_wait):
            // expected poll misalignment plus the implied NIC poll traffic.
            let ctx = img.shmem().ctx();
            let base = ctx.cost_model().amo_rtt_estimate_ns(img.this_image() - 1, 0);
            let waited = (ctx.pe().now() - start) as f64 - base;
            if waited > base {
                let steady = (waited / 4.0).clamp(200.0, 20_000.0);
                ctx.pe().advance(steady * 0.5);
                let polls = (waited / (steady + base)).ceil().min(128.0) as u64;
                ctx.charge_poll_traffic(0, polls);
            }
            let prev = img.shmem().cswap(word, me, 0u64, 0);
            assert_eq!(prev, me);
        }
        img.sync_all();
        (img.shmem().ctx().pe().now() - t0) as f64 / 1e6
    });
    out.results.iter().copied().fold(0.0, f64::max)
}

/// Image counts of Figure 8's x axis, capped for test-time sanity. Runs to
/// the paper's 1024 headline point and one doubling beyond (2048) now that
/// the pooled PE scheduler makes thousand-image jobs routine.
pub fn image_sweep(max: usize) -> Vec<usize> {
    [2usize, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048]
        .into_iter()
        .filter(|&n| n <= max)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_time_grows_with_contention() {
        let t4 = LockBench { acquires: 5, ..LockBench::new(Platform::Titan, Backend::Shmem, 4) };
        let t32 = LockBench { acquires: 5, ..LockBench::new(Platform::Titan, Backend::Shmem, 32) };
        let a = t4.run_ms();
        let b = t32.run_ms();
        assert!(b > 2.0 * a, "32 images {b:.2}ms vs 4 images {a:.2}ms");
    }

    #[test]
    fn shmem_locks_beat_gasnet_locks() {
        // §V-B3: UHCAF over Cray SHMEM ~11% faster than over GASNet; the
        // gap comes from native vs AM-emulated atomics.
        let shmem =
            LockBench { acquires: 5, ..LockBench::new(Platform::Titan, Backend::Shmem, 16) }
                .run_ms();
        let gasnet =
            LockBench { acquires: 5, ..LockBench::new(Platform::Titan, Backend::Gasnet, 16) }
                .run_ms();
        assert!(gasnet > shmem, "GASNet {gasnet:.2}ms vs SHMEM {shmem:.2}ms");
    }

    #[test]
    fn shmem_locks_beat_cray_caf_locks() {
        // §V-B3: ~22% faster than the Cray CAF implementation.
        let shmem =
            LockBench { acquires: 5, ..LockBench::new(Platform::Titan, Backend::Shmem, 16) }
                .run_ms();
        let cray =
            LockBench { acquires: 5, ..LockBench::new(Platform::Titan, Backend::CrayCaf, 16) }
                .run_ms();
        assert!(cray > shmem, "Cray-CAF {cray:.2}ms vs SHMEM {shmem:.2}ms");
    }

    #[test]
    fn mcs_beats_naive_spinlock_under_contention() {
        let mcs = LockBench { acquires: 5, ..LockBench::new(Platform::Titan, Backend::Shmem, 24) }
            .run_ms();
        let naive = naive_spinlock_ms(Platform::Titan, Backend::Shmem, 24, 5);
        assert!(naive > mcs, "naive {naive:.2}ms vs MCS {mcs:.2}ms");
    }

    #[test]
    fn sweep_is_capped() {
        assert_eq!(image_sweep(64), vec![2, 4, 8, 16, 32, 64]);
    }
}
