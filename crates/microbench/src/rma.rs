//! Library-level put latency / bandwidth kernels (paper §III, Figures 2–3):
//! pairs of PEs on two nodes exercising one communication library directly.

use openshmem::{Shmem, ShmemConfig, SymPtr};
use pgas_conduit::ConduitProfile;
use pgas_machine::Platform;

/// A two-node pair benchmark: PEs `0..pairs` on node 0 each target the
/// corresponding PE on node 1 (the PGAS Microbenchmark suite's layout).
#[derive(Debug, Clone, Copy)]
pub struct PairBench {
    pub platform: Platform,
    pub profile: ConduitProfile,
    /// Concurrent pairs (1 = uncontended, 16 = the paper's contended case).
    pub pairs: usize,
    /// Repetitions per measurement.
    pub iters: usize,
}

impl PairBench {
    pub fn new(platform: Platform, profile: ConduitProfile, pairs: usize) -> PairBench {
        PairBench { platform, profile, pairs, iters: 20 }
    }

    fn machine(&self, size: usize) -> pgas_machine::MachineConfig {
        self.platform.config(2, self.pairs).with_heap_bytes((4 * size + 65536).next_power_of_two())
    }

    /// Run the pair pattern: each sender calls `f(shmem, buf, peer, data)`
    /// and the mean of the returned measurements is reported.
    fn run_senders(
        &self,
        size: usize,
        f: impl Fn(&Shmem<'_>, SymPtr<u8>, usize, &[u8]) -> f64 + Send + Sync,
    ) -> f64 {
        let pairs = self.pairs;
        let profile = self.profile;
        let out = pgas_machine::run(self.machine(size), move |pe| {
            let shmem = Shmem::new(pe, ShmemConfig::new(profile));
            let buf = shmem.shmalloc::<u8>(size).expect("bench buffer");
            let data = vec![0x5Au8; size];
            shmem.barrier_all();
            let result = if pe.id() < pairs {
                let peer = pe.id() + pairs;
                // Warm-up round.
                shmem.put(buf, &data, peer);
                shmem.quiet();
                shmem.barrier_all();
                Some(f(&shmem, buf, peer, &data))
            } else {
                shmem.barrier_all();
                None
            };
            shmem.barrier_all();
            result
        });
        let vals: Vec<f64> = out.results.into_iter().flatten().collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    }

    /// Blocking put latency in microseconds (put + quiet per iteration).
    pub fn put_latency_us(&self, size: usize) -> f64 {
        let iters = self.iters;
        self.run_senders(size, move |shmem, buf, peer, data| {
            let t0 = shmem.ctx().pe().now();
            for _ in 0..iters {
                shmem.put(buf, data, peer);
                shmem.quiet();
            }
            (shmem.ctx().pe().now() - t0) as f64 / iters as f64 / 1000.0
        })
    }

    /// Streaming put bandwidth in MB/s per pair (window of puts, then quiet).
    pub fn put_bandwidth_mbs(&self, size: usize) -> f64 {
        let iters = self.iters;
        let window = 16;
        self.run_senders(size, move |shmem, buf, peer, data| {
            let t0 = shmem.ctx().pe().now();
            for _ in 0..iters {
                for _ in 0..window {
                    shmem.put(buf, data, peer);
                }
                shmem.quiet();
            }
            let elapsed_ns = (shmem.ctx().pe().now() - t0) as f64;
            let bytes = (size * window * iters) as f64;
            bytes / elapsed_ns * 1e3 // bytes/ns -> MB/s
        })
    }

    /// Streaming get bandwidth in MB/s per pair (window of non-blocking
    /// gets, then quiet).
    pub fn get_bandwidth_mbs(&self, size: usize) -> f64 {
        let iters = self.iters;
        let window = 16;
        self.run_senders(size, move |shmem, buf, peer, data| {
            let mut sink = vec![0u8; data.len()];
            let t0 = shmem.ctx().pe().now();
            for _ in 0..iters {
                for _ in 0..window {
                    let mut out: Vec<u8> = std::mem::take(&mut sink);
                    shmem.get_nbi(buf, &mut out, peer);
                    sink = out;
                }
                shmem.quiet();
            }
            let elapsed_ns = (shmem.ctx().pe().now() - t0) as f64;
            (size * window * iters) as f64 / elapsed_ns * 1e3
        })
    }

    /// Bidirectional put bandwidth, MB/s per direction: both members of
    /// each pair stream simultaneously (the suite's "bibw" kernel).
    pub fn bi_bandwidth_mbs(&self, size: usize) -> f64 {
        let pairs = self.pairs;
        let profile = self.profile;
        let iters = self.iters;
        let window = 16;
        let out = pgas_machine::run(self.machine(size), move |pe| {
            let shmem = Shmem::new(pe, ShmemConfig::new(profile));
            let buf = shmem.shmalloc::<u8>(size).expect("bench buffer");
            let data = vec![0x3Cu8; size];
            let peer = if pe.id() < pairs { pe.id() + pairs } else { pe.id() - pairs };
            shmem.put(buf, &data, peer);
            shmem.quiet();
            shmem.barrier_all();
            let t0 = pe.now();
            for _ in 0..iters {
                for _ in 0..window {
                    shmem.put(buf, &data, peer);
                }
                shmem.quiet();
            }
            let elapsed_ns = (pe.now() - t0) as f64;
            shmem.barrier_all();
            (size * window * iters) as f64 / elapsed_ns * 1e3
        });
        out.results.iter().sum::<f64>() / out.results.len() as f64
    }

    /// Blocking get latency in microseconds.
    pub fn get_latency_us(&self, size: usize) -> f64 {
        let iters = self.iters;
        self.run_senders(size, move |shmem, buf, peer, data| {
            let mut sink = vec![0u8; data.len()];
            let t0 = shmem.ctx().pe().now();
            for _ in 0..iters {
                shmem.get(buf, &mut sink, peer);
            }
            (shmem.ctx().pe().now() - t0) as f64 / iters as f64 / 1000.0
        })
    }
}

/// The paper's message-size sweeps.
pub fn small_sizes() -> Vec<usize> {
    (0..=11).map(|k| 4usize << k).collect() // 4 B .. 8 KiB
}

pub fn large_sizes() -> Vec<usize> {
    (0..=7).map(|k| (16 * 1024) << k).collect() // 16 KiB .. 2 MiB
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(pairs: usize) -> PairBench {
        let mut b = PairBench::new(Platform::Stampede, ConduitProfile::mvapich_shmem(), pairs);
        b.iters = 5;
        b
    }

    #[test]
    fn latency_increases_with_size() {
        let b = bench(1);
        let small = b.put_latency_us(8);
        let large = b.put_latency_us(1 << 20);
        assert!(small > 0.0);
        assert!(large > 5.0 * small, "1 MiB {large} vs 8 B {small}");
    }

    #[test]
    fn bandwidth_grows_then_saturates() {
        let b = bench(1);
        let bw_small = b.put_bandwidth_mbs(64);
        let bw_large = b.put_bandwidth_mbs(1 << 20);
        assert!(bw_large > 4.0 * bw_small, "large {bw_large} small {bw_small}");
        // Saturation: within the wire limit.
        let wire_mbs = 6.0 * 1e3; // stampede 6 B/ns
        assert!(bw_large <= wire_mbs);
        assert!(bw_large >= 0.5 * wire_mbs, "large messages should approach the wire");
    }

    #[test]
    fn contention_reduces_per_pair_bandwidth() {
        // The per-pair split of FCFS queueing delay is emergent from
        // free-running PE threads; a worker limit (the PGAS_WORKERS CI job)
        // changes the interleaving and hence the split, so pin legacy
        // unbounded mode — the same opt-out timing-exact tests use against
        // the env fault plan. Digest-stable contention lives in the
        // deterministic-NIC bench probes, not here.
        pgas_machine::with_forced_workers(0, || {
            let one = bench(1).put_bandwidth_mbs(256 * 1024);
            let sixteen = bench(16).put_bandwidth_mbs(256 * 1024);
            let ratio = one / sixteen;
            assert!(ratio > 8.0 && ratio < 32.0, "16-pair contention ratio {ratio}");
        });
    }

    #[test]
    fn shmem_beats_mpi3_at_small_sizes() {
        let shmem = bench(1).put_latency_us(8);
        let mut mpi =
            PairBench::new(Platform::Stampede, ConduitProfile::mpi3(Platform::Stampede), 1);
        mpi.iters = 5;
        let mpi_lat = mpi.put_latency_us(8);
        assert!(mpi_lat > shmem, "MPI-3 {mpi_lat} vs SHMEM {shmem}");
    }

    #[test]
    fn get_latency_exceeds_put_latency() {
        let b = bench(1);
        assert!(b.get_latency_us(8) > b.put_latency_us(8));
    }

    #[test]
    fn nbi_get_bandwidth_beats_blocking_get_latency_bound() {
        let b = bench(1);
        // Small messages: blocking gets are round-trip-bound, nbi pipelines.
        let size = 256;
        let bw = b.get_bandwidth_mbs(size);
        let blocking_bound = size as f64 / (b.get_latency_us(size) * 1000.0) * 1e3;
        assert!(bw > 2.0 * blocking_bound, "pipelined {bw:.0} vs blocking {blocking_bound:.0}");
    }

    #[test]
    fn bidirectional_bandwidth_is_full_duplex() {
        let b = bench(1);
        let size = 256 * 1024;
        let uni = b.put_bandwidth_mbs(size);
        let bi = b.bi_bandwidth_mbs(size);
        // The link is full duplex: each direction sustains (about) the
        // unidirectional rate, so the aggregate doubles.
        let ratio = bi / uni;
        assert!(
            (0.9..=1.01).contains(&ratio),
            "per-direction {bi:.0} vs unidirectional {uni:.0} (ratio {ratio:.3})"
        );
    }

    #[test]
    fn single_pair_measurements_are_deterministic() {
        // With one actor per NIC the virtual-time model has no races: two
        // runs must agree to the nanosecond.
        let b = bench(1);
        for size in [8usize, 4096, 1 << 18] {
            assert_eq!(
                b.put_latency_us(size).to_bits(),
                b.put_latency_us(size).to_bits(),
                "latency at {size}"
            );
            assert_eq!(
                b.put_bandwidth_mbs(size).to_bits(),
                b.put_bandwidth_mbs(size).to_bits(),
                "bandwidth at {size}"
            );
        }
    }

    #[test]
    fn size_sweeps_are_sorted_and_disjoint() {
        let s = small_sizes();
        let l = large_sizes();
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(l.windows(2).all(|w| w[0] < w[1]));
        assert!(s.last().unwrap() < l.first().unwrap());
    }
}
