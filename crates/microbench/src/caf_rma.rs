//! CAF-level RMA kernels (paper §V-B, Figures 6–7): contiguous and
//! multi-dimensional strided put bandwidth through the full CAF runtime.

use caf::{run_caf, Backend, CafConfig, DimRange, Section, StridedAlgorithm};
use pgas_machine::Platform;

/// CAF pair benchmark: images `1..=pairs` on node 0 target their partner on
/// node 1 through co-indexed assignment.
#[derive(Debug, Clone, Copy)]
pub struct CafPairBench {
    pub platform: Platform,
    pub backend: Backend,
    /// Override the runtime's strided algorithm (None = backend default).
    pub strided: Option<StridedAlgorithm>,
    pub pairs: usize,
    pub iters: usize,
}

impl CafPairBench {
    pub fn new(platform: Platform, backend: Backend, pairs: usize) -> CafPairBench {
        CafPairBench { platform, backend, strided: None, pairs, iters: 10 }
    }

    pub fn with_strided(mut self, algo: StridedAlgorithm) -> Self {
        self.strided = Some(algo);
        self
    }

    fn caf_config(&self) -> CafConfig {
        let mut cfg = CafConfig::new(self.backend, self.platform);
        if let Some(a) = self.strided {
            cfg = cfg.with_strided(a);
        }
        cfg
    }

    /// Contiguous co-indexed put bandwidth, MB/s per pair (Fig 6/7 a–b).
    pub fn contiguous_put_bw_mbs(&self, size_bytes: usize) -> f64 {
        let elems = size_bytes / 4;
        let pairs = self.pairs;
        let iters = self.iters;
        let mcfg = self
            .platform
            .config(2, pairs)
            .with_heap_bytes((8 * size_bytes + 65536).next_power_of_two());
        let out = run_caf(mcfg, self.caf_config(), move |img| {
            let a = img.coarray::<i32>(&[elems]).unwrap();
            let data = vec![7i32; elems];
            let me = img.this_image();
            if me <= pairs {
                let peer = me + pairs;
                a.put_to(img, peer, &data); // warm-up
                img.sync_all();
                let t0 = img.shmem().ctx().pe().now();
                for _ in 0..iters {
                    a.put_to(img, peer, &data);
                }
                let dt = (img.shmem().ctx().pe().now() - t0) as f64;
                img.sync_all();
                Some((size_bytes * iters) as f64 / dt * 1e3)
            } else {
                img.sync_all();
                img.sync_all();
                None
            }
        });
        mean(out.results)
    }

    /// 2-D strided co-indexed put bandwidth, MB/s per pair (Fig 6/7 c–d).
    ///
    /// The section selects `counts = (16, 64)` elements with the given
    /// stride in both dimensions. Dimension 2 dominates, so the paper's
    /// `2dim_strided` algorithm needs 16 strided calls where the
    /// always-dimension-1 runtime needs 64 and the naive one needs 1024.
    pub fn strided_put_bw_mbs(&self, stride: usize) -> f64 {
        const C0: usize = 16;
        const C1: usize = 64;
        let pairs = self.pairs;
        let iters = self.iters;
        let shape = [C0 * stride, C1 * stride];
        let heap = (shape[0] * shape[1] * 4 * 2 + (1 << 16)).next_power_of_two();
        let mcfg = self.platform.config(2, pairs).with_heap_bytes(heap);
        let out = run_caf(mcfg, self.caf_config(), move |img| {
            let a = img.coarray::<i32>(&shape).unwrap();
            let sec = Section::new(vec![
                DimRange { start: 0, count: C0, step: stride },
                DimRange { start: 0, count: C1, step: stride },
            ]);
            let data = vec![3i32; C0 * C1];
            let me = img.this_image();
            if me <= pairs {
                let peer = me + pairs;
                a.put_section(img, peer, &sec, &data); // warm-up
                img.sync_all();
                let t0 = img.shmem().ctx().pe().now();
                for _ in 0..iters {
                    a.put_section(img, peer, &sec, &data);
                }
                let dt = (img.shmem().ctx().pe().now() - t0) as f64;
                img.sync_all();
                Some((C0 * C1 * 4 * iters) as f64 / dt * 1e3)
            } else {
                img.sync_all();
                img.sync_all();
                None
            }
        });
        mean(out.results)
    }
}

fn mean(results: Vec<Option<f64>>) -> f64 {
    let vals: Vec<f64> = results.into_iter().flatten().collect();
    vals.iter().sum::<f64>() / vals.len() as f64
}

/// The stride sweep of Figures 6–7 (x axis: "Stride Length (# of integers)").
pub fn stride_sweep() -> Vec<usize> {
    vec![2, 4, 8, 16, 32]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uhcaf_over_shmem_beats_gasnet_on_contiguous_puts() {
        // The §V-B1 headline: ~18% bandwidth improvement for UHCAF over
        // OpenSHMEM vs over GASNet.
        for platform in [Platform::CrayXc30, Platform::Stampede] {
            let mut shmem = CafPairBench::new(platform, Backend::Shmem, 1);
            shmem.iters = 5;
            let mut gasnet = CafPairBench::new(platform, Backend::Gasnet, 1);
            gasnet.iters = 5;
            let size = 256 * 1024;
            let s = shmem.contiguous_put_bw_mbs(size);
            let g = gasnet.contiguous_put_bw_mbs(size);
            let gain = s / g - 1.0;
            assert!(
                gain > 0.05 && gain < 0.6,
                "{platform:?}: SHMEM {s:.0} vs GASNet {g:.0} MB/s ({:.0}% gain)",
                gain * 100.0
            );
        }
    }

    #[test]
    fn two_dim_beats_naive_and_cray_on_xc30() {
        // §V-B2: ~3x over Cray CAF, ~9x over naive, on Cray SHMEM. The
        // claim is about the *direct* wire path (the paper's UHCAF did not
        // aggregate): coalescing batches exactly naive's per-element puts
        // and collapses the 9x gap, so pin it off.
        pgas_machine::with_forced_aggregation(false, two_dim_beats_naive_and_cray_on_xc30_inner)
    }

    fn two_dim_beats_naive_and_cray_on_xc30_inner() {
        let mk = |backend, strided: Option<StridedAlgorithm>| {
            let mut b = CafPairBench::new(Platform::CrayXc30, backend, 1);
            b.iters = 3;
            if let Some(a) = strided {
                b = b.with_strided(a);
            }
            b
        };
        let two = mk(Backend::Shmem, Some(StridedAlgorithm::TwoDim)).strided_put_bw_mbs(8);
        let naive = mk(Backend::Shmem, Some(StridedAlgorithm::Naive)).strided_put_bw_mbs(8);
        let cray = mk(Backend::CrayCaf, None).strided_put_bw_mbs(8);
        assert!(two / naive > 4.0, "2dim {two:.1} vs naive {naive:.1}");
        assert!(two / cray > 1.5, "2dim {two:.1} vs Cray-CAF {cray:.1}");
        assert!(cray > naive, "Cray's native strided still beats per-element puts");
    }

    #[test]
    fn naive_equals_twodim_on_mvapich() {
        // §V-B2 on Stampede: MVAPICH2-X implements iput as a loop of
        // putmem, so the two algorithms coincide.
        let mk = |algo| {
            let mut b = CafPairBench::new(Platform::Stampede, Backend::Shmem, 1).with_strided(algo);
            b.iters = 3;
            b
        };
        let two = mk(StridedAlgorithm::TwoDim).strided_put_bw_mbs(4);
        let naive = mk(StridedAlgorithm::Naive).strided_put_bw_mbs(4);
        let ratio = two / naive;
        assert!((0.8..1.25).contains(&ratio), "expected parity, got {ratio:.2}");
    }
}
