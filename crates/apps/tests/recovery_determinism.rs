//! Property: a scheduled PE failure is part of the *virtual* schedule, not
//! an asynchronous accident — so a recovery run is exactly as reproducible
//! as a healthy one. For any drawn workload seed and failure instant, the
//! same plan must produce a bit-identical [`RunDigest`], metrics snapshot
//! and critical-path report run to run AND across scheduler worker counts
//! {1, 8}: the worker pool is a host-side throttle that moves no virtual
//! clock, and every resilience decision (skip vs. send, dead-target gates,
//! deferred errors) branches on clock-deterministic predicates only.

use caf::{Backend, SanitizerMode};
use caf_apps::*;
use pgas_machine::critdiff::RunDigest;
use pgas_machine::critpath::CriticalPathReport;
use pgas_machine::metrics::MetricsSnapshot;
use pgas_machine::{
    with_forced_metrics, with_forced_mode, with_forced_plan, with_forced_tracing,
    with_forced_workers, FaultPlan, Platform,
};
use proptest::prelude::*;

/// One traced recovery run: eight images, one scheduled mid-run PE death.
/// Deterministic NIC, tracing and metrics pinned on, sanitizer pinned off.
fn recovery_run(
    workers: usize,
    cfg: DhtConfig,
    at_ns: u64,
) -> (DhtResult, RunDigest, CriticalPathReport, MetricsSnapshot) {
    with_forced_tracing(true, || {
        with_forced_metrics(true, || {
            with_forced_mode(SanitizerMode::Off, || {
                with_forced_workers(workers, || {
                    let plan = FaultPlan::new(cfg.seed).with_pe_failure(5, at_ns);
                    with_forced_plan(plan, || {
                        let (r, out) =
                            dht::run_dht_outcome(Platform::Titan, Backend::Shmem, 8, cfg, true);
                        let report = out.critical_path();
                        let digest = RunDigest::from_run(&report, &out.metrics);
                        (r, digest, report, out.metrics)
                    })
                })
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn recovery_runs_reproduce_bit_identically(
        seed in any::<u64>(),
        at_us in 1u64..6,
    ) {
        let cfg = DhtConfig {
            slots_per_image: 32,
            updates_per_image: 12,
            update: DhtUpdateMode::Am,
            seed,
            ..Default::default()
        };
        let at_ns = at_us * 1_000;
        let (r1, d1, p1, m1) = recovery_run(1, cfg, at_ns);
        let (r8, d8, p8, m8) = recovery_run(8, cfg, at_ns);
        prop_assert_eq!(&d1, &d8, "worker count must be invisible in the digest");
        prop_assert_eq!(&p1, &p8, "worker count must be invisible in the critical path");
        prop_assert_eq!(&m1, &m8, "worker count must be invisible in the metrics");
        prop_assert_eq!(r1.checksum, r8.checksum);
        prop_assert_eq!(r1.acked_sum, r8.acked_sum);
        prop_assert_eq!(r1.skipped, r8.skipped);
        prop_assert_eq!(r1.stats.pe_failures, r8.stats.pe_failures);
        let (_, d1b, p1b, m1b) = recovery_run(1, cfg, at_ns);
        prop_assert_eq!(&d1, &d1b, "same plan must reproduce bit-identically");
        prop_assert_eq!(&p1, &p1b);
        prop_assert_eq!(&m1, &m1b);
    }
}
