//! Property: the open-loop serving pipeline is deterministic end to end.
//! The arrival schedule is fixed before the run starts, every admission
//! decision branches on the virtual clock, and completions land in
//! virtual-time windows — so for any drawn seed the same config must
//! produce a bit-identical per-request log ([`RequestLog`]), windowed
//! metrics snapshot and SLO report run to run AND across scheduler worker
//! counts {1, 8} under the deterministic NIC. The property must also hold
//! under a transient-drop fault plan (`drop1`): retries stretch latencies,
//! but they stretch them identically for every worker count.

use caf::{Backend, SanitizerMode};
use caf_apps::serve::{run_serve_outcome, ServeConfig, ServeResult};
use caf_apps::DhtUpdateMode;
use pgas_machine::metrics::MetricsSnapshot;
use pgas_machine::{
    with_forced_metrics, with_forced_mode, with_forced_plan, with_forced_tracing,
    with_forced_workers, FaultPlan, Platform, RequestLog,
};
use proptest::prelude::*;

/// One traced open-loop run: eight workers + a spare, deterministic NIC,
/// tracing and metrics pinned on, sanitizer pinned off.
fn serving_run(
    workers: usize,
    cfg: ServeConfig,
    plan: FaultPlan,
) -> (ServeResult, Vec<RequestLog>, MetricsSnapshot, String) {
    with_forced_tracing(true, || {
        with_forced_metrics(true, || {
            with_forced_mode(SanitizerMode::Off, || {
                with_forced_workers(workers, || {
                    with_forced_plan(plan, || {
                        let (r, out) =
                            run_serve_outcome(Platform::Titan, Backend::Shmem, 9, cfg, true);
                        let log = out.request_log();
                        let slo_json = r.slo.to_json().pretty();
                        (r, log, out.metrics, slo_json)
                    })
                })
            })
        })
    })
}

fn small(seed: u64, mode: DhtUpdateMode) -> ServeConfig {
    ServeConfig {
        keyspace: 5_000,
        requests_per_image: 16,
        epochs: 2,
        slots_per_shard: 32,
        mean_gap_ns: 1_200.0,
        mode,
        seed,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn open_loop_serving_reproduces_bit_identically(seed in any::<u64>()) {
        // AM mode only, like every determinism suite in this repo: locked
        // mode's lock-queue order is whoever swaps first on the host, which
        // is exactly the nondeterminism the MCS lock models on purpose.
        let cfg = small(seed, DhtUpdateMode::Am);
        let plan = FaultPlan::new(cfg.seed);
        let (r1, l1, m1, s1) = serving_run(1, cfg, plan.clone());
        let (r8, l8, m8, s8) = serving_run(8, cfg, plan.clone());
        prop_assert_eq!(&l1, &l8, "worker count must be invisible in the request log");
        prop_assert_eq!(&m1, &m8, "worker count must be invisible in the windowed metrics");
        prop_assert_eq!(&s1, &s8, "worker count must be invisible in the SLO report");
        prop_assert_eq!(r1.slo.windows, r8.slo.windows);
        prop_assert_eq!(r1.slo.alerts, r8.slo.alerts);
        prop_assert_eq!(r1.checksum, r8.checksum);
        prop_assert_eq!(r1.completed, r8.completed);
        let (_, l1b, m1b, s1b) = serving_run(1, cfg, plan);
        prop_assert_eq!(&l1, &l1b, "same seed must reproduce bit-identically");
        prop_assert_eq!(&m1, &m1b);
        prop_assert_eq!(&s1, &s1b);
        // The log is complete: one entry per completed request, and the
        // decomposition always sums back to the end-to-end latency.
        prop_assert_eq!(l1.len() as u64, r1.completed + r1.drained);
        for req in &l1 {
            prop_assert_eq!(
                req.queue_wait_ns + req.wire_ns + req.nic_contention_ns
                    + req.fault_delay_ns + req.service_ns,
                req.total_ns()
            );
        }
    }

    #[test]
    fn serving_determinism_survives_transient_drops(seed in any::<u64>()) {
        let cfg = small(seed, DhtUpdateMode::Am);
        let plan = FaultPlan::transient_drops(0xFA01, 0.01);
        let (r1, l1, m1, s1) = serving_run(1, cfg, plan.clone());
        let (r8, l8, m8, s8) = serving_run(8, cfg, plan);
        prop_assert_eq!(&l1, &l8, "drop retries must replay identically per worker count");
        prop_assert_eq!(&m1, &m8);
        prop_assert_eq!(&s1, &s8);
        prop_assert_eq!(r1.checksum, r8.checksum);
        prop_assert_eq!(r1.acked_sum, r8.acked_sum);
    }
}
