//! Property: the open-loop serving pipeline is deterministic end to end.
//! The arrival schedule is fixed before the run starts, every admission
//! decision branches on the virtual clock, and completions land in
//! virtual-time windows — so for any drawn seed the same config must
//! produce a bit-identical per-request log ([`RequestLog`]), windowed
//! metrics snapshot and SLO report run to run AND across scheduler worker
//! counts {1, 8} under the deterministic NIC. The property must also hold
//! under a transient-drop fault plan (`drop1`): retries stretch latencies,
//! but they stretch them identically for every worker count.

use caf::{Backend, SanitizerMode};
use caf_apps::serve::{run_serve_outcome, ServeConfig, ServeResult};
use caf_apps::DhtUpdateMode;
use pgas_machine::metrics::MetricsSnapshot;
use pgas_machine::{
    with_forced_metrics, with_forced_mode, with_forced_plan, with_forced_tracing,
    with_forced_workers, FaultPlan, Platform, RequestLog,
};
use proptest::prelude::*;

/// One traced open-loop run: eight workers + a spare, deterministic NIC,
/// tracing and metrics pinned on, sanitizer pinned off.
fn serving_run(
    workers: usize,
    cfg: ServeConfig,
    plan: FaultPlan,
) -> (ServeResult, Vec<RequestLog>, MetricsSnapshot, String) {
    with_forced_tracing(true, || {
        with_forced_metrics(true, || {
            with_forced_mode(SanitizerMode::Off, || {
                with_forced_workers(workers, || {
                    with_forced_plan(plan, || {
                        let (r, out) =
                            run_serve_outcome(Platform::Titan, Backend::Shmem, 9, cfg, true);
                        let log = out.request_log();
                        let slo_json = r.slo.to_json().pretty();
                        (r, log, out.metrics, slo_json)
                    })
                })
            })
        })
    })
}

fn small(seed: u64, mode: DhtUpdateMode) -> ServeConfig {
    ServeConfig {
        keyspace: 5_000,
        requests_per_image: 16,
        epochs: 2,
        slots_per_shard: 32,
        mean_gap_ns: 1_200.0,
        mode,
        seed,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn open_loop_serving_reproduces_bit_identically(seed in any::<u64>()) {
        // AM mode only, like every determinism suite in this repo: locked
        // mode's lock-queue order is whoever swaps first on the host, which
        // is exactly the nondeterminism the MCS lock models on purpose.
        let cfg = small(seed, DhtUpdateMode::Am);
        let plan = FaultPlan::new(cfg.seed);
        let (r1, l1, m1, s1) = serving_run(1, cfg, plan.clone());
        let (r8, l8, m8, s8) = serving_run(8, cfg, plan.clone());
        prop_assert_eq!(&l1, &l8, "worker count must be invisible in the request log");
        prop_assert_eq!(&m1, &m8, "worker count must be invisible in the windowed metrics");
        prop_assert_eq!(&s1, &s8, "worker count must be invisible in the SLO report");
        prop_assert_eq!(r1.slo.windows, r8.slo.windows);
        prop_assert_eq!(r1.slo.alerts, r8.slo.alerts);
        prop_assert_eq!(r1.checksum, r8.checksum);
        prop_assert_eq!(r1.completed, r8.completed);
        // Tail attribution rides the same guarantee: per-window profiles,
        // dominant causes and the seeded exemplar reservoirs (ids included)
        // must be bit-identical across worker counts — the sampler's keyed
        // order is offer-order independent by construction.
        let (t1, t8) = (r1.tail.as_ref().unwrap(), r8.tail.as_ref().unwrap());
        prop_assert_eq!(t1, t8, "tail attribution must be bit-identical across worker counts");
        for (p1, p8) in t1.profiles.iter().zip(&t8.profiles) {
            prop_assert_eq!(p1.dominant_cause(), p8.dominant_cause());
            let ids1: Vec<u64> = p1.exemplars.iter().map(|e| e.id).collect();
            let ids8: Vec<u64> = p8.exemplars.iter().map(|e| e.id).collect();
            prop_assert_eq!(ids1, ids8, "exemplar ids must not see the worker count");
        }
        let (_, l1b, m1b, s1b) = serving_run(1, cfg, plan);
        prop_assert_eq!(&l1, &l1b, "same seed must reproduce bit-identically");
        prop_assert_eq!(&m1, &m1b);
        prop_assert_eq!(&s1, &s1b);
        // The log is complete: one entry per completed request, and the
        // decomposition always sums back to the end-to-end latency.
        prop_assert_eq!(l1.len() as u64, r1.completed + r1.drained);
        for req in &l1 {
            prop_assert_eq!(
                req.queue_wait_ns + req.wire_ns + req.nic_contention_ns
                    + req.fault_delay_ns + req.service_ns,
                req.total_ns()
            );
        }
    }

    #[test]
    fn tracing_moves_no_virtual_clock(seed in any::<u64>()) {
        // The tail attributor only exists when tracing is on; the PR 4
        // observability contract says turning it on must not move a single
        // virtual clock — so the windowed metrics, latency percentiles and
        // completion counts of a traced and an untraced run are identical,
        // and only the annotations (dominant causes, exemplars, `tail`)
        // differ.
        let cfg = small(seed, DhtUpdateMode::Am);
        let plan = FaultPlan::new(cfg.seed);
        let (rt, _, mt, _) = serving_run(1, cfg, plan.clone());
        let (ru, mu) = with_forced_tracing(false, || {
            with_forced_metrics(true, || {
                with_forced_mode(SanitizerMode::Off, || {
                    with_forced_workers(1, || {
                        with_forced_plan(plan, || {
                            let (r, out) =
                                run_serve_outcome(Platform::Titan, Backend::Shmem, 9, cfg, true);
                            let m = out.metrics;
                            (r, m)
                        })
                    })
                })
            })
        });
        prop_assert_eq!(&mt, &mu, "tracing must move no virtual clock");
        prop_assert_eq!(rt.checksum, ru.checksum);
        prop_assert_eq!(rt.completed, ru.completed);
        prop_assert_eq!(rt.slo.windows.len(), ru.slo.windows.len());
        for (tw, uw) in rt.slo.windows.iter().zip(&ru.slo.windows) {
            prop_assert_eq!(
                (tw.start_ns, tw.count, tw.violations, tw.p50, tw.p99, tw.p999),
                (uw.start_ns, uw.count, uw.violations, uw.p50, uw.p99, uw.p999)
            );
            prop_assert_eq!(
                (tw.fast_burn_x1000, tw.slow_burn_x1000),
                (uw.fast_burn_x1000, uw.slow_burn_x1000)
            );
        }
        prop_assert!(rt.tail.is_some(), "the traced run attributes its tail");
        prop_assert!(ru.tail.is_none(), "the untraced run has no requests to attribute");
    }

    #[test]
    fn serving_determinism_survives_transient_drops(seed in any::<u64>()) {
        let cfg = small(seed, DhtUpdateMode::Am);
        let plan = FaultPlan::transient_drops(0xFA01, 0.01);
        let (r1, l1, m1, s1) = serving_run(1, cfg, plan.clone());
        let (r8, l8, m8, s8) = serving_run(8, cfg, plan);
        prop_assert_eq!(&l1, &l8, "drop retries must replay identically per worker count");
        prop_assert_eq!(&m1, &m8);
        prop_assert_eq!(&s1, &s8);
        prop_assert_eq!(r1.checksum, r8.checksum);
        prop_assert_eq!(r1.acked_sum, r8.acked_sum);
    }
}
