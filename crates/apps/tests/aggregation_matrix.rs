//! Property: the aggregation machinery changes *when* bytes move, never
//! *what* they compute. Across the full configuration matrix — coalescing
//! {off, on} × DHT update mode {locked get–modify–put, active message} ×
//! scheduler workers {1, 8} — every run must produce the oracle checksum,
//! and each configuration must reproduce a bit-identical digest (critical
//! path + metrics) run to run and across worker counts: the worker pool is
//! a host-side throttle that moves no virtual clock.
//!
//! The second half re-runs the hazard-free and drop1-fault suites with
//! aggregation forced on: staged buffers must flush inside every
//! synchronization edge the sanitizer checks, and the retry layer must
//! absorb transient drops whether an op went to the wire directly or
//! through a coalescing buffer.

use caf::{Backend, SanitizerMode, StridedAlgorithm};
use caf_apps::*;
use pgas_machine::critdiff::RunDigest;
use pgas_machine::{
    with_forced_aggregation, with_forced_metrics, with_forced_mode, with_forced_plan,
    with_forced_tracing, with_forced_workers, FaultPlan, Platform,
};
use proptest::prelude::*;

/// One traced DHT run: the oracle-checked result plus the comparable
/// digest. Deterministic NIC, tracing and metrics pinned on, sanitizer
/// pinned off (an inherited `PGAS_SANITIZER` must not perturb the bits).
fn traced_dht(aggregate: bool, workers: usize, cfg: DhtConfig) -> (DhtResult, RunDigest) {
    with_forced_tracing(true, || {
        with_forced_metrics(true, || {
            with_forced_mode(SanitizerMode::Off, || {
                with_forced_workers(workers, || {
                    with_forced_aggregation(aggregate, || {
                        let (r, out) =
                            dht::run_dht_outcome(Platform::Titan, Backend::Shmem, 8, cfg, true);
                        let digest = RunDigest::from_run(&out.critical_path(), &out.metrics);
                        (r, digest)
                    })
                })
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The full matrix, per drawn workload seed: every cell matches the
    /// oracle, every cell reproduces bit-identically, and worker count is
    /// invisible in virtual time.
    #[test]
    fn aggregation_matrix_is_correct_and_deterministic(seed in any::<u64>()) {
        let base = DhtConfig { slots_per_image: 32, updates_per_image: 12, seed, ..Default::default() };
        let oracle = dht::expected_checksum(8, &base);
        for update in [DhtUpdateMode::Locked, DhtUpdateMode::Am] {
            let cfg = DhtConfig { update, ..base };
            for aggregate in [false, true] {
                let (r1, d1) = traced_dht(aggregate, 1, cfg);
                prop_assert_eq!(
                    r1.checksum, oracle,
                    "checksum ({:?}, aggregate={})", update, aggregate
                );
                let (r8, d8) = traced_dht(aggregate, 8, cfg);
                prop_assert_eq!(r8.checksum, oracle);
                prop_assert_eq!(
                    &d1, &d8,
                    "worker count must be invisible ({:?}, aggregate={})", update, aggregate
                );
                let (_, d1b) = traced_dht(aggregate, 1, cfg);
                prop_assert_eq!(
                    &d1, &d1b,
                    "same config must reproduce bit-identically ({:?}, aggregate={})",
                    update, aggregate
                );
            }
        }
    }
}

/// The sanitizer suite under aggregation: every application stays
/// hazard-free when small puts and non-fetching AMOs ride coalescing
/// buffers (mirrors `sanitizer_clean.rs`, which runs with the ambient
/// setting — off in the plain CI job, on in `test-aggregated`).
#[test]
fn all_apps_hazard_free_with_aggregation() {
    with_forced_aggregation(true, || {
        with_forced_mode(SanitizerMode::Panic, || {
            let dht_cfg =
                DhtConfig { slots_per_image: 32, updates_per_image: 16, ..Default::default() };
            run_dht(Platform::Titan, Backend::Shmem, 4, dht_cfg);
            run_dht(
                Platform::Titan,
                Backend::Shmem,
                4,
                DhtConfig { update: DhtUpdateMode::Am, ..dht_cfg },
            );

            let heat = HeatConfig { cells: 32, steps: 12, ..Default::default() };
            parallel_heat(Platform::Titan, Backend::Shmem, 4, heat);

            run_himeno(Platform::Titan, Backend::Shmem, None, 4, HimenoConfig::tiny());
            run_himeno(
                Platform::Titan,
                Backend::Shmem,
                Some(StridedAlgorithm::Adaptive),
                4,
                HimenoConfig::tiny(),
            );

            let hist = HistogramConfig { bins: 8, samples_per_image: 40, ..Default::default() };
            run_histogram(Platform::Titan, Backend::Shmem, 4, hist, HistogramMethod::Atomics);
            run_histogram(Platform::Titan, Backend::Shmem, 4, hist, HistogramMethod::Lock);

            parallel_stencil(
                Platform::Titan,
                Backend::Shmem,
                None,
                4,
                StencilConfig { n: 12, steps: 6 },
            );

            parallel_transpose(Platform::Titan, Backend::Shmem, 4, TransposeConfig { n: 16 });
        });
    });
}

/// The drop1 fault suite under aggregation: faults are drawn at stage
/// time, so a staged op that loses its draw surfaces exactly like a wire
/// op would, and the retry/backoff layer keeps the answers correct.
#[test]
fn apps_survive_drops_with_aggregation() {
    with_forced_aggregation(true, || {
        with_forced_plan(FaultPlan::transient_drops(0xA66D, 0.01), || {
            let cfg =
                DhtConfig { slots_per_image: 32, updates_per_image: 25, ..Default::default() };
            let r = run_dht(Platform::Titan, Backend::Shmem, 8, cfg);
            assert_eq!(r.checksum, dht::expected_checksum(8, &cfg), "checksum under drops");
            assert!(r.stats.faults_injected > 0, "the plan actually fired: {:?}", r.stats);
            assert_eq!(r.stats.retries_exhausted, 0);
            assert_eq!(r.stats.lock_leaks, 0);

            let am = DhtConfig { update: DhtUpdateMode::Am, ..cfg };
            let r = run_dht(Platform::Titan, Backend::Shmem, 8, am);
            assert_eq!(r.checksum, dht::expected_checksum(8, &am), "AM checksum under drops");
            assert_eq!(r.stats.lock_leaks, 0);

            let scfg = StencilConfig { n: 12, steps: 8 };
            let serial = serial_stencil(&scfg);
            let (got, stats) =
                parallel_stencil_with_stats(Platform::GenericSmp, Backend::Shmem, None, 4, scfg);
            assert_eq!(got, serial, "bitwise answer under drops");
            assert_eq!(stats.retries_exhausted, 0);
            assert_eq!(stats.lock_leaks, 0);
        });
    });
}
