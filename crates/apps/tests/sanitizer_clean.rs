//! Every application in this crate must run hazard-free under the PGAS
//! sanitizer: their synchronization (barriers, sync images, locks, flag
//! protocols) should establish a happens-before edge for every cross-image
//! access. `with_forced_mode(Panic)` turns any missed edge into a job
//! failure carrying the structured diagnostic.

use caf::{Backend, SanitizerMode, StridedAlgorithm};
use caf_apps::*;
use pgas_machine::{with_forced_mode, Platform};

fn run_all_apps(platform: Platform) {
    with_forced_mode(SanitizerMode::Panic, || {
        let dht = DhtConfig { slots_per_image: 32, updates_per_image: 16, ..Default::default() };
        run_dht(platform, Backend::Shmem, 4, dht);

        let heat = HeatConfig { cells: 32, steps: 12, ..Default::default() };
        parallel_heat(platform, Backend::Shmem, 4, heat);

        run_himeno(platform, Backend::Shmem, None, 4, HimenoConfig::tiny());
        run_himeno(
            platform,
            Backend::Shmem,
            Some(StridedAlgorithm::Adaptive),
            4,
            HimenoConfig::tiny(),
        );

        let hist = HistogramConfig { bins: 8, samples_per_image: 40, ..Default::default() };
        run_histogram(platform, Backend::Shmem, 4, hist, HistogramMethod::Atomics);
        run_histogram(platform, Backend::Shmem, 4, hist, HistogramMethod::Lock);

        parallel_stencil(platform, Backend::Shmem, None, 4, StencilConfig { n: 12, steps: 6 });

        parallel_transpose(platform, Backend::Shmem, 4, TransposeConfig { n: 16 });
    });
}

#[test]
fn all_apps_hazard_free_on_generic_smp() {
    run_all_apps(Platform::GenericSmp);
}

#[test]
fn all_apps_hazard_free_on_titan() {
    run_all_apps(Platform::Titan);
}

#[test]
fn all_apps_hazard_free_on_titan_over_gasnet() {
    // The GASNet conduit exercises the AM-emulated atomics and the packed
    // strided path.
    with_forced_mode(SanitizerMode::Panic, || {
        let heat = HeatConfig { cells: 32, steps: 12, ..Default::default() };
        parallel_heat(Platform::Titan, Backend::Gasnet, 4, heat);
        run_himeno(Platform::Titan, Backend::Gasnet, None, 4, HimenoConfig::tiny());
        parallel_transpose(Platform::Titan, Backend::Gasnet, 4, TransposeConfig { n: 16 });
    });
}
