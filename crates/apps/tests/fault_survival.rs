//! Every application must *survive* a lossy interconnect: under a canned
//! 1% transient-drop plan the conduit's retry/backoff layer absorbs the
//! faults, the answers stay correct, and no lock is leaked. The plan is
//! forced through the same thread-local override the `PGAS_FAULT_PLAN`
//! CI job uses, so this is the in-tree mirror of the `test-faulted` run.

use caf::{Backend, SanitizerMode, StridedAlgorithm};
use caf_apps::*;
use pgas_machine::{with_forced_mode, with_forced_plan, FaultPlan, Platform};

/// The canned plan: the same 1% drop rate as `PGAS_FAULT_PLAN=drop1`, with
/// a test-local seed so failures reproduce from the test name alone.
fn drop1(seed: u64) -> FaultPlan {
    FaultPlan::transient_drops(seed, 0.01)
}

#[test]
fn dht_survives_a_lossy_interconnect() {
    with_forced_plan(drop1(0x0D47), || {
        let cfg = DhtConfig { slots_per_image: 32, updates_per_image: 25, ..Default::default() };
        let r = run_dht(Platform::Titan, Backend::Shmem, 8, cfg);
        assert_eq!(r.checksum, dht::expected_checksum(8, &cfg), "checksum under drops");
        assert!(r.stats.faults_injected > 0, "the plan actually fired: {:?}", r.stats);
        assert_eq!(r.stats.retries_exhausted, 0, "1% drops never exhaust the backoff");
        assert_eq!(r.stats.lock_leaks, 0, "every lock released despite retried AMOs");
        assert_eq!(r.stats.pe_failures, 0);
    });
}

#[test]
fn himeno_survives_a_lossy_interconnect() {
    with_forced_plan(drop1(0x0417), || {
        let cfg = HimenoConfig::tiny();
        let serial = *serial_gosa(&cfg).last().unwrap();
        let r = run_himeno(Platform::Stampede, Backend::Shmem, None, 4, cfg);
        let rel = (r.gosa - serial).abs() / serial;
        assert!(rel < 1e-5, "residual under drops: {} vs {serial} (rel {rel:e})", r.gosa);
        assert!(r.stats.faults_injected > 0, "the plan actually fired: {:?}", r.stats);
        assert_eq!(r.stats.retries_exhausted, 0);
        assert_eq!(r.stats.lock_leaks, 0);
    });
}

#[test]
fn stencil2d_survives_a_lossy_interconnect() {
    with_forced_plan(drop1(0x57E4), || {
        let cfg = StencilConfig { n: 12, steps: 8 };
        let serial = serial_stencil(&cfg);
        let (got, stats) =
            parallel_stencil_with_stats(Platform::GenericSmp, Backend::Shmem, None, 4, cfg);
        assert_eq!(got, serial, "bitwise answer under drops");
        assert!(stats.faults_injected > 0, "the plan actually fired: {stats:?}");
        assert_eq!(stats.retries_exhausted, 0);
        assert_eq!(stats.lock_leaks, 0);
    });
}

/// The strided fast paths retry too: the adaptive planner's `iput`
/// decomposition must deliver every pencil even when individual puts drop.
#[test]
fn himeno_strided_algorithms_survive_drops() {
    with_forced_plan(drop1(0x2D13), || {
        let cfg = HimenoConfig::tiny();
        let serial = *serial_gosa(&cfg).last().unwrap();
        for algo in [StridedAlgorithm::Naive, StridedAlgorithm::TwoDim, StridedAlgorithm::Adaptive]
        {
            let r = run_himeno(Platform::Stampede, Backend::Shmem, Some(algo), 4, cfg);
            let rel = (r.gosa - serial).abs() / serial;
            assert!(rel < 1e-5, "{algo:?} under drops: rel {rel:e}");
            assert_eq!(r.stats.lock_leaks, 0, "{algo:?}");
        }
    });
}

/// A scheduled PE failure mid-run: the surviving images keep serving
/// active-message updates, every update whose send was *acknowledged* to a
/// still-live home is in the final table, and updates to the dead home are
/// skipped instead of crashing the run. "Zero lost acknowledged writes":
/// the live-table checksum equals the wrapping sum of acknowledged keys.
#[test]
fn dht_am_updates_survive_a_pe_failure() {
    let cfg = DhtConfig {
        slots_per_image: 32,
        updates_per_image: 25,
        update: DhtUpdateMode::Am,
        ..Default::default()
    };
    // Image 6 (PE 5) dies at 3µs — about halfway through the healthy-run
    // makespan, so plenty of updates are still in flight on both sides of
    // the cut.
    let plan = FaultPlan::new(0xFA11).with_pe_failure(5, 3_000);
    with_forced_plan(plan, || {
        let r = run_dht(Platform::Titan, Backend::Shmem, 8, cfg);
        assert_eq!(r.stats.pe_failures, 1, "the scheduled failure fired: {:?}", r.stats);
        assert_eq!(
            r.checksum, r.acked_sum,
            "zero lost acknowledged writes: live table must hold exactly the acked keys"
        );
        assert!(r.skipped > 0, "updates homed on the dead image were skipped, not crashed");
        assert_ne!(
            r.checksum,
            dht::expected_checksum(8, &cfg),
            "the dead image's shard (and its skipped updates) really left the table"
        );
        assert_eq!(r.stats.lock_leaks, 0);
    });
}

/// Satellite regression for small-op coalescing under failure: a put to a
/// target that dies before the flush *stages* successfully, so the loss can
/// only surface at the statement's completing quiet. It must come back
/// through the `stat=` chain as STAT_FAILED_IMAGE — not panic the image.
#[test]
fn coalesced_puts_to_a_failed_image_surface_in_the_stat_chain() {
    use caf::{run_caf, CafConfig, CafStat};
    let plan = drop1(0x0F01).with_pe_failure(3, 5_000);
    pgas_machine::with_forced_aggregation(true, || {
        with_forced_plan(plan, || {
            let mcfg = Platform::Titan.config(2, 2).with_heap_bytes(1 << 16);
            let caf_cfg = CafConfig::new(Backend::Shmem, Platform::Titan).with_nonsym_bytes(4096);
            let out = run_caf(mcfg, caf_cfg, |img| {
                let a = img.coarray::<u64>(&[64]).unwrap();
                img.sync_all();
                if img.this_image() == 4 {
                    // Cross the scheduled deadline, then bow out.
                    img.machine().advance(3, 10_000.0);
                    return None;
                }
                if img.this_image() == 1 {
                    // Keep staging single-element puts at image 4. Early
                    // statements land; once image 1's clock passes the
                    // victim's deadline the staged op is dropped at flush
                    // and the statement's stat reports the dead image.
                    for i in 0..400usize {
                        if let Err(stat) = a.put_elem_stat(img, 4, &[i % 64], i as u64) {
                            return Some(stat);
                        }
                    }
                }
                None
            });
            assert_eq!(
                out.results[0],
                Some(CafStat::FailedImage { image: 4 }),
                "the staged-put loss must surface as STAT_FAILED_IMAGE"
            );
            assert_eq!(out.stats.pe_failures, 1);
        });
    });
}

/// Faults and the sanitizer compose: a lossy-but-correct run stays
/// hazard-free, so retries do not manufacture phantom races.
#[test]
fn lossy_runs_stay_hazard_free() {
    with_forced_mode(SanitizerMode::Panic, || {
        with_forced_plan(drop1(0xC0DE), || {
            let cfg = StencilConfig { n: 12, steps: 6 };
            let (got, stats) =
                parallel_stencil_with_stats(Platform::GenericSmp, Backend::Shmem, None, 4, cfg);
            assert_eq!(got, serial_stencil(&cfg));
            assert!(stats.faults_injected > 0, "{stats:?}");
        });
    });
}
