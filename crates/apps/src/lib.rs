//! # caf-apps — application benchmarks over the CAF runtime
//!
//! The two applications of the paper's evaluation plus a halo-exchange
//! mini-app:
//!
//! * [`dht`] — the distributed hash table benchmark (§V-C, Figure 9):
//!   random locked updates, atomicity via CAF per-image locks.
//! * [`himeno`] — the Himeno pressure solver (§V-D, Figure 10): 19-point
//!   Jacobi stencil with matrix-oriented strided halo exchange.
//! * [`heat`] — a 1-D heat-diffusion mini-app exercising `sync images`
//!   with neighbour lists and section-based gather.

pub mod churn;
pub mod dht;
pub mod heat;
pub mod himeno;
pub mod histogram;
pub mod serve;
pub mod stencil2d;
pub mod transpose;

pub use churn::{run_churn, run_churn_outcome, ChurnConfig, ChurnResult, RoundStat};
pub use dht::{run_dht, run_dht_outcome, DhtConfig, DhtResult, DhtUpdateMode};
pub use heat::{parallel_heat, serial_heat, HeatConfig};
pub use himeno::{run_himeno, run_himeno_outcome, serial_gosa, HimenoConfig, HimenoResult};
pub use histogram::{run_histogram, serial_histogram, HistogramConfig, HistogramMethod};
pub use serve::{
    expected_write_sum, run_serve, run_serve_outcome, EpochStat, ReqSpec, RequestGen, ServeConfig,
    ServeImageOut, ServeResult, Zipf,
};
pub use stencil2d::{parallel_stencil, parallel_stencil_with_stats, serial_stencil, StencilConfig};
pub use transpose::{parallel_transpose, serial_transpose, TransposeConfig};

use pgas_machine::{MachineConfig, Platform};

/// Build a machine for a job of `images` images: 16 cores/node on the paper
/// platforms (like the paper's runs), a single node on GenericSmp.
pub(crate) fn job_machine(platform: Platform, images: usize, heap_bytes: usize) -> MachineConfig {
    let cfg = match platform {
        Platform::GenericSmp => platform.config(1, images),
        _ => {
            let cores = 16.min(images);
            platform.config(images.div_ceil(cores), cores)
        }
    };
    cfg.with_heap_bytes(heap_bytes.next_power_of_two())
}
