//! A small 1-D heat-diffusion mini-app: the "hello world" of halo exchange,
//! used by the examples and as an extra end-to-end correctness workload
//! (explicit finite differences, ring of images, `sync images` with
//! neighbours only).

use caf::{run_caf, Backend, CafConfig};
use pgas_machine::Platform;

/// Explicit 1-D heat equation parameters.
#[derive(Debug, Clone, Copy)]
pub struct HeatConfig {
    /// Global cell count (excluding the two fixed boundary cells).
    pub cells: usize,
    pub steps: usize,
    /// Diffusion number (stable for <= 0.5).
    pub alpha: f64,
    /// Fixed boundary temperatures.
    pub left_t: f64,
    pub right_t: f64,
}

impl Default for HeatConfig {
    fn default() -> Self {
        HeatConfig { cells: 64, steps: 100, alpha: 0.25, left_t: 1.0, right_t: 0.0 }
    }
}

/// Sequential oracle.
pub fn serial_heat(cfg: &HeatConfig) -> Vec<f64> {
    let n = cfg.cells;
    let mut t = vec![0.0f64; n + 2];
    t[0] = cfg.left_t;
    t[n + 1] = cfg.right_t;
    let mut next = t.clone();
    for _ in 0..cfg.steps {
        for i in 1..=n {
            next[i] = t[i] + cfg.alpha * (t[i - 1] - 2.0 * t[i] + t[i + 1]);
        }
        t[1..=n].copy_from_slice(&next[1..=n]);
    }
    t[1..=n].to_vec()
}

/// Run the CAF version on `images` images; returns the assembled global
/// temperature field (gathered on image 1, broadcast to all).
pub fn parallel_heat(
    platform: Platform,
    backend: Backend,
    images: usize,
    cfg: HeatConfig,
) -> Vec<f64> {
    assert!(cfg.cells.is_multiple_of(images), "cells must divide evenly for this mini-app");
    let local = cfg.cells / images;
    let cores = 8.min(images);
    let nodes = images.div_ceil(cores);
    let mcfg = platform
        .config(nodes, cores)
        .with_heap_bytes(((cfg.cells + local) * 16 + (1 << 16)).next_power_of_two());
    let out =
        run_caf(mcfg, CafConfig::new(backend, platform).with_nonsym_bytes(4096), move |img| {
            let me = img.this_image();
            let n = img.num_images();
            // Local field with ghost cells at 0 and local+1.
            let field = img.coarray::<f64>(&[local + 2]).unwrap();
            let mut t = vec![0.0f64; local + 2];
            if me == 1 {
                t[0] = cfg.left_t;
            }
            if me == n {
                t[local + 1] = cfg.right_t;
            }
            field.write_local(img, &t);
            img.sync_all();
            let left = (me > 1).then(|| me - 1);
            let right = (me < n).then(|| me + 1);
            let mut neighbours: Vec<usize> = left.into_iter().chain(right).collect();
            neighbours.sort_unstable();
            for _ in 0..cfg.steps {
                // Send boundary cells into neighbour ghosts.
                if let Some(l) = left {
                    field.put_elem(img, l, &[local + 1], t[1]);
                }
                if let Some(r) = right {
                    field.put_elem(img, r, &[0], t[local]);
                }
                if neighbours.is_empty() {
                    // Single image: nothing to exchange.
                } else {
                    img.sync_images(&neighbours);
                }
                let f = field.read_local(img);
                if left.is_some() {
                    t[0] = f[0];
                }
                if right.is_some() {
                    t[local + 1] = f[local + 1];
                }
                let mut next = t.clone();
                for i in 1..=local {
                    next[i] = t[i] + cfg.alpha * (t[i - 1] - 2.0 * t[i] + t[i + 1]);
                }
                t.copy_from_slice(&next);
                field.write_local(img, &t);
                img.shmem().ctx().pe().compute_flops(local as f64 * 4.0);
                if !neighbours.is_empty() {
                    img.sync_images(&neighbours);
                }
            }
            // Assemble: everyone contributes its owned cells to image 1.
            let global = img.coarray::<f64>(&[cfg.cells]).unwrap();
            let mut own = vec![0.0f64; local];
            own.copy_from_slice(&t[1..=local]);
            let sec = caf::Section::new(vec![caf::DimRange {
                start: (me - 1) * local,
                count: local,
                step: 1,
            }]);
            global.put_section(img, 1, &sec, &own);
            img.sync_all();
            let mut result = global.get_from(img, 1);
            img.co_broadcast(&mut result, 1);
            result
        });
    out.results.into_iter().next().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_exactly() {
        let cfg = HeatConfig { cells: 48, steps: 50, ..Default::default() };
        let serial = serial_heat(&cfg);
        for images in [1, 2, 4, 6] {
            let par = parallel_heat(Platform::GenericSmp, Backend::Shmem, images, cfg);
            assert_eq!(par.len(), serial.len());
            for (i, (a, b)) in par.iter().zip(&serial).enumerate() {
                assert!((a - b).abs() < 1e-12, "images={images} cell {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn heat_flows_from_hot_to_cold() {
        let cfg = HeatConfig { cells: 32, steps: 400, ..Default::default() };
        let t = serial_heat(&cfg);
        assert!(t.windows(2).all(|w| w[1] <= w[0] + 1e-9), "monotone profile: {t:?}");
        assert!(t[0] > 0.8, "left end near the hot boundary");
        assert!(*t.last().unwrap() < 0.2, "right end near the cold boundary");
    }

    #[test]
    fn works_over_multiple_nodes_and_backends() {
        let cfg = HeatConfig { cells: 32, steps: 20, ..Default::default() };
        let serial = serial_heat(&cfg);
        for backend in [Backend::Shmem, Backend::Gasnet] {
            let par = parallel_heat(Platform::Titan, backend, 4, cfg);
            for (a, b) in par.iter().zip(&serial) {
                assert!((a - b).abs() < 1e-12, "{backend:?}");
            }
        }
    }
}
