//! Open-loop serving workload: Poisson arrivals in virtual time, Zipfian
//! keys, and a read/write mix over the sharded DHT table, surviving the
//! churn app's failure cycle.
//!
//! The generator is *open-loop*: every request has an absolute virtual
//! arrival time drawn from a single global Poisson process dealt
//! round-robin across the workers, fixed before the run ever
//! touches the network. A worker whose clock lags its schedule serves a
//! backlog — the request's queueing delay (`begin - arrival`) is real and
//! unbounded, exactly the regime closed-loop benchmarks (issue one request,
//! wait, issue the next) structurally cannot produce. A worker ahead of its
//! schedule idles forward to the next arrival instead of inventing load.
//!
//! Keys are Zipfian over a logical keyspace of up to millions of entries
//! (rejection-inversion sampling, no O(N) table), scrambled through a
//! 64-bit mixer for placement so the hot keys contend on slots, not on a
//! single accidental home shard pattern. Writes drive the DHT in either of
//! its two update modes (locked get–modify–put or one active message);
//! reads are one-sided stat-bearing gets.
//!
//! Failure handling is the churn app's cycle verbatim: `images - 1` workers
//! serve, one spare idles; a scheduled image death is observed at an epoch
//! boundary via clock-deterministic probes, the team re-forms with the
//! spare, the dead shard is reassigned, writer journals replay, and every
//! request parked against the dying home *drains* — completing with its
//! original arrival time, so the outage shows up as a latency spike in the
//! windowed series rather than as silent loss.
//!
//! Every completion lands in the machine's windowed metrics
//! (`serve_latency_ns`, `serve_queue_ns`, `serve_requests`) keyed by the
//! completion instant, which is what the SLO layer's burn-rate windows and
//! the `serving_slo` figure consume. Under tracing, request markers thread
//! request ids through every span for per-request latency decomposition.

use caf::{run_caf, Backend, CafConfig, CafTeam};
use openshmem::{AmHandler, AmTarget, ConduitError};
use pgas_machine::slo::{SloReport, SloSpec};
use pgas_machine::stats::StatsSnapshot;
use pgas_machine::tailprof::{TailAttribution, DEFAULT_EXEMPLARS};
use pgas_machine::Platform;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

use crate::dht::DhtUpdateMode;

/// Team number the serving workers form (and re-form) under — same
/// protocol constants as the churn app.
const WORKER_TEAM: i64 = 7;
/// Team number the spare idles under before a failure.
const SPARE_TEAM: i64 = 11;

/// Open-loop workload parameters. `images - 1` workers generate and serve
/// requests; the last image is the spare that owns reassigned shards after
/// a failure (it generates no load of its own).
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Logical Zipfian keyspace (millions at figure scale); keys are
    /// scrambled for placement, so this is independent of table size.
    pub keyspace: u64,
    /// Zipf exponent `s` (> 0): 0.9–1.2 is the classic serving skew.
    pub zipf_exponent: f64,
    /// Fraction of requests that are reads, in [0, 1].
    pub read_fraction: f64,
    /// Mean Poisson inter-arrival gap per worker, virtual ns.
    pub mean_gap_ns: f64,
    /// Requests each worker admits over the whole run.
    pub requests_per_image: usize,
    /// Epochs: collective boundaries where failures are observed and the
    /// team re-forms. Requests are spread evenly across epochs.
    pub epochs: usize,
    /// `u64` slots in each worker's shard of the table.
    pub slots_per_shard: usize,
    pub seed: u64,
    /// How writes hit the table: locked get–modify–put or one AM.
    pub mode: DhtUpdateMode,
    /// Virtual-time metrics window (0 disables the windowed series).
    pub window_ns: u64,
    /// SLO: latency threshold a request must beat...
    pub slo_threshold_ns: u64,
    /// ...for this fraction of requests (e.g. 0.99).
    pub slo_objective: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            keyspace: 100_000,
            zipf_exponent: 1.1,
            read_fraction: 0.5,
            mean_gap_ns: 2_500.0,
            requests_per_image: 64,
            epochs: 4,
            slots_per_shard: 256,
            seed: 0x5E21,
            mode: DhtUpdateMode::Am,
            window_ns: 10_000,
            slo_threshold_ns: 20_000,
            slo_objective: 0.99,
        }
    }
}

impl ServeConfig {
    /// The SLO this workload is served under, ready for
    /// [`SloSpec::evaluate`] against the run's metrics snapshot.
    pub fn slo_spec(&self) -> SloSpec {
        SloSpec::new("serve-latency", "serve_latency_ns", self.slo_threshold_ns, self.slo_objective)
    }
}

// ---------------------------------------------------------------------------
// Request stream: Poisson arrivals + Zipfian keys + read/write mix. One
// deterministic stream per image, shared between the image closure and the
// host-side oracle so the two can never drift.
// ---------------------------------------------------------------------------

/// One scheduled request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqSpec {
    /// Absolute virtual arrival time, ns.
    pub arrival_ns: u64,
    /// Logical key in `1..=keyspace`, Zipf-distributed.
    pub key: u64,
    /// Write (apply `key` to the slot) vs. read (fetch the slot).
    pub write: bool,
}

/// SplitMix64 finalizer: scrambles a Zipfian key into a placement hash so
/// hot keys spread across shards while still colliding on *their* slot.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// `∫₁ˣ y⁻ˢ dy` with `t = 1 - s`, stable through `s = 1` via `exp_m1`.
fn h_integral(x: f64, t: f64) -> f64 {
    let lx = x.ln();
    if t.abs() < 1e-9 {
        lx
    } else {
        (t * lx).exp_m1() / t
    }
}

/// Inverse of [`h_integral`], stable through `s = 1` via `ln_1p`.
fn h_integral_inv(v: f64, t: f64) -> f64 {
    if t.abs() < 1e-9 {
        v.exp()
    } else {
        ((t * v).ln_1p() / t).exp()
    }
}

/// Zipf sampler over `1..=n` with exponent `s`, by rejection-inversion
/// (Hörmann & Derflinger): O(1) state, no harmonic-number table, so the
/// keyspace can be millions of entries without a setup cost.
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: f64,
    s: f64,
    t: f64,
    hi_x1: f64,
    hi_n: f64,
    cutoff: f64,
}

impl Zipf {
    pub fn new(n: u64, s: f64) -> Zipf {
        assert!(n >= 1, "zipf needs a non-empty keyspace");
        assert!(s > 0.0, "zipf exponent must be positive");
        let t = 1.0 - s;
        let nf = n as f64;
        Zipf {
            n: nf,
            s,
            t,
            hi_x1: h_integral(1.5, t) - 1.0,
            hi_n: h_integral(nf + 0.5, t),
            cutoff: 2.0 - h_integral_inv(h_integral(2.5, t) - (-s * 2f64.ln()).exp(), t),
        }
    }

    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        loop {
            let u = self.hi_n + rng.gen::<f64>() * (self.hi_x1 - self.hi_n);
            let x = h_integral_inv(u, self.t);
            let k = (x + 0.5).floor().clamp(1.0, self.n);
            if k - x <= self.cutoff || u >= h_integral(k + 0.5, self.t) - (-self.s * k.ln()).exp() {
                return k as u64;
            }
        }
    }
}

/// The per-image request stream: a pure function of
/// `(seed, image, workers)`, so the host-side oracle can replay exactly
/// what the image admitted.
///
/// Arrivals come from ONE global Poisson process at rate
/// `workers / mean_gap_ns`, seeded by `cfg.seed` alone so every image
/// draws the identical stream, dealt round-robin: image `i` takes global
/// events `i-1, i-1+W, i-1+2W, …`. Per-image *independent* Poisson
/// schedules are random walks whose cumulative clocks drift apart like
/// `gap·√n`; every epoch barrier then syncs all clocks to the furthest
/// schedule and the laggards admit a burst of already-late requests — a
/// latency spike that grows with run length and has nothing to do with
/// load. Slicing a single stream keeps the per-image mean gap at
/// `mean_gap_ns` (every W-th event of a rate-`W/gap` process is
/// Erlang-W) while pinning all schedules in lockstep, so epoch-boundary
/// resync is bounded by a few gaps rather than the walk spread. Keys and
/// the read/write mix still come from a per-image RNG.
pub struct RequestGen {
    /// Per-image draws: Zipfian key + read/write Bernoulli.
    rng: SmallRng,
    /// The shared global arrival stream — same seed on every image.
    arrivals: SmallRng,
    zipf: Zipf,
    clock_ns: f64,
    /// Mean gap of the *global* stream: `mean_gap_ns / workers`.
    global_gap_ns: f64,
    read_fraction: f64,
    /// Global gaps to consume before this image's next event: `image` for
    /// the first request (event index `image - 1`), `workers` after.
    pending: usize,
    stride: usize,
}

impl RequestGen {
    pub fn new(cfg: &ServeConfig, image: usize, workers: usize) -> RequestGen {
        let w = workers.max(1);
        RequestGen {
            rng: SmallRng::seed_from_u64(cfg.seed ^ (image as u64).wrapping_mul(0x9E37_79B9)),
            arrivals: SmallRng::seed_from_u64(cfg.seed.wrapping_mul(0xA076_1D64_78BD_642F)),
            zipf: Zipf::new(cfg.keyspace, cfg.zipf_exponent),
            clock_ns: 0.0,
            global_gap_ns: cfg.mean_gap_ns / w as f64,
            read_fraction: cfg.read_fraction,
            pending: image.min(w),
            stride: w,
        }
    }

    /// Next scheduled request: this image's next slice of the global
    /// exponential-gap stream, Zipfian key, Bernoulli read/write. Draw
    /// order within each RNG is part of the determinism contract.
    pub fn next_req(&mut self) -> ReqSpec {
        for _ in 0..self.pending {
            self.clock_ns += -self.global_gap_ns * (1.0 - self.arrivals.gen::<f64>()).ln();
        }
        self.pending = self.stride;
        let key = self.zipf.sample(&mut self.rng);
        let write = self.rng.gen::<f64>() >= self.read_fraction;
        ReqSpec { arrival_ns: self.clock_ns as u64, key, write }
    }
}

/// Wrapping key sum of every *write* the workers generate over a healthy
/// run — the oracle for the final table checksum when nothing fails.
pub fn expected_write_sum(workers: usize, cfg: &ServeConfig) -> u64 {
    let mut sum = 0u64;
    for image in 1..=workers {
        let mut gen = RequestGen::new(cfg, image, workers);
        for _ in 0..cfg.requests_per_image {
            let spec = gen.next_req();
            if spec.write {
                sum = sum.wrapping_add(spec.key);
            }
        }
    }
    sum
}

// ---------------------------------------------------------------------------
// The workload.
// ---------------------------------------------------------------------------

/// The write handler, identical to the DHT's AM mode: `arg` is
/// `[slot offset, key]` as two little-endian u64s, applied as a wrapping
/// add at the home image (commutative, so replay order never matters).
struct ServeWriteAm;

impl AmHandler for ServeWriteAm {
    fn execute(&self, t: &mut AmTarget<'_>, arg: &[u8]) -> Option<Vec<u8>> {
        let off = u64::from_le_bytes(arg[0..8].try_into().expect("serve am arg")) as usize;
        let key = u64::from_le_bytes(arg[8..16].try_into().expect("serve am arg"));
        let v = t.read_u64(off);
        t.write_u64(off, v.wrapping_add(key));
        None
    }
}

/// One acknowledged write: its shard, key, and latest acknowledged home
/// (updated when a recovery replay moves it).
struct Rec {
    shard: usize,
    key: u64,
    owner: usize,
}

/// A request parked against a dying home, drained during recovery with its
/// original arrival time intact.
struct Parked {
    id: u64,
    arrival_ns: u64,
    key: u64,
    write: bool,
}

/// One epoch's aggregate across the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochStat {
    /// Virtual time at the epoch's closing synchronization, ns.
    pub end_ns: u64,
    /// Requests completed across all images this epoch.
    pub completed: u64,
    /// Images generating load this epoch (the availability series).
    pub generating: usize,
}

/// Per-image raw outcome, aggregated by the host after the run.
#[derive(Debug, Clone, Default)]
pub struct ServeImageOut {
    /// Per-epoch `(end_ns, completed, generating)`.
    pub epochs: Vec<(u64, u64, bool)>,
    /// Requests completed in-line (admitted, served, acknowledged).
    pub completed: u64,
    /// Parked requests completed via the recovery drain.
    pub drained: u64,
    /// The victim's admitted-but-unserved requests (died with the image).
    pub dropped: u64,
    pub reads: u64,
    pub writes: u64,
    /// Wrapping key sum of writes whose latest acknowledged home survives.
    pub acked: u64,
    /// Black-box accumulator over read results (keeps reads observable).
    pub read_sum: u64,
    /// Journal entries re-sent to a reassigned shard during recovery.
    pub replayed: u64,
    /// Epoch whose boundary ran the recovery (`u64::MAX` = none).
    pub detect_epoch: u64,
    /// Live-table checksum (computed on image 1 only).
    pub checksum: u64,
    /// Final worker-team membership (image 1 only).
    pub members: Vec<usize>,
}

/// Outcome of one open-loop serving run.
#[derive(Debug, Clone)]
pub struct ServeResult {
    /// Requests completed in-line.
    pub completed: u64,
    /// Parked requests completed via the recovery drain (their latency
    /// spans the outage — the figure's spike).
    pub drained: u64,
    /// The victim's unserved requests, lost with the image.
    pub dropped: u64,
    pub reads: u64,
    pub writes: u64,
    /// Journal entries replayed onto reassigned shards during recovery.
    pub replayed: u64,
    /// Epoch whose boundary observed the failure (`None` on healthy runs).
    pub detect_epoch: Option<usize>,
    /// Wrapping sum of all live shards at the end of the run.
    pub checksum: u64,
    /// Wrapping key sum of every write whose latest acknowledged home is
    /// alive at the end — `checksum == acked_sum` is the zero-lost-
    /// acknowledged-writes invariant, reads and failures included.
    pub acked_sum: u64,
    /// Worker-team membership at the end of the run (1-based image ids).
    pub members_after: Vec<usize>,
    /// Per-epoch aggregates, in order.
    pub epochs: Vec<EpochStat>,
    /// The SLO report over the run's windowed latency series. When the run
    /// was traced, violated windows carry their `dominant_cause` and raised
    /// burn alerts their exemplar requests.
    pub slo: SloReport,
    /// Per-window tail attribution (`None` when the run was untraced — the
    /// SLO report is then unannotated but otherwise identical).
    pub tail: Option<TailAttribution>,
    /// Virtual makespan in milliseconds.
    pub time_ms: f64,
    pub stats: StatsSnapshot,
}

/// Run the open-loop serving workload on `images` images (`images - 1`
/// workers plus one spare).
pub fn run_serve(
    platform: Platform,
    backend: Backend,
    images: usize,
    cfg: ServeConfig,
) -> ServeResult {
    run_serve_outcome(platform, backend, images, cfg, false).0
}

/// [`run_serve`] exposing the raw simulation outcome, for traced probes and
/// the determinism suite. Metrics (with the configured window) are enabled
/// unconditionally — windowed telemetry is the point of this workload.
pub fn run_serve_outcome(
    platform: Platform,
    backend: Backend,
    images: usize,
    cfg: ServeConfig,
    deterministic_nic: bool,
) -> (ServeResult, pgas_machine::SimOutcome<ServeImageOut>) {
    assert!(images >= 3, "serving needs at least two workers and a spare");
    assert!(cfg.epochs >= 1, "serving needs at least one epoch");
    let cores = 16.min(images);
    let nodes = images.div_ceil(cores);
    let heap = (cfg.slots_per_shard * 8 + (1 << 16)).next_power_of_two();
    let mut mcfg = platform
        .config(nodes, cores)
        .with_heap_bytes(heap)
        .with_metrics(true)
        .with_metrics_window(cfg.window_ns);
    if deterministic_nic {
        mcfg = mcfg.with_deterministic_nic();
    }
    let caf_cfg = CafConfig::new(backend, platform).with_nonsym_bytes(4096);
    let out = run_caf(mcfg, caf_cfg, move |img| {
        let n = img.num_images();
        let w = n - 1; // fixed shard count = initial worker count
        let me = img.this_image();
        let pe_id = me - 1;
        let table = img.coarray::<u64>(&[cfg.slots_per_shard]).unwrap();
        // Allocated symmetrically in both modes so the two run over an
        // identical context (the DHT does the same).
        let locks = img.lock_vars(1);
        let write_am = img.shmem().register_am(Rc::new(ServeWriteAm));
        // Placement: logical key -> (shard, slot) through the mixer.
        let place = |key: u64| -> (usize, usize) {
            let h = mix(key);
            ((h % w as u64) as usize, ((h / w as u64) % cfg.slots_per_shard as u64) as usize)
        };
        // One write against `home`; Ok(()) = acknowledged. A stat failure
        // in either mode reports Err so the caller can park the request.
        let write_to = |home: usize, key: u64| -> Result<(), ()> {
            let (_, slot) = place(key);
            match cfg.mode {
                DhtUpdateMode::Locked => {
                    img.lock(&locks[0], home);
                    let ok = match table.get_elem_stat(img, home, &[slot]) {
                        Ok(v) => {
                            table.put_elem_stat(img, home, &[slot], v.wrapping_add(key)).is_ok()
                        }
                        Err(_) => false,
                    };
                    img.unlock(&locks[0], home);
                    if ok {
                        Ok(())
                    } else {
                        Err(())
                    }
                }
                DhtUpdateMode::Am => {
                    let mut arg = [0u8; 16];
                    let off = table.ptr().at(slot).offset() as u64;
                    arg[0..8].copy_from_slice(&off.to_le_bytes());
                    arg[8..16].copy_from_slice(&key.to_le_bytes());
                    match img.shmem().try_am_send(img.pe_of(home), write_am, &arg) {
                        Ok(()) => Ok(()),
                        Err(ConduitError::TargetFailed { .. }) => Err(()),
                        Err(e) => panic!("serve write: {e:?}"),
                    }
                }
            }
        };
        let read_from = |home: usize, key: u64| -> Result<u64, ()> {
            let (_, slot) = place(key);
            table.get_elem_stat(img, home, &[slot]).map_err(|_| ())
        };
        let mut team = img.form_team(if me <= w { WORKER_TEAM } else { SPARE_TEAM });
        let mut shard_map: Vec<usize> = (1..=w).collect();
        let mut gen = RequestGen::new(&cfg, me, w);
        let mut o = ServeImageOut { detect_epoch: u64::MAX, ..Default::default() };
        let mut recs: Vec<Rec> = Vec::new();
        let mut parked: Vec<Parked> = Vec::new();
        let mut seq = 0u64;
        let mut reformed = false;
        img.sync_all();
        for epoch in 0..cfg.epochs {
            if img.this_image_failed() {
                break;
            }
            let serving = team.number() == WORKER_TEAM && team.contains(me);
            // Only the original workers generate load; the spare owns
            // reassigned shards after recovery but injects no requests.
            let quota = if serving && me <= w {
                (epoch + 1) * cfg.requests_per_image / cfg.epochs
                    - epoch * cfg.requests_per_image / cfg.epochs
            } else {
                0
            };
            let mut done = 0u64;
            if serving {
                img.change_team(&team, || {
                    let pe = img.shmem().ctx().pe();
                    let m = pe.machine();
                    for _ in 0..quota {
                        // Cooperative failure model: the scheduled failure
                        // kills the simulated image, not the OS thread, so
                        // the victim bows out at a request boundary — its
                        // remaining schedule is dropped, not parked.
                        if img.this_image_failed() {
                            break;
                        }
                        let spec = gen.next_req();
                        seq += 1;
                        let id = ((me as u64) << 32) | seq;
                        // Open-loop admission: the virtual clock, not the
                        // previous completion, decides when this request
                        // exists. Ahead of schedule -> idle forward; behind
                        // -> the backlog is a real queueing delay.
                        if pe.now() < spec.arrival_ns {
                            pe.advance((spec.arrival_ns - pe.now()) as f64);
                        }
                        let (shard, _) = place(spec.key);
                        let home = shard_map[shard];
                        // Clock-deterministic liveness probe: which
                        // requests get parked must reproduce bit-identically
                        // under any worker count.
                        if img.image_dead_by_now(home) {
                            parked.push(Parked {
                                id,
                                arrival_ns: spec.arrival_ns,
                                key: spec.key,
                                write: spec.write,
                            });
                            m.metrics().count_windowed(pe_id, "serve_parked", None, pe.now(), 1);
                            continue;
                        }
                        let begin = pe.now();
                        m.tracer().begin_request(pe_id, id, spec.arrival_ns, begin);
                        let ok = if spec.write {
                            write_to(home, spec.key).is_ok()
                        } else {
                            match read_from(home, spec.key) {
                                Ok(v) => {
                                    o.read_sum = o.read_sum.wrapping_add(v);
                                    true
                                }
                                Err(()) => false,
                            }
                        };
                        pe.compute_ops(20); // hashing + bookkeeping
                        let end = pe.now();
                        m.tracer().end_request(pe_id, end);
                        if !ok {
                            // Died between the probe and delivery: park for
                            // the recovery drain.
                            parked.push(Parked {
                                id,
                                arrival_ns: spec.arrival_ns,
                                key: spec.key,
                                write: spec.write,
                            });
                            m.metrics().count_windowed(pe_id, "serve_parked", None, end, 1);
                            continue;
                        }
                        if spec.write {
                            recs.push(Rec { shard, key: spec.key, owner: home });
                            o.writes += 1;
                        } else {
                            o.reads += 1;
                        }
                        done += 1;
                        let mx = m.metrics();
                        mx.observe_windowed(
                            pe_id,
                            "serve_latency_ns",
                            None,
                            end,
                            end - spec.arrival_ns,
                        );
                        mx.observe_windowed(
                            pe_id,
                            "serve_queue_ns",
                            None,
                            end,
                            begin - spec.arrival_ns,
                        );
                        mx.count_windowed(pe_id, "serve_requests", None, end, 1);
                    }
                });
            }
            if img.this_image_failed() {
                break;
            }
            // Epoch boundary: global before recovery (the idle spare must
            // observe the failure at the same control point), team-scoped
            // after (every live image is then a member).
            let _ = if reformed { img.sync_team_stat(&team) } else { img.sync_all_stat() };
            // Branch on the deadline probe against the barrier-aligned
            // clock, which every live image evaluates identically (the stat
            // result above races host time — see the churn app).
            let lost = !reformed
                && !img.this_image_failed()
                && shard_map.iter().any(|&owner| img.image_dead_by_now(owner));
            if lost {
                o.detect_epoch = epoch as u64;
                team = img.form_team(WORKER_TEAM);
                let new_map = reassign_shards(&shard_map, &team);
                // Writer journals replay onto reassigned shards first, so
                // the replacement holds every previously acknowledged write.
                for r in recs.iter_mut() {
                    if new_map[r.shard] != r.owner && write_to(new_map[r.shard], r.key).is_ok() {
                        r.owner = new_map[r.shard];
                        o.replayed += 1;
                    }
                }
                // Then the parked requests drain: they complete now, with
                // their *original* arrival time, so the outage is a latency
                // spike in the windowed series instead of silent loss.
                let pe = img.shmem().ctx().pe();
                let m = pe.machine();
                for p in parked.drain(..) {
                    let (shard, _) = place(p.key);
                    let home = new_map[shard];
                    let begin = pe.now();
                    m.tracer().begin_request(pe_id, p.id, p.arrival_ns, begin);
                    let ok = if p.write {
                        write_to(home, p.key).is_ok()
                    } else {
                        match read_from(home, p.key) {
                            Ok(v) => {
                                o.read_sum = o.read_sum.wrapping_add(v);
                                true
                            }
                            Err(()) => false,
                        }
                    };
                    let end = pe.now();
                    m.tracer().end_request(pe_id, end);
                    if !ok {
                        o.dropped += 1;
                        continue;
                    }
                    if p.write {
                        recs.push(Rec { shard, key: p.key, owner: home });
                        o.writes += 1;
                    } else {
                        o.reads += 1;
                    }
                    o.drained += 1;
                    let mx = m.metrics();
                    mx.observe_windowed(pe_id, "serve_latency_ns", None, end, end - p.arrival_ns);
                    mx.observe_windowed(pe_id, "serve_queue_ns", None, end, begin - p.arrival_ns);
                    mx.count_windowed(pe_id, "serve_requests", None, end, 1);
                }
                shard_map = new_map;
                reformed = true;
                // Replays and drains land before anyone serves against the
                // new map.
                img.sync_team(&team);
            }
            let now = img.shmem().ctx().pe().now();
            o.epochs.push((now, done, quota > 0));
            o.completed += done;
        }
        if img.this_image_failed() && me <= w {
            // The victim's whole unserved schedule is dropped — however the
            // deadline landed against the epoch cycle (mid-quota or at a
            // boundary) — and so is anything it still held parked.
            o.dropped += (cfg.requests_per_image as u64 - seq) + parked.len() as u64;
        }
        // Completion barrier so every in-flight write has applied, then the
        // deterministic accounting pass (guards as in the churn app).
        if !img.this_image_failed() {
            if reformed {
                img.sync_team(&team);
            } else {
                img.sync_all();
            }
        }
        let dead = |image: usize| img.image_failed(image) || img.image_dead_by_now(image);
        o.acked = recs.iter().filter(|r| !dead(r.owner)).fold(0u64, |a, r| a.wrapping_add(r.key));
        if me == 1 && !img.this_image_failed() {
            let mut sum = 0u64;
            for image in 1..=n {
                if dead(image) {
                    continue;
                }
                if let Ok(vs) = table.get_from_stat(img, image) {
                    for v in vs {
                        sum = sum.wrapping_add(v);
                    }
                }
            }
            o.checksum = sum;
        }
        if !img.this_image_failed() {
            if reformed {
                img.sync_team(&team);
            } else {
                img.sync_all();
            }
        }
        if me == 1 {
            o.members = team.members().to_vec();
        }
        o
    });
    let result = aggregate(&cfg, &out);
    (result, out)
}

/// Reassign shards after a re-formation — the churn app's rule: a live
/// owner's shards stay put; a dead owner's shards go to the newcomers
/// round-robin, or to surviving members if no newcomer joined. Pure
/// function of the old map and the new membership.
fn reassign_shards(map: &[usize], team: &CafTeam) -> Vec<usize> {
    let newcomers: Vec<usize> =
        team.members().iter().copied().filter(|m| !map.contains(m)).collect();
    let mut rr = 0usize;
    map.iter()
        .map(|&owner| {
            if team.contains(owner) {
                owner
            } else {
                let pick = if newcomers.is_empty() {
                    team.members()[rr % team.size()]
                } else {
                    newcomers[rr % newcomers.len()]
                };
                rr += 1;
                pick
            }
        })
        .collect()
}

/// Fold the per-image raw outcomes into a [`ServeResult`].
fn aggregate(cfg: &ServeConfig, out: &pgas_machine::SimOutcome<ServeImageOut>) -> ServeResult {
    let n_epochs = out.results.iter().map(|r| r.epochs.len()).max().unwrap_or(0);
    let mut epochs = Vec::with_capacity(n_epochs);
    for k in 0..n_epochs {
        let at = |f: &dyn Fn(&(u64, u64, bool)) -> u64| -> Vec<u64> {
            out.results.iter().filter_map(|r| r.epochs.get(k)).map(f).collect()
        };
        epochs.push(EpochStat {
            end_ns: at(&|e| e.0).into_iter().max().unwrap_or(0),
            completed: at(&|e| e.1).into_iter().sum(),
            generating: out.results.iter().filter_map(|r| r.epochs.get(k)).filter(|e| e.2).count(),
        });
    }
    let detect = out.results.iter().map(|r| r.detect_epoch).filter(|&d| d != u64::MAX).min();
    let mut slo = cfg.slo_spec().evaluate(&out.metrics);
    // Traced runs close the loop from SLO windows back to request causes:
    // walk each request's span graph, profile the per-window tails, and
    // annotate the report with dominant causes + exemplars.
    let tail = (!out.requests.is_empty()).then(|| {
        let t = out.tail_attribution(cfg.slo_threshold_ns, DEFAULT_EXEMPLARS, cfg.seed);
        t.annotate(&mut slo);
        t
    });
    ServeResult {
        completed: out.results.iter().map(|r| r.completed).sum(),
        drained: out.results.iter().map(|r| r.drained).sum(),
        dropped: out.results.iter().map(|r| r.dropped).sum(),
        reads: out.results.iter().map(|r| r.reads).sum(),
        writes: out.results.iter().map(|r| r.writes).sum(),
        replayed: out.results.iter().map(|r| r.replayed).sum(),
        detect_epoch: detect.map(|d| d as usize),
        checksum: out.results[0].checksum,
        acked_sum: out.results.iter().fold(0u64, |a, r| a.wrapping_add(r.acked)),
        members_after: out.results[0].members.clone(),
        slo,
        tail,
        time_ms: epochs.last().map(|e| e.end_ns).unwrap_or(0) as f64 / 1e6,
        epochs,
        stats: out.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_machine::{with_forced_aggregation, with_forced_plan, FaultPlan};

    fn small() -> ServeConfig {
        ServeConfig {
            keyspace: 10_000,
            requests_per_image: 40,
            epochs: 2,
            slots_per_shard: 64,
            mean_gap_ns: 1_500.0,
            ..Default::default()
        }
    }

    /// The calibrated failure scenario (the churn app's shape): 8 workers
    /// plus 1 spare, worker image 5 (PE 4) dies early in the first epoch,
    /// so detection waits a near-full epoch and the parked requests drain
    /// with a real outage-length latency.
    fn failure_plan(cfg: &ServeConfig) -> FaultPlan {
        FaultPlan::new(cfg.seed).with_pe_failure(4, 12_000)
    }

    fn run(plan: FaultPlan, cfg: ServeConfig) -> ServeResult {
        with_forced_aggregation(true, || {
            with_forced_plan(plan, || run_serve(Platform::Titan, Backend::Shmem, 9, cfg))
        })
    }

    #[test]
    fn zipf_sampling_is_skewed_and_in_range() {
        let zipf = Zipf::new(1_000, 1.2);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut head = 0usize;
        let mut counts = [0usize; 3]; // k=1, k in 2..=10, rest
        for _ in 0..10_000 {
            let k = zipf.sample(&mut rng);
            assert!((1..=1_000).contains(&k));
            if k <= 10 {
                head += 1;
            }
            counts[if k == 1 {
                0
            } else if k <= 10 {
                1
            } else {
                2
            }] += 1;
        }
        assert!(head > 4_000, "the head of a s=1.2 Zipf carries most mass: {head}");
        assert!(counts[0] > 1_500, "k=1 is the hottest key: {}", counts[0]);
    }

    #[test]
    fn poisson_schedule_is_open_loop_and_monotone() {
        let cfg = small();
        let mut gen = RequestGen::new(&cfg, 3, 8);
        let mut prev = 0u64;
        let mut gaps = Vec::new();
        for _ in 0..200 {
            let spec = gen.next_req();
            assert!(spec.arrival_ns >= prev, "arrivals are monotone");
            gaps.push(spec.arrival_ns - prev);
            prev = spec.arrival_ns;
        }
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        assert!(
            (mean - cfg.mean_gap_ns).abs() < cfg.mean_gap_ns * 0.35,
            "empirical mean gap {mean:.0} tracks the configured {}",
            cfg.mean_gap_ns
        );
    }

    #[test]
    fn healthy_run_matches_the_write_oracle() {
        let cfg = small();
        let r = run(FaultPlan::new(cfg.seed), cfg);
        assert_eq!(r.completed, 8 * cfg.requests_per_image as u64, "every request completed");
        assert_eq!(r.reads + r.writes, r.completed);
        assert_eq!(r.checksum, expected_write_sum(8, &cfg), "table matches the write oracle");
        assert_eq!(r.checksum, r.acked_sum, "every acknowledged write is in the table");
        assert_eq!(r.detect_epoch, None);
        assert_eq!(r.drained + r.dropped + r.replayed, 0);
        assert_eq!(r.epochs.len(), cfg.epochs);
        assert!(r.epochs.iter().all(|e| e.generating == 8), "all workers generate every epoch");
        // The SLO layer saw the windowed series this run produced.
        assert_eq!(r.slo.total_count, r.completed);
        assert!(!r.slo.windows.is_empty(), "windowed latency series is populated");
        assert_eq!(r.stats.pe_failures, 0);
    }

    #[test]
    fn both_update_modes_agree_on_the_table() {
        let locked = ServeConfig { mode: DhtUpdateMode::Locked, ..small() };
        let r = run(FaultPlan::new(locked.seed), locked);
        assert_eq!(r.checksum, expected_write_sum(8, &locked), "locked mode matches the oracle");
        assert_eq!(r.checksum, r.acked_sum);
    }

    #[test]
    fn failure_drains_parked_requests_with_zero_lost_acked_writes() {
        let cfg = small();
        let r = run(failure_plan(&cfg), cfg);
        assert_eq!(r.stats.pe_failures, 1, "the scheduled failure fired: {:?}", r.stats);
        let detect = r.detect_epoch.expect("the failure was observed at an epoch boundary");
        assert_eq!(
            r.checksum, r.acked_sum,
            "zero lost acknowledged writes across parking, replay and drain"
        );
        assert_ne!(r.checksum, expected_write_sum(8, &cfg), "the victim's tail really is gone");
        assert_eq!(
            r.members_after,
            vec![1, 2, 3, 4, 6, 7, 8, 9],
            "re-formation dropped image 5 and admitted the spare"
        );
        assert!(r.dropped > 0, "the victim's unserved schedule is accounted as dropped");
        assert!(
            r.epochs[detect].generating < 8,
            "the availability series dips in the detection epoch"
        );
        assert!(
            r.epochs.last().unwrap().generating == 7,
            "surviving workers keep generating after recovery (the spare injects no load)"
        );
        assert_eq!(r.stats.lock_leaks, 0);
    }

    #[test]
    fn slo_report_sees_the_outage_as_a_burn() {
        // Tight threshold + long outage: the drained requests' latency
        // spans the whole detection window, so the burn-rate series must
        // light up in at least one window.
        let cfg = ServeConfig { slo_threshold_ns: 30_000, ..small() };
        let r = run(failure_plan(&cfg), cfg);
        if r.drained > 0 {
            assert!(
                r.slo.windows.iter().any(|w| w.violations > 0),
                "drained requests violate the SLO threshold: {:?}",
                r.slo.windows
            );
            assert!(r.slo.budget_spent_x1000 > 0, "the outage spends error budget");
        }
    }

    #[test]
    fn traced_failure_run_attributes_its_tail() {
        let cfg = ServeConfig { slo_threshold_ns: 30_000, ..small() };
        let plan = failure_plan(&cfg);
        let r = pgas_machine::with_forced_tracing(true, || run(plan, cfg));
        let tail = r.tail.as_ref().expect("a traced run carries a tail attribution");
        assert!(!tail.profiles.is_empty(), "per-window tail profiles are populated");
        // Every violated window names a dominant cause, and the annotation
        // is consistent with the profile the attribution holds for it.
        let mut violated = 0usize;
        for w in r.slo.windows.iter().filter(|w| w.violations > 0) {
            violated += 1;
            let cause = w.dominant_cause.expect("violated window names a dominant cause");
            let prof = tail.profile_at(w.window).expect("violated window has a profile");
            assert_eq!(prof.dominant_cause(), Some(cause));
            assert!(prof.slow > 0, "the profile saw the slow requests");
        }
        assert!(violated > 0, "the outage violates at least one window");
        // Raised alerts carry exemplars: the k worst request ids in the
        // trailing burn span, each over threshold with a named cause.
        for a in r.slo.alerts.iter().filter(|a| a.raised) {
            assert!(!a.exemplars.is_empty(), "raised alert carries exemplars: {a:?}");
            for e in &a.exemplars {
                assert!(e.latency_ns > 30_000, "exemplars are tail requests: {e:?}");
            }
        }
        // The run-wide ranking blames the outage machinery, not handler
        // compute: drained requests spend their lives parked behind the
        // dead home image.
        let top = tail.top_causes();
        assert!(!top.is_empty(), "slow requests exist so causes rank");
        use pgas_machine::tailprof::ReqPhase;
        assert_ne!(top[0].0, ReqPhase::HandlerCompute, "tail is not compute-bound: {top:?}");
    }
}
