//! 2-D five-point Laplace stencil with a Cartesian image grid: the
//! decomposition exchanges **contiguous** halos along dimension 1 (a column
//! of the local block is contiguous in column-major layout) and **strided**
//! halos along dimension 2 (a row is one element every `local_rows`) —
//! exercising both co-indexed transfer classes of §IV in one application.

use caf::{run_caf, Backend, CafConfig, DimRange, ImageGrid, Section, StridedAlgorithm};
use pgas_machine::Platform;

/// Problem parameters: an `n x n` interior with fixed boundary values.
#[derive(Debug, Clone, Copy)]
pub struct StencilConfig {
    pub n: usize,
    pub steps: usize,
}

/// Sequential oracle: Jacobi sweeps of the 5-point average. The boundary is
/// initialized to x+2y (a harmonic function, so the iteration converges to
/// it exactly in the limit; we only compare finite iterates).
pub fn serial_stencil(cfg: &StencilConfig) -> Vec<f64> {
    let n = cfg.n;
    let w = n + 2;
    let idx = |i: usize, j: usize| i + w * j;
    let mut u = vec![0.0f64; w * w];
    for j in 0..w {
        for i in 0..w {
            if i == 0 || j == 0 || i == w - 1 || j == w - 1 {
                u[idx(i, j)] = i as f64 + 2.0 * j as f64;
            }
        }
    }
    let mut next = u.clone();
    for _ in 0..cfg.steps {
        for j in 1..=n {
            for i in 1..=n {
                next[idx(i, j)] = 0.25
                    * (u[idx(i - 1, j)] + u[idx(i + 1, j)] + u[idx(i, j - 1)] + u[idx(i, j + 1)]);
            }
        }
        std::mem::swap(&mut u, &mut next);
    }
    // Interior only.
    let mut out = Vec::with_capacity(n * n);
    for j in 1..=n {
        for i in 1..=n {
            out.push(u[idx(i, j)]);
        }
    }
    out
}

/// Run the distributed version on a balanced 2-D image grid; returns the
/// assembled interior, identical (bitwise) to [`serial_stencil`].
pub fn parallel_stencil(
    platform: Platform,
    backend: Backend,
    strided: Option<StridedAlgorithm>,
    images: usize,
    cfg: StencilConfig,
) -> Vec<f64> {
    parallel_stencil_with_stats(platform, backend, strided, images, cfg).0
}

/// [`parallel_stencil`], also returning the job's machine counters so
/// callers can audit fault/retry totals and lock hygiene.
pub fn parallel_stencil_with_stats(
    platform: Platform,
    backend: Backend,
    strided: Option<StridedAlgorithm>,
    images: usize,
    cfg: StencilConfig,
) -> (Vec<f64>, pgas_machine::stats::StatsSnapshot) {
    let n = cfg.n;
    let grid = ImageGrid::balanced_2d(images);
    // Halo puts index the *neighbour's* block with this image's local shape,
    // so all blocks must be congruent.
    assert!(
        n.is_multiple_of(grid.dims()[0]) && n.is_multiple_of(grid.dims()[1]),
        "n = {n} must be divisible by the {:?} image grid",
        grid.dims()
    );
    let mcfg = crate::job_machine(platform, images, n * n * 8 * 2 + (1 << 17));
    let mut caf_cfg = CafConfig::new(backend, platform).with_nonsym_bytes(4096);
    if let Some(a) = strided {
        caf_cfg = caf_cfg.with_strided(a);
    }
    let out = run_caf(mcfg, caf_cfg, move |img| {
        let me = img.this_image();
        let (i0, li) = grid.block_range(me, 0, n);
        let (j0, lj) = grid.block_range(me, 1, n);
        let (wi, wj) = (li + 2, lj + 2); // with ghost ring
        let idx = |i: usize, j: usize| i + wi * j;
        // Local block coarray (ghosts included) for halo exchange.
        let block = img.coarray::<f64>(&[wi, wj]).unwrap();
        let mut u = vec![0.0f64; wi * wj];
        // Global coordinates of local (i,j): (i0 + i - 1, j0 + j - 1) in the
        // n x n interior; the physical boundary uses the +1 offset frame.
        let boundary = |gi: isize, gj: isize| (gi + 1) as f64 + 2.0 * (gj + 1) as f64;
        for j in 0..wj {
            for i in 0..wi {
                let gi = i0 as isize + i as isize - 1;
                let gj = j0 as isize + j as isize - 1;
                if gi < 0 || gj < 0 || gi >= n as isize || gj >= n as isize {
                    u[idx(i, j)] = boundary(gi, gj);
                }
            }
        }
        let mut next = u.clone();
        let left = grid.neighbor(me, 0, -1, false);
        let right = grid.neighbor(me, 0, 1, false);
        let down = grid.neighbor(me, 1, -1, false);
        let up = grid.neighbor(me, 1, 1, false);
        for _ in 0..cfg.steps {
            // Publish my border cells into the neighbours' ghost cells.
            block.write_local(img, &u);
            img.sync_all();
            // Dim-1 neighbours (left/right): my border column j=1..=lj at
            // i=1 (or li) goes to their ghost column at i=wi-1 (or 0).
            // A column slice {i fixed, j range} is strided (stride wi).
            let col = |i: usize| {
                Section::new(vec![
                    DimRange { start: i, count: 1, step: 1 },
                    DimRange { start: 1, count: lj, step: 1 },
                ])
            };
            let pack_col =
                |u: &[f64], i: usize| -> Vec<f64> { (1..=lj).map(|j| u[idx(i, j)]).collect() };
            if let Some(l) = left {
                // Neighbour has the same block shape only if the grid splits
                // evenly; we require that below.
                block.put_section(img, l, &col(wi - 1), &pack_col(&u, 1));
            }
            if let Some(r) = right {
                block.put_section(img, r, &col(0), &pack_col(&u, li));
            }
            // Dim-2 neighbours (down/up): my border row is contiguous.
            let row = |j: usize| {
                Section::new(vec![
                    DimRange { start: 1, count: li, step: 1 },
                    DimRange { start: j, count: 1, step: 1 },
                ])
            };
            let pack_row =
                |u: &[f64], j: usize| -> Vec<f64> { (1..=li).map(|i| u[idx(i, j)]).collect() };
            if let Some(d) = down {
                block.put_section(img, d, &row(wj - 1), &pack_row(&u, 1));
            }
            if let Some(t) = up {
                block.put_section(img, t, &row(0), &pack_row(&u, lj));
            }
            img.sync_all();
            // Pull received ghosts into the working array.
            let fresh = block.read_local(img);
            for j in 1..=lj {
                if left.is_some() {
                    u[idx(0, j)] = fresh[idx(0, j)];
                }
                if right.is_some() {
                    u[idx(wi - 1, j)] = fresh[idx(wi - 1, j)];
                }
            }
            for i in 1..=li {
                if down.is_some() {
                    u[idx(i, 0)] = fresh[idx(i, 0)];
                }
                if up.is_some() {
                    u[idx(i, wj - 1)] = fresh[idx(i, wj - 1)];
                }
            }
            // Jacobi sweep.
            for j in 1..=lj {
                for i in 1..=li {
                    next[idx(i, j)] = 0.25
                        * (u[idx(i - 1, j)]
                            + u[idx(i + 1, j)]
                            + u[idx(i, j - 1)]
                            + u[idx(i, j + 1)]);
                }
            }
            std::mem::swap(&mut u, &mut next);
            img.shmem().ctx().pe().compute_flops((li * lj) as f64 * 4.0);
        }
        // Assemble on image 1 (global interior, column-major n x n).
        let global = img.coarray::<f64>(&[n, n]).unwrap();
        let sec = Section::new(vec![
            DimRange { start: i0, count: li, step: 1 },
            DimRange { start: j0, count: lj, step: 1 },
        ]);
        let mut mine = Vec::with_capacity(li * lj);
        for j in 1..=lj {
            for i in 1..=li {
                mine.push(u[idx(i, j)]);
            }
        }
        global.put_section(img, 1, &sec, &mine);
        img.sync_all();
        let mut result = global.get_from(img, 1);
        img.co_broadcast(&mut result, 1);
        result
    });
    let stats = out.stats;
    (out.results.into_iter().next().unwrap(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Halo exchange requires uniform block shapes across images; keep n a
    // multiple of both grid extents in the tests.
    #[test]
    fn parallel_matches_serial_bitwise() {
        let cfg = StencilConfig { n: 12, steps: 12 };
        let serial = serial_stencil(&cfg);
        for images in [1usize, 2, 4, 9] {
            let got = parallel_stencil(Platform::GenericSmp, Backend::Shmem, None, images, cfg);
            assert_eq!(got, serial, "images={images}");
        }
    }

    #[test]
    fn converges_towards_the_harmonic_boundary() {
        // With boundary x+2y (harmonic), long iteration approaches it.
        let coarse = serial_stencil(&StencilConfig { n: 8, steps: 2 });
        let fine = serial_stencil(&StencilConfig { n: 8, steps: 400 });
        let exact = |i: usize, j: usize| (i + 1) as f64 + 2.0 * (j + 1) as f64;
        let err = |u: &[f64]| -> f64 {
            let mut e = 0.0f64;
            for j in 0..8 {
                for i in 0..8 {
                    e = e.max((u[i + 8 * j] - exact(i, j)).abs());
                }
            }
            e
        };
        assert!(err(&fine) < 1e-3, "fine error {}", err(&fine));
        assert!(err(&fine) < err(&coarse) / 100.0);
    }

    #[test]
    fn strided_algorithms_agree_on_the_stencil() {
        let cfg = StencilConfig { n: 8, steps: 6 };
        let serial = serial_stencil(&cfg);
        for algo in [StridedAlgorithm::Naive, StridedAlgorithm::TwoDim, StridedAlgorithm::Adaptive]
        {
            let got = parallel_stencil(Platform::CrayXc30, Backend::Shmem, Some(algo), 4, cfg);
            assert_eq!(got, serial, "{algo:?}");
        }
    }
}
