//! Availability under churn: a DHT-style serving workload that survives a
//! scheduled image failure by re-forming its team and reclaiming capacity.
//!
//! The run models ROADMAP item 5's recovery cycle end to end. `images - 1`
//! *worker* images serve rounds of active-message updates against a sharded
//! table (one shard per worker), while the last image idles as a *spare*.
//! When a scheduled `FaultPlan` failure kills a worker mid-round, the
//! survivors observe it at the round boundary (`sync all` with `stat=`),
//! re-form the worker team together with the spare (`form team` — the dead
//! image is excluded, the spare joins in its place), reassign the dead
//! image's shards to the newcomer, and *replay* every update whose home
//! moved from each writer's journal. Serving then resumes at full strength:
//! the run reclaims throughput instead of degrading permanently.
//!
//! Two invariants anchor the tests and the `availability_churn` figure:
//!
//! * **Zero lost acknowledged writes** — the final live-table checksum
//!   equals the wrapping key sum of every update whose latest acknowledged
//!   home is still alive at the end of the run (survivor journals are
//!   replayed onto the replacement, so after recovery that is *every*
//!   update a survivor ever acknowledged).
//! * **Throughput reclaim** — the post-recovery rounds sustain ≥ 90% of
//!   the pre-failure round throughput (`ChurnResult::recovery_ratio`).
//!
//! Every resilience decision branches on clock-deterministic predicates
//! (`image_dead_by_now`, post-barrier failure flags), so a fixed seed and
//! plan reproduce the whole cycle bit-identically under any worker count.

use caf::{run_caf, Backend, CafConfig, CafTeam};
use openshmem::{AmHandler, AmTarget, ConduitError};
use pgas_machine::stats::StatsSnapshot;
use pgas_machine::Platform;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

/// Team number the serving workers form (and re-form) under; the spare
/// passes it too when it rejoins after a failure.
const WORKER_TEAM: i64 = 7;
/// Team number the spare idles under before a failure.
const SPARE_TEAM: i64 = 11;

/// Workload parameters. `images - 1` workers serve; the last image is the
/// spare that rejoins after a failure.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// `u64` slots in each worker's shard of the table.
    pub slots_per_shard: usize,
    /// Updates each serving image issues per round.
    pub updates_per_round: usize,
    /// Serving rounds, each closed by a stat-bearing synchronization.
    pub rounds: usize,
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig { slots_per_shard: 64, updates_per_round: 8, rounds: 8, seed: 0xC802 }
    }
}

/// The update handler, identical to the DHT's AM mode: `arg` is
/// `[slot offset, key]` as two little-endian u64s, applied as a wrapping
/// add at the home image (commutative, so replay order never matters).
struct ChurnUpdateAm;

impl AmHandler for ChurnUpdateAm {
    fn execute(&self, t: &mut AmTarget<'_>, arg: &[u8]) -> Option<Vec<u8>> {
        let off = u64::from_le_bytes(arg[0..8].try_into().expect("churn am arg")) as usize;
        let key = u64::from_le_bytes(arg[8..16].try_into().expect("churn am arg"));
        let v = t.read_u64(off);
        t.write_u64(off, v.wrapping_add(key));
        None
    }
}

/// One aggregated serving round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStat {
    /// Virtual time at the round's closing synchronization (including any
    /// recovery work the boundary triggered), ns.
    pub end_ns: u64,
    /// Virtual duration of the round, ns.
    pub duration_ns: u64,
    /// Updates acknowledged across all images this round.
    pub updates: u64,
    /// Images that served the round (the availability series).
    pub serving: usize,
}

/// Outcome of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnResult {
    /// Per-round aggregates, in order (the figure's x axis).
    pub rounds: Vec<RoundStat>,
    /// Wrapping sum of all live shards at the end of the run.
    pub checksum: u64,
    /// Wrapping key sum of every update whose latest acknowledged home is
    /// alive at the end — `checksum == acked_sum` is the zero-lost-
    /// acknowledged-writes invariant.
    pub acked_sum: u64,
    /// Journal entries re-sent to a reassigned shard during recovery.
    pub replayed: u64,
    /// Updates that failed against the dying image and were retried against
    /// its replacement during recovery.
    pub retried: u64,
    /// Round whose boundary observed the failure and ran the recovery
    /// (`None` on a healthy run).
    pub detect_round: Option<usize>,
    /// Mean round throughput before the failure, updates per µs.
    pub pre_tput: f64,
    /// Mean round throughput after recovery completed, updates per µs.
    pub post_tput: f64,
    /// `post_tput / pre_tput`; 1.0 on a healthy run. Acceptance bar: ≥ 0.9.
    pub recovery_ratio: f64,
    /// Worker-team membership at the end of the run (1-based image ids).
    pub members_after: Vec<usize>,
    /// Virtual makespan in milliseconds.
    pub time_ms: f64,
    pub stats: StatsSnapshot,
}

/// Wrapping sum of the keys the workers generate over a full healthy run —
/// the oracle for the final table checksum when nothing fails.
pub fn expected_checksum(workers: usize, cfg: &ChurnConfig) -> u64 {
    let mut sum = 0u64;
    for image in 1..=workers {
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (image as u64).wrapping_mul(0x9E37_79B9));
        for _ in 0..cfg.rounds * cfg.updates_per_round {
            sum = sum.wrapping_add(rng.gen::<u64>());
        }
    }
    sum
}

/// Reassign shards after a re-formation: shards whose owner survives stay
/// put; a dead owner's shards go to the newcomers (images that were not
/// owners before — the spares) round-robin, or to surviving members if no
/// newcomer joined. Pure function of the old map and the new membership,
/// so every live image computes the same map without communicating.
fn reassign_shards(map: &[usize], team: &CafTeam) -> Vec<usize> {
    let newcomers: Vec<usize> =
        team.members().iter().copied().filter(|m| !map.contains(m)).collect();
    let mut rr = 0usize;
    map.iter()
        .map(|&owner| {
            if team.contains(owner) {
                owner
            } else {
                let pick = if newcomers.is_empty() {
                    team.members()[rr % team.size()]
                } else {
                    newcomers[rr % newcomers.len()]
                };
                rr += 1;
                pick
            }
        })
        .collect()
}

/// One acknowledged update: which shard it belongs to, its key, and the
/// image that acknowledged it most recently (updated when a replay moves
/// it to a reassigned shard).
struct Rec {
    shard: usize,
    key: u64,
    owner: usize,
}

/// Per-image raw outcome, aggregated by the host after the run.
type ImageOut = (Vec<(u64, u64, bool)>, u64, u64, u64, u64, u64, Vec<usize>);

/// Run the churn workload on `images` images (`images - 1` workers plus one
/// spare).
pub fn run_churn(
    platform: Platform,
    backend: Backend,
    images: usize,
    cfg: ChurnConfig,
) -> ChurnResult {
    run_churn_outcome(platform, backend, images, cfg, false).0
}

/// [`run_churn`] exposing the raw simulation outcome, for traced probes.
pub fn run_churn_outcome(
    platform: Platform,
    backend: Backend,
    images: usize,
    cfg: ChurnConfig,
    deterministic_nic: bool,
) -> (ChurnResult, pgas_machine::SimOutcome<ImageOut>) {
    assert!(images >= 3, "churn needs at least two workers and a spare");
    let cores = 16.min(images);
    let nodes = images.div_ceil(cores);
    let heap = (cfg.slots_per_shard * 8 + (1 << 16)).next_power_of_two();
    let mut mcfg = platform.config(nodes, cores).with_heap_bytes(heap);
    if deterministic_nic {
        mcfg = mcfg.with_deterministic_nic();
    }
    let caf_cfg = CafConfig::new(backend, platform).with_nonsym_bytes(4096);
    let out = run_caf(mcfg, caf_cfg, move |img| {
        let n = img.num_images();
        let w = n - 1; // fixed shard count = initial worker count
        let me = img.this_image();
        let table = img.coarray::<u64>(&[cfg.slots_per_shard]).unwrap();
        let update_am = img.shmem().register_am(Rc::new(ChurnUpdateAm));
        let send = |home: usize, key: u64| -> Result<(), ConduitError> {
            let slot = ((key / w as u64) % cfg.slots_per_shard as u64) as usize;
            let mut arg = [0u8; 16];
            let off = table.ptr().at(slot).offset() as u64;
            arg[0..8].copy_from_slice(&off.to_le_bytes());
            arg[8..16].copy_from_slice(&key.to_le_bytes());
            img.shmem().try_am_send(img.pe_of(home), update_am, &arg)
        };
        let mut team = img.form_team(if me <= w { WORKER_TEAM } else { SPARE_TEAM });
        let mut shard_map: Vec<usize> = (1..=w).collect();
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (me as u64).wrapping_mul(0x9E37_79B9));
        let mut recs: Vec<Rec> = Vec::new();
        let mut pending: Vec<(usize, u64)> = Vec::new();
        let mut rounds_log: Vec<(u64, u64, bool)> = Vec::with_capacity(cfg.rounds);
        let (mut replayed, mut retried) = (0u64, 0u64);
        // Request-id sequence for tail attribution: each direct update is a
        // tracked request (arrival == begin: churn updates are closed-loop,
        // they never queue behind an open-loop schedule).
        let my_pe = img.pe_of(me);
        let mut seq = 0u64;
        let mut detect_round = u64::MAX;
        let mut reformed = false;
        img.sync_all();
        for round in 0..cfg.rounds {
            if img.this_image_failed() {
                break;
            }
            let serving = team.number() == WORKER_TEAM && team.contains(me);
            let mut done = 0u64;
            if serving {
                // Serve under the team scope: every update is attributed to
                // the worker team in the sanitizer/metrics/flow traces, and
                // the construct's implicit `sync team` pair keeps the
                // workers in step even while the spare idles outside.
                img.change_team(&team, || {
                    for _ in 0..cfg.updates_per_round {
                        // Cooperative failure model: the scheduled failure
                        // kills the simulated image, not the OS thread, so
                        // the victim bows out at an update boundary.
                        if img.this_image_failed() {
                            break;
                        }
                        let key: u64 = rng.gen();
                        let shard = (key % w as u64) as usize;
                        let home = shard_map[shard];
                        // Clock-deterministic liveness probe: which updates
                        // get parked (and every ns the skip saves) must
                        // reproduce bit-identically under any worker count.
                        if img.image_dead_by_now(home) {
                            pending.push((shard, key));
                            continue;
                        }
                        seq += 1;
                        let pe = img.shmem().ctx().pe();
                        let begin = pe.now();
                        pe.machine().tracer().begin_request(
                            my_pe,
                            ((me as u64) << 32) | seq,
                            begin,
                            begin,
                        );
                        match send(home, key) {
                            Ok(()) => {
                                recs.push(Rec { shard, key, owner: home });
                                done += 1;
                            }
                            // Died between the probe and delivery: park the
                            // update for the recovery replay.
                            Err(ConduitError::TargetFailed { .. }) => pending.push((shard, key)),
                            Err(e) => panic!("churn update: {e:?}"),
                        }
                        pe.compute_ops(20); // hashing
                        pe.machine().tracer().end_request(my_pe, pe.now());
                    }
                });
            }
            if img.this_image_failed() {
                break;
            }
            // Round boundary: global before recovery (the idle spare must
            // observe the failure at the same control point), team-scoped
            // after (every live image is then a member).
            let _ = if reformed { img.sync_team_stat(&team) } else { img.sync_all_stat() };
            // The stat result above races host time: the victim's failure
            // flag flips when *its* thread crosses the deadline, so a slow
            // survivor could see FailedImage a round before a fast one —
            // and a split decision would leave half the images inside the
            // `form_team` collective. The recovery decision instead
            // branches on the deadline probe against the barrier-aligned
            // clock, which every live image evaluates identically.
            let lost = !reformed
                && !img.this_image_failed()
                && shard_map.iter().any(|&o| img.image_dead_by_now(o));
            if lost {
                detect_round = round as u64;
                // Re-form: survivors and the spare all pass the worker
                // team number; the dead image is excluded from the
                // member exchange and the spare joins in its place.
                team = img.form_team(WORKER_TEAM);
                let new_map = reassign_shards(&shard_map, &team);
                // Shard redistribution: each writer replays its own
                // journal onto the reassigned shards, and drains the
                // updates that failed against the dying image.
                for r in recs.iter_mut() {
                    if new_map[r.shard] != r.owner && send(new_map[r.shard], r.key).is_ok() {
                        r.owner = new_map[r.shard];
                        replayed += 1;
                    }
                }
                for (shard, key) in pending.drain(..) {
                    if send(new_map[shard], key).is_ok() {
                        recs.push(Rec { shard, key, owner: new_map[shard] });
                        retried += 1;
                    }
                }
                shard_map = new_map;
                reformed = true;
                // Replays land before anyone serves against the new map.
                img.sync_team(&team);
            }
            rounds_log.push((img.shmem().ctx().pe().now(), done, serving));
        }
        // Completion barrier so every in-flight AM has applied, then the
        // deterministic accounting pass.
        if !img.this_image_failed() {
            if reformed {
                img.sync_team(&team);
            } else {
                img.sync_all();
            }
        }
        // Both guards are deterministic here: the failure flag is ordered
        // before the barrier exit and the deadline probe is a pure function
        // of this image's clock.
        let dead = |image: usize| img.image_failed(image) || img.image_dead_by_now(image);
        let acked: u64 =
            recs.iter().filter(|r| !dead(r.owner)).fold(0u64, |a, r| a.wrapping_add(r.key));
        let checksum = if me == 1 && !img.this_image_failed() {
            let mut sum = 0u64;
            for image in 1..=n {
                if dead(image) {
                    continue;
                }
                if let Ok(vs) = table.get_from_stat(img, image) {
                    for v in vs {
                        sum = sum.wrapping_add(v);
                    }
                }
            }
            sum
        } else {
            0
        };
        if !img.this_image_failed() {
            if reformed {
                img.sync_team(&team);
            } else {
                img.sync_all();
            }
        }
        let members = if me == 1 { team.members().to_vec() } else { Vec::new() };
        (rounds_log, acked, replayed, retried, detect_round, checksum, members)
    });
    let result = aggregate(&out);
    (result, out)
}

/// Fold the per-image raw outcomes into a [`ChurnResult`].
fn aggregate(out: &pgas_machine::SimOutcome<ImageOut>) -> ChurnResult {
    let n_rounds = out.results.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let mut rounds = Vec::with_capacity(n_rounds);
    let mut prev_end = None::<u64>;
    for k in 0..n_rounds {
        let end = out.results.iter().filter_map(|r| r.0.get(k)).map(|&(e, _, _)| e).max().unwrap();
        let updates: u64 = out.results.iter().filter_map(|r| r.0.get(k)).map(|&(_, d, _)| d).sum();
        let serving = out.results.iter().filter_map(|r| r.0.get(k)).filter(|&&(_, _, s)| s).count();
        let duration = match prev_end {
            Some(p) => end.saturating_sub(p),
            // The first round's start is not logged; charge it the mean of
            // the later rounds once known (patched below).
            None => 0,
        };
        prev_end = Some(end);
        rounds.push(RoundStat { end_ns: end, duration_ns: duration, updates, serving });
    }
    let detect = out.results.iter().map(|r| r.4).filter(|&d| d != u64::MAX).min();
    if rounds.len() > 1 {
        // Patch round 0 from the steady-state rounds only: the detection
        // round absorbs the dead-target timeout chain, and smearing that
        // outlier into round 0 would poison the pre-failure throughput.
        let steady: Vec<u64> = rounds
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(k, _)| detect != Some(*k as u64))
            .map(|(_, r)| r.duration_ns)
            .collect();
        if !steady.is_empty() {
            rounds[0].duration_ns = steady.iter().sum::<u64>() / steady.len() as u64;
        }
    }
    let tput = |slice: &[RoundStat]| {
        let updates: u64 = slice.iter().map(|r| r.updates).sum();
        let ns: u64 = slice.iter().map(|r| r.duration_ns).sum();
        if ns == 0 {
            0.0
        } else {
            updates as f64 / (ns as f64 / 1e3)
        }
    };
    let (pre, post) = match detect {
        Some(d) => {
            let d = d as usize;
            (tput(&rounds[..d.min(rounds.len())]), tput(&rounds[(d + 1).min(rounds.len())..]))
        }
        None => (tput(&rounds), tput(&rounds)),
    };
    ChurnResult {
        checksum: out.results[0].5,
        acked_sum: out.results.iter().fold(0u64, |a, r| a.wrapping_add(r.1)),
        replayed: out.results.iter().map(|r| r.2).sum(),
        retried: out.results.iter().map(|r| r.3).sum(),
        detect_round: detect.map(|d| d as usize),
        pre_tput: pre,
        post_tput: post,
        recovery_ratio: if pre > 0.0 { post / pre } else { 1.0 },
        members_after: out.results[0].6.clone(),
        time_ms: rounds.last().map(|r| r.end_ns).unwrap_or(0) as f64 / 1e6,
        rounds,
        stats: out.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_machine::{with_forced_aggregation, with_forced_plan, with_forced_workers, FaultPlan};

    /// The calibrated failure scenario used by the tests and the
    /// `availability_churn` probe: 8 workers + 1 spare, worker image 5
    /// (PE 4) dies at 30 µs — mid round 3's generation of the default
    /// config's ~61 µs healthy makespan, so the dip is visible in the
    /// round stats and some of its traffic is caught in flight.
    fn failure_plan(cfg: &ChurnConfig) -> FaultPlan {
        FaultPlan::new(cfg.seed).with_pe_failure(4, 30_000)
    }

    fn run(plan: FaultPlan, cfg: ChurnConfig) -> ChurnResult {
        with_forced_aggregation(true, || {
            with_forced_plan(plan, || run_churn(Platform::Titan, Backend::Shmem, 9, cfg))
        })
    }

    #[test]
    fn healthy_run_matches_the_oracle() {
        let cfg = ChurnConfig::default();
        let r = run(FaultPlan::new(cfg.seed), cfg);
        assert_eq!(r.checksum, expected_checksum(8, &cfg), "full table matches the key oracle");
        assert_eq!(r.checksum, r.acked_sum, "every acknowledged write is in the table");
        assert_eq!(r.detect_round, None);
        assert_eq!(r.recovery_ratio, 1.0);
        assert_eq!(r.replayed + r.retried, 0);
        assert!(r.rounds.iter().all(|rd| rd.serving == 8), "all workers serve every round");
        assert_eq!(r.stats.pe_failures, 0);
    }

    #[test]
    fn failure_recovers_capacity_with_zero_lost_acked_writes() {
        let cfg = ChurnConfig::default();
        let r = run(failure_plan(&cfg), cfg);
        assert_eq!(r.stats.pe_failures, 1, "the scheduled failure fired: {:?}", r.stats);
        let detect = r.detect_round.expect("the failure was observed at a round boundary");
        assert_eq!(
            r.checksum, r.acked_sum,
            "zero lost acknowledged writes: the live table holds exactly the acked keys"
        );
        assert_ne!(r.checksum, expected_checksum(8, &cfg), "the victim's tail really is gone");
        assert_eq!(
            r.members_after,
            vec![1, 2, 3, 4, 6, 7, 8, 9],
            "re-formation dropped image 5 and admitted the spare"
        );
        assert!(r.replayed > 0, "the dead image's shard was redistributed from writer journals");
        assert_eq!(r.rounds[detect].serving, 7, "availability dips by one in the detection round");
        assert!(
            r.rounds[detect + 1..].iter().all(|rd| rd.serving == 8),
            "the spare serves from the round after recovery"
        );
        assert!(
            r.recovery_ratio >= 0.9,
            "post-recovery throughput reclaims ≥ 90% of pre-failure: {:.3} (pre {:.3}/µs, post {:.3}/µs)",
            r.recovery_ratio,
            r.pre_tput,
            r.post_tput
        );
        assert_eq!(r.stats.lock_leaks, 0);
    }

    #[test]
    fn recovery_cycle_is_deterministic_across_worker_counts() {
        // The deterministic NIC pins the arbitration order (like every other
        // reproducibility suite); the claim under test is that the *worker
        // count* then has no way to leak into the recovery timeline.
        let cfg = ChurnConfig::default();
        let det = |w: usize| {
            with_forced_workers(w, || {
                with_forced_aggregation(true, || {
                    with_forced_plan(failure_plan(&cfg), || {
                        run_churn_outcome(Platform::Titan, Backend::Shmem, 9, cfg, true).0
                    })
                })
            })
        };
        let (a, b) = (det(1), det(8));
        assert_eq!(a.rounds, b.rounds, "round timeline must not see the host worker count");
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.acked_sum, b.acked_sum);
        assert_eq!(
            (a.replayed, a.retried, a.detect_round),
            (b.replayed, b.retried, b.detect_round)
        );
        let again = det(1);
        assert_eq!(a.rounds, again.rounds, "same plan, same timeline, bit for bit");
    }

    /// Satellite 6: the push-consumer hook on the snapshot stream feeds a
    /// live availability series — an external dashboard subscribes and
    /// watches the live-image count drop when the scheduled failure fires,
    /// without moving a single virtual clock.
    #[test]
    fn stream_consumer_observes_the_availability_drop() {
        use pgas_machine::{with_forced_stream, StreamConfig, StreamSample};
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let cfg = ChurnConfig::default();
        let deadline = 30_000u64;
        let victim_pe = 4usize;
        let samples = Arc::new(AtomicUsize::new(0));
        let min_live = Arc::new(AtomicUsize::new(usize::MAX));
        let max_live = Arc::new(AtomicUsize::new(0));
        let (s, lo, hi) = (Arc::clone(&samples), Arc::clone(&min_live), Arc::clone(&max_live));
        let stream =
            StreamConfig::new(2_000, 512).with_consumer(Arc::new(move |sample: &StreamSample| {
                // The availability series: a PE whose clock crossed the
                // scheduled deadline is down; everyone else is up.
                let live = sample
                    .clocks
                    .iter()
                    .enumerate()
                    .filter(|&(pe, &clk)| !(pe == victim_pe && clk >= deadline))
                    .count();
                s.fetch_add(1, Ordering::Relaxed);
                lo.fetch_min(live, Ordering::Relaxed);
                hi.fetch_max(live, Ordering::Relaxed);
            }));
        let r = with_forced_stream(stream.clone(), || run(failure_plan(&cfg), cfg));
        assert_eq!(r.stats.pe_failures, 1);
        assert!(samples.load(Ordering::Relaxed) > 0, "the consumer saw samples");
        assert_eq!(max_live.load(Ordering::Relaxed), 9, "all images up before the failure");
        assert_eq!(min_live.load(Ordering::Relaxed), 8, "the drop is visible in the stream");
        assert_eq!(stream.consumer_count(), 1);
    }

    #[test]
    fn traced_updates_tile_into_request_paths() {
        use pgas_machine::tailprof::ReqPhase;
        use pgas_machine::with_forced_tracing;
        let cfg = ChurnConfig::default();
        let (r, out) = with_forced_tracing(true, || {
            with_forced_aggregation(true, || {
                with_forced_plan(failure_plan(&cfg), || {
                    run_churn_outcome(Platform::Titan, Backend::Shmem, 9, cfg, true)
                })
            })
        });
        assert_eq!(r.stats.pe_failures, 1);
        let paths = out.req_paths();
        assert!(!paths.is_empty(), "every direct update is a tracked request");
        for p in &paths {
            // Closed-loop updates: arrival == begin, so queue-wait is zero
            // and the phase tiling covers the whole service time exactly.
            assert_eq!(p.phase_ns[ReqPhase::QueueWait as usize], 0, "{p:?}");
            assert_eq!(p.phase_ns.iter().sum::<u64>(), p.total_ns(), "tiling is exact: {p:?}");
        }
        // Request ids encode (image, seq): every surviving worker shows up.
        let images: std::collections::BTreeSet<u64> = paths.iter().map(|p| p.id >> 32).collect();
        assert!(images.len() >= 7, "surviving workers all issued updates: {images:?}");
    }
}
