//! Distributed matrix transpose — a classic PGAS kernel combining
//! `alltoall`-style block exchange with strided section writes: each image
//! owns a block of columns, sends a tile to every other image, and lands its
//! incoming tiles transposed via co-indexed strided puts.

use caf::{run_caf, Backend, CafConfig, DimRange, Section};
use pgas_machine::Platform;

/// Configuration: a square `n x n` matrix of `f64`, distributed by columns.
#[derive(Debug, Clone, Copy)]
pub struct TransposeConfig {
    pub n: usize,
}

/// Sequential oracle.
pub fn serial_transpose(a: &[f64], n: usize) -> Vec<f64> {
    let mut t = vec![0.0; n * n];
    for j in 0..n {
        for i in 0..n {
            t[j + n * i] = a[i + n * j];
        }
    }
    t
}

/// A deterministic test matrix (column-major).
pub fn test_matrix(n: usize) -> Vec<f64> {
    (0..n * n).map(|k| (k as f64) * 0.5 + 1.0).collect()
}

/// Transpose a column-distributed matrix across `images` images; returns the
/// reassembled transposed matrix (gathered and broadcast so every image's
/// result is checked).
pub fn parallel_transpose(
    platform: Platform,
    backend: Backend,
    images: usize,
    cfg: TransposeConfig,
) -> Vec<f64> {
    let n = cfg.n;
    assert!(n.is_multiple_of(images), "n must divide evenly across images");
    let cols = n / images; // columns owned per image
    let cores = 8.min(images);
    let nodes = images.div_ceil(cores);
    let heap = (2 * n * cols * 8 + n * n * 8 + (1 << 17)).next_power_of_two();
    let mcfg = platform.config(nodes, cores).with_heap_bytes(heap);
    let out =
        run_caf(mcfg, CafConfig::new(backend, platform).with_nonsym_bytes(4096), move |img| {
            let me = img.this_image();
            // My column block of A (n rows x cols columns) and of A^T.
            let a_block = img.coarray::<f64>(&[n, cols]).unwrap();
            let t_block = img.coarray::<f64>(&[n, cols]).unwrap();
            let full = test_matrix(n);
            let my_cols_start = (me - 1) * cols;
            let mut mine = Vec::with_capacity(n * cols);
            for j in 0..cols {
                for i in 0..n {
                    mine.push(full[i + n * (my_cols_start + j)]);
                }
            }
            a_block.write_local(img, &mine);
            img.sync_all();

            // For every target image q, the tile A[q's rows, my cols] becomes
            // A^T[my rows' columns...]: transpose the tile locally, then land it
            // with a strided section put into q's t_block.
            for q in 1..=img.num_images() {
                let q_rows_start = (q - 1) * cols; // rows of A that become q's columns of A^T
                                                   // Tile is cols x cols: element (r, c) of the tile is
                                                   // A[q_rows_start + r, my col c].
                let mut tile_t = vec![0.0f64; cols * cols];
                for c in 0..cols {
                    for r in 0..cols {
                        // transposed: tile_t[c, r] = tile[r, c]
                        tile_t[c + cols * r] = mine[(q_rows_start + r) + n * c];
                    }
                }
                // Destination in q's t_block: rows my_cols_start.., columns 0..cols
                // (t_block column j on q is A^T column q_rows_start + j).
                let sec = Section::new(vec![
                    DimRange { start: my_cols_start, count: cols, step: 1 },
                    DimRange { start: 0, count: cols, step: 1 },
                ]);
                t_block.put_section(img, q, &sec, &tile_t);
            }
            img.sync_all();

            // Assemble the global transpose on image 1 and broadcast for checking.
            let global = img.coarray::<f64>(&[n, n]).unwrap();
            let sec = Section::new(vec![
                DimRange { start: 0, count: n, step: 1 },
                DimRange { start: my_cols_start, count: cols, step: 1 },
            ]);
            let t_local = t_block.read_local(img);
            global.put_section(img, 1, &sec, &t_local);
            img.sync_all();
            let mut result = global.get_from(img, 1);
            img.co_broadcast(&mut result, 1);
            result
        });
    out.results.into_iter().next().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_oracle_is_an_involution() {
        let n = 6;
        let a = test_matrix(n);
        let t = serial_transpose(&a, n);
        assert_ne!(a, t);
        assert_eq!(serial_transpose(&t, n), a);
    }

    #[test]
    fn parallel_matches_serial() {
        let cfg = TransposeConfig { n: 12 };
        let expect = serial_transpose(&test_matrix(12), 12);
        for images in [1usize, 2, 3, 4, 6] {
            let got = parallel_transpose(Platform::GenericSmp, Backend::Shmem, images, cfg);
            assert_eq!(got, expect, "images={images}");
        }
    }

    #[test]
    fn works_across_nodes_and_backends() {
        let cfg = TransposeConfig { n: 8 };
        let expect = serial_transpose(&test_matrix(8), 8);
        for backend in [Backend::Shmem, Backend::Gasnet] {
            let got = parallel_transpose(Platform::CrayXc30, backend, 4, cfg);
            assert_eq!(got, expect, "{backend:?}");
        }
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_distribution_rejected() {
        parallel_transpose(Platform::GenericSmp, Backend::Shmem, 5, TransposeConfig { n: 12 });
    }
}
