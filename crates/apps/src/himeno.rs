//! The Himeno benchmark in CAF (paper §V-D, Figure 10).
//!
//! Himeno measures an incompressible-fluid pressure solver: Jacobi
//! iterations of a 19-point stencil for Poisson's equation. The CAF version
//! decomposes the grid along the second dimension, which makes the halo a
//! *matrix-oriented* strided section: contiguous pencils along dimension 1,
//! strided across dimension 3 — exactly the communication pattern whose
//! interaction with `shmem_iput` §V-D analyzes.
//!
//! Performance is reported in MFLOPS with the canonical 34 flops/cell/iter.

use caf::{run_caf, Backend, CafConfig, DimRange, Section, StridedAlgorithm};
use pgas_machine::stats::StatsSnapshot;
use pgas_machine::Platform;

/// Grid and iteration parameters.
#[derive(Debug, Clone, Copy)]
pub struct HimenoConfig {
    pub imax: usize,
    pub jmax: usize,
    pub kmax: usize,
    pub iters: usize,
}

impl HimenoConfig {
    /// Himeno size S (65×65×129), the paper's generation of grid sizes.
    pub fn size_s() -> HimenoConfig {
        HimenoConfig { imax: 65, jmax: 65, kmax: 129, iters: 8 }
    }

    /// Himeno size M (129×129×257). The j-decomposition caps images at
    /// `jmax - 2 = 127`, so this is the smallest canonical grid that
    /// reaches Figure 10's full 128-image x axis.
    pub fn size_m() -> HimenoConfig {
        HimenoConfig { imax: 129, jmax: 129, kmax: 257, iters: 4 }
    }

    /// Himeno size XS (33×33×65) for quick runs and tests.
    pub fn size_xs() -> HimenoConfig {
        HimenoConfig { imax: 33, jmax: 33, kmax: 65, iters: 6 }
    }

    /// A tiny grid for unit tests.
    pub fn tiny() -> HimenoConfig {
        HimenoConfig { imax: 9, jmax: 12, kmax: 7, iters: 4 }
    }

    fn interior_cells(&self) -> f64 {
        ((self.imax - 2) * (self.jmax - 2) * (self.kmax - 2)) as f64
    }
}

/// Benchmark outcome.
#[derive(Debug, Clone, Copy)]
pub struct HimenoResult {
    pub mflops: f64,
    pub gosa: f64,
    pub time_ms: f64,
    /// Machine counters for the whole job (fault/retry totals, lock leaks).
    pub stats: StatsSnapshot,
}

const OMEGA: f32 = 0.8;
const A3: f32 = 1.0 / 6.0;

/// Sequential oracle: runs the same stencil on one address space and
/// returns the `gosa` residual of each iteration.
pub fn serial_gosa(cfg: &HimenoConfig) -> Vec<f64> {
    let (im, jm, km) = (cfg.imax, cfg.jmax, cfg.kmax);
    let idx = |i: usize, j: usize, k: usize| i + im * (j + jm * k);
    let mut p = vec![0.0f32; im * jm * km];
    for k in 0..km {
        let v = (k * k) as f32 / ((km - 1) * (km - 1)) as f32;
        for j in 0..jm {
            for i in 0..im {
                p[idx(i, j, k)] = v;
            }
        }
    }
    let mut out = Vec::with_capacity(cfg.iters);
    let mut wrk = p.clone();
    for _ in 0..cfg.iters {
        let mut gosa = 0.0f64;
        for k in 1..km - 1 {
            for j in 1..jm - 1 {
                for i in 1..im - 1 {
                    let ss = stencil(&p, idx(i, j, k), 1, im, im * jm);
                    gosa += (ss as f64) * (ss as f64);
                    wrk[idx(i, j, k)] = p[idx(i, j, k)] + OMEGA * ss;
                }
            }
        }
        for k in 1..km - 1 {
            for j in 1..jm - 1 {
                for i in 1..im - 1 {
                    p[idx(i, j, k)] = wrk[idx(i, j, k)];
                }
            }
        }
        out.push(gosa);
    }
    out
}

/// The 19-point Himeno stencil residual at linear index `c` with the given
/// unit strides (a=[1,1,1,1/6], b=[0,0,0], c=[1,1,1], bnd=1, wrk1=0).
#[inline]
fn stencil(p: &[f32], c: usize, si: usize, sj: usize, sk: usize) -> f32 {
    let s0 = p[c + si]
        + p[c + sj]
        + p[c + sk]
        + 0.0 * (p[c + si + sj] - p[c + si - sj] - p[c - si + sj] + p[c - si - sj])
        + 0.0 * (p[c + sj + sk] - p[c - sj + sk] - p[c + sj - sk] + p[c - sj - sk])
        + 0.0 * (p[c + si + sk] - p[c - si + sk] - p[c + si - sk] + p[c - si - sk])
        + p[c - si]
        + p[c - sj]
        + p[c - sk];
    (s0 * A3 - p[c]) * 1.0
}

/// Run the CAF Himeno benchmark on `images` images (requires
/// `images <= jmax - 2` so every image owns at least one interior plane).
pub fn run_himeno(
    platform: Platform,
    backend: Backend,
    strided: Option<StridedAlgorithm>,
    images: usize,
    cfg: HimenoConfig,
) -> HimenoResult {
    run_himeno_outcome(platform, backend, strided, images, cfg).0
}

/// Like [`run_himeno`], also returning the full simulation outcome (trace,
/// metrics, per-PE clocks) for observability tooling such as the
/// `pgas_top` critical-path profiler example.
pub fn run_himeno_outcome(
    platform: Platform,
    backend: Backend,
    strided: Option<StridedAlgorithm>,
    images: usize,
    cfg: HimenoConfig,
) -> (HimenoResult, pgas_machine::SimOutcome<(u64, f64)>) {
    assert!(images <= cfg.jmax - 2, "too many images ({images}) for jmax {}", cfg.jmax);
    let cores = 16.min(images);
    let nodes = images.div_ceil(cores);
    let ghost_bytes = cfg.imax * 2 * cfg.kmax * 4;
    let mcfg = platform
        .config(nodes, cores)
        .with_heap_bytes((4 * ghost_bytes + (1 << 16)).next_power_of_two());
    let mut caf_cfg = CafConfig::new(backend, platform).with_nonsym_bytes(4096);
    if let Some(a) = strided {
        caf_cfg = caf_cfg.with_strided(a);
    }
    let out = run_caf(mcfg, caf_cfg, move |img| {
        let (im, jm, km) = (cfg.imax, cfg.jmax, cfg.kmax);
        let n = img.num_images();
        let me = img.this_image();
        // Block distribution of global j columns.
        let base = jm / n;
        let extra = jm % n;
        let j0 = (me - 1) * base + (me - 1).min(extra);
        let jloc = base + usize::from(me - 1 < extra);
        let jtot = jloc + 2; // plus ghost planes
        let idx = |i: usize, j: usize, k: usize| i + im * (j + jtot * k);

        // Ghost-plane coarray: plane 0 = from the left, plane 1 = from the
        // right neighbour.
        let ghosts = img.coarray::<f32>(&[im, 2, km]).unwrap();
        let plane_sec = |t: usize| {
            Section::new(vec![
                DimRange::full(im),
                DimRange { start: t, count: 1, step: 1 },
                DimRange::full(km),
            ])
        };

        // Local pressure grid with ghosts (local j: 0 ghost, 1..=jloc owned,
        // jloc+1 ghost).
        let mut p = vec![0.0f32; im * jtot * km];
        for k in 0..km {
            let v = (k * k) as f32 / ((km - 1) * (km - 1)) as f32;
            for jl in 0..jtot {
                for i in 0..im {
                    p[idx(i, jl, k)] = v;
                }
            }
        }
        let mut wrk = p.clone();

        let left = (me > 1).then(|| me - 1);
        let right = (me < n).then(|| me + 1);
        let pack_plane = |p: &[f32], jl: usize| {
            let mut buf = vec![0.0f32; im * km];
            for k in 0..km {
                for i in 0..im {
                    buf[i + im * k] = p[idx(i, jl, k)];
                }
            }
            buf
        };

        let t0 = img.shmem().ctx().pe().now();
        let mut gosa_global = 0.0f64;
        for _ in 0..cfg.iters {
            // Halo exchange: my first owned plane -> left neighbour's
            // "from right" ghost; my last owned plane -> right neighbour's
            // "from left" ghost.
            if let Some(l) = left {
                ghosts.put_section(img, l, &plane_sec(1), &pack_plane(&p, 1));
            }
            if let Some(r) = right {
                ghosts.put_section(img, r, &plane_sec(0), &pack_plane(&p, jloc));
            }
            img.sync_all();
            let gdata = ghosts.read_local(img);
            for k in 0..km {
                for i in 0..im {
                    if left.is_some() {
                        p[idx(i, 0, k)] = gdata[i + im * (2 * k)];
                    }
                    if right.is_some() {
                        p[idx(i, jloc + 1, k)] = gdata[i + im * (1 + 2 * k)];
                    }
                }
            }
            // Jacobi sweep over owned interior planes.
            let mut gosa = 0.0f64;
            let mut cells = 0u64;
            for k in 1..km - 1 {
                for jl in 1..=jloc {
                    let jg = j0 + jl - 1; // global j of this local plane
                    if jg == 0 || jg == jm - 1 {
                        continue; // global boundary, fixed
                    }
                    for i in 1..im - 1 {
                        let ss = stencil(&p, idx(i, jl, k), 1, im, im * jtot);
                        gosa += (ss as f64) * (ss as f64);
                        wrk[idx(i, jl, k)] = p[idx(i, jl, k)] + OMEGA * ss;
                        cells += 1;
                    }
                }
            }
            for k in 1..km - 1 {
                for jl in 1..=jloc {
                    let jg = j0 + jl - 1;
                    if jg == 0 || jg == jm - 1 {
                        continue;
                    }
                    for i in 1..im - 1 {
                        p[idx(i, jl, k)] = wrk[idx(i, jl, k)];
                    }
                }
            }
            img.shmem().ctx().pe().compute_flops(cells as f64 * 34.0);
            let mut g = [gosa];
            img.co_sum(&mut g, None);
            gosa_global = g[0];
        }
        img.sync_all();
        (img.shmem().ctx().pe().now() - t0, gosa_global)
    });
    let makespan_ns = out.results.iter().map(|r| r.0).max().unwrap_or(1) as f64;
    let flops = cfg.interior_cells() * 34.0 * cfg.iters as f64;
    let result = HimenoResult {
        mflops: flops / (makespan_ns * 1e-9) / 1e6,
        gosa: out.results[0].1,
        time_ms: makespan_ns / 1e6,
        stats: out.stats,
    };
    (result, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_residual_decreases() {
        let g = serial_gosa(&HimenoConfig::tiny());
        assert!(g.windows(2).all(|w| w[1] < w[0]), "gosa must decrease: {g:?}");
        assert!(g[0] > 0.0);
    }

    #[test]
    fn parallel_matches_serial_residual() {
        let cfg = HimenoConfig::tiny();
        let serial = *serial_gosa(&cfg).last().unwrap();
        for images in [1, 2, 3, 5] {
            let r = run_himeno(Platform::Stampede, Backend::Shmem, None, images, cfg);
            let rel = (r.gosa - serial).abs() / serial;
            assert!(rel < 1e-5, "images={images}: {} vs serial {serial} (rel {rel:e})", r.gosa);
        }
    }

    #[test]
    fn parallel_matches_serial_on_all_backends_and_algorithms() {
        let cfg = HimenoConfig::tiny();
        let serial = *serial_gosa(&cfg).last().unwrap();
        for (platform, backend, strided) in [
            (Platform::Stampede, Backend::Gasnet, None),
            (Platform::Stampede, Backend::Gasnet, Some(StridedAlgorithm::AmPacked)),
            (Platform::Titan, Backend::CrayCaf, None),
            (Platform::Stampede, Backend::Shmem, Some(StridedAlgorithm::TwoDim)),
            (Platform::Stampede, Backend::Shmem, Some(StridedAlgorithm::Naive)),
            // Select-by-name, the way an app CLI flag or env var would.
            (Platform::Stampede, Backend::Shmem, StridedAlgorithm::from_name("adaptive")),
            (Platform::Stampede, Backend::Shmem, StridedAlgorithm::from_name("tuned")),
        ] {
            let r = run_himeno(platform, backend, strided, 4, cfg);
            let rel = (r.gosa - serial).abs() / serial;
            assert!(rel < 1e-5, "{backend:?}/{strided:?}: rel {rel:e}");
        }
    }

    #[test]
    fn mflops_scale_with_images() {
        // The paper's best Himeno configuration on Stampede: SHMEM with the
        // naive (pencil-putmem) algorithm.
        let cfg = HimenoConfig::size_xs();
        let naive = Some(StridedAlgorithm::Naive);
        let one = run_himeno(Platform::Stampede, Backend::Shmem, naive, 1, cfg).mflops;
        let eight = run_himeno(Platform::Stampede, Backend::Shmem, naive, 8, cfg).mflops;
        assert!(eight > 3.0 * one, "8 images {eight:.0} vs 1 image {one:.0} MFLOPS");
    }

    #[test]
    fn shmem_outperforms_gasnet_at_scale() {
        // §V-D: UHCAF over MVAPICH2-X SHMEM (naive halo) beats UHCAF over
        // GASNet for >= 16 images (inter-node halo traffic dominates).
        let cfg = HimenoConfig::size_xs();
        let naive = Some(StridedAlgorithm::Naive);
        let shmem = run_himeno(Platform::Stampede, Backend::Shmem, naive, 16, cfg).mflops;
        let gasnet = run_himeno(Platform::Stampede, Backend::Gasnet, naive, 16, cfg).mflops;
        assert!(shmem > gasnet, "SHMEM {shmem:.0} vs GASNet {gasnet:.0} MFLOPS");
    }

    #[test]
    fn naive_is_not_worse_than_twodim_on_mvapich() {
        // §V-D: the naive algorithm is the best choice for the
        // matrix-oriented halo on MVAPICH2-X (iput loops putmem per element,
        // naive sends one putmem per contiguous pencil).
        let cfg = HimenoConfig::size_xs();
        let naive =
            run_himeno(Platform::Stampede, Backend::Shmem, Some(StridedAlgorithm::Naive), 8, cfg)
                .mflops;
        let twodim =
            run_himeno(Platform::Stampede, Backend::Shmem, Some(StridedAlgorithm::TwoDim), 8, cfg)
                .mflops;
        assert!(naive >= twodim * 0.99, "naive {naive:.0} vs 2dim {twodim:.0}");
    }

    #[test]
    #[should_panic(expected = "too many images")]
    fn over_decomposition_rejected() {
        run_himeno(Platform::Stampede, Backend::Shmem, None, 11, HimenoConfig::tiny());
    }
}
