//! Distributed hash table benchmark (paper §V-C, Figure 9).
//!
//! "Each image will randomly access and update a sequence of entries in a
//! distributed hash table. In order to prevent simultaneous updates to the
//! same entry, some form of atomicity must be employed; this is achieved
//! using coarray locks."
//!
//! The table is a coarray of slots; a key hashes to (home image, slot);
//! updates take the CAF lock on the home image, read-modify-write the slot,
//! and release. The final table contents are deterministic given the seed
//! (sum of keys is order-independent), which the tests exploit.

use caf::{run_caf, Backend, CafConfig};
use openshmem::{AmHandler, AmTarget, ConduitError};
use pgas_machine::stats::StatsSnapshot;
use pgas_machine::Platform;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

/// How each image applies its updates to remote slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DhtUpdateMode {
    /// The paper's §V-C pattern: take the coarray lock on the home image,
    /// remote get–modify–put under it, unlock — four round trips per
    /// update.
    #[default]
    Locked,
    /// One active message per update: a registered handler performs the
    /// read-modify-write *at the home image*, atomic under the machine's
    /// apply section — one request wire transfer, no lock traffic.
    Am,
}

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct DhtConfig {
    pub slots_per_image: usize,
    pub updates_per_image: usize,
    pub seed: u64,
    /// Locks per image: 1 = a single lock guarding the whole image's
    /// partition (the paper's pattern); more reduces false contention.
    pub locks_per_image: usize,
    /// Locked get–modify–put vs. one active message per update. The final
    /// table is identical either way (the slot update is a commutative
    /// wrapping add), so the checksum oracle covers both.
    pub update: DhtUpdateMode,
}

impl Default for DhtConfig {
    fn default() -> Self {
        DhtConfig {
            slots_per_image: 256,
            updates_per_image: 64,
            seed: 0xD47,
            locks_per_image: 1,
            update: DhtUpdateMode::Locked,
        }
    }
}

/// The AM-mode update handler: `arg` is `[slot offset, key]` as two
/// little-endian u64s; the slot gets `wrapping_add(key)` applied in place
/// at the home image. Target-side compute models the same hashing +
/// bookkeeping the locked path charges on the initiator.
struct DhtUpdateAm;

impl AmHandler for DhtUpdateAm {
    fn execute(&self, t: &mut AmTarget<'_>, arg: &[u8]) -> Option<Vec<u8>> {
        let off = u64::from_le_bytes(arg[0..8].try_into().expect("dht am arg")) as usize;
        let key = u64::from_le_bytes(arg[8..16].try_into().expect("dht am arg"));
        let v = t.read_u64(off);
        t.write_u64(off, v.wrapping_add(key));
        None
    }
}

/// Benchmark outcome.
#[derive(Debug, Clone, Copy)]
pub struct DhtResult {
    /// Virtual makespan in milliseconds (the paper's y axis).
    pub time_ms: f64,
    /// Wrapping sum of all table slots on *live* images (consistency
    /// check; equals the full-table sum on healthy runs).
    pub checksum: u64,
    pub updates_total: usize,
    /// Wrapping sum of the keys of every *acknowledged* update whose home
    /// image is still alive at the end of the run, across all images. On a
    /// healthy run this equals the oracle; under a PE-failure plan the
    /// zero-lost-acknowledged-writes invariant is `checksum == acked_sum`.
    pub acked_sum: u64,
    /// Updates abandoned because the home image was dead (the send
    /// surfaced `TargetFailed` / STAT_FAILED_IMAGE).
    pub skipped: usize,
    /// Machine counters for the whole job (fault/retry totals, lock leaks).
    pub stats: StatsSnapshot,
}

/// Wrapping sum of the keys each image generates — the oracle for the final
/// table checksum.
pub fn expected_checksum(images: usize, cfg: &DhtConfig) -> u64 {
    let mut sum = 0u64;
    for image in 1..=images {
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (image as u64).wrapping_mul(0x9E37_79B9));
        for _ in 0..cfg.updates_per_image {
            sum = sum.wrapping_add(rng.gen::<u64>());
        }
    }
    sum
}

/// Run the DHT benchmark on `images` images.
pub fn run_dht(platform: Platform, backend: Backend, images: usize, cfg: DhtConfig) -> DhtResult {
    run_dht_outcome(platform, backend, images, cfg, false).0
}

/// [`run_dht`] exposing the raw simulation outcome, for traced probes.
/// `deterministic_nic` pins the NIC grant order so a probe digest is
/// bit-identical run to run.
pub fn run_dht_outcome(
    platform: Platform,
    backend: Backend,
    images: usize,
    cfg: DhtConfig,
    deterministic_nic: bool,
) -> (DhtResult, pgas_machine::SimOutcome<(u64, u64, u64, u64)>) {
    let cores = 16.min(images);
    let nodes = images.div_ceil(cores);
    let heap = (cfg.slots_per_image * 8 + (1 << 16)).next_power_of_two();
    let mut mcfg = platform.config(nodes, cores).with_heap_bytes(heap);
    if deterministic_nic {
        mcfg = mcfg.with_deterministic_nic();
    }
    let caf_cfg = CafConfig::new(backend, platform).with_nonsym_bytes(4096);
    let out = run_caf(mcfg, caf_cfg, move |img| {
        let n = img.num_images();
        let table = img.coarray::<u64>(&[cfg.slots_per_image]).unwrap();
        let locks = img.lock_vars(cfg.locks_per_image);
        // Registered unconditionally (SPMD-symmetric) even in locked mode,
        // so both modes run over an identical context.
        let update_am = img.shmem().register_am(Rc::new(DhtUpdateAm));
        img.sync_all();
        let me = img.this_image();
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (me as u64).wrapping_mul(0x9E37_79B9));
        let t0 = img.shmem().ctx().pe().now();
        // Keys this image has successfully pushed, with their home image.
        // On a healthy run every key lands here; under a PE-failure plan an
        // update is *acknowledged* only once the send completed without a
        // failed-image stat.
        let mut sent: Vec<(usize, u64)> = Vec::with_capacity(cfg.updates_per_image);
        let mut skipped = 0usize;
        for _ in 0..cfg.updates_per_image {
            // Cooperative failure model: a scheduled failure kills the
            // simulated image, not the OS thread; resilient kernels poll at
            // update boundaries like Fortran code polls `stat=`.
            if img.this_image_failed() {
                break;
            }
            let key: u64 = rng.gen();
            let home = (key % n as u64) as usize + 1;
            let slot = ((key / n as u64) % cfg.slots_per_image as u64) as usize;
            // Clock-deterministic liveness probe (not the racy failure
            // flag), so which updates get skipped — and every clock the
            // skip saves — reproduces bit-identically under any worker
            // count.
            if img.image_dead_by_now(home) {
                skipped += 1;
                continue;
            }
            match cfg.update {
                DhtUpdateMode::Locked => {
                    let lock = &locks[slot % cfg.locks_per_image];
                    img.lock(lock, home);
                    // The stat-bearing accessors: on a healthy run they are
                    // the plain ops; under an injected fault plan they
                    // surface exhausted retries or a dead home image instead
                    // of panicking.
                    let v = table.get_elem_stat(img, home, &[slot]).expect("dht get");
                    table.put_elem_stat(img, home, &[slot], v.wrapping_add(key)).expect("dht put");
                    img.unlock(lock, home);
                    sent.push((home, key));
                }
                DhtUpdateMode::Am => {
                    let mut arg = [0u8; 16];
                    let off = table.ptr().at(slot).offset() as u64;
                    arg[0..8].copy_from_slice(&off.to_le_bytes());
                    arg[8..16].copy_from_slice(&key.to_le_bytes());
                    match img.shmem().try_am_send(img.pe_of(home), update_am, &arg) {
                        Ok(()) => sent.push((home, key)),
                        // The home died between the liveness probe and
                        // delivery: the update never applied, so it is not
                        // acknowledged — drop it instead of crashing.
                        Err(ConduitError::TargetFailed { .. }) => skipped += 1,
                        Err(e) => panic!("dht am update: {e:?}"),
                    }
                }
            }
            img.shmem().ctx().pe().compute_ops(20); // hashing + bookkeeping
        }
        img.sync_all();
        let elapsed = img.shmem().ctx().pe().now() - t0;
        // An acknowledged write counts only while its shard is reachable:
        // keys whose home image later died leave the live table with it.
        // Both guards are deterministic here — the failure flag is ordered
        // before the barrier exit, and the deadline probe is a pure
        // function of this image's (barrier-aligned) clock.
        let dead = |image: usize| img.image_failed(image) || img.image_dead_by_now(image);
        let acked: u64 =
            sent.iter().filter(|(home, _)| !dead(*home)).fold(0u64, |a, (_, k)| a.wrapping_add(*k));
        // Deterministic checksum: image 1 folds the live part of the table.
        let checksum = if me == 1 && !img.this_image_failed() {
            let mut sum = 0u64;
            for image in 1..=n {
                if dead(image) {
                    continue;
                }
                // The fold itself moves the clock, so a shard can cross its
                // scheduled deadline between the probe and the read — skip
                // it, exactly as the probe would have.
                if let Ok(vs) = table.get_from_stat(img, image) {
                    for v in vs {
                        sum = sum.wrapping_add(v);
                    }
                }
            }
            sum
        } else {
            0
        };
        img.sync_all();
        (elapsed, checksum, acked, skipped as u64)
    });
    let result = DhtResult {
        time_ms: out.results.iter().map(|r| r.0).max().unwrap_or(0) as f64 / 1e6,
        checksum: out.results[0].1,
        updates_total: images * cfg.updates_per_image,
        acked_sum: out.results.iter().fold(0u64, |a, r| a.wrapping_add(r.2)),
        skipped: out.results.iter().map(|r| r.3 as usize).sum(),
        stats: out.stats,
    };
    (result, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DhtConfig {
        DhtConfig { slots_per_image: 32, updates_per_image: 25, seed: 7, ..Default::default() }
    }

    #[test]
    fn table_checksum_matches_oracle() {
        for images in [1, 2, 5, 8] {
            let r = run_dht(Platform::Titan, Backend::Shmem, images, small());
            assert_eq!(r.checksum, expected_checksum(images, &small()), "images={images}");
            assert_eq!(r.updates_total, images * 25);
            assert!(r.time_ms > 0.0);
        }
    }

    #[test]
    fn checksum_holds_on_every_backend() {
        for backend in [Backend::Shmem, Backend::Gasnet, Backend::CrayCaf] {
            let r = run_dht(Platform::Titan, backend, 6, small());
            assert_eq!(r.checksum, expected_checksum(6, &small()), "{backend:?}");
        }
    }

    #[test]
    fn shmem_backend_is_fastest_like_figure9() {
        let shmem = run_dht(Platform::Titan, Backend::Shmem, 16, small()).time_ms;
        let gasnet = run_dht(Platform::Titan, Backend::Gasnet, 16, small()).time_ms;
        let cray = run_dht(Platform::Titan, Backend::CrayCaf, 16, small()).time_ms;
        assert!(shmem < gasnet, "SHMEM {shmem:.2} vs GASNet {gasnet:.2}");
        assert!(shmem < cray, "SHMEM {shmem:.2} vs Cray-CAF {cray:.2}");
    }

    #[test]
    fn more_locks_reduce_contention() {
        // Virtual time still varies run-to-run with the OS scheduling of the
        // image threads (lock-queue order is whoever swaps first), so a
        // single trial is marginal under load; total over three is not.
        let total = |cfg: DhtConfig| {
            (0..3).map(|_| run_dht(Platform::Titan, Backend::Shmem, 8, cfg).time_ms).sum::<f64>()
        };
        let coarse = total(small());
        let fine = total(DhtConfig { locks_per_image: 8, ..small() });
        assert!(fine < coarse, "fine {fine:.2}ms vs coarse {coarse:.2}ms");
    }

    #[test]
    fn am_updates_match_the_oracle_and_the_locked_mode() {
        let am = DhtConfig { update: DhtUpdateMode::Am, ..small() };
        for images in [1, 2, 5, 8] {
            let r = run_dht(Platform::Titan, Backend::Shmem, images, am);
            assert_eq!(r.checksum, expected_checksum(images, &am), "images={images}");
            let locked = run_dht(Platform::Titan, Backend::Shmem, images, small());
            assert_eq!(r.checksum, locked.checksum, "modes agree, images={images}");
        }
    }

    #[test]
    fn am_updates_skip_the_lock_protocol_entirely() {
        let am = DhtConfig { update: DhtUpdateMode::Am, ..small() };
        let r = run_dht(Platform::Titan, Backend::Shmem, 8, am);
        assert_eq!(r.stats.ams, 8 * 25, "one active message per update");
        let locked = run_dht(Platform::Titan, Backend::Shmem, 8, small());
        assert!(
            r.time_ms < locked.time_ms,
            "am {:.3}ms vs locked {:.3}ms",
            r.time_ms,
            locked.time_ms
        );
    }

    #[test]
    fn different_seeds_give_different_tables() {
        let a = run_dht(Platform::Titan, Backend::Shmem, 2, small());
        let b = run_dht(Platform::Titan, Backend::Shmem, 2, DhtConfig { seed: 8, ..small() });
        assert_ne!(a.checksum, b.checksum);
    }
}
