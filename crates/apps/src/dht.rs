//! Distributed hash table benchmark (paper §V-C, Figure 9).
//!
//! "Each image will randomly access and update a sequence of entries in a
//! distributed hash table. In order to prevent simultaneous updates to the
//! same entry, some form of atomicity must be employed; this is achieved
//! using coarray locks."
//!
//! The table is a coarray of slots; a key hashes to (home image, slot);
//! updates take the CAF lock on the home image, read-modify-write the slot,
//! and release. The final table contents are deterministic given the seed
//! (sum of keys is order-independent), which the tests exploit.

use caf::{run_caf, Backend, CafConfig};
use pgas_machine::stats::StatsSnapshot;
use pgas_machine::Platform;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct DhtConfig {
    pub slots_per_image: usize,
    pub updates_per_image: usize,
    pub seed: u64,
    /// Locks per image: 1 = a single lock guarding the whole image's
    /// partition (the paper's pattern); more reduces false contention.
    pub locks_per_image: usize,
}

impl Default for DhtConfig {
    fn default() -> Self {
        DhtConfig { slots_per_image: 256, updates_per_image: 64, seed: 0xD47, locks_per_image: 1 }
    }
}

/// Benchmark outcome.
#[derive(Debug, Clone, Copy)]
pub struct DhtResult {
    /// Virtual makespan in milliseconds (the paper's y axis).
    pub time_ms: f64,
    /// Wrapping sum of all table slots (consistency check).
    pub checksum: u64,
    pub updates_total: usize,
    /// Machine counters for the whole job (fault/retry totals, lock leaks).
    pub stats: StatsSnapshot,
}

/// Wrapping sum of the keys each image generates — the oracle for the final
/// table checksum.
pub fn expected_checksum(images: usize, cfg: &DhtConfig) -> u64 {
    let mut sum = 0u64;
    for image in 1..=images {
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (image as u64).wrapping_mul(0x9E37_79B9));
        for _ in 0..cfg.updates_per_image {
            sum = sum.wrapping_add(rng.gen::<u64>());
        }
    }
    sum
}

/// Run the DHT benchmark on `images` images.
pub fn run_dht(platform: Platform, backend: Backend, images: usize, cfg: DhtConfig) -> DhtResult {
    let cores = 16.min(images);
    let nodes = images.div_ceil(cores);
    let heap = (cfg.slots_per_image * 8 + (1 << 16)).next_power_of_two();
    let mcfg = platform.config(nodes, cores).with_heap_bytes(heap);
    let caf_cfg = CafConfig::new(backend, platform).with_nonsym_bytes(4096);
    let out = run_caf(mcfg, caf_cfg, move |img| {
        let n = img.num_images();
        let table = img.coarray::<u64>(&[cfg.slots_per_image]).unwrap();
        let locks = img.lock_vars(cfg.locks_per_image);
        img.sync_all();
        let me = img.this_image();
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (me as u64).wrapping_mul(0x9E37_79B9));
        let t0 = img.shmem().ctx().pe().now();
        for _ in 0..cfg.updates_per_image {
            let key: u64 = rng.gen();
            let home = (key % n as u64) as usize + 1;
            let slot = ((key / n as u64) % cfg.slots_per_image as u64) as usize;
            let lock = &locks[slot % cfg.locks_per_image];
            img.lock(lock, home);
            // The stat-bearing accessors: on a healthy run they are the plain
            // ops; under an injected fault plan they surface exhausted
            // retries or a dead home image instead of panicking.
            let v = table.get_elem_stat(img, home, &[slot]).expect("dht get");
            table.put_elem_stat(img, home, &[slot], v.wrapping_add(key)).expect("dht put");
            img.unlock(lock, home);
            img.shmem().ctx().pe().compute_ops(20); // hashing + bookkeeping
        }
        img.sync_all();
        let elapsed = img.shmem().ctx().pe().now() - t0;
        // Deterministic checksum: image 1 folds the whole table.
        let checksum = if me == 1 {
            let mut sum = 0u64;
            for image in 1..=n {
                for v in table.get_from(img, image) {
                    sum = sum.wrapping_add(v);
                }
            }
            sum
        } else {
            0
        };
        img.sync_all();
        (elapsed, checksum)
    });
    DhtResult {
        time_ms: out.results.iter().map(|r| r.0).max().unwrap_or(0) as f64 / 1e6,
        checksum: out.results[0].1,
        updates_total: images * cfg.updates_per_image,
        stats: out.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DhtConfig {
        DhtConfig { slots_per_image: 32, updates_per_image: 25, seed: 7, locks_per_image: 1 }
    }

    #[test]
    fn table_checksum_matches_oracle() {
        for images in [1, 2, 5, 8] {
            let r = run_dht(Platform::Titan, Backend::Shmem, images, small());
            assert_eq!(r.checksum, expected_checksum(images, &small()), "images={images}");
            assert_eq!(r.updates_total, images * 25);
            assert!(r.time_ms > 0.0);
        }
    }

    #[test]
    fn checksum_holds_on_every_backend() {
        for backend in [Backend::Shmem, Backend::Gasnet, Backend::CrayCaf] {
            let r = run_dht(Platform::Titan, backend, 6, small());
            assert_eq!(r.checksum, expected_checksum(6, &small()), "{backend:?}");
        }
    }

    #[test]
    fn shmem_backend_is_fastest_like_figure9() {
        let shmem = run_dht(Platform::Titan, Backend::Shmem, 16, small()).time_ms;
        let gasnet = run_dht(Platform::Titan, Backend::Gasnet, 16, small()).time_ms;
        let cray = run_dht(Platform::Titan, Backend::CrayCaf, 16, small()).time_ms;
        assert!(shmem < gasnet, "SHMEM {shmem:.2} vs GASNet {gasnet:.2}");
        assert!(shmem < cray, "SHMEM {shmem:.2} vs Cray-CAF {cray:.2}");
    }

    #[test]
    fn more_locks_reduce_contention() {
        // Virtual time still varies run-to-run with the OS scheduling of the
        // image threads (lock-queue order is whoever swaps first), so a
        // single trial is marginal under load; total over three is not.
        let total = |cfg: DhtConfig| {
            (0..3).map(|_| run_dht(Platform::Titan, Backend::Shmem, 8, cfg).time_ms).sum::<f64>()
        };
        let coarse = total(small());
        let fine = total(DhtConfig { locks_per_image: 8, ..small() });
        assert!(fine < coarse, "fine {fine:.2}ms vs coarse {coarse:.2}ms");
    }

    #[test]
    fn different_seeds_give_different_tables() {
        let a = run_dht(Platform::Titan, Backend::Shmem, 2, small());
        let b = run_dht(Platform::Titan, Backend::Shmem, 2, DhtConfig { seed: 8, ..small() });
        assert_ne!(a.checksum, b.checksum);
    }
}
