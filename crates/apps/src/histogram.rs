//! Distributed histogram: every image classifies a local data stream into
//! global bins on image 1. Two synchronization strategies over the same
//! coarray — remote atomics (`atomic_add`, one AMO per sample) versus a CAF
//! lock around read-modify-write — contrasting the costs the paper's DHT
//! and lock experiments quantify.

use caf::{run_caf, AtomicVar, Backend, CafConfig};
use pgas_machine::Platform;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone, Copy)]
pub struct HistogramConfig {
    pub bins: usize,
    pub samples_per_image: usize,
    pub seed: u64,
}

impl Default for HistogramConfig {
    fn default() -> Self {
        HistogramConfig { bins: 16, samples_per_image: 200, seed: 0xB1A5 }
    }
}

/// Which synchronization strategy accumulates the bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramMethod {
    /// One `atomic_add` per sample (lock-free).
    Atomics,
    /// A CAF lock around get-add-put of the whole row of bins.
    Lock,
}

#[derive(Debug, Clone)]
pub struct HistogramResult {
    pub bins: Vec<i64>,
    pub time_ms: f64,
}

fn sample_bin(rng: &mut SmallRng, bins: usize) -> usize {
    // Skewed distribution: low bins are hotter (more contention there).
    let r: f64 = rng.gen::<f64>();
    ((r * r) * bins as f64) as usize % bins
}

/// Sequential oracle.
pub fn serial_histogram(images: usize, cfg: &HistogramConfig) -> Vec<i64> {
    let mut bins = vec![0i64; cfg.bins];
    for image in 1..=images {
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (image as u64) << 17);
        for _ in 0..cfg.samples_per_image {
            bins[sample_bin(&mut rng, cfg.bins)] += 1;
        }
    }
    bins
}

/// Run the distributed histogram.
pub fn run_histogram(
    platform: Platform,
    backend: Backend,
    images: usize,
    cfg: HistogramConfig,
    method: HistogramMethod,
) -> HistogramResult {
    let mcfg = crate::job_machine(platform, images, cfg.bins * 8 + (1 << 16));
    let caf_cfg = CafConfig::new(backend, platform).with_nonsym_bytes(4096);
    let out = run_caf(mcfg, caf_cfg, move |img| {
        let me = img.this_image();
        // One atomic variable per bin (atomics act on scalar coarrays).
        let bins: Vec<AtomicVar> = (0..cfg.bins).map(|_| img.atomic_var(0)).collect();
        let lck = img.lock_var();
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (me as u64) << 17);
        img.sync_all();
        let t0 = img.shmem().ctx().pe().now();
        for _ in 0..cfg.samples_per_image {
            let b = sample_bin(&mut rng, cfg.bins);
            match method {
                HistogramMethod::Atomics => img.atomic_add(&bins[b], 1, 1),
                HistogramMethod::Lock => {
                    img.lock(&lck, 1);
                    let v = img.atomic_ref(&bins[b], 1);
                    img.atomic_define(&bins[b], 1, v + 1);
                    img.unlock(&lck, 1);
                }
            }
            img.shmem().ctx().pe().compute_ops(5);
        }
        img.sync_all();
        let elapsed = img.shmem().ctx().pe().now() - t0;
        let result: Vec<i64> =
            if me == 1 { bins.iter().map(|b| img.atomic_ref(b, 1)).collect() } else { Vec::new() };
        img.sync_all();
        (elapsed, result)
    });
    HistogramResult {
        time_ms: out.results.iter().map(|r| r.0).max().unwrap_or(0) as f64 / 1e6,
        bins: out.results.into_iter().next().unwrap().1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HistogramConfig {
        HistogramConfig { bins: 8, samples_per_image: 60, seed: 11 }
    }

    #[test]
    fn both_methods_match_the_oracle() {
        let oracle = serial_histogram(6, &small());
        for method in [HistogramMethod::Atomics, HistogramMethod::Lock] {
            let r = run_histogram(Platform::Titan, Backend::Shmem, 6, small(), method);
            assert_eq!(r.bins, oracle, "{method:?}");
            assert_eq!(r.bins.iter().sum::<i64>(), 6 * 60);
        }
    }

    #[test]
    fn atomics_beat_the_lock_under_contention() {
        let atomics =
            run_histogram(Platform::Titan, Backend::Shmem, 12, small(), HistogramMethod::Atomics);
        let lock =
            run_histogram(Platform::Titan, Backend::Shmem, 12, small(), HistogramMethod::Lock);
        assert!(
            atomics.time_ms * 1.5 < lock.time_ms,
            "atomics {:.2} ms vs lock {:.2} ms",
            atomics.time_ms,
            lock.time_ms
        );
    }

    #[test]
    fn distribution_is_skewed_as_designed() {
        let bins =
            serial_histogram(4, &HistogramConfig { bins: 8, samples_per_image: 500, seed: 3 });
        assert!(bins[0] > bins[7], "low bins are hotter: {bins:?}");
    }
}
