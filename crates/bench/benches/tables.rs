//! Regenerates Tables I, II and III.

fn main() {
    println!("# Table I — CAF implementations and communication layers\n");
    println!("{}", repro_bench::render_table1());
    println!("# Table II — CAF / OpenSHMEM feature mapping\n");
    println!("{}", repro_bench::render_table2());
    println!("# Table III — machine configurations (platform presets)\n");
    println!("{}", repro_bench::render_table3());
}
