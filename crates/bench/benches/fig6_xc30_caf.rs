//! Regenerates the paper's fig6 (run: `cargo bench --bench fig6_xc30_caf`).
//! Set REPRO_QUICK=1 for a fast smoke run.

fn main() {
    let quick = repro_bench::quick_from_env();
    repro_bench::fig6_xc30_caf(quick).emit();
}
