//! Regenerates the paper's fig3 (run: `cargo bench --bench fig3_put_bandwidth`).
//! Set REPRO_QUICK=1 for a fast smoke run.

fn main() {
    let quick = repro_bench::quick_from_env();
    repro_bench::fig3_put_bandwidth(quick).emit();
}
