//! Ablation studies for the design choices DESIGN.md calls out:
//! ABL1 base-dimension selection, ABL2 lock algorithms, EXT1 shmem_ptr.

fn main() {
    let quick = repro_bench::quick_from_env();
    let max = repro_bench::max_images_from_env(if quick { 16 } else { 64 });
    repro_bench::abl1_base_dim(quick).emit();
    repro_bench::abl2_lock_algorithms(quick, max).emit();
    repro_bench::ext1_shmem_ptr_fastpath(quick).emit();
}
