//! Regenerates Figure 9 (distributed hash table on Titan).

fn main() {
    let quick = repro_bench::quick_from_env();
    let max = repro_bench::max_images_from_env(if quick { 32 } else { 2048 });
    repro_bench::fig9_dht(quick, max).emit();
}
