//! Regenerates Figure 8 (lock microbenchmark on Titan).
//! REPRO_QUICK=1 for a smoke run; REPRO_MAX_IMAGES caps the sweep
//! (default 256; the paper sweeps to 1024).

fn main() {
    let quick = repro_bench::quick_from_env();
    let max = repro_bench::max_images_from_env(if quick { 32 } else { 256 });
    repro_bench::fig8_locks(quick, max).emit();
}
