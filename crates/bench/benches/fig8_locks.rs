//! Regenerates Figure 8 (lock microbenchmark on Titan).
//! REPRO_QUICK=1 for a smoke run; REPRO_MAX_IMAGES caps the sweep
//! (default 2048: the paper's 1024-image headline point plus one
//! doubling, viable since PEs multiplex onto a bounded worker pool).

fn main() {
    let quick = repro_bench::quick_from_env();
    let max = repro_bench::max_images_from_env(if quick { 32 } else { 2048 });
    repro_bench::fig8_locks(quick, max).emit();
}
