//! Supplementary point-to-point kernels (get latency/bandwidth,
//! bidirectional put) — the rest of the PGAS microbenchmark suite.

fn main() {
    let quick = repro_bench::quick_from_env();
    repro_bench::supp_pt2pt(quick).emit();
}
