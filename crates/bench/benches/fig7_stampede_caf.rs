//! Regenerates the paper's fig7 (run: `cargo bench --bench fig7_stampede_caf`).
//! Set REPRO_QUICK=1 for a fast smoke run.

fn main() {
    let quick = repro_bench::quick_from_env();
    repro_bench::fig7_stampede_caf(quick).emit();
}
