//! Regenerates Figure 10 (CAF Himeno on Stampede).

fn main() {
    let quick = repro_bench::quick_from_env();
    // Full mode runs the size-M grid, whose j decomposition admits the
    // figure's entire 4..127 image axis (size S capped it at 63).
    let max = repro_bench::max_images_from_env(if quick { 16 } else { 127 });
    repro_bench::fig10_himeno(quick, max).emit();
}
