//! Regenerates the paper's fig2 (run: `cargo bench --bench fig2_put_latency`).
//! Set REPRO_QUICK=1 for a fast smoke run.

fn main() {
    let quick = repro_bench::quick_from_env();
    repro_bench::fig2_put_latency(quick).emit();
}
