//! Wall-clock microbenchmarks for the simulator's own hot paths
//! (everything else in this workspace reports *virtual* time; these are the
//! real-time costs that bound how fast reproductions run).
//!
//! A self-contained harness (no external bench framework): each benchmark
//! is warmed up, then timed over enough iterations to fill a fixed
//! measurement budget, reporting ns/iter and throughput where applicable.

use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(200);

/// Time `f` (called once per iteration) and report its mean cost.
fn bench(name: &str, bytes_per_iter: Option<u64>, mut f: impl FnMut()) {
    // Warm up and estimate the per-iteration cost.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < WARMUP {
        f();
        warm_iters += 1;
    }
    let est = WARMUP.as_nanos() as u64 / warm_iters.max(1);
    let iters = (MEASURE.as_nanos() as u64 / est.max(1)).clamp(10, 10_000_000);

    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    match bytes_per_iter {
        Some(b) => {
            let gib_s = b as f64 / ns_per_iter * 1e9 / (1u64 << 30) as f64;
            println!("{name:<28} {ns_per_iter:>12.1} ns/iter {gib_s:>10.2} GiB/s ({iters} iters)");
        }
        None => {
            println!("{name:<28} {ns_per_iter:>12.1} ns/iter {:>16} ({iters} iters)", "");
        }
    }
}

fn heap_copy() {
    use pgas_machine::heap::Heap;
    for size in [64usize, 4096, 1 << 20] {
        let heap = Heap::new(size + 64);
        let src = vec![0xA5u8; size];
        let mut dst = vec![0u8; size];
        bench(&format!("heap_write_{size}"), Some(size as u64), || {
            heap.write_bytes(8, std::hint::black_box(&src))
        });
        bench(&format!("heap_read_{size}"), Some(size as u64), || {
            heap.read_bytes(8, std::hint::black_box(&mut dst))
        });
    }
}

fn allocator() {
    use openshmem::SymAlloc;
    bench("sym_alloc_churn", None, || {
        let mut a = SymAlloc::new(1 << 20);
        let mut held = Vec::new();
        for i in 1..=100 {
            held.push(a.alloc((i % 13 + 1) * 32).unwrap());
            if i % 3 == 0 {
                let victim = held.remove(held.len() / 2);
                a.free(victim).unwrap();
            }
        }
        for off in held {
            a.free(off).unwrap();
        }
    });
}

fn section_enumeration() {
    use caf::{DimRange, Section};
    let sec = Section::new(vec![
        DimRange { start: 0, count: 50, step: 2 },
        DimRange { start: 0, count: 40, step: 2 },
        DimRange { start: 0, count: 25, step: 4 },
    ]);
    let shape = [100usize, 100, 100];
    bench("section_elements_50k", None, || {
        std::hint::black_box(sec.elements(&shape));
    });
    bench("section_pencils_1k", None, || {
        std::hint::black_box(sec.pencils(&shape, 0));
    });
}

fn tiny_simulation() {
    use caf::{run_caf, Backend, CafConfig};
    use pgas_machine::{generic_smp, Platform};
    bench("spawn_4_image_job", None, || {
        let out = run_caf(
            generic_smp(4).with_heap_bytes(1 << 16),
            CafConfig::new(Backend::Shmem, Platform::GenericSmp).with_nonsym_bytes(1024),
            |img| img.this_image(),
        );
        assert_eq!(out.results.len(), 4);
    });
}

fn main() {
    println!("{:<28} {:>12} {:>16}", "benchmark", "mean", "throughput");
    heap_copy();
    allocator();
    section_enumeration();
    tiny_simulation();
}
