//! Criterion wall-clock microbenchmarks for the simulator's own hot paths
//! (everything else in this workspace reports *virtual* time; these are the
//! real-time costs that bound how fast reproductions run).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use openshmem::SymAlloc;
use pgas_machine::heap::Heap;

fn heap_copy(c: &mut Criterion) {
    let mut g = c.benchmark_group("heap_copy");
    for size in [64usize, 4096, 1 << 20] {
        let heap = Heap::new(size + 64);
        let src = vec![0xA5u8; size];
        let mut dst = vec![0u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("write_{size}"), |b| {
            b.iter(|| heap.write_bytes(8, std::hint::black_box(&src)))
        });
        g.bench_function(format!("read_{size}"), |b| {
            b.iter(|| heap.read_bytes(8, std::hint::black_box(&mut dst)))
        });
    }
    g.finish();
}

fn allocator(c: &mut Criterion) {
    c.bench_function("sym_alloc_churn", |b| {
        b.iter_batched(
            || SymAlloc::new(1 << 20),
            |mut a| {
                let mut held = Vec::new();
                for i in 1..=100 {
                    held.push(a.alloc((i % 13 + 1) * 32).unwrap());
                    if i % 3 == 0 {
                        let victim = held.remove(held.len() / 2);
                        a.free(victim).unwrap();
                    }
                }
                for off in held {
                    a.free(off).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn section_enumeration(c: &mut Criterion) {
    use caf::{DimRange, Section};
    let sec = Section::new(vec![
        DimRange { start: 0, count: 50, step: 2 },
        DimRange { start: 0, count: 40, step: 2 },
        DimRange { start: 0, count: 25, step: 4 },
    ]);
    let shape = [100usize, 100, 100];
    c.bench_function("section_elements_50k", |b| {
        b.iter(|| std::hint::black_box(sec.elements(&shape)).len())
    });
    c.bench_function("section_pencils_1k", |b| {
        b.iter(|| std::hint::black_box(sec.pencils(&shape, 0)).len())
    });
}

fn tiny_simulation(c: &mut Criterion) {
    use caf::{run_caf, Backend, CafConfig};
    use pgas_machine::{generic_smp, Platform};
    c.bench_function("spawn_4_image_job", |b| {
        b.iter(|| {
            run_caf(
                generic_smp(4).with_heap_bytes(1 << 16),
                CafConfig::new(Backend::Shmem, Platform::GenericSmp).with_nonsym_bytes(1024),
                |img| img.this_image(),
            )
            .results
            .len()
        })
    });
}

criterion_group!(benches, heap_copy, allocator, section_enumeration, tiny_simulation);
criterion_main!(benches);
