//! Figure probes: small traced + metered runs of each figure's dominant
//! communication pattern.
//!
//! A probe is the *regression anchor* of a figure: it is deterministic in
//! virtual time, independent of quick mode and of sweep sizes, and runs
//! with tracing and metrics forced on (which, by the PR 4 observability
//! contract, moves no virtual clock). Its critical-path report becomes the
//! figure's `results/<id>.critpath.json` sidecar and its [`RunDigest`] the
//! figure's record in the committed `BENCH_<platform>.json` baseline — so
//! the `bench regress` CLI can re-run just the probes (seconds, not the
//! full sweeps) and still compare bit-exactly against baselines captured by
//! a full `repro_all`.

use caf::{Backend, StridedAlgorithm};
use caf_apps::{run_himeno_outcome, HimenoConfig};
use pgas_conduit::ConduitProfile;
use pgas_machine::critdiff::RunDigest;
use pgas_machine::json::Json;
use pgas_machine::tailprof::{ReqPathReport, REQ_PHASES};
use pgas_machine::{
    with_forced_metrics, with_forced_tracing, CriticalPathReport, MetricsSnapshot, Platform,
};

/// The distilled outcome of one probe run.
pub struct ProbeOutcome {
    /// Platform name the probe ran on (`SimOutcome::machine`), which keys
    /// the `BENCH_<platform>.json` file the record lands in.
    pub platform: String,
    pub report: CriticalPathReport,
    pub metrics: MetricsSnapshot,
    /// Per-request critical paths (empty for figures without request
    /// markers): the serving/churn anchors' digests gain the request-phase
    /// table from these, so `bench regress` attributes a tail regression
    /// to queue-wait vs wire vs fault-delay instead of just "slower".
    pub req_paths: Vec<ReqPathReport>,
}

impl ProbeOutcome {
    /// The comparable digest for baselines and diffing.
    pub fn digest(&self) -> RunDigest {
        RunDigest::from_run_with_requests(&self.report, &self.metrics, &self.req_paths)
    }

    /// The figure sidecar JSON (aggregated segments, plus the request-phase
    /// tail evidence when the probe's app marks requests).
    pub fn sidecar_json(&self) -> Json {
        let mut j = self.report.to_sidecar_json();
        if !self.req_paths.is_empty() {
            let mut phase_ns = [0u64; 6];
            for p in &self.req_paths {
                for (acc, ns) in phase_ns.iter_mut().zip(p.phase_ns) {
                    *acc += ns;
                }
            }
            let requests = Json::Object(vec![
                ("count".to_string(), Json::uint(self.req_paths.len())),
                (
                    "phase_ns".to_string(),
                    Json::Object(
                        REQ_PHASES
                            .iter()
                            .zip(phase_ns)
                            .map(|(ph, ns)| (ph.label().to_string(), Json::uint(ns as usize)))
                            .collect(),
                    ),
                ),
            ]);
            if let Json::Object(fields) = &mut j {
                fields.push(("requests".to_string(), requests));
            }
        }
        j
    }
}

/// Run `f` with tracing and metrics forced on and distill the outcome.
fn probe<R: Send>(f: impl FnOnce() -> pgas_machine::SimOutcome<R>) -> ProbeOutcome {
    let out = with_forced_tracing(true, || with_forced_metrics(true, f));
    ProbeOutcome {
        platform: out.machine.clone(),
        report: out.critical_path(),
        metrics: out.metrics.clone(),
        req_paths: out.req_paths(),
    }
}

/// Probe for the put latency/bandwidth figures: `pairs` senders on node 0
/// stream nbi puts to partners on node 1, then quiet — the 16-pair variant
/// reproduces the NIC contention the paper's Figure 3 measures.
pub fn put_pairs_probe(platform: Platform, pairs: usize, bytes: usize) -> ProbeOutcome {
    use pgas_conduit::{Ctx, CtxOptions};
    let profile = match platform {
        Platform::Stampede => ConduitProfile::mvapich_shmem(),
        _ => ConduitProfile::cray_shmem(platform),
    };
    let heap = (bytes * 2 + (1 << 14)).next_power_of_two();
    // The 16-pair variant contends hard for both nodes' NIC lanes; the
    // virtual-time arbiter keeps the grant order (and so the digest)
    // bit-identical run to run.
    let mcfg = platform.config(2, pairs).with_heap_bytes(heap).with_deterministic_nic();
    probe(|| {
        pgas_machine::run(mcfg, move |pe| {
            let ctx = Ctx::new(pe, profile, CtxOptions::default());
            let n = pe.n();
            ctx.barrier_all();
            if pe.id() < n / 2 {
                let dst = pe.id() + n / 2;
                let data = vec![1u8; bytes];
                for _ in 0..4 {
                    ctx.put_nbi(dst, 0, &data);
                }
                ctx.quiet();
            }
            ctx.barrier_all();
        })
    })
}

/// Probe for the strided-section figures: a 2-D strided put between nodes.
pub fn strided_probe(platform: Platform) -> ProbeOutcome {
    use caf::{run_caf, CafConfig, DimRange, Section};
    let mcfg = platform.config(2, 1).with_heap_bytes(1 << 17).with_deterministic_nic();
    let ccfg = CafConfig::new(Backend::Shmem, platform).with_strided(StridedAlgorithm::TwoDim);
    probe(|| {
        run_caf(mcfg, ccfg, |img| {
            let shape = [32usize, 32];
            let a = img.coarray::<i32>(&shape).unwrap();
            let sec = Section::new(vec![
                DimRange { start: 0, count: 16, step: 2 },
                DimRange { start: 0, count: 16, step: 2 },
            ]);
            let data = vec![1i32; sec.total()];
            img.sync_all();
            if img.this_image() == 1 {
                a.put_section(img, 2, &sec, &data);
            }
            img.sync_all();
        })
    })
}

/// Probe for the lock figures: every image acquires/releases a lock homed
/// on image 1 (the Figure 8 access pattern).
pub fn lock_probe(platform: Platform, images: usize) -> ProbeOutcome {
    use caf::{run_caf, CafConfig};
    let cores = 16.min(images);
    let nodes = images.div_ceil(cores);
    let mcfg = platform.config(nodes, cores).with_heap_bytes(1 << 16).with_deterministic_nic();
    let ccfg = CafConfig::new(Backend::Shmem, platform).with_nonsym_bytes(4096);
    probe(|| {
        run_caf(mcfg, ccfg, |img| {
            let lck = img.lock_var();
            img.sync_all();
            for _ in 0..3 {
                img.lock(&lck, 1);
                img.unlock(&lck, 1);
            }
            img.sync_all();
        })
    })
}

/// Probe for the DHT-throughput figure: 16 images streaming active-message
/// updates with small-op aggregation forced on — the configuration that
/// dethrones the paper's locked get–modify–put pattern. The force makes
/// the digest independent of the `PGAS_COALESCE` environment, so the same
/// baseline holds in both the plain and the `test-aggregated` CI jobs.
pub fn dht_throughput_probe(images: usize) -> ProbeOutcome {
    use caf_apps::{run_dht_outcome, DhtConfig, DhtUpdateMode};
    let cfg = DhtConfig {
        slots_per_image: 64,
        updates_per_image: 24,
        update: DhtUpdateMode::Am,
        ..Default::default()
    };
    probe(|| {
        pgas_machine::with_forced_aggregation(true, || {
            run_dht_outcome(Platform::Titan, Backend::Shmem, images, cfg, true).1
        })
    })
}

/// Probe for the availability-under-churn figure: nine images (eight
/// workers plus a spare) running the full recovery cycle — a scheduled
/// worker death mid-run, team re-formation that admits the spare, shard
/// redistribution and journal replay — under the deterministic NIC.
/// Aggregation *and* payload checksums are forced on internally, so the
/// digest is independent of both the `PGAS_COALESCE` and `PGAS_CHECKSUM`
/// environments: the plain, `test-aggregated` and `test-recovery` CI jobs
/// all compare against the same committed baseline.
pub fn availability_churn_probe() -> ProbeOutcome {
    use caf_apps::{run_churn_outcome, ChurnConfig};
    use pgas_machine::{
        with_forced_aggregation, with_forced_checksums, with_forced_plan, FaultPlan,
    };
    let cfg = ChurnConfig::default();
    // The calibrated scenario the churn tests pin down: worker image 5
    // (PE 4) dies at 30 µs, mid round 3's generation of the default
    // config's ~61 µs healthy makespan.
    let plan = FaultPlan::new(cfg.seed).with_pe_failure(4, 30_000);
    probe(move || {
        with_forced_aggregation(true, || {
            with_forced_checksums(true, || {
                with_forced_plan(plan, || {
                    run_churn_outcome(Platform::Titan, Backend::Shmem, 9, cfg, true).1
                })
            })
        })
    })
}

/// Probe for the serving-SLO figure: nine images (eight open-loop workers
/// plus a spare) running the calibrated mini serving scenario — Poisson
/// arrivals from the shared global stream, Zipfian keys, AM writes, and a
/// scheduled worker death early in the first epoch so detection waits a
/// near-full epoch and the parked requests drain with outage-length
/// latencies. Aggregation, payload checksums and the fault plan are all
/// forced internally, so the digest is independent of the
/// `PGAS_COALESCE`/`PGAS_CHECKSUM` environments, like the churn anchor.
pub fn serving_slo_probe() -> ProbeOutcome {
    use caf_apps::serve::{run_serve_outcome, ServeConfig};
    use pgas_machine::{
        with_forced_aggregation, with_forced_checksums, with_forced_plan, FaultPlan,
    };
    let cfg = ServeConfig {
        keyspace: 10_000,
        requests_per_image: 40,
        epochs: 2,
        slots_per_shard: 64,
        mean_gap_ns: 1_500.0,
        ..Default::default()
    };
    // The serve tests' calibrated scenario: worker image 5 (PE 4) dies at
    // 12 µs, early in the first epoch of the ~80 µs run.
    let plan = FaultPlan::new(cfg.seed).with_pe_failure(4, 12_000);
    probe(move || {
        with_forced_aggregation(true, || {
            with_forced_checksums(true, || {
                with_forced_plan(plan, || {
                    run_serve_outcome(Platform::Titan, Backend::Shmem, 9, cfg, true).1
                })
            })
        })
    })
}

/// Probe for the Himeno figure: a traced 8-image run of the real solver.
pub fn himeno_probe() -> ProbeOutcome {
    probe(|| {
        run_himeno_outcome(
            Platform::Stampede,
            Backend::Shmem,
            Some(StridedAlgorithm::Naive),
            8,
            HimenoConfig::size_xs(),
        )
        .1
    })
}

/// Every figure id the harness knows, in emission order.
pub const FIGURE_IDS: [&str; 14] = [
    "fig2_put_latency",
    "fig3_put_bandwidth",
    "fig6_xc30_caf",
    "fig7_stampede_caf",
    "fig8_locks",
    "fig9_dht",
    "dht_throughput",
    "fig10_himeno",
    "availability_churn",
    "serving_slo",
    "abl1_base_dim",
    "abl2_lock_algorithms",
    "ext1_shmem_ptr_fastpath",
    "supp_pt2pt",
];

/// Run the probe anchoring `figure_id`. `None` for unknown ids.
///
/// Aggregation policy per anchor: the *direct-path* figures (latency,
/// strided algorithms, lock ablation, Himeno solver, fastpath) pin
/// coalescing off — their figures measure unaggregated wire physics, and
/// on their microsecond-scale makespans even the AM unpack handler's few
/// hundred ns of compute would read as a category regression. The
/// *contention-scale* anchors (fig3's 16-pair stream, fig8/fig9's
/// 1024-image lock queue, the supplementary kernels) stay env-sensitive
/// on purpose: `PGAS_COALESCE=on bench diff fig3_put_bandwidth` is the
/// acceptance evidence for the aggregation win, and the `test-aggregated`
/// CI job's 5% regress tolerance genuinely gates those paths. The
/// dht_throughput probe forces aggregation *on* internally (see above).
pub fn probe_for(figure_id: &str) -> Option<ProbeOutcome> {
    let direct = |f: &dyn Fn() -> ProbeOutcome| pgas_machine::with_forced_aggregation(false, f);
    Some(match figure_id {
        "fig2_put_latency" | "ext1_shmem_ptr_fastpath" => {
            direct(&|| put_pairs_probe(Platform::Stampede, 1, 4096))
        }
        "fig3_put_bandwidth" => put_pairs_probe(Platform::Stampede, 16, 65536),
        "fig6_xc30_caf" | "abl1_base_dim" => direct(&|| strided_probe(Platform::CrayXc30)),
        "fig7_stampede_caf" => direct(&|| strided_probe(Platform::Stampede)),
        // Paper scale: Figure 8/9 sweep to 1024+ images, so their anchor
        // races the full thousand-image MCS queue (the ablation keeps the
        // small anchor — its sweep caps at 64).
        "fig8_locks" | "fig9_dht" => lock_probe(Platform::Titan, 1024),
        "dht_throughput" => dht_throughput_probe(16),
        // Both recovery anchors force their whole environment (aggregation,
        // checksums, fault plan) internally — see the probes' own docs.
        "availability_churn" => availability_churn_probe(),
        "serving_slo" => serving_slo_probe(),
        "abl2_lock_algorithms" => direct(&|| lock_probe(Platform::Titan, 8)),
        "fig10_himeno" => direct(&himeno_probe),
        "supp_pt2pt" => put_pairs_probe(Platform::Titan, 1, 65536),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_are_deterministic() {
        let a = put_pairs_probe(Platform::Stampede, 1, 4096);
        let b = put_pairs_probe(Platform::Stampede, 1, 4096);
        assert_eq!(a.platform, "stampede");
        assert_eq!(a.digest(), b.digest(), "same probe, same digest, bit for bit");
        assert_eq!(a.report.total_ns(), a.report.makespan_ns, "probe report tiles the makespan");
        assert!(!a.metrics.histograms.is_empty(), "probes run with metrics on");
    }

    #[test]
    fn contended_probe_is_deterministic() {
        // The Figure 3 anchor: 16 senders racing for two NIC lanes. Without
        // the virtual-time arbiter, real thread scheduling decides the lane
        // order and the per-PE attribution flips run to run.
        let a = put_pairs_probe(Platform::Stampede, 16, 65536);
        let b = put_pairs_probe(Platform::Stampede, 16, 65536);
        assert_eq!(a.digest(), b.digest(), "contended digest must be bit-identical");
    }

    #[test]
    fn lock_probe_is_deterministic() {
        // The Figure 8/9 anchor: 8 images racing MCS tail swaps. The queue
        // order is the value a tied `swap` fetches, so the digest is only
        // stable because tied AMO applications serialize through the
        // virtual-time arbiter instead of host scheduling.
        let a = lock_probe(Platform::Titan, 8);
        let b = lock_probe(Platform::Titan, 8);
        assert_eq!(a.digest(), b.digest(), "lock digest must be bit-identical");
    }

    #[test]
    fn every_figure_id_has_a_probe() {
        // Cheap structural check: the registry covers all ids (actually
        // running all 14 probes belongs to `bench record`, not unit tests).
        for id in FIGURE_IDS {
            assert!(
                matches!(
                    id,
                    "fig2_put_latency"
                        | "fig3_put_bandwidth"
                        | "fig6_xc30_caf"
                        | "fig7_stampede_caf"
                        | "fig8_locks"
                        | "fig9_dht"
                        | "dht_throughput"
                        | "fig10_himeno"
                        | "availability_churn"
                        | "serving_slo"
                        | "abl1_base_dim"
                        | "abl2_lock_algorithms"
                        | "ext1_shmem_ptr_fastpath"
                        | "supp_pt2pt"
                ),
                "unknown id {id}"
            );
        }
        assert!(probe_for("not_a_figure").is_none());
    }

    #[test]
    fn availability_churn_probe_is_deterministic_and_env_independent() {
        // The recovery anchor forces aggregation, checksums and its fault
        // plan internally: the digest must not move under the ambient
        // `PGAS_COALESCE`/`PGAS_CHECKSUM` the CI matrix varies, and the
        // scheduled death must actually fire inside the probe.
        let a = availability_churn_probe();
        let b = pgas_machine::with_forced_checksums(false, || {
            pgas_machine::with_forced_aggregation(false, availability_churn_probe)
        });
        assert_eq!(a.digest(), b.digest(), "churn probe digest must be bit-identical");
        assert_eq!(a.platform, "titan");
        assert_eq!(a.metrics.stats.pe_failures, 1, "the scheduled failure is in the anchor");
    }

    #[test]
    fn serving_slo_probe_is_deterministic_and_env_independent() {
        // The serving anchor forces aggregation, checksums and its fault
        // plan internally, so the digest must not move under the ambient
        // `PGAS_COALESCE`/`PGAS_CHECKSUM` the CI matrix varies, and the
        // scheduled death must actually fire inside the probe.
        let a = serving_slo_probe();
        let b = pgas_machine::with_forced_checksums(false, || {
            pgas_machine::with_forced_aggregation(false, serving_slo_probe)
        });
        assert_eq!(a.digest(), b.digest(), "serving probe digest must be bit-identical");
        assert_eq!(a.platform, "titan");
        assert_eq!(a.metrics.stats.pe_failures, 1, "the scheduled failure is in the anchor");
        assert!(
            a.metrics.windows.iter().any(|w| w.name == "serve_latency_ns"),
            "the windowed latency series is in the anchor's metrics"
        );
        assert!(!a.req_paths.is_empty(), "the serving anchor marks its requests");
        let d = a.digest();
        assert_eq!(d.req_count, a.req_paths.len() as u64, "digest carries the request table");
        assert!(d.req_phase_ns.iter().sum::<u64>() > 0, "request phases attribute real time");
    }

    #[test]
    fn dht_throughput_probe_is_deterministic_and_env_independent() {
        // The probe forces aggregation on internally, so its digest must
        // not depend on the ambient `PGAS_COALESCE` (both CI jobs compare
        // against the same committed baseline).
        let a = dht_throughput_probe(8);
        let b = pgas_machine::with_forced_aggregation(true, || dht_throughput_probe(8));
        assert_eq!(a.digest(), b.digest(), "dht probe digest must be bit-identical");
        assert!(!a.metrics.histograms.is_empty(), "probes run with metrics on");
    }
}
