//! `bench` — the benchmark regression CLI.
//!
//! ```bash
//! cargo run --release -p repro-bench --bin bench -- regress            # gate
//! cargo run --release -p repro-bench --bin bench -- regress --tol 0.05 fig3_put_bandwidth
//! cargo run --release -p repro-bench --bin bench -- record             # re-record baselines
//! cargo run --release -p repro-bench --bin bench -- diff fig3_put_bandwidth
//! ```
//!
//! `regress` re-runs each figure's probe (seconds — probes ignore quick mode
//! and sweep sizes) and compares its [`RunDigest`] against the committed
//! `results/BENCH_<platform>.json` baseline. The simulator is deterministic
//! in virtual time, so an unchanged tree diffs to exactly zero; any delta
//! beyond `--tol` (default 0, i.e. bit-exact) fails with the makespan change
//! attributed to critical-path categories, PEs and metric series.
//!
//! `UPDATE_BASELINE=1` (or `--update`) re-records instead of failing —
//! the path to take after an *intentional* performance change.
//!
//! `diff` compares a probe run under the *current* environment (fault plans,
//! sanitizer modes, …) against the committed baseline without gating — see
//! the EXPERIMENTS.md walkthrough of `PGAS_FAULT_PLAN=drop1`.

use pgas_machine::critdiff::CritDiff;
use repro_bench::baseline::{self, BenchRecord};
use repro_bench::probes::{probe_for, FIGURE_IDS};

fn usage() -> ! {
    eprintln!(
        "usage: bench <command> [options]\n\
         \n\
         commands:\n\
         \x20 regress [--tol FRAC] [--update] [FIGURE...]   gate probe digests against baselines\n\
         \x20 record  [FIGURE...]                           (re-)record baselines for figures\n\
         \x20 diff    FIGURE                                diff current-env probe vs baseline\n\
         \n\
         FIGURE defaults to all: {}\n\
         UPDATE_BASELINE=1 is equivalent to --update.\n\
         Baselines live in REPRO_RESULTS_DIR (default: workspace results/).",
        FIGURE_IDS.join(", ")
    );
    std::process::exit(2)
}

fn resolve_figures(named: &[String]) -> Vec<&'static str> {
    if named.is_empty() {
        return FIGURE_IDS.to_vec();
    }
    named
        .iter()
        .map(|n| {
            FIGURE_IDS.iter().copied().find(|id| id == n).unwrap_or_else(|| {
                eprintln!("unknown figure `{n}` (known: {})", FIGURE_IDS.join(", "));
                std::process::exit(2)
            })
        })
        .collect()
}

/// Probe the given figures and return their fresh records.
fn probe_records(figures: &[&'static str]) -> Vec<BenchRecord> {
    figures
        .iter()
        .map(|&id| {
            let probe = probe_for(id).expect("figure ids come from FIGURE_IDS");
            BenchRecord::from_probe(id, &probe)
        })
        .collect()
}

/// Merge fresh records into the committed baselines (replacing same-figure
/// entries, keeping the rest) and rewrite the BENCH files.
fn record(figures: &[&'static str]) {
    let dir = baseline::results_dir();
    let mut records = baseline::load_baselines(&dir).unwrap_or_default();
    for fresh in probe_records(figures) {
        records.retain(|r| r.figure != fresh.figure);
        records.push(fresh);
    }
    match baseline::write_baselines(&dir, &records) {
        Ok(paths) => {
            for p in paths {
                println!("baseline written: {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("baseline write failed: {e}");
            std::process::exit(1);
        }
    }
}

fn regress(tol: f64, update: bool, figures: &[&'static str]) {
    if update {
        record(figures);
        return;
    }
    let dir = baseline::results_dir();
    let committed = match baseline::load_baselines(&dir) {
        Ok(r) if !r.is_empty() => r,
        Ok(_) => {
            eprintln!(
                "no BENCH_*.json baselines under {} — run `bench record` or `repro_all` first",
                dir.display()
            );
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("cannot load baselines: {e}");
            std::process::exit(2);
        }
    };
    let mut failures = 0usize;
    for fresh in probe_records(figures) {
        let Some(base) = baseline::find(&committed, &fresh.figure) else {
            eprintln!("{}: no committed baseline (run with --update to add)", fresh.figure);
            failures += 1;
            continue;
        };
        let diff = CritDiff::between(&base.digest, &fresh.digest);
        let regs = diff.regressions(tol);
        if regs.is_empty() {
            println!(
                "{}: ok ({} ns makespan, delta {:+} ns within tolerance)",
                fresh.figure,
                fresh.digest.makespan_ns,
                diff.makespan_delta_ns()
            );
        } else {
            failures += 1;
            println!("{}: REGRESSED", fresh.figure);
            for r in &regs {
                println!("  {r}");
            }
            print!("{}", indent(&diff.render()));
        }
    }
    if failures > 0 {
        eprintln!(
            "{failures} figure(s) regressed beyond tolerance {tol} \
             (set UPDATE_BASELINE=1 to re-record after an intentional change)"
        );
        std::process::exit(1);
    }
}

fn diff_one(figure: &'static str) {
    let dir = baseline::results_dir();
    let committed = match baseline::load_baselines(&dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot load baselines: {e}");
            std::process::exit(2);
        }
    };
    let Some(base) = baseline::find(&committed, figure) else {
        eprintln!("{figure}: no committed baseline under {}", dir.display());
        std::process::exit(2);
    };
    let probe = probe_for(figure).expect("figure ids come from FIGURE_IDS");
    let diff = CritDiff::between(&base.digest, &probe.digest());
    println!("# {figure}: baseline vs current environment\n");
    print!("{}", diff.render());
}

fn indent(text: &str) -> String {
    text.lines().map(|l| format!("  {l}\n")).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "regress" => {
            let mut tol = 0.0f64;
            let mut update = std::env::var("UPDATE_BASELINE").map(|v| v != "0").unwrap_or(false);
            let mut figures = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--tol" => {
                        tol = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                    }
                    "--update" => update = true,
                    _ if a.starts_with('-') => usage(),
                    _ => figures.push(a.clone()),
                }
            }
            regress(tol, update, &resolve_figures(&figures));
        }
        "record" => {
            let figures: Vec<String> = args[1..].to_vec();
            if figures.iter().any(|a| a.starts_with('-')) {
                usage();
            }
            record(&resolve_figures(&figures));
        }
        "diff" => {
            let [figure] = &args[1..] else { usage() };
            let [figure] = resolve_figures(std::slice::from_ref(figure))[..] else {
                unreachable!()
            };
            diff_one(figure);
        }
        _ => usage(),
    }
}
