//! Regenerate every table and figure of the paper in one run and write a
//! combined report to `results/`, plus the per-platform benchmark baselines
//! (`results/BENCH_<platform>.json`) that `bench regress` compares against.
//!
//! ```bash
//! cargo run --release -p repro-bench --bin repro_all            # full
//! REPRO_QUICK=1 cargo run --release -p repro-bench --bin repro_all  # smoke
//! ```
//!
//! The baselines come from the figures' *probes*, which ignore quick mode —
//! a `REPRO_QUICK=1` run emits the same BENCH files as a full run.

use repro_bench::baseline::BenchRecord;
use repro_bench::FigureJob;

fn main() {
    let quick = repro_bench::quick_from_env();
    let max = repro_bench::max_images_from_env(if quick { 32 } else { 256 });
    let himeno_max = repro_bench::max_images_from_env(if quick { 16 } else { 127 });
    let workers = repro_bench::figure_jobs_from_env(3);
    let dir = repro_bench::baseline::results_dir();
    let t0 = std::time::Instant::now();

    println!("# Tables\n");
    println!("## Table I\n\n{}", repro_bench::render_table1());
    println!("## Table II\n\n{}", repro_bench::render_table2());
    println!("## Table III\n\n{}", repro_bench::render_table3());

    // REPRO_ONLY=fig3,dht_tput re-emits just those figures (and merges only
    // their records into the committed baselines) — for targeted re-records
    // after a change that intentionally moves one figure.
    let only: Option<Vec<String>> = std::env::var("REPRO_ONLY")
        .ok()
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect());

    let mut jobs: Vec<FigureJob> = vec![
        ("fig2", Box::new(move || repro_bench::fig2_put_latency(quick))),
        ("fig3", Box::new(move || repro_bench::fig3_put_bandwidth(quick))),
        ("fig6", Box::new(move || repro_bench::fig6_xc30_caf(quick))),
        ("fig7", Box::new(move || repro_bench::fig7_stampede_caf(quick))),
        ("fig8", Box::new(move || repro_bench::fig8_locks(quick, max))),
        ("fig9", Box::new(move || repro_bench::fig9_dht(quick, max))),
        ("dht_tput", Box::new(move || repro_bench::dht_throughput(quick, max.min(64)))),
        ("fig10", Box::new(move || repro_bench::fig10_himeno(quick, himeno_max))),
        ("churn", Box::new(move || repro_bench::availability_churn(quick))),
        ("serving_slo", Box::new(move || repro_bench::serving_slo(quick))),
        ("abl1", Box::new(move || repro_bench::abl1_base_dim(quick))),
        ("abl2", Box::new(move || repro_bench::abl2_lock_algorithms(quick, max.min(64)))),
        ("ext1", Box::new(move || repro_bench::ext1_shmem_ptr_fastpath(quick))),
        ("supp", Box::new(move || repro_bench::supp_pt2pt(quick))),
    ];
    if let Some(only) = &only {
        jobs.retain(|(name, _)| only.iter().any(|o| o == name));
        if jobs.is_empty() {
            eprintln!("[repro_all] REPRO_ONLY matched no figures");
            std::process::exit(2);
        }
    }
    // Generators run sharded across worker threads (REPRO_JOBS, default 3);
    // emission stays serial and in job order so results/ is deterministic.
    eprintln!("[repro_all] sharding {} figures across {workers} workers", jobs.len());
    let mut records: Vec<BenchRecord> = if only.is_some() {
        repro_bench::baseline::load_baselines(&dir).unwrap_or_default()
    } else {
        Vec::new()
    };
    for (name, fig) in repro_bench::run_figure_jobs(jobs, workers) {
        fig.emit();
        if let Some(bench) = &fig.bench {
            match BenchRecord::from_json(bench) {
                Ok(r) => {
                    records.retain(|old| old.figure != r.figure);
                    records.push(r);
                }
                Err(e) => eprintln!("[repro_all] {name}: bad bench record: {e}"),
            }
        }
        eprintln!("[repro_all] {name} done at {:?}", t0.elapsed());
    }
    match repro_bench::baseline::write_baselines(&dir, &records) {
        Ok(paths) => {
            for p in paths {
                eprintln!("[repro_all] baseline written: {}", p.display());
            }
        }
        Err(e) => eprintln!("[repro_all] baseline write failed: {e}"),
    }
    eprintln!("[repro_all] total wall time {:?}", t0.elapsed());
}
