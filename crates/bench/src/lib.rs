//! # repro-bench — regenerates every table and figure of the paper
//!
//! One function per table/figure, returning a [`pgas_microbench::Figure`]
//! that the bench targets print and archive under `results/`. All numbers
//! are *virtual-time* measurements from the simulated machines; the
//! reproduction target is the shape of each figure (who wins, by what
//! factor, where crossovers fall), not the absolute values of the 2015
//! testbeds. See EXPERIMENTS.md for the paper-vs-measured record.
//!
//! Every generator takes `quick: bool`: quick mode (used by tests and smoke
//! runs, or `REPRO_QUICK=1`) shrinks sweeps and iteration counts.

pub mod baseline;
pub mod figures;
pub mod probes;
pub mod tables;

pub use figures::*;
pub use tables::*;

/// Read the quick-mode switch from the environment.
pub fn quick_from_env() -> bool {
    std::env::var("REPRO_QUICK").map(|v| v != "0").unwrap_or(false)
}

/// Maximum image count for the scaling figures (8/9/10), overridable with
/// `REPRO_MAX_IMAGES`.
pub fn max_images_from_env(default: usize) -> usize {
    std::env::var("REPRO_MAX_IMAGES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// A deferred figure job (name, generator), runnable on a worker thread.
pub type FigureJob = (&'static str, Box<dyn Fn() -> pgas_microbench::Figure + Send + Sync>);

/// Worker-thread count for [`run_figure_jobs`], overridable with
/// `REPRO_JOBS`. Each figure generator already launches one OS thread per
/// simulated PE, so the default stays modest.
pub fn figure_jobs_from_env(default: usize) -> usize {
    std::env::var("REPRO_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Run figure generators sharded across `workers` threads, returning the
/// results in the original job order (emission stays serial and
/// deterministic at the caller). Work-stealing by atomic index: long jobs
/// (the scaling figures) don't serialize the short ones behind them.
pub fn run_figure_jobs(
    jobs: Vec<FigureJob>,
    workers: usize,
) -> Vec<(&'static str, pgas_microbench::Figure)> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let slots: Vec<Mutex<Option<pgas_microbench::Figure>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = workers.max(1).min(jobs.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((_, job)) = jobs.get(i) else { break };
                *slots[i].lock().unwrap() = Some(job());
            });
        }
    });
    jobs.iter()
        .zip(slots)
        .map(|((name, _), slot)| (*name, slot.into_inner().unwrap().expect("job ran")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_microbench::Figure;

    fn trivial_job(name: &'static str) -> FigureJob {
        (name, Box::new(move || Figure::new(name, name)))
    }

    #[test]
    fn sharded_jobs_return_in_original_order() {
        for workers in [1, 2, 4, 9] {
            let jobs: Vec<FigureJob> =
                ["a", "b", "c", "d", "e", "f", "g"].into_iter().map(trivial_job).collect();
            let done = run_figure_jobs(jobs, workers);
            let names: Vec<&str> = done.iter().map(|(n, _)| *n).collect();
            assert_eq!(names, ["a", "b", "c", "d", "e", "f", "g"], "workers={workers}");
        }
    }

    #[test]
    fn job_count_from_env_has_a_floor() {
        // Whatever the environment says, the default must be positive and a
        // parse failure must fall back to it.
        assert!(figure_jobs_from_env(3) >= 1);
    }
}
