//! # repro-bench — regenerates every table and figure of the paper
//!
//! One function per table/figure, returning a [`pgas_microbench::Figure`]
//! that the bench targets print and archive under `results/`. All numbers
//! are *virtual-time* measurements from the simulated machines; the
//! reproduction target is the shape of each figure (who wins, by what
//! factor, where crossovers fall), not the absolute values of the 2015
//! testbeds. See EXPERIMENTS.md for the paper-vs-measured record.
//!
//! Every generator takes `quick: bool`: quick mode (used by tests and smoke
//! runs, or `REPRO_QUICK=1`) shrinks sweeps and iteration counts.

pub mod figures;
pub mod tables;

pub use figures::*;
pub use tables::*;

/// Read the quick-mode switch from the environment.
pub fn quick_from_env() -> bool {
    std::env::var("REPRO_QUICK").map(|v| v != "0").unwrap_or(false)
}

/// Maximum image count for the scaling figures (8/9/10), overridable with
/// `REPRO_MAX_IMAGES`.
pub fn max_images_from_env(default: usize) -> usize {
    std::env::var("REPRO_MAX_IMAGES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}
