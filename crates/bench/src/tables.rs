//! Table generators (paper Tables I, II, III).

use pgas_machine::Platform;

/// Table I: CAF implementations and their communication layers
/// (informational in the paper; reproduced verbatim, with the row this
/// project adds).
pub fn render_table1() -> String {
    let rows = [
        ("UHCAF", "OpenUH", "GASNet, ARMCI, OpenSHMEM (this work)"),
        ("CAF 2.0", "Rice", "GASNet, MPI"),
        ("Cray-CAF", "Cray", "DMAPP"),
        ("Intel-CAF", "Intel", "MPI"),
        ("GFortran-CAF", "GCC", "GASNet, MPI (OpenCoarrays)"),
        ("caf (this repo)", "Rust library", "openshmem crate over pgas-conduit profiles"),
    ];
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:<14} {}\n",
        "Implementation", "Compiler", "Communication Layer"
    ));
    out.push_str(&"-".repeat(80));
    out.push('\n');
    for (a, b, c) in rows {
        out.push_str(&format!("{a:<18} {b:<14} {c}\n"));
    }
    out
}

/// Table II: the CAF -> OpenSHMEM mapping (generated from the implemented
/// runtime — see `caf::mapping`).
pub fn render_table2() -> String {
    caf::mapping::render_table2()
}

/// Table III: experimental setup and machine configuration details, as
/// encoded in the platform presets.
pub fn render_table3() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>6} {:>12} {:>14} {:>14} {:>10} {:>8}\n",
        "Cluster", "cores", "inter lat ns", "inter GB/s", "intra lat ns", "amo ns", "GF/core"
    ));
    out.push_str(&"-".repeat(86));
    out.push('\n');
    for p in Platform::paper_platforms() {
        let cfg = p.config(2, 16);
        out.push_str(&format!(
            "{:<12} {:>6} {:>12.0} {:>14.1} {:>14.0} {:>10.0} {:>8.1}\n",
            cfg.name,
            cfg.cores_per_node,
            cfg.wire.inter.latency_ns,
            cfg.wire.inter.bytes_per_ns,
            cfg.wire.intra.latency_ns,
            cfg.wire.amo_ns,
            cfg.compute.core_gflops,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_their_rows() {
        let t1 = render_table1();
        for name in ["UHCAF", "Cray-CAF", "GFortran-CAF"] {
            assert!(t1.contains(name));
        }
        let t2 = render_table2();
        assert!(t2.contains("Remote locks"));
        let t3 = render_table3();
        for name in ["stampede", "titan", "cray-xc30"] {
            assert!(t3.contains(name), "{t3}");
        }
    }
}
