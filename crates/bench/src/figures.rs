//! Figure generators (paper Figures 2, 3, 6, 7, 8, 9, 10 plus ablations).
//!
//! Every figure carries a critical-path sidecar: a small traced probe of the
//! figure's dominant communication pattern whose per-category time
//! attribution is written next to the figure JSON
//! (`results/<id>.critpath.json`), so a regression in a later PR is
//! explainable from the archived artifacts alone.

use caf::{Backend, StridedAlgorithm};
use caf_apps::{run_dht, run_himeno, DhtConfig, HimenoConfig};
use pgas_conduit::ConduitProfile;
use pgas_machine::Platform;
use pgas_microbench::lock_bench::{image_sweep, naive_spinlock_ms, LockBench};
use pgas_microbench::rma::{large_sizes, small_sizes};
use pgas_microbench::{CafPairBench, Figure, PairBench, Panel, Series};

use crate::baseline::BenchRecord;
use crate::probes;

/// Attach the figure's probe (from the [`probes`] registry, so figure
/// artifacts and the `bench` CLI can never disagree about what anchors a
/// figure) as both its critical-path sidecar and its bench-baseline record.
fn with_probe(fig: Figure) -> Figure {
    let probe = probes::probe_for(&fig.id)
        .unwrap_or_else(|| panic!("no probe registered for figure `{}`", fig.id));
    let record = BenchRecord::from_probe(&fig.id, &probe).to_json();
    fig.with_critpath(probe.sidecar_json()).with_bench(record)
}

fn library_profiles(platform: Platform) -> Vec<(String, ConduitProfile)> {
    match platform {
        Platform::Stampede => vec![
            ("MVAPICH2-X SHMEM".into(), ConduitProfile::mvapich_shmem()),
            ("MVAPICH2-X MPI-3.0".into(), ConduitProfile::mpi3(platform)),
            ("GASNet".into(), ConduitProfile::gasnet(platform)),
        ],
        _ => vec![
            ("Cray SHMEM".into(), ConduitProfile::cray_shmem(platform)),
            ("Cray MPICH".into(), ConduitProfile::mpi3(platform)),
            ("GASNet".into(), ConduitProfile::gasnet(platform)),
        ],
    }
}

fn thin(sizes: Vec<usize>, quick: bool) -> Vec<usize> {
    if quick {
        sizes.into_iter().step_by(3).collect()
    } else {
        sizes
    }
}

/// Figure 2: put latency, SHMEM vs MPI-3 vs GASNet, two platforms,
/// 1 pair and 16 pairs.
pub fn fig2_put_latency(quick: bool) -> Figure {
    let mut fig = Figure::new(
        "fig2_put_latency",
        "Put latency comparison using two nodes for SHMEM, MPI-3.0 and GASNet",
    );
    let iters = if quick { 3 } else { 15 };
    for platform in [Platform::Stampede, Platform::Titan] {
        for (pairs, tag) in [(1usize, "1 pair"), (16, "16 pairs")] {
            for (range, sizes) in
                [("small", thin(small_sizes(), quick)), ("large", thin(large_sizes(), quick))]
            {
                let mut panel = Panel::new(
                    format!("{}: put {tag}, {range} sizes", platform.name()),
                    "bytes",
                    "latency (us)",
                );
                for (label, profile) in library_profiles(platform) {
                    let mut b = PairBench::new(platform, profile, pairs);
                    b.iters = iters;
                    let mut s = Series::new(label);
                    for &size in &sizes {
                        s.push(size as f64, b.put_latency_us(size));
                    }
                    panel.series.push(s);
                }
                fig.panels.push(panel);
            }
        }
    }
    with_probe(fig)
}

/// Figure 3: put bandwidth for the same configurations.
pub fn fig3_put_bandwidth(quick: bool) -> Figure {
    let mut fig = Figure::new(
        "fig3_put_bandwidth",
        "Put bandwidth comparison using two nodes for SHMEM, MPI-3.0 and GASNet",
    );
    let iters = if quick { 3 } else { 10 };
    let mut sizes = thin(small_sizes(), quick);
    sizes.extend(thin(large_sizes(), quick));
    for platform in [Platform::Stampede, Platform::Titan] {
        for (pairs, tag) in [(1usize, "1 pair"), (16, "16 pairs")] {
            let mut panel = Panel::new(
                format!("{}: put {tag}", platform.name()),
                "bytes",
                "bandwidth (MB/s per pair)",
            );
            for (label, profile) in library_profiles(platform) {
                let mut b = PairBench::new(platform, profile, pairs);
                b.iters = iters;
                let mut s = Series::new(label);
                for &size in &sizes {
                    s.push(size as f64, b.put_bandwidth_mbs(size));
                }
                panel.series.push(s);
            }
            fig.panels.push(panel);
        }
    }
    // The probe behind the sidecar is the 16-pair contention point — the one
    // EXPERIMENTS.md walks through.
    with_probe(fig)
}

fn caf_put_figure(fig_id: &str, platform: Platform, quick: bool) -> Figure {
    let mut fig = Figure::new(
        fig_id,
        format!(
            "PGAS Microbenchmark tests on {}: put bandwidth and 2-D strided put bandwidth",
            platform.name()
        ),
    );
    let iters = if quick { 3 } else { 8 };
    let backends: Vec<Backend> = match platform {
        Platform::Stampede => vec![Backend::Shmem, Backend::Gasnet],
        _ => vec![Backend::CrayCaf, Backend::Shmem, Backend::Gasnet],
    };
    // (a)/(b): contiguous put bandwidth.
    let mut sizes = thin(small_sizes(), quick);
    sizes.extend(thin(large_sizes(), true));
    for (pairs, tag) in [(1usize, "1 pair"), (16, "16 pairs")] {
        let mut panel =
            Panel::new(format!("contiguous put: {tag}"), "bytes", "bandwidth (MB/s per pair)");
        for &backend in &backends {
            let mut b = CafPairBench::new(platform, backend, pairs);
            b.iters = iters;
            let mut s = Series::new(backend.label(platform));
            for &size in &sizes {
                s.push(size as f64, b.contiguous_put_bw_mbs(size));
            }
            panel.series.push(s);
        }
        fig.panels.push(panel);
    }
    // (c)/(d): 2-D strided put bandwidth.
    let mut strided_cfgs: Vec<(String, Backend, Option<StridedAlgorithm>)> = Vec::new();
    if matches!(platform, Platform::CrayXc30 | Platform::Titan) {
        strided_cfgs.push(("Cray-CAF".into(), Backend::CrayCaf, None));
    }
    strided_cfgs.push((
        format!("{}-naive", Backend::Shmem.label(platform)),
        Backend::Shmem,
        Some(StridedAlgorithm::Naive),
    ));
    strided_cfgs.push((
        format!("{}-2dim", Backend::Shmem.label(platform)),
        Backend::Shmem,
        Some(StridedAlgorithm::TwoDim),
    ));
    strided_cfgs.push(("UHCAF-GASNet".into(), Backend::Gasnet, None));
    let strides = if quick { vec![2usize, 8] } else { pgas_microbench::caf_rma::stride_sweep() };
    for (pairs, tag) in [(1usize, "1 pair"), (16, "16 pairs")] {
        let mut panel = Panel::new(
            format!("2-D strided put: {tag}"),
            "stride (# of integers)",
            "bandwidth (MB/s per pair)",
        );
        for (label, backend, strided) in &strided_cfgs {
            let mut b = CafPairBench::new(platform, *backend, pairs);
            b.iters = if quick { 2 } else { 5 };
            if let Some(a) = strided {
                b = b.with_strided(*a);
            }
            let mut s = Series::new(label.clone());
            for &stride in &strides {
                s.push(stride as f64, b.strided_put_bw_mbs(stride));
            }
            panel.series.push(s);
        }
        fig.panels.push(panel);
    }
    with_probe(fig)
}

/// Figure 6: CAF put + strided put bandwidth on the Cray XC30.
pub fn fig6_xc30_caf(quick: bool) -> Figure {
    caf_put_figure("fig6_xc30_caf", Platform::CrayXc30, quick)
}

/// Figure 7: CAF put + strided put bandwidth on Stampede.
pub fn fig7_stampede_caf(quick: bool) -> Figure {
    caf_put_figure("fig7_stampede_caf", Platform::Stampede, quick)
}

/// Figure 8: lock microbenchmark on Titan — all images acquire and release
/// a lock on image 1.
pub fn fig8_locks(quick: bool, max_images: usize) -> Figure {
    let mut fig = Figure::new(
        "fig8_locks",
        "Microbenchmark test for locks on Titan: all images lock/unlock on image 1",
    );
    let mut panel = Panel::new("lock contention", "images", "time (ms)");
    let acquires = if quick { 5 } else { 10 };
    let sweep = image_sweep(max_images);
    for backend in [Backend::CrayCaf, Backend::Gasnet, Backend::Shmem] {
        let mut s = Series::new(backend.label(Platform::Titan));
        for &images in &sweep {
            let b = LockBench { acquires, ..LockBench::new(Platform::Titan, backend, images) };
            s.push(images as f64, b.run_ms());
        }
        panel.series.push(s);
    }
    fig.panels.push(panel);
    with_probe(fig)
}

/// Figure 9: the DHT benchmark on Titan.
pub fn fig9_dht(quick: bool, max_images: usize) -> Figure {
    let mut fig = Figure::new("fig9_dht", "Distributed Hash Table (Titan)");
    let mut panel = Panel::new("DHT locked updates", "images", "time (ms)");
    let cfg = DhtConfig {
        updates_per_image: if quick { 16 } else { 48 },
        slots_per_image: 128,
        ..Default::default()
    };
    let sweep = image_sweep(max_images);
    for backend in [Backend::CrayCaf, Backend::Gasnet, Backend::Shmem] {
        let mut s = Series::new(backend.label(Platform::Titan));
        for &images in &sweep {
            s.push(images as f64, run_dht(Platform::Titan, backend, images, cfg).time_ms);
        }
        panel.series.push(s);
    }
    fig.panels.push(panel);
    with_probe(fig)
}

/// New figure (not in the paper): DHT update *throughput*, the paper's
/// locked get–modify–put pattern vs this repo's active-message updates
/// with small-op aggregation. The point of the figure is the winner flip:
/// panel (a) reproduces Figure 9's conclusion — UHCAF-Cray-SHMEM with
/// coarray locks is the best way to run the DHT — and panel (b) shows that
/// with the AM + aggregation machinery enabled, every backend's AM series
/// beats panel (a)'s winner outright: the best DHT configuration is no
/// longer a lock protocol at all.
pub fn dht_throughput(quick: bool, max_images: usize) -> Figure {
    use caf_apps::DhtUpdateMode;
    use pgas_machine::with_forced_aggregation;
    let mut fig = Figure::new(
        "dht_throughput",
        "DHT update throughput: locked get-modify-put vs active-message updates with small-op aggregation (Titan)",
    );
    let cfg = DhtConfig {
        updates_per_image: if quick { 16 } else { 48 },
        slots_per_image: 128,
        ..Default::default()
    };
    let sweep = image_sweep(max_images);
    let backends = [Backend::CrayCaf, Backend::Gasnet, Backend::Shmem];
    let throughput = |r: caf_apps::DhtResult| r.updates_total as f64 / r.time_ms;
    let mut locked = Panel::new("(a) locked updates, no aggregation", "images", "updates/ms");
    for backend in backends {
        let mut s = Series::new(format!("{} locked", backend.label(Platform::Titan)));
        for &images in &sweep {
            let r =
                with_forced_aggregation(false, || run_dht(Platform::Titan, backend, images, cfg));
            s.push(images as f64, throughput(r));
        }
        locked.series.push(s);
    }
    fig.panels.push(locked);
    let am_cfg = DhtConfig { update: DhtUpdateMode::Am, ..cfg };
    let mut am = Panel::new("(b) AM updates + aggregation", "images", "updates/ms");
    for backend in backends {
        let mut s = Series::new(format!("{} AM", backend.label(Platform::Titan)));
        for &images in &sweep {
            let r =
                with_forced_aggregation(true, || run_dht(Platform::Titan, backend, images, am_cfg));
            s.push(images as f64, throughput(r));
        }
        am.series.push(s);
    }
    fig.panels.push(am);
    with_probe(fig)
}

/// Figure 10: CAF Himeno performance on Stampede.
pub fn fig10_himeno(quick: bool, max_images: usize) -> Figure {
    let mut fig = Figure::new("fig10_himeno", "CAF Himeno benchmark performance on Stampede");
    let mut panel = Panel::new("Himeno Jacobi solver", "images", "MFLOPS");
    let cfg = if quick { HimenoConfig::size_xs() } else { HimenoConfig::size_m() };
    let sweep: Vec<usize> = [4usize, 8, 16, 32, 63, 127]
        .into_iter()
        .filter(|&n| n <= max_images.min(cfg.jmax - 2))
        .collect();
    let configs: [(&str, Backend, Option<StridedAlgorithm>); 3] = [
        ("UHCAF-MVAPICH2-X-SHMEM", Backend::Shmem, Some(StridedAlgorithm::Naive)),
        ("UHCAF-GASNet", Backend::Gasnet, None),
        ("UHCAF-GASNet-with-AM", Backend::Gasnet, Some(StridedAlgorithm::AmPacked)),
    ];
    for (label, backend, strided) in configs {
        let mut s = Series::new(label);
        for &images in &sweep {
            let r = run_himeno(Platform::Stampede, backend, strided, images, cfg);
            s.push(images as f64, r.mflops);
        }
        panel.series.push(s);
    }
    fig.panels.push(panel);
    with_probe(fig)
}

/// New figure (not in the paper): availability under churn. A sharded
/// active-message serving workload (eight workers + one spare on Titan)
/// loses a worker to a scheduled failure mid-run, re-forms its team with
/// the spare, redistributes the dead worker's shards from writer journals,
/// and resumes serving at full strength. Panel (a) is the per-round
/// throughput series against the healthy baseline — the detection round
/// absorbs the failure-handling cost, the rounds after it reclaim the
/// pre-failure rate (`ChurnResult::recovery_ratio ≥ 0.9` is the acceptance
/// bar). Panel (b) is the availability series: serving images per round,
/// dipping from 8 to 7 in the detection round and returning to 8 once the
/// spare serves. Both runs are pinned (deterministic NIC, forced plan and
/// aggregation, fixed seed), so the figure JSON is bit-stable; quick mode
/// changes nothing because the run is already anchor-sized.
pub fn availability_churn(_quick: bool) -> Figure {
    use caf_apps::{run_churn_outcome, ChurnConfig, ChurnResult};
    use pgas_machine::{with_forced_aggregation, with_forced_plan, FaultPlan};
    let cfg = ChurnConfig::default();
    let run = |plan: FaultPlan| -> ChurnResult {
        with_forced_aggregation(true, || {
            with_forced_plan(plan, || {
                run_churn_outcome(Platform::Titan, Backend::Shmem, 9, cfg, true).0
            })
        })
    };
    let healthy = run(FaultPlan::new(cfg.seed));
    // The probe's calibrated scenario: worker image 5 (PE 4) dies at 30 µs.
    let churned = run(FaultPlan::new(cfg.seed).with_pe_failure(4, 30_000));
    let mut fig = Figure::new(
        "availability_churn",
        "Availability under churn: DHT-style serving through a worker failure, \
         team re-formation and shard replay (Titan, 8 workers + 1 spare)",
    );
    let round_tput = |r: &ChurnResult| {
        r.rounds
            .iter()
            .enumerate()
            .map(|(k, rd)| (k as f64, rd.updates as f64 / (rd.duration_ns as f64 / 1e3)))
            .collect::<Vec<_>>()
    };
    let mut tput = Panel::new("(a) serving throughput per round", "round", "updates/us");
    let mut s = Series::new("healthy baseline");
    s.points = round_tput(&healthy);
    tput.series.push(s);
    let mut s = Series::new("worker failure + recovery");
    s.points = round_tput(&churned);
    tput.series.push(s);
    fig.panels.push(tput);
    let mut avail = Panel::new("(b) availability: serving images per round", "round", "images");
    for (label, r) in [("healthy baseline", &healthy), ("worker failure + recovery", &churned)] {
        let mut s = Series::new(label);
        for (k, rd) in r.rounds.iter().enumerate() {
            s.push(k as f64, rd.serving as f64);
        }
        avail.series.push(s);
    }
    fig.panels.push(avail);
    with_probe(fig)
}

/// New figure (not in the paper): open-loop serving telemetry through a
/// worker death. The serving workload (Poisson arrivals from one shared
/// global stream, Zipfian keys, AM writes over the sharded table) runs at
/// 80 images on Titan — 79 workers + 1 spare, ≥1M scheduled requests —
/// and worker PE 32 dies mid-run. Panel (a) is the windowed latency
/// series (p50/p99/p999 per 10 ms virtual window, failure run, with the
/// healthy p99 as reference): flat microsecond-scale percentiles, one
/// spike in the detection window where the parked requests drain with
/// their original arrival times, then flat again — the dip-and-recover
/// signature. Panel (b) is the SLO error-budget burn-rate series (fast
/// and slow windows) that an alerting pipeline would page on: the fast
/// burn fires in the outage window and clears after recovery. Panel (c)
/// is completed requests per window: the victim's generation share
/// vanishes at the death and the drain backfills the detection window.
/// Both runs are pinned (deterministic NIC, forced plan + aggregation,
/// fixed seed), so the figure JSON is bit-stable. Quick mode runs the
/// probe-sized 9-image scenario instead.
pub fn serving_slo(quick: bool) -> Figure {
    use caf_apps::serve::{run_serve_outcome, ServeConfig, ServeResult};
    use caf_apps::DhtUpdateMode;
    use pgas_machine::{with_forced_aggregation, with_forced_plan, FaultPlan};
    let (images, cfg, victim, deadline) = if quick {
        // The probe's scenario with a longer post-recovery tail (the fast
        // burn series is a trailing 3-window rate, so the quick run needs
        // a few clean windows after the drain spike to show it clearing).
        let cfg = ServeConfig {
            keyspace: 10_000,
            requests_per_image: 80,
            epochs: 4,
            slots_per_shard: 64,
            mean_gap_ns: 1_500.0,
            ..Default::default()
        };
        (9usize, cfg, 4usize, 12_000u64)
    } else {
        let cfg = ServeConfig {
            keyspace: 2_000_000,
            zipf_exponent: 1.1,
            read_fraction: 0.5,
            mean_gap_ns: 40_000.0,
            requests_per_image: 13_000,
            epochs: 16,
            slots_per_shard: 2_048,
            seed: 0x510,
            mode: DhtUpdateMode::Am,
            window_ns: 10_000_000,
            slo_threshold_ns: 150_000,
            slo_objective: 0.999,
        };
        // PE 32 (worker image 33, node 2) dies at 240 ms — mid epoch 7 of
        // the ~520 ms run, so detection waits most of an epoch and the
        // drain burst carries outage-length latencies.
        (80usize, cfg, 32usize, 240_000_000u64)
    };
    let run = |plan: FaultPlan| -> ServeResult {
        with_forced_aggregation(true, || {
            with_forced_plan(plan, || {
                run_serve_outcome(Platform::Titan, Backend::Shmem, images, cfg, true).0
            })
        })
    };
    let healthy = run(FaultPlan::new(cfg.seed));
    // The failure run is traced so every request's critical path is walked
    // and panel (d) can attribute the death-window tail; by the PR 4
    // observability contract tracing moves no virtual clock, so panels
    // (a)-(c) are bit-identical to an untraced run.
    let failed = pgas_machine::with_forced_tracing(true, || {
        run(FaultPlan::new(cfg.seed).with_pe_failure(victim, deadline))
    });
    let mut fig = Figure::new(
        "serving_slo",
        format!(
            "Open-loop serving SLO through a worker death: {} workers + 1 spare on Titan, \
             {} requests scheduled, SLO p{} < {} us",
            images - 1,
            (images - 1) * cfg.requests_per_image,
            cfg.slo_objective * 100.0,
            cfg.slo_threshold_ns / 1000,
        ),
    );
    let ms = |ns: u64| ns as f64 / 1e6;
    let us = |ns: u64| ns as f64 / 1e3;
    let mut lat = Panel::new(
        "(a) latency percentiles per window",
        "window start (ms virtual)",
        "latency (us)",
    );
    for (label, pick) in
        [("p50 failure run", 0usize), ("p99 failure run", 1), ("p999 failure run", 2)]
    {
        let mut s = Series::new(label);
        for w in &failed.slo.windows {
            s.push(ms(w.start_ns), us([w.p50, w.p99, w.p999][pick]));
        }
        lat.series.push(s);
    }
    let mut s = Series::new("p99 healthy baseline");
    for w in &healthy.slo.windows {
        s.push(ms(w.start_ns), us(w.p99));
    }
    lat.series.push(s);
    fig.panels.push(lat);
    let mut burn = Panel::new(
        "(b) error-budget burn rate per window",
        "window start (ms virtual)",
        "x budget rate",
    );
    for (label, fast) in [("fast burn (failure run)", true), ("slow burn (failure run)", false)] {
        let mut s = Series::new(label);
        for w in &failed.slo.windows {
            let x1000 = if fast { w.fast_burn_x1000 } else { w.slow_burn_x1000 };
            s.push(ms(w.start_ns), x1000 as f64 / 1000.0);
        }
        burn.series.push(s);
    }
    let mut s = Series::new("fast burn (healthy baseline)");
    for w in &healthy.slo.windows {
        s.push(ms(w.start_ns), w.fast_burn_x1000 as f64 / 1000.0);
    }
    burn.series.push(s);
    fig.panels.push(burn);
    let mut tput =
        Panel::new("(c) completed requests per window", "window start (ms virtual)", "requests/ms");
    for (label, r) in [("healthy baseline", &healthy), ("worker failure + recovery", &failed)] {
        let mut s = Series::new(label);
        for w in &r.slo.windows {
            s.push(ms(w.start_ns), w.count as f64 / (cfg.window_ns as f64 / 1e6));
        }
        tput.series.push(s);
    }
    fig.panels.push(tput);
    // Panel (d): where the tail's time actually went. For each window with
    // SLO-violating requests, the share of their total latency charged to
    // each critical-path phase — the death window reads as fault-delay plus
    // drain queueing, not handler compute.
    if let Some(tail) = &failed.tail {
        let mut attr = Panel::new(
            "(d) tail attribution: slow-request time by cause (failure run)",
            "window start (ms virtual)",
            "share of slow-request time (%)",
        );
        for (k, phase) in pgas_machine::tailprof::REQ_PHASES.iter().enumerate() {
            let mut s = Series::new(phase.label());
            for p in &tail.profiles {
                let total: u64 = p.slow_phase_ns.iter().sum();
                if total == 0 {
                    continue; // no violating requests in this window
                }
                s.push(ms(p.start_ns), p.slow_phase_ns[k] as f64 / total as f64 * 100.0);
            }
            if !s.points.is_empty() {
                attr.series.push(s);
            }
        }
        fig.panels.push(attr);
    }
    with_probe(fig)
}

/// Supplementary (not a paper figure): the PGAS microbenchmark suite's
/// remaining point-to-point kernels — get latency/bandwidth and
/// bidirectional put bandwidth — across the same library profiles.
pub fn supp_pt2pt(quick: bool) -> Figure {
    let mut fig = Figure::new(
        "supp_pt2pt",
        "Supplementary point-to-point kernels: get latency, get bandwidth, bidirectional put",
    );
    let iters = if quick { 3 } else { 10 };
    let sizes = {
        let mut v = thin(small_sizes(), quick);
        v.extend(thin(large_sizes(), true));
        v
    };
    for platform in [Platform::Stampede, Platform::Titan] {
        let mut lat = Panel::new(
            format!("{}: get latency, 1 pair", platform.name()),
            "bytes",
            "latency (us)",
        );
        let mut gbw = Panel::new(
            format!("{}: get bandwidth (nbi window), 1 pair", platform.name()),
            "bytes",
            "bandwidth (MB/s)",
        );
        let mut bibw = Panel::new(
            format!("{}: bidirectional put, 1 pair", platform.name()),
            "bytes",
            "bandwidth (MB/s per direction)",
        );
        for (label, profile) in library_profiles(platform) {
            let mut b = PairBench::new(platform, profile, 1);
            b.iters = iters;
            let mut s_lat = Series::new(label.clone());
            let mut s_gbw = Series::new(label.clone());
            let mut s_bi = Series::new(label);
            for &size in &sizes {
                s_lat.push(size as f64, b.get_latency_us(size));
                s_gbw.push(size as f64, b.get_bandwidth_mbs(size));
                s_bi.push(size as f64, b.bi_bandwidth_mbs(size));
            }
            lat.series.push(s_lat);
            gbw.series.push(s_gbw);
            bibw.series.push(s_bi);
        }
        fig.panels.push(lat);
        fig.panels.push(gbw);
        fig.panels.push(bibw);
    }
    with_probe(fig)
}

/// Ablation 1 (§IV-C design choice): base-dimension selection strategies
/// across section aspect ratios.
pub fn abl1_base_dim(quick: bool) -> Figure {
    use caf::{run_caf, CafConfig, DimRange, Section};
    let mut fig = Figure::new(
        "abl1_base_dim",
        "Ablation: base-dimension choice (1dim vs 2dim vs best-of-all vs planners) across 3-D section shapes",
    );
    let iters = if quick { 2 } else { 5 };
    // (c0, c1, c2) element counts per dimension; dim strides fixed at 2.
    let shapes = [(32usize, 8usize, 4usize), (8, 32, 4), (4, 8, 32), (16, 16, 16)];
    let mut panel = Panel::new(
        "strided put time by algorithm",
        "section shape index",
        "time per statement (us)",
    );
    for algo in [
        StridedAlgorithm::OneDim,
        StridedAlgorithm::TwoDim,
        StridedAlgorithm::BestOfAll,
        StridedAlgorithm::Adaptive,
        StridedAlgorithm::Tuned,
    ] {
        let mut s = Series::new(algo.label());
        for (ix, &(c0, c1, c2)) in shapes.iter().enumerate() {
            let shape = [c0 * 2, c1 * 2, c2 * 2];
            let heap = (shape.iter().product::<usize>() * 4 * 2 + (1 << 16)).next_power_of_two();
            let mcfg = Platform::CrayXc30.config(2, 1).with_heap_bytes(heap);
            let ccfg = CafConfig::new(Backend::Shmem, Platform::CrayXc30).with_strided(algo);
            let out = run_caf(mcfg, ccfg, move |img| {
                let a = img.coarray::<i32>(&shape).unwrap();
                let sec = Section::new(vec![
                    DimRange { start: 0, count: c0, step: 2 },
                    DimRange { start: 0, count: c1, step: 2 },
                    DimRange { start: 0, count: c2, step: 2 },
                ]);
                let data = vec![1i32; sec.total()];
                if img.this_image() == 1 {
                    let t0 = img.shmem().ctx().pe().now();
                    for _ in 0..iters {
                        a.put_section(img, 2, &sec, &data);
                    }
                    (img.shmem().ctx().pe().now() - t0) as f64 / iters as f64 / 1000.0
                } else {
                    0.0
                }
            });
            s.push(ix as f64, out.results[0]);
        }
        panel.series.push(s);
    }
    fig.panels.push(panel);
    with_probe(fig)
}

/// Ablation 2 (§IV-D design choice): MCS vs naive spinlock vs the
/// OpenSHMEM global lock under contention.
pub fn abl2_lock_algorithms(quick: bool, max_images: usize) -> Figure {
    let mut fig = Figure::new(
        "abl2_lock_algorithms",
        "Ablation: MCS CAF lock vs naive remote spinlock vs OpenSHMEM global lock",
    );
    let mut panel = Panel::new("lock algorithms on Titan", "images", "time (ms)");
    let acquires = if quick { 4 } else { 10 };
    let sweep = image_sweep(max_images.min(64));
    let mut mcs = Series::new("CAF MCS lock (paper)");
    let mut naive = Series::new("naive remote spinlock");
    let mut global = Series::new("OpenSHMEM global lock");
    for &images in &sweep {
        let b = LockBench { acquires, ..LockBench::new(Platform::Titan, Backend::Shmem, images) };
        mcs.push(images as f64, b.run_ms());
        naive.push(
            images as f64,
            naive_spinlock_ms(Platform::Titan, Backend::Shmem, images, acquires),
        );
        global.push(images as f64, shmem_global_lock_ms(images, acquires));
    }
    panel.series.push(mcs);
    panel.series.push(naive);
    panel.series.push(global);
    fig.panels.push(panel);
    with_probe(fig)
}

/// Time the OpenSHMEM global lock under the Figure 8 access pattern.
fn shmem_global_lock_ms(images: usize, acquires: usize) -> f64 {
    use openshmem::{Shmem, ShmemConfig};
    let cores = 16.min(images);
    let nodes = images.div_ceil(cores);
    let mcfg = Platform::Titan.config(nodes, cores).with_heap_bytes(1 << 16);
    let out = pgas_machine::run(mcfg, move |pe| {
        let shmem = Shmem::new(pe, ShmemConfig::new(ConduitProfile::cray_shmem(Platform::Titan)));
        let lock = shmem.shmalloc::<u64>(1).unwrap();
        shmem.barrier_all();
        let t0 = pe.now();
        for _ in 0..acquires {
            shmem.set_lock(lock);
            shmem.clear_lock(lock);
        }
        shmem.barrier_all();
        (pe.now() - t0) as f64 / 1e6
    });
    out.results.into_iter().fold(0.0, f64::max)
}

/// Extension (§VII future work): the `shmem_ptr` direct load/store fast
/// path for intra-node transfers.
pub fn ext1_shmem_ptr_fastpath(quick: bool) -> Figure {
    use caf::{run_caf, CafConfig};
    let mut fig = Figure::new(
        "ext1_shmem_ptr_fastpath",
        "Extension: shmem_ptr intra-node load/store fast path (paper §VII future work)",
    );
    let mut panel = Panel::new("intra-node put latency", "bytes", "latency (us)");
    let iters = if quick { 5 } else { 20 };
    for (label, fastpath) in [("message path", false), ("shmem_ptr fast path", true)] {
        let mut s = Series::new(label);
        for size in [8usize, 64, 512, 4096, 32768] {
            let mcfg = Platform::Stampede.config(1, 2).with_heap_bytes(1 << 18);
            let ccfg = CafConfig::new(Backend::Shmem, Platform::Stampede).with_fastpath(fastpath);
            let elems = size / 4;
            let out = run_caf(mcfg, ccfg, move |img| {
                let a = img.coarray::<i32>(&[elems]).unwrap();
                let data = vec![5i32; elems];
                img.sync_all();
                if img.this_image() == 1 {
                    let t0 = img.shmem().ctx().pe().now();
                    for _ in 0..iters {
                        a.put_to(img, 2, &data);
                    }
                    (img.shmem().ctx().pe().now() - t0) as f64 / iters as f64 / 1000.0
                } else {
                    0.0
                }
            });
            s.push(size as f64, out.results[0]);
        }
        panel.series.push(s);
    }
    fig.panels.push(panel);
    with_probe(fig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shapes_hold() {
        let fig = fig2_put_latency(true);
        assert_eq!(fig.panels.len(), 8);
        // Stampede, 1 pair, small sizes: SHMEM and GASNet below MPI-3.
        let p = &fig.panels[0];
        let shmem = p.series("MVAPICH2-X SHMEM").unwrap();
        let mpi = p.series("MVAPICH2-X MPI-3.0").unwrap();
        let gasnet = p.series("GASNet").unwrap();
        assert!(shmem.geomean_ratio_over(mpi) < 1.0, "SHMEM beats MPI-3 (small, 1 pair)");
        assert!(gasnet.geomean_ratio_over(mpi) < 1.0, "GASNet beats MPI-3 (small, 1 pair)");
        // Large sizes: SHMEM beats GASNet.
        let p = &fig.panels[1];
        assert!(
            p.series("MVAPICH2-X SHMEM").unwrap().geomean_ratio_over(p.series("GASNet").unwrap())
                < 1.0
        );
    }

    #[test]
    fn fig8_ordering_holds() {
        let fig = fig8_locks(true, 16);
        let p = &fig.panels[0];
        let shmem = p.series("UHCAF-Cray-SHMEM").unwrap();
        let gasnet = p.series("UHCAF-GASNet").unwrap();
        let cray = p.series("Cray-CAF").unwrap();
        assert!(shmem.geomean_ratio_over(gasnet) < 1.0, "SHMEM locks faster than GASNet");
        assert!(shmem.geomean_ratio_over(cray) < 1.0, "SHMEM locks faster than Cray CAF");
    }

    #[test]
    fn dht_throughput_winner_flips_with_aggregation() {
        let fig = dht_throughput(true, 8);
        let locked = &fig.panels[0];
        let am = &fig.panels[1];
        // Panel (a) reproduces Figure 9: SHMEM is the best locked backend
        // (throughput: higher is better, so the winner's ratio is > 1).
        let shmem_locked = locked.series("UHCAF-Cray-SHMEM locked").unwrap();
        for other in ["Cray-CAF locked", "UHCAF-GASNet locked"] {
            assert!(
                shmem_locked.geomean_ratio_over(locked.series(other).unwrap()) > 1.0,
                "locked SHMEM beats {other}"
            );
        }
        // Panel (b): every AM series beats panel (a)'s winner — enabling
        // the aggregation machinery changes the figure's winner from the
        // paper's locked pattern to active-message updates.
        for s in &am.series {
            assert!(
                s.geomean_ratio_over(shmem_locked) > 1.0,
                "{} should out-throughput the locked winner",
                s.label
            );
        }
    }

    #[test]
    fn availability_churn_dips_once_and_recovers() {
        let fig = availability_churn(true);
        let avail = &fig.panels[1];
        let healthy = avail.series("healthy baseline").unwrap();
        let churned = avail.series("worker failure + recovery").unwrap();
        assert!(healthy.points.iter().all(|p| p.1 == 8.0), "healthy run serves at full strength");
        assert!(churned.points.iter().any(|p| p.1 == 7.0), "the availability dip is visible");
        assert_eq!(
            churned.points.last().unwrap().1,
            8.0,
            "the spare restores full serving strength"
        );
        // Panel (a): post-recovery rounds sustain the healthy rate — the
        // figure's version of the ≥ 90% reclaim bar.
        let tput = &fig.panels[0];
        let h = tput.series("healthy baseline").unwrap();
        let c = tput.series("worker failure + recovery").unwrap();
        let last = c.points.len() - 1;
        assert!(
            c.points[last].1 >= 0.9 * h.points[last].1,
            "final round reclaims the healthy throughput: {} vs {}",
            c.points[last].1,
            h.points[last].1
        );
    }

    #[test]
    fn serving_slo_dips_and_recovers() {
        let fig = serving_slo(true);
        let lat = &fig.panels[0];
        let p999 = lat.series("p999 failure run").unwrap();
        let healthy_p99 = lat.series("p99 healthy baseline").unwrap();
        let peak = p999.points.iter().map(|p| p.1).fold(0.0f64, f64::max);
        let healthy_peak = healthy_p99.points.iter().map(|p| p.1).fold(0.0f64, f64::max);
        assert!(
            peak > 2.0 * healthy_peak,
            "the drain burst is a visible latency spike: {peak} vs healthy {healthy_peak}"
        );
        assert!(
            p999.points.last().unwrap().1 <= healthy_peak * 1.5,
            "the tail returns to baseline after recovery"
        );
        // Panel (b): the outage burns budget in at least one window of the
        // failure run, the healthy baseline burns none, and the burn
        // clears by the end of the run.
        let burn = &fig.panels[1];
        let fast = burn.series("fast burn (failure run)").unwrap();
        assert!(fast.points.iter().any(|p| p.1 > 0.0), "the outage lights the fast burn");
        assert_eq!(fast.points.last().unwrap().1, 0.0, "the burn clears after recovery");
        let base = burn.series("fast burn (healthy baseline)").unwrap();
        assert!(base.points.iter().all(|p| p.1 == 0.0), "the healthy run burns no budget");
        // Panel (d): the traced failure run attributes its tail, and the
        // worst window's slow-request time is dominated by the outage
        // machinery — drain queueing plus fault delay, not handler compute.
        let attr = fig
            .panels
            .iter()
            .find(|p| p.title.starts_with("(d) tail attribution"))
            .expect("the traced failure run yields the attribution panel");
        let qw = attr.series("queue_wait").unwrap();
        let fd = attr.series("fault_delay").unwrap();
        let hc = attr.series("handler_compute").unwrap();
        assert!(!qw.points.is_empty(), "violating windows were attributed");
        let outage_peak = qw
            .points
            .iter()
            .zip(&fd.points)
            .map(|(q, f)| q.1 + f.1)
            .fold(0.0f64, f64::max);
        assert!(
            outage_peak > 50.0,
            "the death window's tail is mostly queueing + fault delay: {outage_peak:.1}%"
        );
        assert!(
            hc.points.iter().all(|p| p.1 < 50.0),
            "no violating window is compute-bound: {:?}",
            hc.points
        );
    }

    #[test]
    fn abl1_tuned_never_worse_than_heuristic() {
        let fig = abl1_base_dim(true);
        let p = &fig.panels[0];
        let tuned = p.series("tuned").unwrap();
        let adaptive = p.series("adaptive").unwrap();
        assert!(
            tuned.geomean_ratio_over(adaptive) <= 1.0001,
            "calibrated planner must not regress on the heuristic's sweep"
        );
        for (t, a) in tuned.points.iter().zip(&adaptive.points) {
            assert!(
                t.1 <= a.1 * 1.0001,
                "shape {} regressed: tuned {} vs adaptive {}",
                t.0,
                t.1,
                a.1
            );
        }
    }

    #[test]
    fn ext1_fastpath_wins() {
        let fig = ext1_shmem_ptr_fastpath(true);
        let p = &fig.panels[0];
        let msg = p.series("message path").unwrap();
        let fast = p.series("shmem_ptr fast path").unwrap();
        assert!(fast.geomean_ratio_over(msg) < 0.7, "fast path should cut intra-node latency");
    }
}
