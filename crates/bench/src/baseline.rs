//! Benchmark baselines: `results/BENCH_<platform>.json`.
//!
//! Every `repro_all` run distills each figure's probe (see [`crate::probes`])
//! into a [`RunDigest`] and groups the records by simulated platform into one
//! committed baseline file per platform. Because the simulator is
//! deterministic in virtual time, re-running `repro_all` reproduces these
//! files bit-identically — so `bench regress` can treat *any* difference
//! beyond the configured tolerance as a real performance change, and CI can
//! regenerate the records from scratch and compare against the committed
//! copies.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use pgas_machine::critdiff::RunDigest;
use pgas_machine::json::{parse, Json};

use crate::probes::ProbeOutcome;

/// One figure's baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    pub figure: String,
    pub platform: String,
    pub digest: RunDigest,
}

impl BenchRecord {
    /// Distill a probe outcome into a record for `figure`.
    pub fn from_probe(figure: &str, probe: &ProbeOutcome) -> BenchRecord {
        BenchRecord {
            figure: figure.to_string(),
            platform: probe.platform.clone(),
            digest: probe.digest(),
        }
    }

    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("figure".to_string(), Json::Str(self.figure.clone())),
            ("platform".to_string(), Json::Str(self.platform.clone())),
            ("digest".to_string(), self.digest.to_json()),
        ])
    }

    pub fn from_json(j: &Json) -> Result<BenchRecord, String> {
        let field = |key: &str| -> Result<String, String> {
            j.get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("bench record missing `{key}`"))
        };
        Ok(BenchRecord {
            figure: field("figure")?,
            platform: field("platform")?,
            digest: RunDigest::from_json(j.get("digest").ok_or("bench record missing `digest`")?)?,
        })
    }
}

/// The directory figures and baselines are written to: `REPRO_RESULTS_DIR`,
/// or the workspace `results/` directory.
pub fn results_dir() -> PathBuf {
    match std::env::var("REPRO_RESULTS_DIR") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"),
    }
}

/// Path of the baseline file for one platform.
pub fn bench_path(dir: &Path, platform: &str) -> PathBuf {
    dir.join(format!("BENCH_{platform}.json"))
}

/// Serialize one platform's records (already filtered) to the file body.
fn platform_json(platform: &str, records: &[&BenchRecord]) -> Json {
    Json::Object(vec![
        ("platform".to_string(), Json::str(platform)),
        ("records".to_string(), Json::Array(records.iter().map(|r| r.to_json()).collect())),
    ])
}

/// Group records by platform and write one `BENCH_<platform>.json` per
/// platform into `dir`. Records are sorted by figure id so the files are
/// stable under job reordering. Returns the written paths.
pub fn write_baselines(dir: &Path, records: &[BenchRecord]) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut by_platform: BTreeMap<&str, Vec<&BenchRecord>> = BTreeMap::new();
    for r in records {
        by_platform.entry(&r.platform).or_default().push(r);
    }
    let mut written = Vec::new();
    for (platform, mut recs) in by_platform {
        recs.sort_by(|a, b| a.figure.cmp(&b.figure));
        let path = bench_path(dir, platform);
        let mut body = platform_json(platform, &recs).pretty();
        body.push('\n');
        std::fs::write(&path, body)?;
        written.push(path);
    }
    Ok(written)
}

/// Load every `BENCH_*.json` baseline under `dir`.
pub fn load_baselines(dir: &Path) -> Result<Vec<BenchRecord>, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    let mut records = Vec::new();
    for path in files {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let j = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        for r in j
            .get("records")
            .and_then(|v| v.as_array())
            .ok_or_else(|| format!("{}: missing `records`", path.display()))?
        {
            records
                .push(BenchRecord::from_json(r).map_err(|e| format!("{}: {e}", path.display()))?);
        }
    }
    Ok(records)
}

/// Find the baseline record for one figure.
pub fn find<'a>(records: &'a [BenchRecord], figure: &str) -> Option<&'a BenchRecord> {
    records.iter().find(|r| r.figure == figure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_machine::critdiff::MetricDigest;
    use pgas_machine::PathCategory;

    fn record(figure: &str, platform: &str, makespan: u64) -> BenchRecord {
        BenchRecord {
            figure: figure.to_string(),
            platform: platform.to_string(),
            digest: RunDigest {
                makespan_ns: makespan,
                category_ns: [makespan, 0, 0, 0, 0],
                by_pe: vec![(0, PathCategory::Compute, makespan)],
                metrics: vec![MetricDigest {
                    name: "put_ns".to_string(),
                    peer_node: Some(1),
                    count: 4,
                    sum: 640,
                }],
                req_count: 0,
                req_phase_ns: [0; 6],
            },
        }
    }

    #[test]
    fn baselines_roundtrip_grouped_by_platform() {
        let dir =
            std::env::temp_dir().join(format!("pgas-bench-baseline-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let records = vec![
            record("fig9_dht", "titan", 500),
            record("fig2_put_latency", "stampede", 100),
            record("fig8_locks", "titan", 400),
        ];
        let written = write_baselines(&dir, &records).unwrap();
        assert_eq!(written.len(), 2, "one file per platform");
        assert!(bench_path(&dir, "stampede").exists());
        assert!(bench_path(&dir, "titan").exists());

        let loaded = load_baselines(&dir).unwrap();
        assert_eq!(loaded.len(), 3);
        // Within a platform, records come back sorted by figure id.
        let titan: Vec<&str> =
            loaded.iter().filter(|r| r.platform == "titan").map(|r| r.figure.as_str()).collect();
        assert_eq!(titan, ["fig8_locks", "fig9_dht"]);
        assert_eq!(find(&loaded, "fig2_put_latency").unwrap(), &records[1]);
        assert!(find(&loaded, "nope").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewriting_identical_records_is_bit_stable() {
        let dir =
            std::env::temp_dir().join(format!("pgas-bench-baseline-stable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let records = vec![record("fig8_locks", "titan", 400), record("fig9_dht", "titan", 500)];
        write_baselines(&dir, &records).unwrap();
        let first = std::fs::read_to_string(bench_path(&dir, "titan")).unwrap();
        // Shuffled input order must not change the file.
        let shuffled = vec![records[1].clone(), records[0].clone()];
        write_baselines(&dir, &shuffled).unwrap();
        let second = std::fs::read_to_string(bench_path(&dir, "titan")).unwrap();
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
