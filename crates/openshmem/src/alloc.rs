//! Symmetric heap allocator.
//!
//! `shmalloc` in OpenSHMEM is a *symmetric* collective: every PE allocates
//! the same size in the same program order and receives a block at the same
//! offset of its own heap. We exploit the SPMD structure: each PE runs an
//! identical, deterministic allocator over its own heap, so offsets agree by
//! construction (debug builds can verify with
//! [`crate::Shmem::debug_assert_symmetric`]).
//!
//! The allocator is a classic address-ordered first-fit free list with
//! splitting and two-sided coalescing — simple, deterministic, and with
//! behaviour that is easy to property-test (no overlap, reuse after free,
//! coalescing restores full capacity).

/// Allocation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// Not enough contiguous symmetric memory.
    OutOfMemory { requested: usize, largest_free: usize },
    /// Free of an offset that is not an allocated block start.
    InvalidFree { offset: usize },
    /// Alignment must be a power of two.
    BadAlignment { align: usize },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory { requested, largest_free } => write!(
                f,
                "symmetric heap exhausted: requested {requested} bytes, largest free block {largest_free}"
            ),
            AllocError::InvalidFree { offset } => {
                write!(f, "invalid symmetric free at offset {offset}")
            }
            AllocError::BadAlignment { align } => {
                write!(f, "alignment {align} is not a power of two")
            }
        }
    }
}

impl std::error::Error for AllocError {}

#[derive(Debug, Clone, Copy)]
struct FreeBlock {
    off: usize,
    len: usize,
}

/// Deterministic first-fit allocator over `[0, capacity)`.
#[derive(Debug, Clone)]
pub struct SymAlloc {
    capacity: usize,
    /// Free blocks sorted by offset, never adjacent (always coalesced).
    free: Vec<FreeBlock>,
    /// Live allocations: (offset, len) sorted by offset.
    live: Vec<(usize, usize)>,
}

/// Minimum alignment / granule of all blocks (matches the machine heap's
/// atomic word size).
pub const MIN_ALIGN: usize = 8;

impl SymAlloc {
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity - capacity % MIN_ALIGN;
        SymAlloc { capacity, free: vec![FreeBlock { off: 0, len: capacity }], live: Vec::new() }
    }

    /// Total heap size managed.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> usize {
        self.live.iter().map(|&(_, l)| l).sum()
    }

    /// Number of live allocations.
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }

    /// Largest free contiguous block.
    pub fn largest_free(&self) -> usize {
        self.free.iter().map(|b| b.len).max().unwrap_or(0)
    }

    /// Allocate `size` bytes aligned to `align` (power of two ≥ 8).
    /// Zero-size requests round up to one granule so every allocation has a
    /// distinct offset.
    pub fn alloc_aligned(&mut self, size: usize, align: usize) -> Result<usize, AllocError> {
        if !align.is_power_of_two() {
            return Err(AllocError::BadAlignment { align });
        }
        let align = align.max(MIN_ALIGN);
        let size = size.max(1).div_ceil(MIN_ALIGN) * MIN_ALIGN;
        for i in 0..self.free.len() {
            let b = self.free[i];
            let aligned = b.off.div_ceil(align) * align;
            let pad = aligned - b.off;
            if b.len >= pad + size {
                // Carve [aligned, aligned+size) out of b.
                let tail_off = aligned + size;
                let tail_len = b.off + b.len - tail_off;
                let mut replace = Vec::with_capacity(2);
                if pad > 0 {
                    replace.push(FreeBlock { off: b.off, len: pad });
                }
                if tail_len > 0 {
                    replace.push(FreeBlock { off: tail_off, len: tail_len });
                }
                self.free.splice(i..=i, replace);
                let pos = self.live.partition_point(|&(o, _)| o < aligned);
                self.live.insert(pos, (aligned, size));
                return Ok(aligned);
            }
        }
        Err(AllocError::OutOfMemory { requested: size, largest_free: self.largest_free() })
    }

    /// Allocate with the default granule alignment (`shmalloc`).
    pub fn alloc(&mut self, size: usize) -> Result<usize, AllocError> {
        self.alloc_aligned(size, MIN_ALIGN)
    }

    /// Release the block starting at `off` (`shfree`).
    pub fn free(&mut self, off: usize) -> Result<(), AllocError> {
        let pos = self.live.partition_point(|&(o, _)| o < off);
        if pos >= self.live.len() || self.live[pos].0 != off {
            return Err(AllocError::InvalidFree { offset: off });
        }
        let (_, len) = self.live.remove(pos);
        // Insert into the free list, coalescing with neighbours.
        let i = self.free.partition_point(|b| b.off < off);
        let mut blk = FreeBlock { off, len };
        // Coalesce with successor.
        if i < self.free.len() && blk.off + blk.len == self.free[i].off {
            blk.len += self.free[i].len;
            self.free.remove(i);
        }
        // Coalesce with predecessor.
        if i > 0 && self.free[i - 1].off + self.free[i - 1].len == blk.off {
            self.free[i - 1].len += blk.len;
        } else {
            self.free.insert(i, blk);
        }
        Ok(())
    }

    /// Size of the live block at `off`, if any.
    pub fn block_len(&self, off: usize) -> Option<usize> {
        let pos = self.live.partition_point(|&(o, _)| o < off);
        (pos < self.live.len() && self.live[pos].0 == off).then(|| self.live[pos].1)
    }

    /// Internal invariant check (used by tests): free list sorted, coalesced,
    /// disjoint from live blocks, and sizes account for the whole heap.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut regions: Vec<(usize, usize, bool)> = self
            .free
            .iter()
            .map(|b| (b.off, b.len, true))
            .chain(self.live.iter().map(|&(o, l)| (o, l, false)))
            .collect();
        regions.sort_by_key(|r| r.0);
        let mut cursor = 0;
        let mut prev_free = false;
        for (off, len, is_free) in regions {
            if off != cursor {
                return Err(format!("gap or overlap at offset {off}, expected {cursor}"));
            }
            if len == 0 {
                return Err(format!("zero-length region at {off}"));
            }
            if is_free && prev_free {
                return Err(format!("uncoalesced free blocks at {off}"));
            }
            prev_free = is_free;
            cursor = off + len;
        }
        if cursor != self.capacity {
            return Err(format!("regions cover {cursor} of {} bytes", self.capacity));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip_restores_capacity() {
        let mut a = SymAlloc::new(1024);
        let x = a.alloc(100).unwrap();
        let y = a.alloc(200).unwrap();
        let z = a.alloc(50).unwrap();
        assert!(x < y && y < z);
        a.check_invariants().unwrap();
        a.free(y).unwrap();
        a.free(x).unwrap();
        a.free(z).unwrap();
        a.check_invariants().unwrap();
        assert_eq!(a.largest_free(), a.capacity());
        assert_eq!(a.in_use(), 0);
    }

    #[test]
    fn allocations_never_overlap() {
        let mut a = SymAlloc::new(4096);
        let mut blocks = Vec::new();
        for i in 1..=20 {
            let len = i * 16;
            let off = a.alloc(len).unwrap();
            blocks.push((off, len));
        }
        blocks.sort();
        for w in blocks.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "{w:?} overlap");
        }
        a.check_invariants().unwrap();
    }

    #[test]
    fn freed_space_is_reused() {
        let mut a = SymAlloc::new(256);
        let x = a.alloc(128).unwrap();
        assert!(a.alloc(256).is_err());
        a.free(x).unwrap();
        let y = a.alloc(256).unwrap();
        assert_eq!(y, 0, "coalesced heap should satisfy a full-size request");
    }

    #[test]
    fn alignment_respected() {
        let mut a = SymAlloc::new(4096);
        a.alloc(8).unwrap();
        let off = a.alloc_aligned(64, 256).unwrap();
        assert_eq!(off % 256, 0);
        a.check_invariants().unwrap();
        // The pad before the aligned block remains allocatable.
        let pad = a.alloc(8).unwrap();
        assert!(pad < off);
    }

    #[test]
    fn bad_alignment_rejected() {
        let mut a = SymAlloc::new(1024);
        assert_eq!(a.alloc_aligned(8, 24), Err(AllocError::BadAlignment { align: 24 }));
    }

    #[test]
    fn double_free_rejected() {
        let mut a = SymAlloc::new(1024);
        let x = a.alloc(64).unwrap();
        a.free(x).unwrap();
        assert_eq!(a.free(x), Err(AllocError::InvalidFree { offset: x }));
        assert_eq!(a.free(12345), Err(AllocError::InvalidFree { offset: 12345 }));
    }

    #[test]
    fn zero_size_allocations_get_distinct_offsets() {
        let mut a = SymAlloc::new(1024);
        let x = a.alloc(0).unwrap();
        let y = a.alloc(0).unwrap();
        assert_ne!(x, y);
    }

    #[test]
    fn oom_reports_largest_block() {
        let mut a = SymAlloc::new(256);
        let x = a.alloc(96).unwrap();
        let _y = a.alloc(96).unwrap();
        a.free(x).unwrap();
        // 96 free at front, 64 at back: a 128-byte request cannot fit.
        match a.alloc(128) {
            Err(AllocError::OutOfMemory { requested: 128, largest_free: 96 }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn block_len_tracks_granule_rounding() {
        let mut a = SymAlloc::new(1024);
        let x = a.alloc(13).unwrap();
        assert_eq!(a.block_len(x), Some(16));
        assert_eq!(a.block_len(x + 8), None);
        a.free(x).unwrap();
        assert_eq!(a.block_len(x), None);
    }

    #[test]
    fn identical_sequences_give_identical_offsets() {
        // The property the symmetric heap rests on.
        let run = || {
            let mut a = SymAlloc::new(8192);
            let mut offs = Vec::new();
            let mut held = Vec::new();
            for i in 1..=30 {
                let off = a.alloc(i * 8).unwrap();
                offs.push(off);
                held.push(off);
                if i % 3 == 0 {
                    let victim = held.remove(held.len() / 2);
                    a.free(victim).unwrap();
                }
            }
            offs
        };
        assert_eq!(run(), run());
    }
}
