//! OpenSHMEM 1.5-style teams (`shmem_team_split_strided` and friends).
//!
//! A [`Team`] names a `(start, stride, size)` subset of the job's PEs, like
//! the C API's `shmem_team_t`. Teams generalize the 1.x [`ActiveSet`]s the
//! collectives run over: strides need not be powers of two, teams can be
//! split recursively, and a team carries an **id** that flows into every
//! operation issued under its scope (see [`Shmem::with_team_scope`]), so the
//! sanitizer, metrics registry, and flow tracer attribute traffic per team.
//!
//! Creation discipline: team creation is SPMD-symmetric, like `shmalloc` and
//! `register_am` — every PE performs the same `team_split_strided` calls in
//! the same order, so team ids agree machine-wide without communication.
//! PEs outside the new team receive `None` (the C API's
//! `SHMEM_TEAM_INVALID`).

use crate::active_set::ActiveSet;
use crate::data::{Scalar, SymPtr};
use crate::shmem::Shmem;
use pgas_conduit::{ConduitError, Ctx};
use pgas_machine::machine::PeId;

/// A strided subset of the job's PEs with a machine-wide id.
///
/// Id 0 is reserved for the world team ("no team scope"); split teams get
/// ids from 1 up, in creation order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Team {
    id: u32,
    start: PeId,
    stride: usize,
    size: usize,
}

impl Team {
    /// The world team of an `n`-PE job (id 0: operations under it are
    /// attributed as un-scoped, exactly like operations issued with no team
    /// at all).
    pub fn world(n: usize) -> Team {
        assert!(n > 0, "world team of an empty job");
        Team { id: 0, start: 0, stride: 1, size: n }
    }

    /// The team's machine-wide id (0 = world).
    #[inline]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Number of member PEs (`shmem_team_n_pes`).
    #[inline]
    pub fn n_pes(&self) -> usize {
        self.size
    }

    /// First member, in global PE terms.
    #[inline]
    pub fn start(&self) -> PeId {
        self.start
    }

    /// Stride between members, in global PE terms.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Global PE of team rank `rank` (`shmem_team_translate_pe` towards the
    /// world team).
    #[inline]
    pub fn translate(&self, rank: usize) -> PeId {
        assert!(rank < self.size, "rank {rank} out of team of {}", self.size);
        self.start + rank * self.stride
    }

    /// Team rank of global PE `pe`, if a member.
    pub fn rank_of(&self, pe: PeId) -> Option<usize> {
        if pe < self.start {
            return None;
        }
        let d = pe - self.start;
        (d.is_multiple_of(self.stride) && d / self.stride < self.size).then(|| d / self.stride)
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, pe: PeId) -> bool {
        self.rank_of(pe).is_some()
    }

    /// All members in ascending PE order.
    pub fn members(&self) -> Vec<PeId> {
        (0..self.size).map(|k| self.translate(k)).collect()
    }

    /// The 1.x active set covering the same PEs, when the stride is a power
    /// of two (active sets are `(start, log2 stride, size)` triples). The
    /// tree collectives run over this representation.
    pub fn active_set(&self) -> Option<ActiveSet> {
        self.stride
            .is_power_of_two()
            .then(|| ActiveSet::new(self.start, self.stride.trailing_zeros(), self.size))
    }
}

impl<'m> Shmem<'m> {
    /// The team containing every PE.
    pub fn team_world(&self) -> Team {
        Team::world(self.n_pes())
    }

    /// `shmem_team_split_strided`: carve a new team from `parent`, taking
    /// `size` members starting at parent rank `start`, every `stride`-th
    /// parent rank. Symmetric-creation collective (see the module docs);
    /// returns `None` on PEs outside the new team.
    pub fn team_split_strided(
        &self,
        parent: &Team,
        start: usize,
        stride: usize,
        size: usize,
    ) -> Option<Team> {
        assert!(size > 0, "team must be non-empty");
        assert!(stride > 0, "team stride must be positive");
        assert!(
            start + (size - 1) * stride < parent.n_pes(),
            "team split (start {start}, stride {stride}, size {size}) overruns parent of {}",
            parent.n_pes()
        );
        let id = self.reserve_team_ids(1);
        let team =
            Team { id, start: parent.translate(start), stride: stride * parent.stride(), size };
        team.contains(self.my_pe()).then_some(team)
    }

    /// Reserve `n` consecutive team ids, returning the first. Exposed so
    /// higher layers (CAF's `form team`, which mints several sibling teams
    /// in one statement) share the id space; must be called symmetrically.
    pub fn reserve_team_ids(&self, n: u32) -> u32 {
        let base = self.next_team.get();
        self.next_team.set(base + n);
        base
    }

    /// `shmem_team_my_pe`: this PE's rank within `team`, or `None` when not
    /// a member.
    pub fn team_my_pe(&self, team: &Team) -> Option<usize> {
        team.rank_of(self.my_pe())
    }

    /// Run `f` with every operation it issues attributed to `team` — the
    /// descriptors submitted underneath carry the team id, so spans,
    /// metrics (`team_op`/`team_hazard`), and fault events break down per
    /// team. Scopes nest: the previous scope is restored on return.
    pub fn with_team_scope<R>(&self, team: &Team, f: impl FnOnce() -> R) -> R {
        let prev = self.ctx().set_team_scope(team.id());
        let r = f();
        self.ctx().set_team_scope(prev);
        r
    }

    /// `shmem_team_sync`: barrier over the team's members (with the usual
    /// quiet-first completion). Must be called by every live member.
    pub fn team_barrier(&self, team: &Team) {
        debug_assert!(team.contains(self.my_pe()), "team barrier from a non-member");
        self.with_team_scope(team, || self.ctx().barrier_group(&team.members()));
    }

    /// Fallible [`Self::team_barrier`]: surfaces deferred dead-target
    /// errors (e.g. coalesced puts whose target died before the flush)
    /// instead of panicking. The barrier itself still completes among the
    /// surviving members, so live peers do not hang.
    pub fn try_team_barrier(&self, team: &Team) -> Result<(), ConduitError> {
        debug_assert!(team.contains(self.my_pe()), "team barrier from a non-member");
        self.with_team_scope(team, || self.ctx().try_barrier_group(&team.members()))
    }

    /// Team-scoped broadcast: [`Shmem::broadcast`] over the team's PEs,
    /// attributed to the team. Requires a power-of-two stride (the tree
    /// collectives run over 1.x active sets).
    pub fn team_broadcast<T: Scalar>(
        &self,
        team: &Team,
        dest: SymPtr<T>,
        src: SymPtr<T>,
        nelems: usize,
        root_rank: usize,
    ) {
        let set = team.active_set().expect("team collectives need a power-of-two stride");
        self.with_team_scope(team, || self.broadcast(dest, src, nelems, root_rank, &set));
    }

    /// Team-scoped all-reduce (see [`Shmem::reduce_to_all`]).
    pub fn team_reduce_to_all<T: Scalar>(
        &self,
        team: &Team,
        dest: SymPtr<T>,
        src: SymPtr<T>,
        nelems: usize,
        op: impl Fn(T, T) -> T + Copy,
    ) {
        let set = team.active_set().expect("team collectives need a power-of-two stride");
        self.with_team_scope(team, || self.reduce_to_all(dest, src, nelems, &set, op));
    }

    /// Team-scoped `shmem_sum_to_all`.
    pub fn team_sum_to_all<T: Scalar + std::ops::Add<Output = T>>(
        &self,
        team: &Team,
        dest: SymPtr<T>,
        src: SymPtr<T>,
        nelems: usize,
    ) {
        self.team_reduce_to_all(team, dest, src, nelems, |a, b| a + b);
    }

    /// `shmem_ctx_create`: a sibling communication context sharing this
    /// PE's heap, pending-op ledger and AM registry, but with its own
    /// coalescing buffers, quiet/fence scope, and NIC-channel identity —
    /// the deterministic arbiter parks `(start, pe, ctx)` keys, so traffic
    /// on different contexts drains independently. Inherits the current
    /// team scope at creation.
    pub fn ctx_create(&self) -> Ctx<'m> {
        self.ctx().create_ctx()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shmem::ShmemConfig;
    use pgas_conduit::ConduitProfile;
    use pgas_machine::{generic_smp, run, stampede, Platform};

    fn cfg(n: usize) -> pgas_machine::MachineConfig {
        generic_smp(n).with_heap_bytes(1 << 17)
    }

    fn mk(pe: pgas_machine::machine::Pe<'_>) -> Shmem<'_> {
        Shmem::new(pe, ShmemConfig::new(ConduitProfile::native_shmem(Platform::GenericSmp)))
    }

    #[test]
    fn split_translate_and_rank_round_trip() {
        // PEs 1, 4, 7 out of 8 (stride 3 — not expressible as an
        // active set).
        let t = Team { id: 5, start: 1, stride: 3, size: 3 };
        assert_eq!(t.members(), vec![1, 4, 7]);
        assert_eq!(t.rank_of(4), Some(1));
        assert_eq!(t.rank_of(2), None);
        assert_eq!(t.rank_of(10), None);
        assert_eq!(t.translate(2), 7);
        assert!(t.active_set().is_none());
        let even = Team { id: 6, start: 0, stride: 2, size: 4 };
        assert_eq!(even.active_set().unwrap().members(), vec![0, 2, 4, 6]);
    }

    #[test]
    fn split_strided_is_symmetric_and_recursive() {
        let out = run(cfg(8), |pe| {
            let shmem = mk(pe);
            let world = shmem.team_world();
            let evens = shmem.team_split_strided(&world, 0, 2, 4);
            // Split the evens again: every other even -> PEs 0, 4.
            let quarter = match &evens {
                Some(e) => shmem.team_split_strided(e, 0, 2, 2),
                // Non-members still reserve the id to stay symmetric.
                None => {
                    shmem.reserve_team_ids(1);
                    None
                }
            };
            (
                evens.as_ref().map(|t| (t.id(), shmem.team_my_pe(t).unwrap())),
                quarter.as_ref().map(|t| (t.id(), t.members())),
            )
        });
        for (pe, (evens, quarter)) in out.results.into_iter().enumerate() {
            if pe % 2 == 0 {
                assert_eq!(evens, Some((1, pe / 2)));
            } else {
                assert_eq!(evens, None);
            }
            if pe % 4 == 0 {
                assert_eq!(quarter, Some((2, vec![0, 4])));
            } else {
                assert_eq!(quarter, None);
            }
        }
    }

    #[test]
    fn team_barrier_rendezvouses_members_only() {
        let out = run(cfg(4), |pe| {
            let shmem = mk(pe);
            let world = shmem.team_world();
            let evens = shmem.team_split_strided(&world, 0, 2, 2);
            shmem.barrier_all();
            if let Some(t) = &evens {
                // PE 2 runs ahead; the team barrier aligns 0 and 2 without
                // waiting on 1 and 3.
                if shmem.my_pe() == 2 {
                    pe.advance(5_000.0);
                }
                shmem.team_barrier(t);
            }
            pe.now()
        });
        assert_eq!(out.results[0], out.results[2], "members aligned");
        assert!(out.results[0] >= 5_000);
        assert!(out.results[1] < 5_000, "non-member not dragged along");
    }

    #[test]
    fn team_collectives_and_attribution() {
        let out = pgas_machine::with_forced_metrics(true, || {
            run(cfg(4), |pe| {
                let shmem = mk(pe);
                let src = shmem.shmalloc::<i64>(1).unwrap();
                let dest = shmem.shmalloc::<i64>(1).unwrap();
                shmem.write_local(src, &[shmem.my_pe() as i64 + 1]);
                shmem.barrier_all();
                let world = shmem.team_world();
                let odds = shmem.team_split_strided(&world, 1, 2, 2);
                if let Some(t) = &odds {
                    shmem.team_sum_to_all(t, dest, src, 1);
                }
                shmem.barrier_all();
                shmem.read_local_one(dest)
            })
        });
        assert_eq!(out.results[1], 6, "2 + 4 over the odd team");
        assert_eq!(out.results[3], 6);
        assert_eq!(out.results[0], 0, "non-members untouched");
        // The team's traffic is attributed: team_op counters keyed by the
        // team id exist for the members.
        assert!(
            out.metrics.counter_total("team_op") > 0,
            "team-scoped ops recorded under the team id"
        );
    }

    #[test]
    fn per_context_quiet_scopes_independently() {
        let out = run(stampede(2, 2).with_heap_bytes(1 << 16), |pe| {
            let shmem = Shmem::new(pe, ShmemConfig::new(ConduitProfile::mvapich_shmem()));
            let buf = shmem.shmalloc::<u8>(4096).unwrap();
            shmem.barrier_all();
            if shmem.my_pe() == 0 {
                let c2 = shmem.ctx_create();
                assert_ne!(c2.ctx_id(), shmem.ctx().ctx_id());
                // Big transfer outstanding on the second context: quiet on
                // the default context must not pay for it.
                let big = vec![0xA5u8; 4096];
                c2.put_nbi(2, buf.offset(), &big);
                let t0 = pe.now();
                shmem.quiet();
                let default_quiet = pe.now() - t0;
                let t1 = pe.now();
                c2.quiet();
                let ctx_quiet = pe.now() - t1;
                (default_quiet, ctx_quiet)
            } else {
                (0, 0)
            }
        });
        let (default_quiet, ctx_quiet) = out.results[0];
        assert!(
            ctx_quiet > default_quiet,
            "the 4 KiB transfer completes at its own context's quiet, not \
             the default's (default {default_quiet} ns, ctx {ctx_quiet} ns)"
        );
        assert!(ctx_quiet > 500, "cross-node completion costs real wire time, got {ctx_quiet}");
    }
}
