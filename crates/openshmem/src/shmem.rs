//! The per-PE OpenSHMEM context: symmetric allocation, RMA, atomics,
//! point-to-point synchronization, and memory ordering.

use crate::active_set::ActiveSet;
use crate::alloc::{AllocError, SymAlloc};
use crate::data::{from_bytes, to_bytes, Scalar, SymPtr};
use pgas_conduit::ctx::AmoOp;
use pgas_conduit::{AmHandler, AmHandlerId, ConduitError, ConduitProfile, Ctx, CtxOptions};
use pgas_machine::machine::{Machine, Pe, PeId};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Flag words reserved for collective protocols (enough for jobs up to
/// 2^20 PEs with separate broadcast/reduce/ancillary regions).
pub(crate) const PSYNC_WORDS: usize = 64;
pub(crate) const BCAST_FLAG_BASE: usize = 0;
pub(crate) const REDUCE_FLAG_BASE: usize = 21;
pub(crate) const COLLECT_FLAG_BASE: usize = 42;

/// Configuration of a SHMEM context.
#[derive(Debug, Clone, Copy)]
pub struct ShmemConfig {
    pub profile: ConduitProfile,
    pub options: CtxOptions,
    /// Symmetric scratch for reduction partials (`pWrk`), bytes.
    pub pwrk_bytes: usize,
}

impl ShmemConfig {
    pub fn new(profile: ConduitProfile) -> Self {
        ShmemConfig { profile, options: CtxOptions::default(), pwrk_bytes: 16 * 1024 }
    }

    pub fn with_options(mut self, options: CtxOptions) -> Self {
        self.options = options;
        self
    }

    pub fn with_pwrk_bytes(mut self, bytes: usize) -> Self {
        self.pwrk_bytes = bytes;
        self
    }
}

/// Comparison operators for `wait_until` (`SHMEM_CMP_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Eq,
    Ne,
    Gt,
    Ge,
    Lt,
    Le,
}

impl Cmp {
    pub fn eval<T: PartialOrd>(self, lhs: T, rhs: T) -> bool {
        match self {
            Cmp::Eq => lhs == rhs,
            Cmp::Ne => lhs != rhs,
            Cmp::Gt => lhs > rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Lt => lhs < rhs,
            Cmp::Le => lhs <= rhs,
        }
    }
}

/// An 8-byte scalar usable with remote atomics.
pub trait AtomicWord: Scalar + PartialOrd {
    fn to_word(self) -> u64;
    fn from_word(w: u64) -> Self;
}

impl AtomicWord for u64 {
    #[inline]
    fn to_word(self) -> u64 {
        self
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        w
    }
}

impl AtomicWord for i64 {
    #[inline]
    fn to_word(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        w as i64
    }
}

/// The per-PE OpenSHMEM library handle.
///
/// One per PE thread; created inside the SPMD closure:
///
/// ```
/// use openshmem::{Shmem, ShmemConfig};
/// use pgas_conduit::ConduitProfile;
/// use pgas_machine::{generic_smp, run, Platform};
///
/// let out = run(generic_smp(4), |pe| {
///     let shmem = Shmem::new(pe, ShmemConfig::new(ConduitProfile::native_shmem(Platform::GenericSmp)));
///     let x = shmem.shmalloc::<i64>(1).unwrap();
///     shmem.p(x, (shmem.my_pe() + 1) as i64, (shmem.my_pe() + 1) % shmem.n_pes());
///     shmem.barrier_all();
///     shmem.g(x, shmem.my_pe())
/// });
/// assert_eq!(out.results, vec![4, 1, 2, 3]);
/// ```
pub struct Shmem<'m> {
    ctx: Ctx<'m>,
    alloc: RefCell<SymAlloc>,
    psync: SymPtr<u64>,
    pwrk: SymPtr<u8>,
    /// Next team id to hand out (0 is the world team); see `crate::team`.
    /// Team creation follows the symmetric discipline of `shmalloc`: every
    /// PE performs the same creations in the same order, so the ids agree
    /// machine-wide without communication.
    pub(crate) next_team: Cell<u32>,
}

impl<'m> Shmem<'m> {
    /// Initialize the library on this PE (`start_pes`). Collective in the
    /// sense that every PE must construct with identical configuration.
    pub fn new(pe: Pe<'m>, cfg: ShmemConfig) -> Shmem<'m> {
        let heap_bytes = pe.machine().config().heap_bytes;
        let mut alloc = SymAlloc::new(heap_bytes);
        let psync_off =
            alloc.alloc(PSYNC_WORDS * 8).expect("symmetric heap too small for collective flags");
        let pwrk_bytes = cfg.pwrk_bytes.min(heap_bytes / 4).max(256);
        let pwrk_off = alloc.alloc(pwrk_bytes).expect("symmetric heap too small for pWrk scratch");
        Shmem {
            ctx: Ctx::new(pe, cfg.profile, cfg.options),
            alloc: RefCell::new(alloc),
            psync: SymPtr::new(psync_off, PSYNC_WORDS),
            pwrk: SymPtr::new(pwrk_off, pwrk_bytes),
            next_team: Cell::new(1),
        }
    }

    /// This PE's index (`my_pe` / `_my_pe`).
    #[inline]
    pub fn my_pe(&self) -> PeId {
        self.ctx.pe().id()
    }

    /// Total PEs (`num_pes`).
    #[inline]
    pub fn n_pes(&self) -> usize {
        self.ctx.pe().n()
    }

    /// The underlying machine.
    #[inline]
    pub fn machine(&self) -> &'m Machine {
        self.ctx.machine()
    }

    /// The underlying conduit context.
    #[inline]
    pub fn ctx(&self) -> &Ctx<'m> {
        &self.ctx
    }

    /// The conduit profile in use.
    #[inline]
    pub fn profile(&self) -> &ConduitProfile {
        self.ctx.profile()
    }

    /// The active set containing every PE.
    pub fn world(&self) -> ActiveSet {
        ActiveSet::world(self.n_pes())
    }

    pub(crate) fn psync(&self) -> SymPtr<u64> {
        self.psync
    }

    pub(crate) fn pwrk(&self) -> SymPtr<u8> {
        self.pwrk
    }

    // ---- symmetric allocation -------------------------------------------

    /// Allocate `count` elements of `T` symmetrically (`shmalloc`). All PEs
    /// must call in the same order with the same arguments.
    pub fn shmalloc<T: Scalar>(&self, count: usize) -> Result<SymPtr<T>, AllocError> {
        let off = self.alloc.borrow_mut().alloc(count * T::BYTES)?;
        Ok(SymPtr::new(off, count))
    }

    /// Aligned symmetric allocation (`shmemalign`).
    pub fn shmalloc_aligned<T: Scalar>(
        &self,
        count: usize,
        align: usize,
    ) -> Result<SymPtr<T>, AllocError> {
        let off = self.alloc.borrow_mut().alloc_aligned(count * T::BYTES, align)?;
        Ok(SymPtr::new(off, count))
    }

    /// Release a symmetric allocation (`shfree`). Must be called
    /// symmetrically, with a handle returned by `shmalloc` (not a sub-slice).
    pub fn shfree<T: Scalar>(&self, ptr: SymPtr<T>) -> Result<(), AllocError> {
        self.alloc.borrow_mut().free(ptr.offset())
    }

    /// Bytes currently allocated on the symmetric heap.
    pub fn symmetric_in_use(&self) -> usize {
        self.alloc.borrow().in_use()
    }

    /// Is there a live symmetric allocation starting at byte `offset`?
    /// Used by teardown audits (e.g. CAF's stale-lock check) to tell whether
    /// an object a long-lived handle points at has since been `shfree`d.
    pub fn symmetric_block_live(&self, offset: usize) -> bool {
        self.alloc.borrow().block_len(offset).is_some()
    }

    /// Verify (collectively) that `ptr` refers to the same offset on every
    /// PE. Debugging aid for the symmetric-allocation discipline.
    pub fn debug_assert_symmetric<T: Scalar>(&self, ptr: SymPtr<T>) {
        let slot = self.psync.at(COLLECT_FLAG_BASE + 2);
        // Everyone writes their offset+1 into PE 0's slot; a mismatch on any
        // PE trips the check on PE 0.
        let mine = (ptr.offset() + 1) as u64;
        if self.my_pe() == 0 {
            self.write_local_u64(slot.offset(), mine);
        } else {
            let prev = self.amo(0, slot, AmoOp::Swap(mine));
            assert!(
                prev == 0 || prev == mine,
                "allocation is not symmetric: PE {} has offset {}, another PE had {}",
                self.my_pe(),
                mine - 1,
                prev - 1,
            );
        }
        self.barrier_all();
        if self.my_pe() == 0 {
            let seen = self.read_local_u64(slot.offset());
            assert!(
                seen == mine,
                "allocation is not symmetric: PE 0 has offset {}, another PE had {}",
                mine - 1,
                seen - 1
            );
            self.write_local_u64(slot.offset(), 0);
        }
        self.barrier_all();
    }

    // ---- contiguous RMA ---------------------------------------------------

    /// Write `src` into `dest`'s copy of `dst` (`shmem_put`).
    pub fn put<T: Scalar>(&self, dst: SymPtr<T>, src: &[T], dest_pe: PeId) {
        assert!(src.len() <= dst.count(), "put of {} elements into {}", src.len(), dst.count());
        self.ctx.put(dest_pe, dst.offset(), &to_bytes(src));
    }

    /// Read `out.len()` elements of `src` from `src_pe` (`shmem_get`).
    pub fn get<T: Scalar>(&self, src: SymPtr<T>, out: &mut [T], src_pe: PeId) {
        assert!(out.len() <= src.count(), "get of {} elements from {}", out.len(), src.count());
        let mut buf = vec![0u8; out.len() * T::BYTES];
        self.ctx.get(src_pe, src.offset(), &mut buf);
        from_bytes(&buf, out);
    }

    /// Fallible [`Self::put`]: under an active fault plan, retry exhaustion
    /// or a failed target surfaces as a [`ConduitError`] instead of a panic.
    /// Higher layers (CAF's stat-bearing co-indexed assignments) build their
    /// `STAT_FAILED_IMAGE` semantics on these.
    pub fn try_put<T: Scalar>(
        &self,
        dst: SymPtr<T>,
        src: &[T],
        dest_pe: PeId,
    ) -> Result<(), ConduitError> {
        assert!(src.len() <= dst.count(), "put of {} elements into {}", src.len(), dst.count());
        self.ctx.try_put(dest_pe, dst.offset(), &to_bytes(src))
    }

    /// Fallible [`Self::get`]; on `Err`, `out` is untouched.
    pub fn try_get<T: Scalar>(
        &self,
        src: SymPtr<T>,
        out: &mut [T],
        src_pe: PeId,
    ) -> Result<(), ConduitError> {
        assert!(out.len() <= src.count(), "get of {} elements from {}", out.len(), src.count());
        let mut buf = vec![0u8; out.len() * T::BYTES];
        self.ctx.try_get(src_pe, src.offset(), &mut buf)?;
        from_bytes(&buf, out);
        Ok(())
    }

    /// Non-blocking put (`shmem_put_nbi`): returns after issue; completion
    /// (local and remote) requires [`Self::quiet`].
    pub fn put_nbi<T: Scalar>(&self, dst: SymPtr<T>, src: &[T], dest_pe: PeId) {
        assert!(src.len() <= dst.count(), "put_nbi of {} elements into {}", src.len(), dst.count());
        self.ctx.put_nbi(dest_pe, dst.offset(), &to_bytes(src));
    }

    /// Non-blocking get (`shmem_get_nbi`): `out` is only guaranteed valid
    /// after [`Self::quiet`].
    pub fn get_nbi<T: Scalar>(&self, src: SymPtr<T>, out: &mut [T], src_pe: PeId) {
        assert!(out.len() <= src.count(), "get_nbi of {} elements from {}", out.len(), src.count());
        let mut buf = vec![0u8; out.len() * T::BYTES];
        self.ctx.get_nbi(src_pe, src.offset(), &mut buf);
        from_bytes(&buf, out);
    }

    /// Single-element put (`shmem_p`).
    pub fn p<T: Scalar>(&self, dst: SymPtr<T>, value: T, dest_pe: PeId) {
        self.put(dst, &[value], dest_pe);
    }

    /// Single-element get (`shmem_g`).
    pub fn g<T: Scalar>(&self, src: SymPtr<T>, src_pe: PeId) -> T {
        let mut out = [src_default::<T>()];
        self.get(src, &mut out, src_pe);
        out[0]
    }

    // ---- 1-D strided RMA ---------------------------------------------------

    /// `shmem_iput`: write `nelems` elements taken from `src` at stride
    /// `sst` (in elements) to `dest_pe`'s `dst` at stride `tst`.
    pub fn iput<T: Scalar>(
        &self,
        dst: SymPtr<T>,
        tst: usize,
        src: &[T],
        sst: usize,
        nelems: usize,
        dest_pe: PeId,
    ) {
        if nelems == 0 {
            return;
        }
        assert!(
            (nelems - 1) * tst < dst.count(),
            "iput overruns destination: {} elements at stride {tst} into {}",
            nelems,
            dst.count()
        );
        let bytes = to_bytes(src);
        self.ctx.iput(dest_pe, dst.offset(), tst, &bytes, T::BYTES, sst, nelems);
    }

    /// `shmem_iget`: gather `nelems` elements of `src_pe`'s `src` at stride
    /// `sst` into `out` at stride `tst`.
    pub fn iget<T: Scalar>(
        &self,
        src: SymPtr<T>,
        sst: usize,
        out: &mut [T],
        tst: usize,
        nelems: usize,
        src_pe: PeId,
    ) {
        if nelems == 0 {
            return;
        }
        assert!((nelems - 1) * sst < src.count(), "iget overruns source");
        let mut buf = to_bytes(out);
        self.ctx.iget(src_pe, src.offset(), sst, &mut buf, T::BYTES, tst, nelems);
        from_bytes(&buf, out);
    }

    // ---- local heap access (this PE's own symmetric memory) ---------------

    /// Read this PE's own copy of `src` without a communication call
    /// (legal in OpenSHMEM: local symmetric objects are ordinary memory).
    pub fn read_local<T: Scalar>(&self, src: SymPtr<T>, out: &mut [T]) {
        let me = self.my_pe();
        let mut buf = vec![0u8; out.len() * T::BYTES];
        let heap = self.machine().heap(me);
        heap.read_bytes(src.offset(), &mut buf);
        let stamp = heap.max_stamp(src.offset(), buf.len());
        self.machine().san_check_read(me, src.offset(), buf.len(), me, "local read");
        self.machine().lift_clock(me, stamp);
        from_bytes(&buf, out);
    }

    /// Write this PE's own copy of `dst` directly.
    pub fn write_local<T: Scalar>(&self, dst: SymPtr<T>, src: &[T]) {
        assert!(src.len() <= dst.count());
        let me = self.my_pe();
        let bytes = to_bytes(src);
        self.machine().heap(me).write_bytes(dst.offset(), &bytes);
        let now = self.machine().clock(me);
        self.machine().san_record_write(
            me,
            dst.offset(),
            bytes.len(),
            me,
            now,
            false,
            "local write",
        );
    }

    /// Sanitizer-checked raw-byte read of this PE's own heap: picks up the
    /// bytes, runs the race check, and lifts the clock past the region's
    /// shadow stamps. The collectives' payload/partial pickups route through
    /// here so a mis-synchronized collective trips the sanitizer exactly
    /// like any other local read.
    pub(crate) fn read_local_bytes(&self, off: usize, out: &mut [u8], op: &'static str) {
        let me = self.my_pe();
        let heap = self.machine().heap(me);
        heap.read_bytes(off, out);
        let stamp = heap.max_stamp(off, out.len());
        self.machine().san_check_read(me, off, out.len(), me, op);
        self.machine().lift_clock(me, stamp);
    }

    /// Convenience: read one local element.
    pub fn read_local_one<T: Scalar>(&self, src: SymPtr<T>) -> T {
        let mut out = [src_default::<T>()];
        self.read_local(src, &mut out);
        out[0]
    }

    pub(crate) fn read_local_u64(&self, off: usize) -> u64 {
        use std::sync::atomic::Ordering;
        self.machine().heap(self.my_pe()).atomic64(off).load(Ordering::Acquire)
    }

    pub(crate) fn write_local_u64(&self, off: usize, v: u64) {
        use std::sync::atomic::Ordering;
        self.machine().heap(self.my_pe()).atomic64(off).store(v, Ordering::Release);
    }

    // ---- shmem_ptr ------------------------------------------------------------

    /// `shmem_ptr`: direct load/store access to `pe`'s copy of a symmetric
    /// object, available only when `pe` shares this PE's node (on real
    /// hardware: the same shared-memory segment). Returns `None` for remote
    /// PEs, like the C API returning a null pointer.
    ///
    /// Reads and writes through the view charge only intra-node memory
    /// costs — the fast path §VII of the paper proposes.
    pub fn local_view<T: Scalar>(&self, ptr: SymPtr<T>, pe: PeId) -> Option<LocalView<'m, T>> {
        if !self.machine().same_node(self.my_pe(), pe) {
            return None;
        }
        Some(LocalView { machine: self.machine(), me: self.my_pe(), pe, ptr })
    }

    // ---- atomics ------------------------------------------------------------

    /// Raw AMO access used by higher layers (CAF locks).
    pub fn amo<T: AtomicWord>(&self, dest_pe: PeId, ptr: SymPtr<T>, op: AmoOp) -> T {
        T::from_word(self.ctx.amo(dest_pe, ptr.offset(), op))
    }

    /// Fallible [`Self::amo`]: surfaces injected-fault conditions as a
    /// [`ConduitError`] instead of panicking (see [`Self::try_put`]).
    pub fn try_amo<T: AtomicWord>(
        &self,
        dest_pe: PeId,
        ptr: SymPtr<T>,
        op: AmoOp,
    ) -> Result<T, ConduitError> {
        self.ctx.try_amo(dest_pe, ptr.offset(), op).map(T::from_word)
    }

    /// Fallible `shmem_add` (used by CAF's stat-bearing `sync images`).
    pub fn try_add<T: AtomicWord>(
        &self,
        ptr: SymPtr<T>,
        value: T,
        dest_pe: PeId,
    ) -> Result<(), ConduitError> {
        self.try_amo(dest_pe, ptr, AmoOp::Add(value.to_word())).map(|_: T| ())
    }

    /// `shmem_swap`: atomically replace, returning the old value.
    pub fn swap<T: AtomicWord>(&self, ptr: SymPtr<T>, value: T, dest_pe: PeId) -> T {
        self.amo(dest_pe, ptr, AmoOp::Swap(value.to_word()))
    }

    /// `shmem_cswap`: conditional swap; returns the old value.
    pub fn cswap<T: AtomicWord>(&self, ptr: SymPtr<T>, cond: T, value: T, dest_pe: PeId) -> T {
        self.amo(dest_pe, ptr, AmoOp::CompareSwap { cond: cond.to_word(), value: value.to_word() })
    }

    /// `shmem_fadd`: fetch-and-add.
    pub fn fadd<T: AtomicWord>(&self, ptr: SymPtr<T>, value: T, dest_pe: PeId) -> T {
        self.amo(dest_pe, ptr, AmoOp::FetchAdd(value.to_word()))
    }

    /// `shmem_add`: non-fetching add.
    pub fn add<T: AtomicWord>(&self, ptr: SymPtr<T>, value: T, dest_pe: PeId) {
        self.amo(dest_pe, ptr, AmoOp::Add(value.to_word()));
    }

    /// `shmem_finc` / `shmem_inc`.
    pub fn finc<T: AtomicWord>(&self, ptr: SymPtr<T>, dest_pe: PeId) -> T {
        self.amo(dest_pe, ptr, AmoOp::FetchAdd(1))
    }

    pub fn inc<T: AtomicWord>(&self, ptr: SymPtr<T>, dest_pe: PeId) {
        self.amo(dest_pe, ptr, AmoOp::Add(1));
    }

    /// `shmem_fetch`: atomic read.
    pub fn atomic_fetch<T: AtomicWord>(&self, ptr: SymPtr<T>, dest_pe: PeId) -> T {
        self.amo(dest_pe, ptr, AmoOp::Fetch)
    }

    /// `shmem_set`: atomic write.
    pub fn atomic_set<T: AtomicWord>(&self, ptr: SymPtr<T>, value: T, dest_pe: PeId) {
        self.amo(dest_pe, ptr, AmoOp::Set(value.to_word()));
    }

    /// `shmem_and` (non-fetching) — paper Table II's atomic AND.
    pub fn atomic_and<T: AtomicWord>(&self, ptr: SymPtr<T>, value: T, dest_pe: PeId) {
        self.amo(dest_pe, ptr, AmoOp::And(value.to_word()));
    }

    /// `shmem_or`.
    pub fn atomic_or<T: AtomicWord>(&self, ptr: SymPtr<T>, value: T, dest_pe: PeId) {
        self.amo(dest_pe, ptr, AmoOp::Or(value.to_word()));
    }

    /// `shmem_xor`.
    pub fn atomic_xor<T: AtomicWord>(&self, ptr: SymPtr<T>, value: T, dest_pe: PeId) {
        self.amo(dest_pe, ptr, AmoOp::Xor(value.to_word()));
    }

    /// Fetching bitwise variants.
    pub fn fetch_and<T: AtomicWord>(&self, ptr: SymPtr<T>, value: T, dest_pe: PeId) -> T {
        self.amo(dest_pe, ptr, AmoOp::FetchAnd(value.to_word()))
    }

    pub fn fetch_or<T: AtomicWord>(&self, ptr: SymPtr<T>, value: T, dest_pe: PeId) -> T {
        self.amo(dest_pe, ptr, AmoOp::FetchOr(value.to_word()))
    }

    pub fn fetch_xor<T: AtomicWord>(&self, ptr: SymPtr<T>, value: T, dest_pe: PeId) -> T {
        self.amo(dest_pe, ptr, AmoOp::FetchXor(value.to_word()))
    }

    // ---- active messages ----------------------------------------------------

    /// Register an active-message handler. SPMD-symmetric: every PE must
    /// register the same handlers in the same order (like symmetric
    /// allocation), so the returned id names the same logic everywhere.
    pub fn register_am(&self, handler: Rc<dyn AmHandler>) -> AmHandlerId {
        self.ctx.register_am(handler)
    }

    /// One-way active message: run `handler` at `dest_pe` with `arg`,
    /// discarding any reply. One request wire transfer plus target-side
    /// compute — no get–compute–put round trip. Completes remotely at
    /// [`Self::quiet`].
    pub fn am_send(&self, dest_pe: PeId, handler: AmHandlerId, arg: &[u8]) {
        self.ctx.am_send(dest_pe, handler, arg);
    }

    /// Fallible [`Self::am_send`] (see [`Self::try_put`]).
    pub fn try_am_send(
        &self,
        dest_pe: PeId,
        handler: AmHandlerId,
        arg: &[u8],
    ) -> Result<(), ConduitError> {
        self.ctx.try_am_send(dest_pe, handler, arg)
    }

    /// Round-trip active message: like [`Self::am_send`] but blocks for the
    /// handler's reply.
    pub fn am_call(&self, dest_pe: PeId, handler: AmHandlerId, arg: &[u8]) -> Vec<u8> {
        self.ctx.am_call(dest_pe, handler, arg)
    }

    /// Fallible [`Self::am_call`].
    pub fn try_am_call(
        &self,
        dest_pe: PeId,
        handler: AmHandlerId,
        arg: &[u8],
    ) -> Result<Vec<u8>, ConduitError> {
        self.ctx.try_am_call(dest_pe, handler, arg)
    }

    // ---- point-to-point synchronization -------------------------------------

    /// `shmem_wait_until` on this PE's own copy of `ptr` (an 8-byte word):
    /// block until `current <cmp> value`, returning the satisfying value.
    pub fn wait_until<T: AtomicWord>(&self, ptr: SymPtr<T>, cmp: Cmp, value: T) -> T {
        let w = self.ctx.wait_until(ptr.offset(), |w| cmp.eval(T::from_word(w), value));
        T::from_word(w)
    }

    // ---- ordering -------------------------------------------------------------

    /// `shmem_quiet`: wait for remote completion of all outstanding puts.
    /// Fallible [`Self::quiet`]: surfaces errors deferred by coalesced
    /// staged ops whose target died before the flush (see
    /// [`pgas_conduit::Ctx::try_quiet`]).
    pub fn try_quiet(&self) -> Result<(), ConduitError> {
        self.ctx.try_quiet()
    }

    pub fn quiet(&self) {
        self.ctx.quiet();
    }

    /// `shmem_fence`: order puts per destination.
    pub fn fence(&self) {
        self.ctx.fence();
    }

    /// `shmem_barrier_all`.
    pub fn barrier_all(&self) {
        self.ctx.barrier_all();
    }

    /// `shmem_barrier` over an active set.
    pub fn barrier(&self, set: &ActiveSet) {
        debug_assert!(set.contains(self.my_pe()), "barrier on a set excluding the caller");
        self.ctx.barrier_group(&set.members());
    }
}

/// Direct load/store window into a same-node PE's symmetric object
/// (the result of [`Shmem::local_view`], i.e. `shmem_ptr`).
pub struct LocalView<'m, T: Scalar> {
    machine: &'m Machine,
    me: PeId,
    pe: PeId,
    ptr: SymPtr<T>,
}

impl<'m, T: Scalar> LocalView<'m, T> {
    /// Element count of the viewed object.
    pub fn len(&self) -> usize {
        self.ptr.count()
    }

    /// True when the viewed object has no elements.
    pub fn is_empty(&self) -> bool {
        self.ptr.count() == 0
    }

    /// Load element `i` (a direct memory access: ~one cache transaction of
    /// virtual time).
    pub fn read(&self, i: usize) -> T {
        assert!(i < self.ptr.count(), "index {i} out of bounds");
        let off = self.ptr.offset() + i * T::BYTES;
        let mut buf = vec![0u8; T::BYTES];
        let heap = self.machine.heap(self.pe);
        heap.read_bytes(off, &mut buf);
        let stamp = heap.max_stamp(off, T::BYTES);
        self.machine.san_check_read(self.pe, off, T::BYTES, self.me, "shmem_ptr read");
        self.machine.lift_clock(self.me, stamp);
        self.machine.advance(self.me, self.machine.config().wire.intra.latency_ns * 0.1);
        T::load(&buf)
    }

    /// Store element `i` directly.
    pub fn write(&self, i: usize, v: T) {
        assert!(i < self.ptr.count(), "index {i} out of bounds");
        let off = self.ptr.offset() + i * T::BYTES;
        let mut buf = vec![0u8; T::BYTES];
        v.store(&mut buf);
        let t = self.machine.advance(self.me, self.machine.config().wire.intra.latency_ns * 0.1);
        // Same critical section AMOs publish through: write + stamp + wake
        // atomically, so a `wait_on` watching this word wakes
        // deterministically under the NIC arbiter.
        self.machine.apply_and_notify(self.pe, || {
            self.machine.heap(self.pe).write_bytes(off, &buf);
            self.machine.heap(self.pe).stamp_range(off, T::BYTES, t);
            self.machine.san_record_write(
                self.pe,
                off,
                T::BYTES,
                self.me,
                t,
                false,
                "shmem_ptr write",
            );
        });
    }
}

#[inline]
fn src_default<T: Scalar>() -> T {
    T::load(&vec![0u8; T::BYTES])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_machine::{generic_smp, run, stampede, Platform};

    fn cfg() -> pgas_machine::MachineConfig {
        generic_smp(4).with_heap_bytes(1 << 17)
    }

    fn mk(pe: Pe<'_>) -> Shmem<'_> {
        Shmem::new(pe, ShmemConfig::new(ConduitProfile::native_shmem(Platform::GenericSmp)))
    }

    #[test]
    fn figure1_example_program() {
        // The paper's Figure 1: coarray_y(2) = coarray_x(3)[4];
        // coarray_x(1)[4] = coarray_y(2), expressed in SHMEM form.
        let out = run(cfg(), |pe| {
            let shmem = mk(pe);
            let x = shmem.shmalloc::<i32>(4).unwrap();
            let y = shmem.shmalloc::<i32>(4).unwrap();
            let me = shmem.my_pe() as i32 + 1; // 1-based like CAF images
            shmem.write_local(x, &[me; 4]);
            shmem.write_local(y, &[0; 4]);
            shmem.barrier_all();
            // y(2) = x(3)[4]  -- image 4 is PE 3.
            let v = shmem.g(x.at(2), 3);
            shmem.write_local(y.at(1), &[v]);
            // x(1)[4] = y(2)
            shmem.p(x.at(0), shmem.read_local_one(y.at(1)), 3);
            shmem.quiet();
            shmem.barrier_all();
            (shmem.read_local_one(y.at(1)), shmem.g(x.at(0), 3))
        });
        for (y2, x1_on_4) in out.results {
            assert_eq!(y2, 4, "everyone read image 4's x(3)");
            assert_eq!(x1_on_4, 4);
        }
    }

    #[test]
    fn put_get_slices() {
        let out = run(cfg(), |pe| {
            let shmem = mk(pe);
            let buf = shmem.shmalloc::<f64>(8).unwrap();
            shmem.barrier_all();
            if shmem.my_pe() == 0 {
                let data: Vec<f64> = (0..8).map(|i| i as f64 * 1.5).collect();
                for pe_id in 0..shmem.n_pes() {
                    shmem.put(buf, &data, pe_id);
                }
                shmem.quiet();
            }
            shmem.barrier_all();
            let mut out_buf = [0.0f64; 8];
            shmem.get(buf, &mut out_buf, shmem.my_pe());
            out_buf
        });
        for r in out.results {
            assert_eq!(r, [0.0, 1.5, 3.0, 4.5, 6.0, 7.5, 9.0, 10.5]);
        }
    }

    #[test]
    fn shmalloc_is_symmetric_across_pes() {
        run(cfg(), |pe| {
            let shmem = mk(pe);
            let a = shmem.shmalloc::<u64>(16).unwrap();
            let b = shmem.shmalloc::<u8>(100).unwrap();
            shmem.debug_assert_symmetric(a);
            shmem.debug_assert_symmetric(b);
            shmem.shfree(a).unwrap();
            let c = shmem.shmalloc::<u64>(4).unwrap();
            shmem.debug_assert_symmetric(c);
        });
    }

    #[test]
    fn typed_iput_iget() {
        let out = run(cfg(), |pe| {
            let shmem = mk(pe);
            let arr = shmem.shmalloc::<i32>(16).unwrap();
            shmem.write_local(arr, &[0; 16]);
            shmem.barrier_all();
            if shmem.my_pe() == 0 {
                // Every 3rd source element to every 2nd target slot on PE 1.
                let src: Vec<i32> = (0..12).collect();
                shmem.iput(arr, 2, &src, 3, 4, 1);
                shmem.quiet();
            }
            shmem.barrier_all();
            let mut got = [0i32; 4];
            shmem.iget(arr, 2, &mut got, 1, 4, 1);
            got
        });
        for r in out.results {
            assert_eq!(r, [0, 3, 6, 9]);
        }
    }

    #[test]
    fn atomics_signed_values() {
        let out = run(cfg(), |pe| {
            let shmem = mk(pe);
            let x = shmem.shmalloc::<i64>(1).unwrap();
            shmem.write_local(x, &[0]);
            shmem.barrier_all();
            // Everyone adds a negative number to PE 0's word.
            shmem.fadd(x, -5i64, 0);
            shmem.barrier_all();
            shmem.atomic_fetch(x, 0)
        });
        for r in out.results {
            assert_eq!(r, -20);
        }
    }

    #[test]
    fn wait_until_cmp_variants() {
        for (cmp, target, write) in [
            (Cmp::Eq, 7i64, 7i64),
            (Cmp::Ne, 0, 3),
            (Cmp::Gt, 5, 6),
            (Cmp::Ge, 5, 5),
            (Cmp::Lt, 0, -2),
            (Cmp::Le, -1, -1),
        ] {
            let out = run(generic_smp(2).with_heap_bytes(1 << 16), |pe| {
                let shmem = mk(pe);
                let flag = shmem.shmalloc::<i64>(1).unwrap();
                shmem.write_local(flag, &[0]);
                shmem.barrier_all();
                if shmem.my_pe() == 0 {
                    shmem.wait_until(flag, cmp, target)
                } else {
                    shmem.atomic_set(flag, write, 0);
                    write
                }
            });
            assert_eq!(out.results[0], write, "{cmp:?}");
        }
    }

    #[test]
    fn strict_mode_catches_missing_quiet_between_put_and_get() {
        let err = pgas_machine::run_with_result(stampede(2, 1).with_heap_bytes(1 << 16), |pe| {
            let shmem = Shmem::new(
                pe,
                ShmemConfig::new(ConduitProfile::mvapich_shmem())
                    .with_options(CtxOptions { strict_ordering: true, ..Default::default() }),
            );
            let x = shmem.shmalloc::<i64>(1).unwrap();
            shmem.barrier_all();
            if shmem.my_pe() == 0 {
                shmem.p(x, 1, 1);
                let _ = shmem.g(x, 1); // missing quiet
            }
            shmem.barrier_all();
        })
        .unwrap_err();
        assert!(err.message.contains("ordering hazard"));
    }

    #[test]
    fn put_nbi_returns_at_issue_and_completes_at_quiet() {
        // The *direct* nbi contract: 8 in-flight wire transfers absorbed by
        // quiet. Pin coalescing off — staged, the 8 same-range puts
        // write-combine into a single flush and the 20x issue/complete
        // split this test encodes no longer applies.
        let out = pgas_machine::with_forced_aggregation(false, || {
            run(stampede(2, 1).with_heap_bytes(1 << 18), |pe| {
                let shmem = Shmem::new(pe, ShmemConfig::new(ConduitProfile::mvapich_shmem()));
                let buf = shmem.shmalloc::<u8>(1 << 15).unwrap();
                let data = vec![0xCDu8; 1 << 15];
                shmem.barrier_all();
                if shmem.my_pe() == 0 {
                    let t0 = pe.now();
                    for _ in 0..8 {
                        shmem.put_nbi(buf, &data, 1);
                    }
                    let issued = pe.now() - t0;
                    shmem.quiet();
                    let completed = pe.now() - t0;
                    (issued, completed)
                } else {
                    (0, 0)
                }
            })
        });
        let (issued, completed) = out.results[0];
        assert!(issued < 2_000, "8 nbi issues should cost ~8 issue overheads, got {issued}");
        assert!(
            completed > 20 * issued,
            "quiet must absorb the transfer time: issued {issued}, completed {completed}"
        );
    }

    #[test]
    fn get_nbi_data_valid_after_quiet() {
        let out = run(stampede(2, 1).with_heap_bytes(1 << 16), |pe| {
            let shmem = Shmem::new(pe, ShmemConfig::new(ConduitProfile::mvapich_shmem()));
            let buf = shmem.shmalloc::<i64>(4).unwrap();
            shmem.write_local(buf, &[10, 20, 30, 40]);
            shmem.barrier_all();
            let mut got = [0i64; 4];
            let peer = 1 - shmem.my_pe();
            let t0 = pe.now();
            shmem.get_nbi(buf, &mut got, peer);
            let issued = pe.now() - t0;
            shmem.quiet();
            let completed = pe.now() - t0;
            shmem.barrier_all();
            (got, issued, completed)
        });
        for (got, issued, completed) in out.results {
            assert_eq!(got, [10, 20, 30, 40]);
            assert!(completed > issued, "quiet pays the round trip");
        }
    }

    #[test]
    fn nbi_operations_still_feed_the_hazard_detector() {
        let out = run(stampede(2, 1).with_heap_bytes(1 << 16), |pe| {
            let shmem = Shmem::new(pe, ShmemConfig::new(ConduitProfile::mvapich_shmem()));
            let buf = shmem.shmalloc::<i64>(1).unwrap();
            shmem.barrier_all();
            if shmem.my_pe() == 0 {
                shmem.put_nbi(buf, &[7], 1);
                let mut out_v = [0i64];
                shmem.get_nbi(buf, &mut out_v, 1); // no quiet in between
            }
            shmem.barrier_all();
        });
        assert_eq!(out.stats.hazards, 1);
    }

    #[test]
    fn local_view_works_within_a_node_only() {
        let out = run(stampede(2, 2).with_heap_bytes(1 << 16), |pe| {
            let shmem = Shmem::new(pe, ShmemConfig::new(ConduitProfile::mvapich_shmem()));
            let x = shmem.shmalloc::<i64>(4).unwrap();
            shmem.write_local(x, &[10, 20, 30, 40]);
            shmem.barrier_all();
            let same_node_peer = shmem.my_pe() ^ 1;
            let cross_node_peer = (shmem.my_pe() + 2) % 4;
            let view = shmem.local_view(x, same_node_peer);
            let remote_view_is_none = shmem.local_view(x, cross_node_peer).is_none();
            let v = view.as_ref().map(|w| w.read(2));
            if let Some(w) = &view {
                w.write(3, shmem.my_pe() as i64 + 100);
            }
            shmem.barrier_all();
            (v, remote_view_is_none, shmem.read_local_one(x.at(3)))
        });
        for (pe, (v, remote_none, slot3)) in out.results.iter().enumerate() {
            assert_eq!(*v, Some(30), "PE {pe} reads its neighbour directly");
            assert!(remote_none, "cross-node shmem_ptr must be null");
            assert_eq!(*slot3 as usize, (pe ^ 1) + 100, "neighbour wrote my slot 3");
        }
    }

    #[test]
    fn local_view_is_cheaper_than_message_path() {
        let out = run(generic_smp(2).with_heap_bytes(1 << 16), |pe| {
            let shmem = mk(pe);
            let x = shmem.shmalloc::<i64>(1).unwrap();
            shmem.barrier_all();
            if shmem.my_pe() == 0 {
                let t0 = pe.now();
                for _ in 0..100 {
                    let _ = shmem.g(x, 1);
                }
                let msg = pe.now() - t0;
                let view = shmem.local_view(x, 1).unwrap();
                let t1 = pe.now();
                for _ in 0..100 {
                    let _ = view.read(0);
                }
                let direct = pe.now() - t1;
                (msg, direct)
            } else {
                (0, 0)
            }
        });
        let (msg, direct) = out.results[0];
        assert!(direct * 5 < msg, "direct {direct} vs message {msg}");
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        run(generic_smp(1).with_heap_bytes(4096), |pe| {
            let shmem = Shmem::new(
                pe,
                ShmemConfig::new(ConduitProfile::mvapich_shmem()).with_pwrk_bytes(256),
            );
            assert!(shmem.shmalloc::<u64>(10_000).is_err());
            assert!(shmem.shmalloc::<u64>(8).is_ok());
        });
    }

    #[test]
    fn local_read_write_do_not_communicate() {
        let out = run(cfg(), |pe| {
            let shmem = mk(pe);
            let x = shmem.shmalloc::<u32>(4).unwrap();
            shmem.write_local(x, &[9, 8, 7, 6]);
            let mut buf = [0u32; 4];
            shmem.read_local(x, &mut buf);
            buf
        });
        assert_eq!(out.stats.rma_ops(), 0);
        for r in out.results {
            assert_eq!(r, [9, 8, 7, 6]);
        }
    }
}
