//! OpenSHMEM 1.x active sets: `(PE_start, logPE_stride, PE_size)` triples
//! describing the group of PEs participating in a collective.

use pgas_machine::machine::PeId;

/// An active set — the OpenSHMEM 1.x way of naming a PE subgroup: PEs
/// `PE_start + k * 2^logPE_stride` for `k in 0..PE_size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ActiveSet {
    pub pe_start: PeId,
    pub log_pe_stride: u32,
    pub pe_size: usize,
}

impl ActiveSet {
    /// The set containing every PE of an `n`-PE job.
    pub fn world(n: usize) -> ActiveSet {
        ActiveSet { pe_start: 0, log_pe_stride: 0, pe_size: n }
    }

    /// Construct from the C API's triple.
    pub fn new(pe_start: PeId, log_pe_stride: u32, pe_size: usize) -> ActiveSet {
        assert!(pe_size > 0, "active set must be non-empty");
        ActiveSet { pe_start, log_pe_stride, pe_size }
    }

    /// Stride in PEs.
    #[inline]
    pub fn stride(&self) -> usize {
        1usize << self.log_pe_stride
    }

    /// Number of participants.
    #[inline]
    pub fn len(&self) -> usize {
        self.pe_size
    }

    /// True when the set has a single member.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pe_size == 0
    }

    /// The `k`-th member.
    #[inline]
    pub fn member(&self, k: usize) -> PeId {
        debug_assert!(k < self.pe_size);
        self.pe_start + k * self.stride()
    }

    /// Membership test.
    pub fn contains(&self, pe: PeId) -> bool {
        pe >= self.pe_start
            && (pe - self.pe_start).is_multiple_of(self.stride())
            && (pe - self.pe_start) / self.stride() < self.pe_size
    }

    /// Rank of `pe` within the set, if a member.
    pub fn index_of(&self, pe: PeId) -> Option<usize> {
        self.contains(pe).then(|| (pe - self.pe_start) / self.stride())
    }

    /// All members in ascending PE order.
    pub fn members(&self) -> Vec<PeId> {
        (0..self.pe_size).map(|k| self.member(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_covers_all() {
        let s = ActiveSet::world(8);
        assert_eq!(s.members(), (0..8).collect::<Vec<_>>());
        for pe in 0..8 {
            assert_eq!(s.index_of(pe), Some(pe));
        }
        assert!(!s.contains(8));
    }

    #[test]
    fn strided_set() {
        // PEs 2, 6, 10, 14.
        let s = ActiveSet::new(2, 2, 4);
        assert_eq!(s.members(), vec![2, 6, 10, 14]);
        assert_eq!(s.index_of(10), Some(2));
        assert_eq!(s.index_of(4), None, "stride mismatch");
        assert_eq!(s.index_of(1), None, "below start");
        assert_eq!(s.index_of(18), None, "beyond size");
    }

    #[test]
    fn member_and_index_are_inverse() {
        let s = ActiveSet::new(3, 1, 5);
        for k in 0..s.len() {
            assert_eq!(s.index_of(s.member(k)), Some(k));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_set_rejected() {
        ActiveSet::new(0, 0, 0);
    }
}
