//! # openshmem — an OpenSHMEM-1.x-style library over a simulated PGAS cluster
//!
//! This crate reproduces the OpenSHMEM interface surface the paper maps
//! Coarray Fortran onto (its Table II):
//!
//! | Feature                 | C API                      | Here |
//! |-------------------------|----------------------------|------|
//! | Symmetric allocation    | `shmalloc` / `shfree`      | [`Shmem::shmalloc`] / [`Shmem::shfree`] |
//! | PE identity             | `my_pe` / `num_pes`        | [`Shmem::my_pe`] / [`Shmem::n_pes`] |
//! | Contiguous RMA          | `shmem_put/get/p/g`        | [`Shmem::put`] / [`Shmem::get`] / [`Shmem::p`] / [`Shmem::g`] |
//! | 1-D strided RMA         | `shmem_iput` / `shmem_iget`| [`Shmem::iput`] / [`Shmem::iget`] |
//! | Atomics                 | `shmem_swap/cswap/fadd/...`| [`Shmem::swap`] etc. |
//! | Point-to-point sync     | `shmem_wait_until`         | [`Shmem::wait_until`] |
//! | Ordering                | `shmem_quiet` / `fence`    | [`Shmem::quiet`] / [`Shmem::fence`] |
//! | Barriers                | `shmem_barrier(_all)`      | [`Shmem::barrier_all`] / [`Shmem::barrier`] |
//! | Broadcast               | `shmem_broadcast`          | [`Shmem::broadcast`] |
//! | Reductions              | `shmem_*_to_all`           | [`Shmem::sum_to_all`] etc. |
//! | Collect                 | `shmem_(f)collect`         | [`Shmem::fcollect`] / [`Shmem::collect`] |
//! | Global locks            | `shmem_set/test/clear_lock`| [`Shmem::set_lock`] etc. |
//! | Active messages (ext.)  | —                          | [`Shmem::am_send`] / [`Shmem::am_call`] |
//!
//! The library runs over `pgas-conduit`, so the same program can be executed
//! on any of the modeled communication substrates (Cray SHMEM, MVAPICH2-X
//! SHMEM, GASNet, MPI-3) and any of the modeled machines.

pub mod active_set;
pub mod alloc;
pub mod collectives;
pub mod data;
pub mod lock;
pub mod shmem;
pub mod team;

pub use active_set::ActiveSet;
pub use alloc::{AllocError, SymAlloc};
pub use data::{Scalar, SymPtr};
pub use pgas_conduit::{AmHandler, AmHandlerId, AmTarget, ConduitError};
pub use shmem::{AtomicWord, Cmp, LocalView, Shmem, ShmemConfig};
pub use team::Team;
