//! Typed views over symmetric memory.
//!
//! OpenSHMEM is a C API with one entry point per type (`shmem_int_put`,
//! `shmem_double_put`, ...). In Rust we express the same surface once,
//! generically, over the [`Scalar`] trait: fixed-size plain-old-data types
//! whose bytes can be moved through the symmetric heap.

use std::marker::PhantomData;

/// A fixed-size plain-old-data element that can live in symmetric memory.
///
/// Implementations convert through native-endian byte representations; no
/// `unsafe` is involved anywhere in the data path.
pub trait Scalar: Copy + PartialEq + std::fmt::Debug + Send + 'static {
    /// Size of one element in bytes.
    const BYTES: usize;
    /// Serialize into `out` (exactly `Self::BYTES` bytes).
    fn store(self, out: &mut [u8]);
    /// Deserialize from `b` (exactly `Self::BYTES` bytes).
    fn load(b: &[u8]) -> Self;
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const BYTES: usize = std::mem::size_of::<$t>();
            #[inline]
            fn store(self, out: &mut [u8]) {
                out[..Self::BYTES].copy_from_slice(&self.to_ne_bytes());
            }
            #[inline]
            fn load(b: &[u8]) -> Self {
                let mut tmp = [0u8; std::mem::size_of::<$t>()];
                tmp.copy_from_slice(&b[..Self::BYTES]);
                <$t>::from_ne_bytes(tmp)
            }
        }
    )*};
}

impl_scalar!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// Serialize a slice of scalars into a fresh byte buffer.
pub fn to_bytes<T: Scalar>(src: &[T]) -> Vec<u8> {
    let mut out = vec![0u8; src.len() * T::BYTES];
    for (i, v) in src.iter().enumerate() {
        v.store(&mut out[i * T::BYTES..(i + 1) * T::BYTES]);
    }
    out
}

/// Deserialize bytes into `out` (lengths must correspond).
pub fn from_bytes<T: Scalar>(bytes: &[u8], out: &mut [T]) {
    assert_eq!(bytes.len(), out.len() * T::BYTES, "byte/element length mismatch");
    for (i, v) in out.iter_mut().enumerate() {
        *v = T::load(&bytes[i * T::BYTES..(i + 1) * T::BYTES]);
    }
}

/// A typed handle to a symmetric allocation: the same offset is valid in
/// every PE's heap (that is what "symmetric" means). `SymPtr` is plain data —
/// it can be stored, copied, and even shipped to other PEs.
pub struct SymPtr<T: Scalar> {
    off: usize,
    count: usize,
    _t: PhantomData<T>,
}

impl<T: Scalar> Clone for SymPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Scalar> Copy for SymPtr<T> {}

impl<T: Scalar> std::fmt::Debug for SymPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SymPtr<{}>({}+{})", std::any::type_name::<T>(), self.off, self.count)
    }
}

impl<T: Scalar> PartialEq for SymPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.off == other.off && self.count == other.count
    }
}
impl<T: Scalar> Eq for SymPtr<T> {}

impl<T: Scalar> SymPtr<T> {
    pub(crate) fn new(off: usize, count: usize) -> Self {
        SymPtr { off, count, _t: PhantomData }
    }

    /// Construct a typed handle from a raw symmetric-heap byte offset.
    ///
    /// Advanced: the offset must lie within memory obtained from symmetric
    /// allocation (e.g. a sub-range of a `SymPtr<u8>` buffer). Used by
    /// runtimes that manage non-symmetric data inside a symmetric buffer,
    /// like the CAF lock queue nodes.
    pub fn from_raw_parts(off: usize, count: usize) -> SymPtr<T> {
        SymPtr::new(off, count)
    }

    /// Byte offset within the symmetric heap.
    #[inline]
    pub fn offset(&self) -> usize {
        self.off
    }

    /// Number of `T` elements in the allocation this handle covers.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Length in bytes.
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.count * T::BYTES
    }

    /// Sub-handle starting at element `i` (bounds-checked), covering the
    /// remaining elements.
    pub fn at(&self, i: usize) -> SymPtr<T> {
        assert!(i <= self.count, "index {i} out of bounds for {} elements", self.count);
        SymPtr::new(self.off + i * T::BYTES, self.count - i)
    }

    /// Sub-handle of `len` elements starting at element `i`.
    pub fn slice(&self, i: usize, len: usize) -> SymPtr<T> {
        assert!(i + len <= self.count, "slice {i}+{len} out of bounds for {}", self.count);
        SymPtr::new(self.off + i * T::BYTES, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip_all_types() {
        fn rt<T: Scalar>(v: T) {
            let mut b = vec![0u8; T::BYTES];
            v.store(&mut b);
            assert_eq!(T::load(&b), v);
        }
        rt(0xABu8);
        rt(-7i8);
        rt(0xBEEFu16);
        rt(-1234i16);
        rt(0xDEAD_BEEFu32);
        rt(-123_456_789i32);
        rt(u64::MAX);
        rt(i64::MIN);
        rt(3.5f32);
        rt(-2.25e300f64);
    }

    #[test]
    fn slice_conversion_roundtrip() {
        let src = [1.5f64, -2.5, 3.25, 0.0];
        let bytes = to_bytes(&src);
        assert_eq!(bytes.len(), 32);
        let mut out = [0.0f64; 4];
        from_bytes(&bytes, &mut out);
        assert_eq!(out, src);
    }

    #[test]
    fn symptr_arithmetic() {
        let p: SymPtr<i32> = SymPtr::new(64, 10);
        assert_eq!(p.byte_len(), 40);
        let q = p.at(3);
        assert_eq!(q.offset(), 76);
        assert_eq!(q.count(), 7);
        let s = p.slice(2, 4);
        assert_eq!(s.offset(), 72);
        assert_eq!(s.count(), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn symptr_at_bounds_checked() {
        SymPtr::<u64>::new(0, 4).at(5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn symptr_slice_bounds_checked() {
        SymPtr::<u64>::new(0, 4).slice(2, 3);
    }
}
