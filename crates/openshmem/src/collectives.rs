//! Collective operations: broadcast, reductions, collect, all-to-all.
//!
//! These are built from the same one-sided primitives the rest of the
//! library exposes — binomial trees of puts, remote atomics for signalling,
//! and `wait_until` on symmetric flag words — so their virtual-time cost
//! *emerges* from the message pattern rather than being scripted. This
//! matches the paper's note that UHCAF implements CAF reductions and
//! broadcasts with one-sided communication and remote atomics.
//!
//! Signalling discipline: flag values within one collective call are
//! monotonically increasing sequence numbers (`chunk + 1`), so no mid-call
//! resets are needed; every PE resets the flag words it consumed before
//! arriving at the closing barrier, which orders the resets before any
//! flag writes of the next collective.

use crate::active_set::ActiveSet;
use crate::data::{from_bytes, to_bytes, Scalar, SymPtr};
use crate::shmem::{Cmp, Shmem, BCAST_FLAG_BASE, COLLECT_FLAG_BASE, REDUCE_FLAG_BASE};
use pgas_machine::stats::Stats;
use pgas_machine::trace::{Span, SpanKind};

fn ceil_log2(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

impl<'m> Shmem<'m> {
    /// Run one collective under an enclosing `Collective` trace scope (the
    /// constituent puts/quiets/barriers nest as its children) and feed the
    /// metrics registry. Pure pass-through when observability is off.
    fn collective_op<R>(&self, f: impl FnOnce() -> R) -> R {
        let m = self.machine();
        Stats::bump(&m.stats().collectives);
        let pe = self.my_pe();
        let tracer = m.tracer();
        let traced = tracer.enabled();
        let begin = self.ctx().pe().now();
        if traced {
            tracer.begin_scope(pe);
        }
        let r = f();
        let end = self.ctx().pe().now();
        if traced {
            tracer.end_scope(pe, Span::op(pe, SpanKind::Collective, begin, end, None, 0));
        }
        let metrics = m.metrics();
        if metrics.enabled() {
            metrics.count(pe, "collective", None, 1);
            metrics.observe(pe, "collective_ns", None, end.saturating_sub(begin));
        }
        r
    }
    fn wait_flag_at_least(&self, slot: usize, min: u64) {
        self.wait_until(self.psync().at(slot), Cmp::Ge, min);
    }

    fn set_flag(&self, dest_pe: usize, slot: usize, value: u64) {
        self.atomic_set(self.psync().at(slot), value, dest_pe);
    }

    fn reset_flag_local(&self, slot: usize) {
        self.write_local_u64(self.psync().at(slot).offset(), 0);
    }

    /// Binomial broadcast of the byte region `[off, off+len)` (same offset on
    /// every member — symmetric) from the member with relative rank
    /// `root_rel`. The root reads from `src_off`, everyone else forwards
    /// from `off`. `seq` is the flag sequence number for this shipment.
    fn bcast_region(
        &self,
        set: &ActiveSet,
        root_rel: usize,
        src_off: usize,
        off: usize,
        len: usize,
        seq: u64,
    ) {
        let n = set.len();
        if n <= 1 || len == 0 {
            return;
        }
        let me_rel_abs = set.index_of(self.my_pe()).expect("caller must be in the active set");
        let rel = (me_rel_abs + n - root_rel) % n;
        let rounds = ceil_log2(n);
        let my_read_off = if rel == 0 {
            src_off
        } else {
            // Receive: round floor(log2(rel)) from rel - 2^round.
            let k = (usize::BITS - 1 - rel.leading_zeros()) as usize;
            self.wait_flag_at_least(BCAST_FLAG_BASE + k, seq);
            off
        };
        // Forward to rel + 2^j for every j with 2^j > rel.
        let mut payload = vec![0u8; len];
        self.read_local_bytes(my_read_off, &mut payload, "broadcast read");
        for j in 0..rounds {
            if rel < (1 << j) && rel + (1 << j) < n {
                let tgt_rel = (rel + (1 << j) + root_rel) % n;
                let tgt = set.member(tgt_rel);
                self.ctx().put(tgt, off, &payload);
                self.quiet();
                // floor(log2(rel + 2^j)) == j because rel < 2^j.
                self.set_flag(tgt, BCAST_FLAG_BASE + j, seq);
            }
        }
    }

    fn reset_bcast_flags(&self, n: usize) {
        for k in 0..ceil_log2(n).max(1) {
            self.reset_flag_local(BCAST_FLAG_BASE + k);
        }
    }

    /// `shmem_broadcast`: replicate `nelems` elements of the root's `src`
    /// into every other member's `dest`. Per the OpenSHMEM spec, the root's
    /// own `dest` is *not* updated.
    pub fn broadcast<T: Scalar>(
        &self,
        dest: SymPtr<T>,
        src: SymPtr<T>,
        nelems: usize,
        pe_root: usize,
        set: &ActiveSet,
    ) {
        assert!(
            nelems <= dest.count() && nelems <= src.count(),
            "broadcast length overruns buffers"
        );
        assert!(pe_root < set.len(), "root rank {} outside active set of {}", pe_root, set.len());
        self.collective_op(|| {
            self.quiet();
            self.bcast_region(set, pe_root, src.offset(), dest.offset(), nelems * T::BYTES, 1);
            self.reset_bcast_flags(set.len());
            self.barrier(set);
        })
    }

    /// Generic all-reduce: combine `nelems` elements of `src` across the set
    /// with `op` (must be associative and agree on every PE) and leave the
    /// result in every member's `dest`. Deterministic combine order
    /// (binomial tree by relative rank), so floating-point results are
    /// reproducible run to run.
    pub fn reduce_to_all<T: Scalar>(
        &self,
        dest: SymPtr<T>,
        src: SymPtr<T>,
        nelems: usize,
        set: &ActiveSet,
        op: impl Fn(T, T) -> T + Copy,
    ) {
        assert!(nelems <= dest.count() && nelems <= src.count(), "reduction overruns buffers");
        self.collective_op(|| self.reduce_to_all_inner(dest, src, nelems, set, op))
    }

    fn reduce_to_all_inner<T: Scalar>(
        &self,
        dest: SymPtr<T>,
        src: SymPtr<T>,
        nelems: usize,
        set: &ActiveSet,
        op: impl Fn(T, T) -> T + Copy,
    ) {
        self.quiet();
        let n = set.len();
        let rel = set.index_of(self.my_pe()).expect("caller must be in the active set");
        let rounds = ceil_log2(n).max(1);
        // Per-round pWrk slots so senders of later rounds cannot clobber
        // un-consumed partials of earlier rounds.
        let slot_bytes = (self.pwrk().count() / rounds / T::BYTES * T::BYTES).max(T::BYTES);
        let cap = slot_bytes / T::BYTES;
        let mut chunk_start = 0;
        let mut seq = 1u64;
        while chunk_start < nelems || (nelems == 0 && chunk_start == 0) {
            let len = cap.min(nelems - chunk_start);
            if nelems == 0 {
                break;
            }
            let mut acc = vec![T::load(&vec![0u8; T::BYTES]); len];
            self.read_local(src.slice(chunk_start, len), &mut acc);
            // Binomial gather towards relative rank 0.
            for k in 0..rounds {
                let bit = 1usize << k;
                if rel & (bit - 1) != 0 {
                    continue; // already sent in an earlier round
                }
                if rel & bit != 0 {
                    // Sender: partial goes to rel - 2^k's pWrk slot k.
                    let tgt = set.member(rel - bit);
                    let slot_off = self.pwrk().offset() + k * slot_bytes;
                    self.ctx().put(tgt, slot_off, &to_bytes(&acc));
                    self.quiet();
                    self.set_flag(tgt, REDUCE_FLAG_BASE + k, seq);
                    break; // done gathering this chunk
                } else if rel + bit < n {
                    // Receiver: combine partner's partial.
                    self.wait_flag_at_least(REDUCE_FLAG_BASE + k, seq);
                    let slot_off = self.pwrk().offset() + k * slot_bytes;
                    let mut buf = vec![0u8; len * T::BYTES];
                    self.read_local_bytes(slot_off, &mut buf, "reduce read");
                    let mut partial = acc.clone();
                    from_bytes(&buf, &mut partial);
                    for (a, p) in acc.iter_mut().zip(partial) {
                        *a = op(*a, p);
                    }
                    self.ctx().pe().compute_ops(len as u64);
                }
            }
            // Relative root holds the chunk result: store locally, broadcast.
            if rel == 0 {
                self.write_local(dest.slice(chunk_start, len), &acc);
            }
            self.bcast_region(
                set,
                0,
                dest.offset() + chunk_start * T::BYTES,
                dest.offset() + chunk_start * T::BYTES,
                len * T::BYTES,
                seq,
            );
            chunk_start += len;
            seq += 1;
        }
        for k in 0..rounds {
            self.reset_flag_local(REDUCE_FLAG_BASE + k);
        }
        self.reset_bcast_flags(n);
        self.barrier(set);
    }

    /// `shmem_*_sum_to_all`.
    pub fn sum_to_all<T: Scalar + std::ops::Add<Output = T>>(
        &self,
        dest: SymPtr<T>,
        src: SymPtr<T>,
        nelems: usize,
        set: &ActiveSet,
    ) {
        self.reduce_to_all(dest, src, nelems, set, |a, b| a + b);
    }

    /// `shmem_*_prod_to_all`.
    pub fn prod_to_all<T: Scalar + std::ops::Mul<Output = T>>(
        &self,
        dest: SymPtr<T>,
        src: SymPtr<T>,
        nelems: usize,
        set: &ActiveSet,
    ) {
        self.reduce_to_all(dest, src, nelems, set, |a, b| a * b);
    }

    /// `shmem_*_max_to_all`.
    pub fn max_to_all<T: Scalar + PartialOrd>(
        &self,
        dest: SymPtr<T>,
        src: SymPtr<T>,
        nelems: usize,
        set: &ActiveSet,
    ) {
        self.reduce_to_all(dest, src, nelems, set, |a, b| if b > a { b } else { a });
    }

    /// `shmem_*_min_to_all`.
    pub fn min_to_all<T: Scalar + PartialOrd>(
        &self,
        dest: SymPtr<T>,
        src: SymPtr<T>,
        nelems: usize,
        set: &ActiveSet,
    ) {
        self.reduce_to_all(dest, src, nelems, set, |a, b| if b < a { b } else { a });
    }

    /// `shmem_*_and_to_all`.
    pub fn and_to_all<T: Scalar + std::ops::BitAnd<Output = T>>(
        &self,
        dest: SymPtr<T>,
        src: SymPtr<T>,
        nelems: usize,
        set: &ActiveSet,
    ) {
        self.reduce_to_all(dest, src, nelems, set, |a, b| a & b);
    }

    /// `shmem_*_or_to_all`.
    pub fn or_to_all<T: Scalar + std::ops::BitOr<Output = T>>(
        &self,
        dest: SymPtr<T>,
        src: SymPtr<T>,
        nelems: usize,
        set: &ActiveSet,
    ) {
        self.reduce_to_all(dest, src, nelems, set, |a, b| a | b);
    }

    /// `shmem_*_xor_to_all`.
    pub fn xor_to_all<T: Scalar + std::ops::BitXor<Output = T>>(
        &self,
        dest: SymPtr<T>,
        src: SymPtr<T>,
        nelems: usize,
        set: &ActiveSet,
    ) {
        self.reduce_to_all(dest, src, nelems, set, |a, b| a ^ b);
    }

    /// `shmem_fcollect`: concatenate every member's fixed-size `src` block
    /// into every member's `dest`, ordered by relative rank.
    pub fn fcollect<T: Scalar>(&self, dest: SymPtr<T>, src: &[T], set: &ActiveSet) {
        assert!(
            set.len() * src.len() <= dest.count(),
            "fcollect needs {} elements, dest has {}",
            set.len() * src.len(),
            dest.count()
        );
        self.collective_op(|| {
            self.quiet();
            let rel = set.index_of(self.my_pe()).expect("caller must be in the active set");
            for k in 0..set.len() {
                let tgt = set.member(k);
                self.put(dest.slice(rel * src.len(), src.len()), src, tgt);
            }
            self.barrier(set);
        })
    }

    /// `shmem_collect`: like [`Self::fcollect`] but with per-PE block sizes.
    /// Returns the total number of elements collected.
    pub fn collect<T: Scalar>(&self, dest: SymPtr<T>, src: &[T], set: &ActiveSet) -> usize {
        self.collective_op(|| self.collect_inner(dest, src, set))
    }

    fn collect_inner<T: Scalar>(&self, dest: SymPtr<T>, src: &[T], set: &ActiveSet) -> usize {
        self.quiet();
        let n = set.len();
        let rel = set.index_of(self.my_pe()).expect("caller must be in the active set");
        // Round 1: exchange sizes through pWrk (first n u64 slots).
        assert!(n * 8 <= self.pwrk().count(), "active set too large for pWrk size exchange");
        let sizes_base = self.pwrk().offset();
        for k in 0..n {
            let tgt = set.member(k);
            let bytes = (src.len() as u64).to_ne_bytes();
            self.ctx().put(tgt, sizes_base + rel * 8, &bytes);
        }
        self.barrier(set);
        // One checked read of the whole size table (this also lifts the
        // clock past the peers' size puts, which the old raw read skipped).
        let mut size_bytes = vec![0u8; n * 8];
        self.read_local_bytes(sizes_base, &mut size_bytes, "collect read");
        let sizes: Vec<usize> = size_bytes
            .chunks_exact(8)
            .map(|b| u64::from_ne_bytes(b.try_into().unwrap()) as usize)
            .collect();
        let total: usize = sizes.iter().sum();
        assert!(total <= dest.count(), "collect needs {total} elements, dest has {}", dest.count());
        let my_off: usize = sizes[..rel].iter().sum();
        // Round 2: everyone places its block at its global offset.
        for k in 0..n {
            let tgt = set.member(k);
            if !src.is_empty() {
                self.put(dest.slice(my_off, src.len()), src, tgt);
            }
        }
        self.barrier(set);
        total
    }

    /// `shmem_alltoall`: member `i`'s `src[j*nelems..][..nelems]` lands in
    /// member `j`'s `dest[i*nelems..][..nelems]`.
    pub fn alltoall<T: Scalar>(&self, dest: SymPtr<T>, src: &[T], nelems: usize, set: &ActiveSet) {
        let n = set.len();
        assert_eq!(src.len(), n * nelems, "alltoall source must hold one block per member");
        assert!(n * nelems <= dest.count(), "alltoall destination too small");
        self.collective_op(|| {
            self.quiet();
            let rel = set.index_of(self.my_pe()).expect("caller must be in the active set");
            for j in 0..n {
                let tgt = set.member(j);
                self.put(dest.slice(rel * nelems, nelems), &src[j * nelems..(j + 1) * nelems], tgt);
            }
            self.barrier(set);
        })
    }

    /// Unused-slot accessor for tests that need a scratch flag word.
    #[doc(hidden)]
    pub fn scratch_flag_slot(&self) -> usize {
        COLLECT_FLAG_BASE + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shmem::ShmemConfig;
    use pgas_conduit::ConduitProfile;
    use pgas_machine::{generic_smp, run, stampede, Platform};

    fn cfg(n: usize) -> pgas_machine::MachineConfig {
        generic_smp(n).with_heap_bytes(1 << 17)
    }

    fn mk(pe: pgas_machine::machine::Pe<'_>) -> Shmem<'_> {
        Shmem::new(pe, ShmemConfig::new(ConduitProfile::native_shmem(Platform::GenericSmp)))
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn broadcast_from_each_root() {
        for root in 0..4 {
            let out = run(cfg(5), |pe| {
                let shmem = mk(pe);
                let src = shmem.shmalloc::<i64>(6).unwrap();
                let dest = shmem.shmalloc::<i64>(6).unwrap();
                let mine: Vec<i64> = (0..6).map(|i| (shmem.my_pe() * 100 + i) as i64).collect();
                shmem.write_local(src, &mine);
                shmem.write_local(dest, &[-1; 6]);
                shmem.barrier_all();
                let set = ActiveSet::new(0, 0, 4); // PEs 0..4; PE 4 sits out
                if shmem.my_pe() < 4 {
                    shmem.broadcast(dest, src, 6, root, &set);
                }
                let mut d = [0i64; 6];
                shmem.read_local(dest, &mut d);
                d
            });
            let expect: Vec<i64> = (0..6).map(|i| (root * 100 + i) as i64).collect();
            for (pe, r) in out.results.iter().enumerate() {
                if pe == root || pe == 4 {
                    assert_eq!(r, &[-1i64; 6], "root/outsider dest untouched (PE {pe})");
                } else {
                    assert_eq!(&r[..], &expect[..], "PE {pe}, root {root}");
                }
            }
        }
    }

    #[test]
    fn sum_to_all_is_correct_for_sizes_and_types() {
        for n in [1usize, 2, 3, 4, 7, 8] {
            let out = run(cfg(n), |pe| {
                let shmem = mk(pe);
                let src = shmem.shmalloc::<i64>(5).unwrap();
                let dest = shmem.shmalloc::<i64>(5).unwrap();
                let mine: Vec<i64> =
                    (0..5).map(|i| (shmem.my_pe() + 1) as i64 * (i + 1) as i64).collect();
                shmem.write_local(src, &mine);
                shmem.barrier_all();
                shmem.sum_to_all(dest, src, 5, &shmem.world());
                let mut d = [0i64; 5];
                shmem.read_local(dest, &mut d);
                d
            });
            let tot: i64 = (1..=n as i64).sum();
            for r in out.results {
                for (i, v) in r.iter().enumerate() {
                    assert_eq!(*v, tot * (i + 1) as i64, "n={n}");
                }
            }
        }
    }

    #[test]
    fn float_reduction_is_deterministic_and_correct() {
        let run_once = || {
            let out = run(cfg(6), |pe| {
                let shmem = mk(pe);
                let src = shmem.shmalloc::<f64>(3).unwrap();
                let dest = shmem.shmalloc::<f64>(3).unwrap();
                shmem.write_local(src, &[0.1 * (shmem.my_pe() as f64 + 1.0); 3]);
                shmem.barrier_all();
                shmem.sum_to_all(dest, src, 3, &shmem.world());
                let mut d = [0.0f64; 3];
                shmem.read_local(dest, &mut d);
                d
            });
            out.results
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "binomial order must make float sums bit-reproducible");
        for r in &a {
            for v in r {
                assert!((v - 2.1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn min_max_prod_bitwise_reductions() {
        let out = run(cfg(4), |pe| {
            let shmem = mk(pe);
            let src = shmem.shmalloc::<u64>(1).unwrap();
            let dmax = shmem.shmalloc::<u64>(1).unwrap();
            let dmin = shmem.shmalloc::<u64>(1).unwrap();
            let dprod = shmem.shmalloc::<u64>(1).unwrap();
            let dand = shmem.shmalloc::<u64>(1).unwrap();
            let dor = shmem.shmalloc::<u64>(1).unwrap();
            let dxor = shmem.shmalloc::<u64>(1).unwrap();
            let me = shmem.my_pe() as u64 + 3; // 3,4,5,6
            shmem.write_local(src, &[me]);
            shmem.barrier_all();
            let w = shmem.world();
            shmem.max_to_all(dmax, src, 1, &w);
            shmem.min_to_all(dmin, src, 1, &w);
            shmem.prod_to_all(dprod, src, 1, &w);
            shmem.and_to_all(dand, src, 1, &w);
            shmem.or_to_all(dor, src, 1, &w);
            shmem.xor_to_all(dxor, src, 1, &w);
            (
                shmem.read_local_one(dmax),
                shmem.read_local_one(dmin),
                shmem.read_local_one(dprod),
                shmem.read_local_one(dand),
                shmem.read_local_one(dor),
                shmem.read_local_one(dxor),
            )
        });
        // Values 3,4,5,6: AND = 0b100 & ... = 0, OR = 0b111, XOR = 3^4^5^6 = 4.
        for r in out.results {
            assert_eq!(r, (6, 3, 360, 0, 7, 4));
        }
    }

    #[test]
    fn large_reduction_chunks_through_pwrk() {
        // pWrk of 256 bytes forces many chunks for 500 f64 elements.
        let out = run(cfg(4), |pe| {
            let shmem = Shmem::new(
                pe,
                ShmemConfig::new(ConduitProfile::native_shmem(Platform::GenericSmp))
                    .with_pwrk_bytes(256),
            );
            let src = shmem.shmalloc::<f64>(500).unwrap();
            let dest = shmem.shmalloc::<f64>(500).unwrap();
            let mine: Vec<f64> = (0..500).map(|i| i as f64 + shmem.my_pe() as f64).collect();
            shmem.write_local(src, &mine);
            shmem.barrier_all();
            shmem.sum_to_all(dest, src, 500, &shmem.world());
            let mut d = vec![0.0f64; 500];
            shmem.read_local(dest, &mut d);
            d
        });
        for r in out.results {
            for (i, v) in r.iter().enumerate() {
                assert_eq!(*v, 4.0 * i as f64 + 6.0, "element {i}");
            }
        }
    }

    #[test]
    fn reduce_on_strided_active_set() {
        let out = run(cfg(8), |pe| {
            let shmem = mk(pe);
            let src = shmem.shmalloc::<i64>(1).unwrap();
            let dest = shmem.shmalloc::<i64>(1).unwrap();
            shmem.write_local(src, &[shmem.my_pe() as i64]);
            shmem.write_local(dest, &[-1]);
            shmem.barrier_all();
            let evens = ActiveSet::new(0, 1, 4); // 0,2,4,6
            if shmem.my_pe().is_multiple_of(2) {
                shmem.sum_to_all(dest, src, 1, &evens);
            }
            shmem.barrier_all();
            shmem.read_local_one(dest)
        });
        for (pe, r) in out.results.iter().enumerate() {
            if pe % 2 == 0 {
                assert_eq!(*r, 12);
            } else {
                assert_eq!(*r, -1);
            }
        }
    }

    #[test]
    fn fcollect_orders_blocks_by_rank() {
        let out = run(cfg(4), |pe| {
            let shmem = mk(pe);
            let dest = shmem.shmalloc::<i32>(8).unwrap();
            shmem.barrier_all();
            let src = [shmem.my_pe() as i32 * 10, shmem.my_pe() as i32 * 10 + 1];
            shmem.fcollect(dest, &src, &shmem.world());
            let mut d = [0i32; 8];
            shmem.read_local(dest, &mut d);
            d
        });
        for r in out.results {
            assert_eq!(r, [0, 1, 10, 11, 20, 21, 30, 31]);
        }
    }

    #[test]
    fn collect_handles_variable_sizes() {
        let out = run(cfg(4), |pe| {
            let shmem = mk(pe);
            let dest = shmem.shmalloc::<i32>(32).unwrap();
            shmem.barrier_all();
            // PE k contributes k+1 elements with value k.
            let src: Vec<i32> = vec![shmem.my_pe() as i32; shmem.my_pe() + 1];
            let total = shmem.collect(dest, &src, &shmem.world());
            let mut d = vec![0i32; total];
            shmem.read_local(dest.slice(0, total), &mut d);
            d
        });
        for r in out.results {
            assert_eq!(r, vec![0, 1, 1, 2, 2, 2, 3, 3, 3, 3]);
        }
    }

    #[test]
    fn alltoall_transposes_blocks() {
        let out = run(cfg(3), |pe| {
            let shmem = mk(pe);
            let dest = shmem.shmalloc::<i64>(6).unwrap();
            shmem.barrier_all();
            let me = shmem.my_pe() as i64;
            // Block j carries (me, j).
            let src: Vec<i64> = (0..3).flat_map(|j| [me * 10 + j, me * 10 + j]).collect();
            shmem.alltoall(dest, &src, 2, &shmem.world());
            let mut d = [0i64; 6];
            shmem.read_local(dest, &mut d);
            d
        });
        for (j, r) in out.results.iter().enumerate() {
            let expect: Vec<i64> = (0..3)
                .flat_map(|i| {
                    let v = (i * 10 + j) as i64;
                    [v, v]
                })
                .collect();
            assert_eq!(&r[..], &expect[..], "PE {j}");
        }
    }

    #[test]
    fn collectives_work_over_multiple_nodes() {
        let out = run(stampede(4, 2).with_heap_bytes(1 << 16), |pe| {
            let shmem = Shmem::new(pe, ShmemConfig::new(ConduitProfile::mvapich_shmem()));
            let src = shmem.shmalloc::<i64>(1).unwrap();
            let dest = shmem.shmalloc::<i64>(1).unwrap();
            shmem.write_local(src, &[1]);
            shmem.barrier_all();
            shmem.sum_to_all(dest, src, 1, &shmem.world());
            shmem.read_local_one(dest)
        });
        for r in &out.results {
            assert_eq!(*r, 8);
        }
        // Reduction over 2 nodes must have cost at least one wire latency.
        assert!(out.makespan_ns() > 900);
    }

    #[test]
    fn back_to_back_collectives_do_not_cross_talk() {
        // NOTE: each collective uses its own destination buffer — reading a
        // buffer locally while a peer's next collective targets it is a data
        // race under OpenSHMEM semantics (and this simulator faithfully
        // exhibits it).
        let out = run(cfg(4), |pe| {
            let shmem = mk(pe);
            let src = shmem.shmalloc::<i64>(1).unwrap();
            let dsum = shmem.shmalloc::<i64>(1).unwrap();
            let dbcast = shmem.shmalloc::<i64>(1).unwrap();
            let b = shmem.shmalloc::<i64>(1).unwrap();
            shmem.barrier_all();
            let mut results = Vec::new();
            for round in 0..5i64 {
                shmem.write_local(src, &[round + shmem.my_pe() as i64]);
                shmem.sum_to_all(dsum, src, 1, &shmem.world());
                results.push(shmem.read_local_one(dsum));
                shmem.write_local(b, &[round * 100 + shmem.my_pe() as i64]);
                shmem.broadcast(dbcast, b, 1, 2, &shmem.world());
                if shmem.my_pe() != 2 {
                    results.push(shmem.read_local_one(dbcast));
                }
                shmem.barrier_all();
            }
            results
        });
        for (pe, r) in out.results.iter().enumerate() {
            let mut k = 0;
            for round in 0..5i64 {
                assert_eq!(r[k], 4 * round + 6, "sum, PE {pe} round {round}");
                k += 1;
                if pe != 2 {
                    assert_eq!(r[k], round * 100 + 2, "bcast, PE {pe} round {round}");
                    k += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod repeated_reduction_tests {
    use super::*;
    use crate::shmem::ShmemConfig;
    use pgas_conduit::ConduitProfile;
    use pgas_machine::{generic_smp, run, Platform};

    #[test]
    fn two_sums_in_a_row() {
        let out = run(generic_smp(4).with_heap_bytes(1 << 17), |pe| {
            let shmem = Shmem::new(
                pe,
                ShmemConfig::new(ConduitProfile::native_shmem(Platform::GenericSmp)),
            );
            let src = shmem.shmalloc::<i64>(1).unwrap();
            let dest = shmem.shmalloc::<i64>(1).unwrap();
            shmem.barrier_all();
            let mut v = Vec::new();
            for round in 0..10i64 {
                shmem.write_local(src, &[round + shmem.my_pe() as i64]);
                shmem.sum_to_all(dest, src, 1, &shmem.world());
                v.push(shmem.read_local_one(dest));
            }
            v
        });
        for (pe, r) in out.results.iter().enumerate() {
            for round in 0..10i64 {
                assert_eq!(r[round as usize], 4 * round + 6, "PE {pe} round {round}");
            }
        }
    }
}
