//! OpenSHMEM distributed locks (`shmem_set_lock` / `shmem_test_lock` /
//! `shmem_clear_lock`).
//!
//! Per the specification, a lock is a symmetric 8-byte word treated as a
//! **single, logically global entity**: acquiring it excludes every other PE,
//! everywhere. There is no way to lock "the copy on PE j" — which is exactly
//! why the paper (§IV-D) rejects these locks as an implementation vehicle
//! for CAF's per-image locks and adapts the MCS algorithm instead (see the
//! `caf` crate).
//!
//! The implementation here is the classic test-and-set on the word's home
//! PE (PE 0 of the world) with bounded exponential backoff, which is what
//! several production SHMEM libraries ship.

use crate::data::SymPtr;
use crate::shmem::Shmem;

/// Home PE of every global lock word.
const LOCK_HOME: usize = 0;

/// Backoff bounds (virtual nanoseconds).
const BACKOFF_MIN_NS: f64 = 400.0;
const BACKOFF_MAX_NS: f64 = 64_000.0;

impl<'m> Shmem<'m> {
    /// `shmem_set_lock`: acquire the global lock, spinning with exponential
    /// backoff on the home PE's word.
    pub fn set_lock(&self, lock: SymPtr<u64>) {
        let me = self.my_pe() as u64 + 1;
        let mut backoff = BACKOFF_MIN_NS;
        let start = self.ctx().pe().now();
        loop {
            let prev = self.cswap(lock, 0u64, me, LOCK_HOME);
            if prev == 0 {
                self.charge_spin_wait(start);
                return;
            }
            // Back off in virtual time; yield the OS thread so the holder
            // can run.
            self.ctx().pe().advance(backoff);
            backoff = (backoff * 2.0).min(BACKOFF_MAX_NS);
            std::thread::yield_now();
        }
    }

    /// Account for a spin-wait that ended at the current virtual time.
    ///
    /// Whether the wait manifested as *physical* retries depends on OS
    /// scheduling (a thread may get lucky and see the word free on its
    /// first CAS even though, in virtual time, it waited out several
    /// holders via the causality lift). So the wait is measured on the
    /// virtual clock and charged uniformly: the expected half-backoff
    /// discretization delay, plus the polling messages the wait implies on
    /// the home PE's NIC — the remote-spinning cost MCS locks avoid (§IV-D).
    fn charge_spin_wait(&self, start: u64) {
        let base = self.ctx().cost_model().amo_rtt_estimate_ns(self.my_pe(), LOCK_HOME);
        let waited = (self.ctx().pe().now() - start) as f64 - base;
        if waited <= base {
            return; // essentially uncontended
        }
        // Exponential backoff settles near min(waited/4, max); polls are
        // spaced a round trip plus a backoff apart.
        let steady = (waited / 4.0).clamp(BACKOFF_MIN_NS, BACKOFF_MAX_NS);
        self.ctx().pe().advance(steady * 0.5);
        let polls = (waited / (steady + base)).ceil().min(128.0) as u64;
        self.ctx().charge_poll_traffic(LOCK_HOME, polls);
    }

    /// `shmem_test_lock`: try once; `true` means acquired.
    pub fn test_lock(&self, lock: SymPtr<u64>) -> bool {
        let me = self.my_pe() as u64 + 1;
        self.cswap(lock, 0u64, me, LOCK_HOME) == 0
    }

    /// `shmem_clear_lock`: release. Panics if the caller does not hold the
    /// lock (a usage error the C API leaves undefined).
    pub fn clear_lock(&self, lock: SymPtr<u64>) {
        let me = self.my_pe() as u64 + 1;
        let prev = self.cswap(lock, me, 0u64, LOCK_HOME);
        assert_eq!(
            prev,
            me,
            "shmem_clear_lock by PE {} which does not hold the lock (holder word: {prev})",
            self.my_pe()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shmem::ShmemConfig;
    use pgas_conduit::ConduitProfile;
    use pgas_machine::{generic_smp, run, run_with_result, Platform};

    fn mk(pe: pgas_machine::machine::Pe<'_>) -> Shmem<'_> {
        Shmem::new(pe, ShmemConfig::new(ConduitProfile::native_shmem(Platform::GenericSmp)))
    }

    #[test]
    fn lock_provides_mutual_exclusion() {
        let iters = 50;
        let out = run(generic_smp(6).with_heap_bytes(1 << 16), |pe| {
            let shmem = mk(pe);
            let lock = shmem.shmalloc::<u64>(1).unwrap();
            let counter = shmem.shmalloc::<i64>(1).unwrap();
            shmem.barrier_all();
            for _ in 0..iters {
                shmem.set_lock(lock);
                // Unprotected read-modify-write: only safe under the lock.
                let v = shmem.g(counter, 0);
                shmem.p(counter, v + 1, 0);
                shmem.quiet();
                shmem.clear_lock(lock);
            }
            shmem.barrier_all();
            shmem.g(counter, 0)
        });
        for r in out.results {
            assert_eq!(r, 6 * iters);
        }
    }

    #[test]
    fn test_lock_fails_while_held() {
        let out = run(generic_smp(2).with_heap_bytes(1 << 16), |pe| {
            let shmem = mk(pe);
            let lock = shmem.shmalloc::<u64>(1).unwrap();
            let flag = shmem.shmalloc::<u64>(1).unwrap();
            shmem.barrier_all();
            if shmem.my_pe() == 0 {
                shmem.set_lock(lock);
                shmem.atomic_set(flag, 1, 1); // tell PE 1 the lock is held
                shmem.wait_until(flag, crate::shmem::Cmp::Eq, 2);
                shmem.clear_lock(lock);
                true
            } else {
                shmem.wait_until(flag, crate::shmem::Cmp::Eq, 1);
                let got = shmem.test_lock(lock);
                shmem.atomic_set(flag, 2, 0);
                got
            }
        });
        assert!(!out.results[1], "test_lock must fail while PE 0 holds it");
    }

    #[test]
    fn test_lock_acquires_when_free() {
        let out = run(generic_smp(1).with_heap_bytes(1 << 16), |pe| {
            let shmem = mk(pe);
            let lock = shmem.shmalloc::<u64>(1).unwrap();
            let first = shmem.test_lock(lock);
            let second = shmem.test_lock(lock);
            shmem.clear_lock(lock);
            let third = shmem.test_lock(lock);
            shmem.clear_lock(lock);
            (first, second, third)
        });
        assert_eq!(out.results[0], (true, false, true));
    }

    #[test]
    fn clear_by_non_holder_panics() {
        let err = run_with_result(generic_smp(2).with_heap_bytes(1 << 16), |pe| {
            let shmem = mk(pe);
            let lock = shmem.shmalloc::<u64>(1).unwrap();
            shmem.barrier_all();
            if shmem.my_pe() == 0 {
                shmem.set_lock(lock);
            }
            shmem.barrier_all();
            if shmem.my_pe() == 1 {
                shmem.clear_lock(lock); // not the holder
            }
            shmem.barrier_all();
        })
        .unwrap_err();
        assert!(err.message.contains("does not hold the lock"));
    }
}
