//! OpenSHMEM specification-semantics suite: small, pointed tests of the
//! behaviours the spec pins down (and that the CAF translation relies on).

use openshmem::{ActiveSet, Cmp, Shmem, ShmemConfig, SymPtr};
use pgas_conduit::ConduitProfile;
use pgas_machine::machine::Pe;
use pgas_machine::{generic_smp, run, stampede, titan, Platform};

fn mk(pe: Pe<'_>) -> Shmem<'_> {
    Shmem::new(pe, ShmemConfig::new(ConduitProfile::native_shmem(Platform::GenericSmp)))
}

fn cfg(n: usize) -> pgas_machine::MachineConfig {
    generic_smp(n).with_heap_bytes(1 << 17)
}

#[test]
fn put_to_self_is_legal() {
    let out = run(cfg(2), |pe| {
        let shmem = mk(pe);
        let x = shmem.shmalloc::<i64>(4).unwrap();
        shmem.put(x, &[1, 2, 3, 4], shmem.my_pe());
        shmem.quiet();
        let mut got = [0i64; 4];
        shmem.get(x, &mut got, shmem.my_pe());
        got
    });
    for r in out.results {
        assert_eq!(r, [1, 2, 3, 4]);
    }
}

#[test]
fn every_scalar_width_moves_correctly() {
    // One put/get round trip per supported element type.
    run(cfg(2), |pe| {
        let shmem = mk(pe);
        macro_rules! roundtrip {
            ($t:ty, $vals:expr) => {{
                let ptr = shmem.shmalloc::<$t>(4).unwrap();
                shmem.barrier_all();
                let vals: [$t; 4] = $vals;
                if shmem.my_pe() == 0 {
                    shmem.put(ptr, &vals, 1);
                    shmem.quiet();
                }
                shmem.barrier_all();
                if shmem.my_pe() == 1 {
                    let mut got: [$t; 4] = Default::default();
                    shmem.read_local(ptr, &mut got);
                    assert_eq!(got, vals, stringify!($t));
                }
                shmem.barrier_all();
            }};
        }
        roundtrip!(u8, [1, 2, 3, 255]);
        roundtrip!(i8, [-1, 2, -3, 127]);
        roundtrip!(u16, [1, 500, 3, 65535]);
        roundtrip!(i16, [-1, 500, -3, 32767]);
        roundtrip!(u32, [1, 5, 3, u32::MAX]);
        roundtrip!(i32, [-1, 5, -3, i32::MIN]);
        roundtrip!(u64, [1, 5, 3, u64::MAX]);
        roundtrip!(i64, [-1, 5, -3, i64::MIN]);
        roundtrip!(f32, [1.5, -2.5, 0.0, f32::MAX]);
        roundtrip!(f64, [1.5, -2.5, 0.0, f64::MIN_POSITIVE]);
    });
}

#[test]
fn barrier_on_strided_active_set_excludes_others() {
    // PEs 0,2,4 barrier among themselves while 1,3 do not participate.
    let out = run(cfg(5), |pe| {
        let shmem = mk(pe);
        if shmem.my_pe().is_multiple_of(2) {
            pe.advance(1000.0 * (shmem.my_pe() + 1) as f64);
            shmem.barrier(&ActiveSet::new(0, 1, 3));
            pe.now()
        } else {
            pe.now()
        }
    });
    assert_eq!(out.results[0], out.results[2]);
    assert_eq!(out.results[2], out.results[4]);
    assert_eq!(out.results[1], 0);
    assert_eq!(out.results[3], 0);
}

#[test]
fn fence_then_put_preserves_target_order() {
    // Write A to x, fence, write B to x: B must be the final value even
    // though neither write was quieted.
    let out = run(stampede(2, 1).with_heap_bytes(1 << 16), |pe| {
        let shmem = Shmem::new(pe, ShmemConfig::new(ConduitProfile::mvapich_shmem()));
        let x = shmem.shmalloc::<i64>(1).unwrap();
        shmem.barrier_all();
        if shmem.my_pe() == 0 {
            shmem.put(x, &[1], 1);
            shmem.fence();
            shmem.put(x, &[2], 1);
        }
        shmem.barrier_all();
        shmem.read_local_one(x)
    });
    assert_eq!(out.results[1], 2);
    assert_eq!(out.stats.hazards, 0, "fence makes the overlapping puts legal");
}

#[test]
fn wait_until_on_negative_thresholds() {
    let out = run(cfg(2), |pe| {
        let shmem = mk(pe);
        let flag = shmem.shmalloc::<i64>(1).unwrap();
        shmem.write_local(flag, &[100]);
        shmem.barrier_all();
        if shmem.my_pe() == 0 {
            shmem.wait_until(flag, Cmp::Lt, -5)
        } else {
            shmem.atomic_set(flag, -10i64, 0);
            -10
        }
    });
    assert_eq!(out.results[0], -10);
}

#[test]
fn finc_and_inc_match_add_semantics() {
    let out = run(cfg(3), |pe| {
        let shmem = mk(pe);
        let c = shmem.shmalloc::<u64>(1).unwrap();
        shmem.barrier_all();
        shmem.inc(c, 0);
        let seen = shmem.finc(c, 0);
        shmem.barrier_all();
        (seen, shmem.atomic_fetch(c, 0))
    });
    // 3 incs + 3 fincs = 6 total; each finc saw a value in 0..6.
    for (seen, total) in &out.results {
        assert_eq!(*total, 6);
        assert!(*seen < 6);
    }
}

#[test]
fn symptr_is_shippable_between_pes() {
    // A SymPtr<u64> received from another PE (as raw offset) addresses the
    // same object — the property the CAF lock qnode pointers rely on.
    let out = run(cfg(2), |pe| {
        let shmem = mk(pe);
        let a = shmem.shmalloc::<u64>(4).unwrap();
        let mailbox = shmem.shmalloc::<u64>(1).unwrap();
        shmem.write_local(a, &[7, 8, 9, 10]);
        shmem.barrier_all();
        if shmem.my_pe() == 0 {
            // Ship the offset of `a` to PE 1.
            shmem.p(mailbox, a.offset() as u64, 1);
            shmem.quiet();
            shmem.barrier_all();
            0
        } else {
            shmem.barrier_all();
            let off = shmem.read_local_one(mailbox) as usize;
            let remote: SymPtr<u64> = SymPtr::from_raw_parts(off, 4);
            shmem.g(remote.at(2), 0)
        }
    });
    assert_eq!(out.results[1], 9);
}

#[test]
fn quiet_without_outstanding_ops_is_cheap_and_safe() {
    let out = run(cfg(1), |pe| {
        let shmem = mk(pe);
        let before = pe.now();
        for _ in 0..100 {
            shmem.quiet();
            shmem.fence();
        }
        pe.now() - before
    });
    assert!(out.results[0] < 100_000, "no-op quiets must not accumulate large costs");
}

#[test]
fn reductions_of_every_numeric_type() {
    run(cfg(4), |pe| {
        let shmem = mk(pe);
        let w = shmem.world();
        macro_rules! sums {
            ($t:ty) => {{
                let src = shmem.shmalloc::<$t>(2).unwrap();
                let dst = shmem.shmalloc::<$t>(2).unwrap();
                shmem.write_local(src, &[shmem.my_pe() as $t + 1 as $t, 2 as $t]);
                shmem.barrier_all();
                shmem.sum_to_all(dst, src, 2, &w);
                let mut out: [$t; 2] = Default::default();
                shmem.read_local(dst, &mut out);
                assert_eq!(out[0], 10 as $t, stringify!($t)); // 1+2+3+4
                assert_eq!(out[1], 8 as $t, stringify!($t));
            }};
        }
        sums!(i32);
        sums!(i64);
        sums!(u32);
        sums!(u64);
        sums!(f32);
        sums!(f64);
    });
}

#[test]
fn global_lock_serializes_across_nodes() {
    let iters = 20;
    let out = run(titan(2, 4).with_heap_bytes(1 << 16), |pe| {
        let shmem = Shmem::new(pe, ShmemConfig::new(ConduitProfile::cray_shmem(Platform::Titan)));
        let lock = shmem.shmalloc::<u64>(1).unwrap();
        let counter = shmem.shmalloc::<i64>(1).unwrap();
        shmem.barrier_all();
        for _ in 0..iters {
            shmem.set_lock(lock);
            let v = shmem.g(counter, 0);
            shmem.p(counter, v + 1, 0);
            shmem.quiet();
            shmem.clear_lock(lock);
        }
        shmem.barrier_all();
        shmem.g(counter, 0)
    });
    for r in out.results {
        assert_eq!(r, 8 * iters);
    }
}

#[test]
fn alltoall_on_a_subset() {
    let out = run(cfg(6), |pe| {
        let shmem = mk(pe);
        // PEs 1, 3, 5 exchange; others idle.
        let set = ActiveSet::new(1, 1, 3);
        let dest = shmem.shmalloc::<i32>(3).unwrap();
        shmem.barrier_all();
        if set.contains(shmem.my_pe()) {
            let me = shmem.my_pe() as i32;
            let src: Vec<i32> = (0..3).map(|j| me * 10 + j).collect();
            shmem.alltoall(dest, &src, 1, &set);
        }
        shmem.barrier_all();
        let mut d = [0i32; 3];
        shmem.read_local(dest, &mut d);
        d
    });
    // Member k of {1,3,5} receives block k from each member i: value i*10+k.
    assert_eq!(out.results[1], [10, 30, 50]);
    assert_eq!(out.results[3], [11, 31, 51]);
    assert_eq!(out.results[5], [12, 32, 52]);
    assert_eq!(out.results[0], [0, 0, 0]);
}

#[test]
fn shmalloc_zero_elements_is_distinct() {
    run(cfg(1), |pe| {
        let shmem = mk(pe);
        let a = shmem.shmalloc::<u64>(0).unwrap();
        let b = shmem.shmalloc::<u64>(0).unwrap();
        assert_ne!(a.offset(), b.offset());
        shmem.shfree(a).unwrap();
        shmem.shfree(b).unwrap();
    });
}
