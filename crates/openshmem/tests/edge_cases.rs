//! Edge cases of the OpenSHMEM layer: zero-length operations, minimal
//! active sets, allocator exhaustion under collective pressure, and
//! degenerate jobs.

use openshmem::{ActiveSet, Shmem, ShmemConfig};
use pgas_conduit::ConduitProfile;
use pgas_machine::machine::Pe;
use pgas_machine::{generic_smp, run, Platform};

fn mk(pe: Pe<'_>) -> Shmem<'_> {
    Shmem::new(pe, ShmemConfig::new(ConduitProfile::native_shmem(Platform::GenericSmp)))
}

#[test]
fn single_pe_job_supports_the_full_api() {
    run(generic_smp(1).with_heap_bytes(1 << 16), |pe| {
        let shmem = mk(pe);
        let x = shmem.shmalloc::<i64>(8).unwrap();
        shmem.put(x, &[1, 2, 3, 4, 5, 6, 7, 8], 0);
        shmem.quiet();
        shmem.barrier_all();
        let mut out = [0i64; 8];
        shmem.get(x, &mut out, 0);
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7, 8]);
        // Collectives over a singleton world.
        let d = shmem.shmalloc::<i64>(8).unwrap();
        shmem.sum_to_all(d, x, 8, &shmem.world());
        let mut sums = [0i64; 8];
        shmem.read_local(d, &mut sums);
        assert_eq!(sums, out);
        shmem.broadcast(d, x, 8, 0, &shmem.world());
        // Locks degenerate but work.
        let l = shmem.shmalloc::<u64>(1).unwrap();
        shmem.set_lock(l);
        shmem.clear_lock(l);
        assert_eq!(shmem.fadd(x.slice(0, 1), 5i64, 0), 1);
    });
}

#[test]
fn zero_length_transfers_are_noops() {
    let out = run(generic_smp(2).with_heap_bytes(1 << 16), |pe| {
        let shmem = mk(pe);
        let x = shmem.shmalloc::<u8>(16).unwrap();
        shmem.write_local(x, &[9u8; 16]);
        shmem.barrier_all();
        shmem.put(x, &[], 1 - shmem.my_pe());
        let mut empty: [u8; 0] = [];
        shmem.get(x, &mut empty, 1 - shmem.my_pe());
        shmem.iput(x, 2, &[], 1, 0, 1 - shmem.my_pe());
        shmem.quiet();
        shmem.barrier_all();
        shmem.read_local_one(x)
    });
    for r in out.results {
        assert_eq!(r, 9, "zero-length ops must not disturb memory");
    }
}

#[test]
fn two_member_collectives() {
    let out = run(generic_smp(2).with_heap_bytes(1 << 16), |pe| {
        let shmem = mk(pe);
        let src = shmem.shmalloc::<f64>(3).unwrap();
        let dst = shmem.shmalloc::<f64>(3).unwrap();
        shmem.write_local(src, &[1.0 + shmem.my_pe() as f64; 3]);
        shmem.barrier_all();
        let w = shmem.world();
        shmem.sum_to_all(dst, src, 3, &w);
        shmem.broadcast(dst, src, 2, 1, &w); // partial-length broadcast
        let mut d = [0.0f64; 3];
        shmem.read_local(dst, &mut d);
        d
    });
    // PE 0 got [2, 2, 3]: first two from the broadcast of PE 1's src,
    // the last survives from the sum. PE 1 (root) keeps the full sum.
    assert_eq!(out.results[0], [2.0, 2.0, 3.0]);
    assert_eq!(out.results[1], [3.0, 3.0, 3.0]);
}

#[test]
fn collect_with_some_empty_contributions() {
    let out = run(generic_smp(4).with_heap_bytes(1 << 16), |pe| {
        let shmem = mk(pe);
        let dest = shmem.shmalloc::<i32>(16).unwrap();
        shmem.barrier_all();
        // Only even PEs contribute.
        let src: Vec<i32> = if shmem.my_pe().is_multiple_of(2) {
            vec![shmem.my_pe() as i32; 2]
        } else {
            Vec::new()
        };
        let total = shmem.collect(dest, &src, &shmem.world());
        let mut d = vec![0i32; total];
        shmem.read_local(dest.slice(0, total), &mut d);
        d
    });
    for r in out.results {
        assert_eq!(r, vec![0, 0, 2, 2]);
    }
}

#[test]
fn allocator_survives_interleaved_collective_scratch() {
    // Alternating user allocations and collectives (which allocate no
    // scratch at the shmem level, but CAF's co_* would) must keep the
    // symmetric allocator in lockstep across PEs.
    run(generic_smp(3).with_heap_bytes(1 << 16), |pe| {
        let shmem = mk(pe);
        let mut live = Vec::new();
        for round in 1..=10usize {
            let a = shmem.shmalloc::<u64>(round * 3).unwrap();
            shmem.debug_assert_symmetric(a);
            live.push(a);
            if round % 3 == 0 {
                let victim = live.remove(0);
                shmem.shfree(victim).unwrap();
            }
            let d = shmem.shmalloc::<i64>(1).unwrap();
            let s = shmem.shmalloc::<i64>(1).unwrap();
            shmem.write_local(s, &[1]);
            shmem.sum_to_all(d, s, 1, &shmem.world());
            assert_eq!(shmem.read_local_one(d), 3);
            shmem.shfree(s).unwrap();
            shmem.shfree(d).unwrap();
        }
    });
}

#[test]
fn pairwise_active_set_barrier_chain() {
    // Chain of 2-member barriers across the job: (0,1), (1,2), (2,3).
    // Each link synchronizes only its two members.
    let out = run(generic_smp(4).with_heap_bytes(1 << 16), |pe| {
        let shmem = mk(pe);
        let me = shmem.my_pe();
        if me <= 1 {
            if me == 0 {
                pe.advance(10_000.0);
            }
            shmem.barrier(&ActiveSet::new(0, 0, 2));
        }
        if (1..=2).contains(&me) {
            shmem.barrier(&ActiveSet::new(1, 0, 2));
        }
        if me >= 2 {
            shmem.barrier(&ActiveSet::new(2, 0, 2));
        }
        pe.now()
    });
    // The 10 us head start on PE 0 propagates down the chain.
    assert!(out.results[1] >= 10_000);
    assert!(out.results[2] >= out.results[1]);
    assert!(out.results[3] >= out.results[2]);
}
