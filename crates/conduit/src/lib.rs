//! # pgas-conduit — one-sided communication engine with library profiles
//!
//! The paper compares several one-sided communication libraries as candidate
//! runtime substrates for PGAS languages: Cray SHMEM, MVAPICH2-X SHMEM,
//! GASNet, MPI-3 RMA, and Cray's DMAPP (used directly by the Cray CAF
//! compiler). On real hardware those libraries differ in software issue
//! overhead, protocol efficiency, whether remote atomics are offloaded to the
//! NIC or emulated with active messages, and whether the 1-D strided
//! `shmem_iput`/`shmem_iget` calls are NIC-native or a software loop of
//! contiguous puts.
//!
//! This crate reproduces exactly those axes: one generic engine
//! ([`Ctx`]) parameterized by a [`ConduitProfile`]. All profiles share
//! mechanics (real data movement through `pgas-machine` heaps, virtual-time
//! costs, NIC contention) and differ only in the published properties the
//! paper attributes to each library.
//!
//! The engine also implements the OpenSHMEM **completion semantics** that
//! drive §IV-B of the paper: a put returns after *local* completion; *remote*
//! completion requires `quiet`. Outstanding-put state feeds an ordering
//! hazard detector used as failure injection: a CAF runtime that forgets to
//! insert `shmem_quiet` between dependent transfers trips it.

//! Two contention killers ride on top of the shared mechanics, both hooked
//! into the single [`Ctx::submit`] choke point (see [`op`]): an
//! active-message layer ([`am`]) that ships compute to the target instead
//! of a get–compute–put round trip, and per-destination-node coalescing
//! buffers ([`coalesce`]) that batch small puts and non-fetching AMOs into
//! single wire transfers.

pub mod am;
pub mod coalesce;
pub mod cost;
pub mod ctx;
pub mod integrity;
pub mod op;
pub mod pending;
pub mod profile;

pub use am::{AmHandler, AmHandlerId, AmTarget};
pub use coalesce::{CoalescePolicy, CoalescingConfig};
pub use cost::{CostModel, AM_HEADER_BYTES};
pub use ctx::{ConduitError, Ctx, CtxOptions};
pub use integrity::{crc32, Crc32};
pub use op::{Completion, OpDesc, OpKind, OpReceipt};
pub use pending::{Hazard, HazardKind};
pub use profile::{AmoSupport, ConduitKind, ConduitProfile, StridedSupport};
