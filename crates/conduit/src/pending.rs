//! Outstanding-operation tracking: the machinery behind `quiet`, `fence`
//! and the ordering-hazard detector.
//!
//! OpenSHMEM's completion model (§IV-B of the paper): a put returns after
//! *local* completion only; remote writes may complete out of order with
//! respect to other remote accesses. Coarray Fortran, in contrast, requires
//! accesses to the same location from the same image to complete in program
//! order. The paper's translation therefore inserts `shmem_quiet` after puts
//! and before gets.
//!
//! We track every un-quieted put issued by a PE. When the same PE then reads
//! or rewrites an overlapping region of the same target without an
//! intervening quiet, that is exactly the situation where a real OpenSHMEM
//! implementation could return stale data — we record it as a [`Hazard`]
//! (and optionally panic, as failure injection for runtime-correctness
//! tests).

use pgas_machine::machine::PeId;
use std::collections::HashMap;

/// The kind of ordering violation detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardKind {
    /// A get overlapped an outstanding (un-quieted) put to the same target:
    /// OpenSHMEM does not guarantee the get observes the put.
    ReadAfterUnquietedWrite,
    /// A put overlapped an outstanding put to the same target: deliveries
    /// may be reordered, leaving the *older* data in memory.
    WriteAfterUnquietedWrite,
}

/// A detected ordering violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hazard {
    pub kind: HazardKind,
    pub dst: PeId,
    pub offset: usize,
    pub len: usize,
}

impl std::fmt::Display for Hazard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self.kind {
            HazardKind::ReadAfterUnquietedWrite => "get overlaps un-quieted put",
            HazardKind::WriteAfterUnquietedWrite => "put overlaps un-quieted put",
        };
        write!(
            f,
            "ordering hazard: {what} (target PE {}, bytes [{}, {}))",
            self.dst,
            self.offset,
            self.offset + self.len
        )
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingPut {
    dst: PeId,
    offset: usize,
    len: usize,
    remote_complete: u64,
}

/// Per-PE outstanding-put set. Owned by one PE's [`crate::Ctx`]; never
/// shared.
#[derive(Debug, Default)]
pub struct PendingSet {
    puts: Vec<PendingPut>,
    /// Completion times of outstanding non-blocking gets (`shmem_get_nbi`):
    /// their data is only guaranteed valid after `quiet`.
    nbi_gets: Vec<u64>,
    /// Delivery floors established by `fence`: data to `dst` may not land
    /// before this virtual time.
    floors: HashMap<PeId, u64>,
}

#[inline]
fn overlaps(a_off: usize, a_len: usize, b_off: usize, b_len: usize) -> bool {
    a_len > 0 && b_len > 0 && a_off < b_off + b_len && b_off < a_off + a_len
}

impl PendingSet {
    /// Record an issued put that remotely completes at `remote_complete`.
    pub fn record_put(&mut self, dst: PeId, offset: usize, len: usize, remote_complete: u64) {
        self.puts.push(PendingPut { dst, offset, len, remote_complete });
    }

    /// Record an issued non-blocking get completing at `complete_at`.
    pub fn record_nbi_get(&mut self, complete_at: u64) {
        self.nbi_gets.push(complete_at);
    }

    /// Latest outstanding remote completion (what `quiet` must wait for).
    pub fn max_outstanding(&self) -> u64 {
        self.puts
            .iter()
            .map(|p| p.remote_complete)
            .chain(self.nbi_gets.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// Number of outstanding puts.
    pub fn outstanding(&self) -> usize {
        self.puts.len()
    }

    /// Drop all completion obligations (after `quiet`). Floors are also
    /// cleared: quiet is strictly stronger than fence.
    pub fn clear(&mut self) {
        self.puts.clear();
        self.nbi_gets.clear();
        self.floors.clear();
    }

    /// `fence`: future deliveries to each target must start after everything
    /// outstanding to that target. Obligations stay outstanding (fence does
    /// not imply completion).
    pub fn fence(&mut self) {
        for p in &self.puts {
            let f = self.floors.entry(p.dst).or_insert(0);
            *f = (*f).max(p.remote_complete);
        }
    }

    /// The delivery floor currently in force for `dst`.
    pub fn floor_for(&self, dst: PeId) -> u64 {
        self.floors.get(&dst).copied().unwrap_or(0)
    }

    /// Would reading `[offset, offset+len)` of `dst` race an outstanding put?
    pub fn check_get(&self, dst: PeId, offset: usize, len: usize) -> Option<Hazard> {
        self.puts
            .iter()
            .find(|p| p.dst == dst && overlaps(p.offset, p.len, offset, len))
            .map(|_| Hazard { kind: HazardKind::ReadAfterUnquietedWrite, dst, offset, len })
    }

    /// Would writing `[offset, offset+len)` of `dst` race an outstanding put?
    /// A `fence` suppresses this hazard (deliveries are ordered after it).
    pub fn check_put(&self, dst: PeId, offset: usize, len: usize) -> Option<Hazard> {
        let floor = self.floor_for(dst);
        self.puts
            .iter()
            .find(|p| {
                p.dst == dst && p.remote_complete > floor && overlaps(p.offset, p.len, offset, len)
            })
            .map(|_| Hazard { kind: HazardKind::WriteAfterUnquietedWrite, dst, offset, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_obligations() {
        let s = PendingSet::default();
        assert_eq!(s.max_outstanding(), 0);
        assert_eq!(s.outstanding(), 0);
        assert!(s.check_get(0, 0, 100).is_none());
        assert!(s.check_put(0, 0, 100).is_none());
    }

    #[test]
    fn quiet_clears_obligations() {
        let mut s = PendingSet::default();
        s.record_put(1, 0, 64, 5000);
        s.record_put(2, 64, 64, 7000);
        assert_eq!(s.max_outstanding(), 7000);
        assert_eq!(s.outstanding(), 2);
        s.clear();
        assert_eq!(s.max_outstanding(), 0);
        assert!(s.check_get(1, 0, 64).is_none());
    }

    #[test]
    fn get_overlap_is_a_hazard_only_on_same_target() {
        let mut s = PendingSet::default();
        s.record_put(3, 100, 50, 1000);
        let h = s.check_get(3, 120, 8).expect("overlap must be detected");
        assert_eq!(h.kind, HazardKind::ReadAfterUnquietedWrite);
        assert!(s.check_get(4, 120, 8).is_none(), "different PE, same range: fine");
        assert!(s.check_get(3, 150, 8).is_none(), "adjacent, non-overlapping: fine");
        assert!(s.check_get(3, 92, 8).is_none(), "ends exactly at start: fine");
    }

    #[test]
    fn waw_is_a_hazard_until_fence() {
        let mut s = PendingSet::default();
        s.record_put(1, 0, 8, 9000);
        assert_eq!(s.check_put(1, 0, 8).unwrap().kind, HazardKind::WriteAfterUnquietedWrite);
        s.fence();
        assert_eq!(s.floor_for(1), 9000);
        assert!(s.check_put(1, 0, 8).is_none(), "fence orders deliveries");
        // But the completion obligation is still alive.
        assert_eq!(s.max_outstanding(), 9000);
    }

    #[test]
    fn fence_floor_is_per_target() {
        let mut s = PendingSet::default();
        s.record_put(1, 0, 8, 4000);
        s.record_put(2, 0, 8, 6000);
        s.fence();
        assert_eq!(s.floor_for(1), 4000);
        assert_eq!(s.floor_for(2), 6000);
        assert_eq!(s.floor_for(3), 0);
    }

    #[test]
    fn zero_length_never_overlaps() {
        let mut s = PendingSet::default();
        s.record_put(1, 0, 0, 100);
        assert!(s.check_get(1, 0, 8).is_none());
        s.record_put(1, 0, 8, 100);
        assert!(s.check_get(1, 4, 0).is_none());
    }
}
