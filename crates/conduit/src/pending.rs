//! Outstanding-operation tracking: the machinery behind `quiet`, `fence`
//! and the ordering-hazard detector.
//!
//! OpenSHMEM's completion model (§IV-B of the paper): a put returns after
//! *local* completion only; remote writes may complete out of order with
//! respect to other remote accesses. Coarray Fortran, in contrast, requires
//! accesses to the same location from the same image to complete in program
//! order. The paper's translation therefore inserts `shmem_quiet` after puts
//! and before gets.
//!
//! We track every un-quieted put issued by a PE. When the same PE then reads
//! or rewrites an overlapping region of the same target without an
//! intervening quiet, that is exactly the situation where a real OpenSHMEM
//! implementation could return stale data — we record it as a [`Hazard`]
//! (and optionally panic, as failure injection for runtime-correctness
//! tests).

use pgas_machine::machine::PeId;
use std::collections::HashMap;

/// The kind of ordering violation detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardKind {
    /// A get overlapped an outstanding (un-quieted) put to the same target:
    /// OpenSHMEM does not guarantee the get observes the put.
    ReadAfterUnquietedWrite,
    /// A put overlapped an outstanding put to the same target: deliveries
    /// may be reordered, leaving the *older* data in memory.
    WriteAfterUnquietedWrite,
    /// An atomic overlapped an outstanding (non-atomic) put: the atomic may
    /// execute on the pre-put value. Atomics racing other *atomics* are
    /// fine — the network serializes them — so only puts are conflicting.
    AmoOverUnquietedWrite,
}

/// A detected ordering violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hazard {
    pub kind: HazardKind,
    pub dst: PeId,
    pub offset: usize,
    pub len: usize,
    /// The ranges overlap but neither contains the other, so the access can
    /// observe a mix of old and new bytes (a torn transfer), not merely a
    /// stale-but-whole value.
    pub torn: bool,
    /// Remote completion time of the conflicting outstanding put.
    pub pending_complete: u64,
}

impl std::fmt::Display for Hazard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self.kind {
            HazardKind::ReadAfterUnquietedWrite => "get overlaps un-quieted put",
            HazardKind::WriteAfterUnquietedWrite => "put overlaps un-quieted put",
            HazardKind::AmoOverUnquietedWrite => "atomic overlaps un-quieted put",
        };
        let class = if self.torn { ", partial overlap: torn transfer" } else { "" };
        write!(
            f,
            "ordering hazard: {what} (target PE {}, bytes [{}, {}){class})",
            self.dst,
            self.offset,
            self.offset + self.len
        )
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingPut {
    dst: PeId,
    offset: usize,
    len: usize,
    remote_complete: u64,
    /// Was this obligation created by a (non-fetching) atomic?
    amo: bool,
}

/// Per-PE outstanding-put set. Owned by one PE's [`crate::Ctx`]; never
/// shared.
#[derive(Debug, Default)]
pub struct PendingSet {
    puts: Vec<PendingPut>,
    /// Completion times of outstanding non-blocking gets (`shmem_get_nbi`):
    /// their data is only guaranteed valid after `quiet`.
    nbi_gets: Vec<u64>,
    /// Delivery floors established by `fence`: data to `dst` may not land
    /// before this virtual time.
    floors: HashMap<PeId, u64>,
}

#[inline]
fn overlaps(a_off: usize, a_len: usize, b_off: usize, b_len: usize) -> bool {
    a_len > 0 && b_len > 0 && a_off < b_off + b_len && b_off < a_off + a_len
}

impl PendingSet {
    /// Record an issued put that remotely completes at `remote_complete`.
    pub fn record_put(&mut self, dst: PeId, offset: usize, len: usize, remote_complete: u64) {
        self.puts.push(PendingPut { dst, offset, len, remote_complete, amo: false });
    }

    /// Record an issued non-fetching atomic (an 8-byte completion
    /// obligation that other atomics may legally race).
    pub fn record_amo(&mut self, dst: PeId, offset: usize, remote_complete: u64) {
        self.puts.push(PendingPut { dst, offset, len: 8, remote_complete, amo: true });
    }

    /// Record an active-message handler's write: an atomic completion
    /// obligation of arbitrary length. The handler runs inside the
    /// target's apply section, so other atomics (and other handlers) may
    /// legally race it — only plain puts conflict.
    pub fn record_am_write(&mut self, dst: PeId, offset: usize, len: usize, remote_complete: u64) {
        self.puts.push(PendingPut { dst, offset, len, remote_complete, amo: true });
    }

    /// Record an issued non-blocking get completing at `complete_at`.
    pub fn record_nbi_get(&mut self, complete_at: u64) {
        self.nbi_gets.push(complete_at);
    }

    /// Latest outstanding remote completion (what `quiet` must wait for).
    pub fn max_outstanding(&self) -> u64 {
        self.puts
            .iter()
            .map(|p| p.remote_complete)
            .chain(self.nbi_gets.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// Number of outstanding puts.
    pub fn outstanding(&self) -> usize {
        self.puts.len()
    }

    /// Drop all completion obligations (after `quiet`). Floors are also
    /// cleared: quiet is strictly stronger than fence.
    pub fn clear(&mut self) {
        self.puts.clear();
        self.nbi_gets.clear();
        self.floors.clear();
    }

    /// `fence`: future deliveries to each target must start after everything
    /// outstanding to that target. Obligations stay outstanding (fence does
    /// not imply completion).
    pub fn fence(&mut self) {
        for p in &self.puts {
            let f = self.floors.entry(p.dst).or_insert(0);
            *f = (*f).max(p.remote_complete);
        }
    }

    /// The delivery floor currently in force for `dst`.
    pub fn floor_for(&self, dst: PeId) -> u64 {
        self.floors.get(&dst).copied().unwrap_or(0)
    }

    /// Is `[offset, offset+len)` a strict partial overlap of the pending
    /// put (neither range contains the other)?
    fn is_torn(p: &PendingPut, offset: usize, len: usize) -> bool {
        let covers_new = p.offset <= offset && offset + len <= p.offset + p.len;
        let covered_by_new = offset <= p.offset && p.offset + p.len <= offset + len;
        !(covers_new || covered_by_new)
    }

    fn hazard(kind: HazardKind, p: &PendingPut, offset: usize, len: usize) -> Hazard {
        Hazard {
            kind,
            dst: p.dst,
            offset,
            len,
            torn: Self::is_torn(p, offset, len),
            pending_complete: p.remote_complete,
        }
    }

    /// Would reading `[offset, offset+len)` of `dst` race an outstanding put?
    pub fn check_get(&self, dst: PeId, offset: usize, len: usize) -> Option<Hazard> {
        self.puts
            .iter()
            .find(|p| p.dst == dst && overlaps(p.offset, p.len, offset, len))
            .map(|p| Self::hazard(HazardKind::ReadAfterUnquietedWrite, p, offset, len))
    }

    /// Would writing `[offset, offset+len)` of `dst` race an outstanding put?
    /// A `fence` suppresses this hazard (deliveries are ordered after it).
    pub fn check_put(&self, dst: PeId, offset: usize, len: usize) -> Option<Hazard> {
        let floor = self.floor_for(dst);
        self.puts
            .iter()
            .find(|p| {
                p.dst == dst && p.remote_complete > floor && overlaps(p.offset, p.len, offset, len)
            })
            .map(|p| Self::hazard(HazardKind::WriteAfterUnquietedWrite, p, offset, len))
    }

    /// Would an atomic on the word at `offset` of `dst` race an outstanding
    /// *non-atomic* put? (Atomics racing pending atomics are legal — the
    /// target serializes them.) Fence floors apply as for puts.
    pub fn check_amo(&self, dst: PeId, offset: usize) -> Option<Hazard> {
        self.check_atomic_range(dst, offset, 8)
    }

    /// Range-valued sibling of [`PendingSet::check_amo`], for active-message
    /// handler writes: would an *atomic* write of `[offset, offset+len)` of
    /// `dst` race an outstanding non-atomic put?
    pub fn check_atomic_range(&self, dst: PeId, offset: usize, len: usize) -> Option<Hazard> {
        let floor = self.floor_for(dst);
        self.puts
            .iter()
            .find(|p| {
                p.dst == dst
                    && !p.amo
                    && p.remote_complete > floor
                    && overlaps(p.offset, p.len, offset, len)
            })
            .map(|p| Self::hazard(HazardKind::AmoOverUnquietedWrite, p, offset, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_obligations() {
        let s = PendingSet::default();
        assert_eq!(s.max_outstanding(), 0);
        assert_eq!(s.outstanding(), 0);
        assert!(s.check_get(0, 0, 100).is_none());
        assert!(s.check_put(0, 0, 100).is_none());
    }

    #[test]
    fn quiet_clears_obligations() {
        let mut s = PendingSet::default();
        s.record_put(1, 0, 64, 5000);
        s.record_put(2, 64, 64, 7000);
        assert_eq!(s.max_outstanding(), 7000);
        assert_eq!(s.outstanding(), 2);
        s.clear();
        assert_eq!(s.max_outstanding(), 0);
        assert!(s.check_get(1, 0, 64).is_none());
    }

    #[test]
    fn get_overlap_is_a_hazard_only_on_same_target() {
        let mut s = PendingSet::default();
        s.record_put(3, 100, 50, 1000);
        let h = s.check_get(3, 120, 8).expect("overlap must be detected");
        assert_eq!(h.kind, HazardKind::ReadAfterUnquietedWrite);
        assert!(s.check_get(4, 120, 8).is_none(), "different PE, same range: fine");
        assert!(s.check_get(3, 150, 8).is_none(), "adjacent, non-overlapping: fine");
        assert!(s.check_get(3, 92, 8).is_none(), "ends exactly at start: fine");
    }

    #[test]
    fn waw_is_a_hazard_until_fence() {
        let mut s = PendingSet::default();
        s.record_put(1, 0, 8, 9000);
        assert_eq!(s.check_put(1, 0, 8).unwrap().kind, HazardKind::WriteAfterUnquietedWrite);
        s.fence();
        assert_eq!(s.floor_for(1), 9000);
        assert!(s.check_put(1, 0, 8).is_none(), "fence orders deliveries");
        // But the completion obligation is still alive.
        assert_eq!(s.max_outstanding(), 9000);
    }

    #[test]
    fn fence_floor_is_per_target() {
        let mut s = PendingSet::default();
        s.record_put(1, 0, 8, 4000);
        s.record_put(2, 0, 8, 6000);
        s.fence();
        assert_eq!(s.floor_for(1), 4000);
        assert_eq!(s.floor_for(2), 6000);
        assert_eq!(s.floor_for(3), 0);
    }

    #[test]
    fn zero_length_never_overlaps() {
        let mut s = PendingSet::default();
        s.record_put(1, 0, 0, 100);
        assert!(s.check_get(1, 0, 8).is_none());
        s.record_put(1, 0, 8, 100);
        assert!(s.check_get(1, 4, 0).is_none());
    }

    #[test]
    fn amo_over_pending_put_is_a_hazard_but_amo_over_amo_is_not() {
        let mut s = PendingSet::default();
        s.record_amo(1, 0, 500);
        assert!(s.check_amo(1, 0).is_none(), "the target serializes atomics");
        s.record_put(1, 0, 8, 900);
        let h = s.check_amo(1, 0).expect("amo over pending non-atomic put");
        assert_eq!(h.kind, HazardKind::AmoOverUnquietedWrite);
        assert_eq!(h.pending_complete, 900);
        // Fence floors apply as for puts.
        s.fence();
        assert!(s.check_amo(1, 0).is_none());
    }

    #[test]
    fn strict_partial_overlap_is_classified_torn() {
        let mut s = PendingSet::default();
        s.record_put(1, 0, 16, 700);
        // Contained in the pending range: stale but whole.
        assert!(!s.check_get(1, 4, 8).unwrap().torn);
        // Containing the pending range: also whole.
        assert!(!s.check_put(1, 0, 32).unwrap().torn);
        // Straddling one edge: a mix of old and new bytes is possible.
        let h = s.check_put(1, 8, 16).unwrap();
        assert!(h.torn);
        assert!(h.to_string().contains("torn transfer"), "got: {h}");
        assert_eq!(h.pending_complete, 700);
    }
}
