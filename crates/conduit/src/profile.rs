//! Per-library conduit profiles.
//!
//! Each profile encodes, as numbers, what the paper states in prose about a
//! communication library. The constructors take the target [`Platform`]
//! because real libraries ship platform-specific conduits (GASNet's ibv /
//! gemini / aries conduits, MVAPICH2-X existing only on InfiniBand, Cray
//! SHMEM existing only on Gemini/Aries, ...).

use pgas_machine::Platform;

/// Which library a profile models. Used for reporting and to pick
/// legend-compatible names in the figure harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConduitKind {
    /// Cray SHMEM over DMAPP (Titan / XC30).
    CrayShmem,
    /// MVAPICH2-X OpenSHMEM over InfiniBand verbs (Stampede).
    MvapichShmem,
    /// GASNet with the platform's native conduit.
    Gasnet,
    /// MPI-3 one-sided (MVAPICH2-X MPI or Cray MPICH).
    Mpi3,
    /// Cray DMAPP used directly (what the Cray CAF compiler does).
    Dmapp,
}

impl ConduitKind {
    pub fn label(self) -> &'static str {
        match self {
            ConduitKind::CrayShmem => "cray-shmem",
            ConduitKind::MvapichShmem => "mvapich2x-shmem",
            ConduitKind::Gasnet => "gasnet",
            ConduitKind::Mpi3 => "mpi3",
            ConduitKind::Dmapp => "dmapp",
        }
    }
}

/// How a library implements remote atomic operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AmoSupport {
    /// NIC-offloaded atomics (Cray DMAPP, IB verbs): one wire traversal plus
    /// a hardware execution cost at the target.
    Native {
        /// Additional software cost per AMO on top of the wire, ns.
        extra_ns: f64,
    },
    /// Emulated with an active-message round trip executed by the target's
    /// progress engine (GASNet without NIC atomics).
    AmEmulated {
        /// Handler execution cost at the target, ns.
        handler_ns: f64,
    },
}

/// How a library implements the 1-D strided `iput`/`iget` interface.
///
/// This is the pivotal property behind Figures 6 and 7: the paper's
/// `2dim_strided` algorithm only pays off when `shmem_iput` is NIC-native
/// (Cray SHMEM over DMAPP); MVAPICH2-X implements it as a software loop of
/// contiguous puts, making the naive and 2dim algorithms indistinguishable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StridedSupport {
    /// The NIC scatters/gathers elements: one message descriptor covers the
    /// whole vector, paying `per_elem_ns` of wire occupancy per element.
    Native { per_elem_ns: f64 },
    /// A software loop issuing one contiguous transfer per element.
    LoopContiguous,
}

/// Complete description of a communication library's cost behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConduitProfile {
    pub kind: ConduitKind,
    /// CPU cost to issue a one-sided write, ns.
    pub put_issue_ns: f64,
    /// CPU cost to issue a one-sided read, ns.
    pub get_issue_ns: f64,
    /// Software per-message NIC occupancy added to the hardware overhead, ns.
    /// This is the knob that differentiates libraries under 16-pair
    /// contention: occupancy serializes, issue cost does not.
    pub msg_occupancy_ns: f64,
    /// Fraction of raw wire bandwidth the protocol sustains (0, 1].
    pub bandwidth_efficiency: f64,
    /// Payload size above which the transfer pays a rendezvous handshake
    /// (one extra round trip before data flows).
    pub rendezvous_threshold: usize,
    pub amo: AmoSupport,
    pub strided: StridedSupport,
    /// Active-message handler cost, ns: used for AM-packed strided transfers
    /// (the paper's "with-AM" GASNet variant) and AMO emulation.
    pub am_handler_ns: f64,
}

impl ConduitProfile {
    /// Cray SHMEM: thin layer over DMAPP. Lowest issue overheads, NIC-native
    /// atomics and strided transfers. Only meaningful on Gemini/Aries.
    pub fn cray_shmem(platform: Platform) -> ConduitProfile {
        debug_assert!(matches!(
            platform,
            Platform::Titan | Platform::CrayXc30 | Platform::GenericSmp
        ));
        ConduitProfile {
            kind: ConduitKind::CrayShmem,
            put_issue_ns: 80.0,
            get_issue_ns: 90.0,
            msg_occupancy_ns: 30.0,
            bandwidth_efficiency: 0.96,
            rendezvous_threshold: usize::MAX, // DMAPP puts are fire-and-forget
            amo: AmoSupport::Native { extra_ns: 60.0 },
            strided: StridedSupport::Native { per_elem_ns: 25.0 },
            am_handler_ns: 400.0,
        }
    }

    /// MVAPICH2-X OpenSHMEM on InfiniBand: verbs-native puts and atomics but
    /// `shmem_iput` implemented as a loop of contiguous puts (stated
    /// explicitly in §V-D of the paper).
    pub fn mvapich_shmem() -> ConduitProfile {
        ConduitProfile {
            kind: ConduitKind::MvapichShmem,
            put_issue_ns: 100.0,
            get_issue_ns: 110.0,
            msg_occupancy_ns: 50.0,
            bandwidth_efficiency: 0.94,
            rendezvous_threshold: 64 * 1024,
            amo: AmoSupport::Native { extra_ns: 250.0 },
            strided: StridedSupport::LoopContiguous,
            am_handler_ns: 500.0,
        }
    }

    /// GASNet with the platform's native conduit. Small-message latency is
    /// competitive with SHMEM; sustained bandwidth and per-message software
    /// occupancy are worse, and there are no remote atomics (AM emulation).
    pub fn gasnet(platform: Platform) -> ConduitProfile {
        let (occ, eff) = match platform {
            // ibv conduit: heavier software path than the verbs-native SHMEM.
            Platform::Stampede => (170.0, 0.78),
            // gemini/aries conduits are leaner but still trail Cray SHMEM.
            Platform::Titan => (90.0, 0.80),
            Platform::CrayXc30 => (80.0, 0.82),
            Platform::GenericSmp => (100.0, 0.85),
        };
        ConduitProfile {
            kind: ConduitKind::Gasnet,
            put_issue_ns: 110.0,
            get_issue_ns: 120.0,
            msg_occupancy_ns: occ,
            bandwidth_efficiency: eff,
            rendezvous_threshold: 16 * 1024,
            // The handler only runs when the target's progress engine polls;
            // the expected attentiveness delay dominates, which is why GASNet
            // atomics trail NIC-offloaded ones so badly (paper §III).
            amo: AmoSupport::AmEmulated { handler_ns: 2500.0 },
            strided: StridedSupport::LoopContiguous,
            am_handler_ns: 450.0,
        }
    }

    /// MPI-3 one-sided (MVAPICH2-X MPI on Stampede, Cray MPICH on Titan):
    /// window synchronization and request tracking make both issue cost and
    /// per-message occupancy the highest of the candidates.
    pub fn mpi3(platform: Platform) -> ConduitProfile {
        let (issue, occ) = match platform {
            Platform::Stampede => (450.0, 260.0),
            Platform::Titan => (400.0, 240.0),
            Platform::CrayXc30 => (380.0, 220.0),
            Platform::GenericSmp => (400.0, 240.0),
        };
        ConduitProfile {
            kind: ConduitKind::Mpi3,
            put_issue_ns: issue,
            get_issue_ns: issue + 30.0,
            msg_occupancy_ns: occ,
            bandwidth_efficiency: 0.90,
            rendezvous_threshold: 8 * 1024,
            amo: AmoSupport::Native { extra_ns: 500.0 },
            strided: StridedSupport::LoopContiguous,
            am_handler_ns: 700.0,
        }
    }

    /// DMAPP used directly: what Cray's CAF compiler links against. Slightly
    /// more per-call software than Cray SHMEM's fast path (the compiler's
    /// generalized runtime), same hardware capabilities.
    pub fn dmapp(platform: Platform) -> ConduitProfile {
        debug_assert!(matches!(
            platform,
            Platform::Titan | Platform::CrayXc30 | Platform::GenericSmp
        ));
        ConduitProfile {
            kind: ConduitKind::Dmapp,
            put_issue_ns: 110.0,
            get_issue_ns: 120.0,
            msg_occupancy_ns: 45.0,
            bandwidth_efficiency: 0.96,
            rendezvous_threshold: usize::MAX,
            amo: AmoSupport::Native { extra_ns: 90.0 },
            strided: StridedSupport::Native { per_elem_ns: 70.0 },
            am_handler_ns: 450.0,
        }
    }

    /// The native SHMEM implementation for a platform: Cray SHMEM on the
    /// Cray machines, MVAPICH2-X SHMEM on Stampede. Mirrors the paper's
    /// "UHCAF over OpenSHMEM" configurations.
    pub fn native_shmem(platform: Platform) -> ConduitProfile {
        match platform {
            Platform::Titan | Platform::CrayXc30 => ConduitProfile::cray_shmem(platform),
            Platform::Stampede | Platform::GenericSmp => ConduitProfile::mvapich_shmem(),
        }
    }

    /// Human-readable name, e.g. for CSV output.
    pub fn label(&self) -> &'static str {
        self.kind.label()
    }

    /// True when remote atomics execute in NIC hardware.
    pub fn has_native_amo(&self) -> bool {
        matches!(self.amo, AmoSupport::Native { .. })
    }

    /// True when 1-D strided transfers are NIC-native (not a software loop).
    pub fn has_native_strided(&self) -> bool {
        matches!(self.strided, StridedSupport::Native { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shmem_has_lowest_issue_overhead() {
        let cray = ConduitProfile::cray_shmem(Platform::Titan);
        let gasnet = ConduitProfile::gasnet(Platform::Titan);
        let mpi = ConduitProfile::mpi3(Platform::Titan);
        assert!(cray.put_issue_ns < gasnet.put_issue_ns);
        assert!(gasnet.put_issue_ns < mpi.put_issue_ns);
    }

    #[test]
    fn mvapich_iput_is_a_software_loop_cray_is_native() {
        assert!(!ConduitProfile::mvapich_shmem().has_native_strided());
        assert!(ConduitProfile::cray_shmem(Platform::CrayXc30).has_native_strided());
        assert!(ConduitProfile::dmapp(Platform::CrayXc30).has_native_strided());
    }

    #[test]
    fn gasnet_lacks_native_atomics() {
        assert!(!ConduitProfile::gasnet(Platform::Titan).has_native_amo());
        assert!(ConduitProfile::cray_shmem(Platform::Titan).has_native_amo());
        assert!(ConduitProfile::mvapich_shmem().has_native_amo());
    }

    #[test]
    fn shmem_sustains_more_bandwidth_than_gasnet() {
        for p in [Platform::Stampede, Platform::Titan, Platform::CrayXc30] {
            let shmem = ConduitProfile::native_shmem(p);
            let gasnet = ConduitProfile::gasnet(p);
            assert!(shmem.bandwidth_efficiency > gasnet.bandwidth_efficiency, "on {:?}", p);
        }
    }

    #[test]
    fn native_shmem_picks_vendor_library() {
        assert_eq!(ConduitProfile::native_shmem(Platform::Titan).kind, ConduitKind::CrayShmem);
        assert_eq!(
            ConduitProfile::native_shmem(Platform::Stampede).kind,
            ConduitKind::MvapichShmem
        );
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            ConduitKind::CrayShmem.label(),
            ConduitKind::MvapichShmem.label(),
            ConduitKind::Gasnet.label(),
            ConduitKind::Mpi3.label(),
            ConduitKind::Dmapp.label(),
        ];
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }
}
