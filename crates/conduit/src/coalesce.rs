//! Per-destination-node coalescing buffers: batch small puts and
//! non-fetching AMOs into single wire transfers.
//!
//! DART-MPI-style small-op aggregation: every eligible op is *staged* into
//! the buffer of its destination node instead of reserving NIC lanes
//! immediately. A buffer flushes as one wire transfer (payload plus
//! [`crate::cost::AM_HEADER_BYTES`] per op, applied by a software handler
//! at the target) when
//!
//! - `quiet` / `fence` / a barrier / `wait_until` runs (flush *all*
//!   buffers, ordered by `(first_enqueue_ns, node)` — the same
//!   virtual-time-then-id key the NIC arbiter parks on, so flush order is
//!   deterministic under contention);
//! - a non-stageable op (get, fetching AMO, large put, strided, active
//!   message) targets the node — the flush lands strictly before it, which
//!   preserves read-your-writes and program order per node;
//! - staging one more op would exceed `max_bytes` / `max_ops`, or the
//!   buffer's oldest op is older than `max_age_ns` of virtual time.
//!
//! Within one buffer, ops apply FIFO at the target, so program order per
//! destination is preserved exactly. The only compaction is last-op
//! write combining: a put whose `(dst, offset, len)` exactly matches the
//! *most recently staged* op (itself a put) overwrites that op's payload
//! in place — back-to-back rewrites of one location (the Figure 3 pattern)
//! collapse to a single wire message. Merging deeper than the last op
//! could reorder a write across a staged AMO to the same word, so it is
//! not attempted.
//!
//! The `Coalescer` is pure bookkeeping: `Ctx` owns the cost charging,
//! heap application, sanitizer records and pending-set obligations of a
//! flush (see `Ctx::flush_coalesced`).

use crate::ctx::AmoOp;
use pgas_machine::machine::PeId;
use std::collections::BTreeMap;

/// Whether (and how) a context coalesces small ops.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum CoalescePolicy {
    /// Defer to the machine: a `with_forced_aggregation` thread override,
    /// then `MachineConfig::with_aggregation`, then the `PGAS_COALESCE`
    /// environment default (off when none of them speaks).
    #[default]
    Auto,
    /// Never coalesce, regardless of machine/environment defaults. Pinned
    /// by timing-exact tests the same way `with_faults(FaultPlan::none())`
    /// pins the fault path.
    Off,
    /// Coalesce with this configuration. A machine-level *force-off*
    /// (`with_forced_aggregation(false)`) still wins, so a suite-wide
    /// kill switch stays conclusive.
    On(CoalescingConfig),
}

/// Tuning knobs of the coalescing buffers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoalescingConfig {
    /// Largest stageable put, and per-node buffer payload capacity, bytes.
    pub max_bytes: usize,
    /// Most staged ops per node buffer before a forced flush.
    pub max_ops: usize,
    /// Oldest a buffer's first op may grow (virtual ns) before the next
    /// stage to that node flushes it first. There is no background timer —
    /// age is checked at op boundaries, and `quiet`/fences/barriers bound
    /// staleness anyway.
    pub max_age_ns: u64,
}

impl Default for CoalescingConfig {
    fn default() -> Self {
        // 64 KiB covers every "small put" of the paper's figures (Figure 3
        // streams 64 KiB messages) while still refusing genuinely large
        // transfers that saturate a lane on their own.
        CoalescingConfig { max_bytes: 65536, max_ops: 64, max_age_ns: 100_000 }
    }
}

/// One staged operation, applied FIFO at the target when its buffer
/// flushes.
#[derive(Debug)]
pub(crate) struct StagedOp {
    pub dst: PeId,
    pub off: usize,
    pub payload: StagedPayload,
}

#[derive(Debug)]
pub(crate) enum StagedPayload {
    Put(Vec<u8>),
    Amo(AmoOp),
}

impl StagedOp {
    /// Bytes this op contributes to the wire payload (headers are charged
    /// separately, per op).
    pub fn payload_bytes(&self) -> usize {
        match &self.payload {
            StagedPayload::Put(data) => data.len(),
            StagedPayload::Amo(_) => 8,
        }
    }

    /// The heap range this op writes.
    pub fn write_range(&self) -> (usize, usize) {
        match &self.payload {
            StagedPayload::Put(data) => (self.off, data.len()),
            StagedPayload::Amo(_) => (self.off, 8),
        }
    }
}

/// The staged ops bound for one destination node.
#[derive(Debug)]
pub(crate) struct NodeBuf {
    /// Virtual time the oldest op was staged — the flush-order key.
    pub first_enqueue_ns: u64,
    pub total_bytes: usize,
    pub ops: Vec<StagedOp>,
}

/// Per-destination-node staging buffers (bookkeeping only; see the module
/// docs for the split of responsibilities with `Ctx`).
#[derive(Debug)]
pub(crate) struct Coalescer {
    cfg: CoalescingConfig,
    bufs: BTreeMap<usize, NodeBuf>,
}

impl Coalescer {
    pub fn new(cfg: CoalescingConfig) -> Self {
        Coalescer { cfg, bufs: BTreeMap::new() }
    }

    /// Is a put of `len` bytes stageable at all under this configuration?
    pub fn put_eligible(&self, len: usize) -> bool {
        len <= self.cfg.max_bytes
    }

    /// Total staged-but-unflushed ops across all buffers (they count as
    /// outstanding for `outstanding_puts` — staged is even less complete
    /// than in-flight).
    pub fn staged_ops(&self) -> usize {
        self.bufs.values().map(|b| b.ops.len()).sum()
    }

    /// Must `node`'s buffer flush before staging `new_ops` more ops of
    /// `payload_bytes` at virtual time `now`? (Capacity and age; an empty
    /// buffer never needs a flush.) A write-combining caller passes
    /// `(0, 0)` — an exact-range rewrite grows neither count nor bytes, so
    /// only the age bound can force a flush first.
    pub fn needs_flush_before(
        &self,
        node: usize,
        new_ops: usize,
        payload_bytes: usize,
        now: u64,
    ) -> bool {
        match self.bufs.get(&node) {
            None => false,
            Some(b) => {
                b.ops.len() + new_ops > self.cfg.max_ops
                    || b.total_bytes + payload_bytes > self.cfg.max_bytes
                    || now.saturating_sub(b.first_enqueue_ns) > self.cfg.max_age_ns
            }
        }
    }

    /// Would [`Coalescer::try_merge_put`] succeed right now? Probed before
    /// the capacity check so a same-range rewrite is never broken up by a
    /// needless flush.
    pub fn can_merge_put(&self, node: usize, dst: PeId, off: usize, len: usize) -> bool {
        let Some(buf) = self.bufs.get(&node) else { return false };
        let Some(last) = buf.ops.last() else { return false };
        last.dst == dst
            && last.off == off
            && matches!(&last.payload, StagedPayload::Put(d) if d.len() == len)
    }

    /// Write-combine `data` into the most recently staged op of `node`'s
    /// buffer if that op is a put to exactly `(dst, off, data.len())`.
    /// Returns whether the merge happened.
    pub fn try_merge_put(&mut self, node: usize, dst: PeId, off: usize, data: &[u8]) -> bool {
        let Some(buf) = self.bufs.get_mut(&node) else { return false };
        let Some(last) = buf.ops.last_mut() else { return false };
        if last.dst != dst || last.off != off {
            return false;
        }
        match &mut last.payload {
            StagedPayload::Put(staged) if staged.len() == data.len() => {
                staged.copy_from_slice(data);
                true
            }
            _ => false,
        }
    }

    /// Append an op to `node`'s buffer (the caller already handled
    /// capacity, age, and merging).
    pub fn push(&mut self, node: usize, op: StagedOp, now: u64) {
        let buf = self.bufs.entry(node).or_insert_with(|| NodeBuf {
            first_enqueue_ns: now,
            total_bytes: 0,
            ops: Vec::new(),
        });
        buf.total_bytes += op.payload_bytes();
        buf.ops.push(op);
    }

    /// Detach `node`'s buffer for flushing, if it has anything staged.
    pub fn take_node(&mut self, node: usize) -> Option<NodeBuf> {
        self.bufs.remove(&node)
    }

    /// Detach every buffer, ordered by `(first_enqueue_ns, node)` — the
    /// deterministic flush order `quiet`/fences/barriers use.
    pub fn take_all(&mut self) -> Vec<(usize, NodeBuf)> {
        let mut all: Vec<(usize, NodeBuf)> = std::mem::take(&mut self.bufs).into_iter().collect();
        all.sort_by_key(|(node, buf)| (buf.first_enqueue_ns, *node));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_last_op_merge_combines_writes() {
        let mut c = Coalescer::new(CoalescingConfig::default());
        c.push(1, StagedOp { dst: 3, off: 0, payload: StagedPayload::Put(vec![1; 8]) }, 10);
        assert!(c.try_merge_put(1, 3, 0, &[2; 8]));
        assert_eq!(c.staged_ops(), 1);
        let buf = c.take_node(1).unwrap();
        match &buf.ops[0].payload {
            StagedPayload::Put(d) => assert_eq!(d, &vec![2; 8]),
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn merge_refuses_non_matching_and_non_last_ops() {
        let mut c = Coalescer::new(CoalescingConfig::default());
        c.push(1, StagedOp { dst: 3, off: 0, payload: StagedPayload::Put(vec![1; 8]) }, 10);
        assert!(!c.try_merge_put(1, 3, 8, &[2; 8]), "different offset");
        assert!(!c.try_merge_put(1, 4, 0, &[2; 8]), "different dst");
        assert!(!c.try_merge_put(1, 3, 0, &[2; 4]), "different length");
        c.push(1, StagedOp { dst: 3, off: 0, payload: StagedPayload::Amo(AmoOp::Add(1)) }, 11);
        assert!(!c.try_merge_put(1, 3, 0, &[2; 8]), "last op is an AMO: merging would reorder");
        assert_eq!(c.staged_ops(), 2);
    }

    #[test]
    fn capacity_and_age_force_flushes() {
        let cfg = CoalescingConfig { max_bytes: 16, max_ops: 2, max_age_ns: 100 };
        let mut c = Coalescer::new(cfg);
        assert!(!c.needs_flush_before(1, 1, 8, 0), "empty buffer never flushes");
        c.push(1, StagedOp { dst: 3, off: 0, payload: StagedPayload::Put(vec![1; 8]) }, 10);
        assert!(!c.needs_flush_before(1, 1, 8, 20));
        assert!(c.needs_flush_before(1, 1, 16, 20), "payload capacity");
        assert!(c.needs_flush_before(1, 1, 8, 200), "age");
        c.push(1, StagedOp { dst: 3, off: 8, payload: StagedPayload::Put(vec![1; 8]) }, 20);
        assert!(c.needs_flush_before(1, 1, 1, 20), "op-count capacity");
        assert!(!c.needs_flush_before(2, 1, 8, 20), "other nodes unaffected");
        // A write-combining caller (0 new ops, 0 new bytes) is exempt from
        // both capacity bounds; only age still forces the flush.
        assert!(!c.needs_flush_before(1, 0, 0, 20), "merge skips capacity");
        assert!(c.needs_flush_before(1, 0, 0, 200), "merge still honors age");
        assert!(c.can_merge_put(1, 3, 8, 8), "last op is a matching put");
        assert!(!c.can_merge_put(1, 3, 0, 8), "not the last op");
        assert!(!c.can_merge_put(2, 3, 8, 8), "wrong node");
    }

    #[test]
    fn take_all_orders_by_first_enqueue_then_node() {
        let mut c = Coalescer::new(CoalescingConfig::default());
        c.push(2, StagedOp { dst: 9, off: 0, payload: StagedPayload::Put(vec![0; 4]) }, 50);
        c.push(0, StagedOp { dst: 1, off: 0, payload: StagedPayload::Put(vec![0; 4]) }, 70);
        c.push(1, StagedOp { dst: 5, off: 0, payload: StagedPayload::Put(vec![0; 4]) }, 50);
        let order: Vec<usize> = c.take_all().into_iter().map(|(node, _)| node).collect();
        assert_eq!(order, vec![1, 2, 0], "ties broken by node id");
        assert_eq!(c.staged_ops(), 0);
    }
}
