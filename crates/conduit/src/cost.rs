//! Virtual-time cost model: composes a machine's wire parameters with a
//! conduit profile and performs NIC reservations.
//!
//! Inter-node transfers are pipelined through both endpoint NICs: the
//! destination reservation is requested at `source begin + wire latency`, so
//! an uncontended large message costs `latency + size/bandwidth` while k
//! flows sharing a NIC degrade towards `1/k` of the link — the behaviour the
//! paper's 1-pair vs 16-pair panels exhibit.

use crate::profile::{AmoSupport, ConduitProfile, StridedSupport};
use pgas_machine::config::WireParams;
use pgas_machine::machine::{Machine, PeId};

/// Completion times of a one-sided write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutTiming {
    /// When the call returns on the source (source buffer reusable).
    pub local_complete: u64,
    /// When the data is globally visible at the target (what `quiet` waits
    /// for).
    pub remote_complete: u64,
}

/// Completion times of a remote atomic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmoTiming {
    /// When the call returns on the source (with the fetched value, if any).
    pub local_complete: u64,
    /// When the operation has executed at the target.
    pub remote_complete: u64,
}

/// Completion times of an active-message request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmTiming {
    /// When the request has left the source NIC (the caller may proceed;
    /// like a put's local completion).
    pub local_complete: u64,
    /// When the handler's effects are visible at the target (what `quiet`
    /// waits for).
    pub executed: u64,
}

/// Wire framing charged per active message and per coalesced op: handler id
/// / opcode, target offset, and length fields.
pub const AM_HEADER_BYTES: usize = 16;

/// Observability breakdown of one transfer, computed from the same NIC
/// reservations the timing comes from.
///
/// This rides alongside [`PutTiming`]/[`AmoTiming`] (never inside them — the
/// timing structs are compared bit-for-bit against the pure estimators) and
/// costs nothing to produce: every field is arithmetic on reservation values
/// the cost model already holds. Every reserving method takes an
/// `Option<&mut FlowDetail>` out-slot; passing `None` changes nothing about
/// the reservation sequence, so traced and untraced runs are bit-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowDetail {
    /// Total time the transfer waited in NIC queues behind earlier traffic
    /// (reservation `begin - requested start`, summed over the lanes hit).
    pub queue_ns: u64,
    /// Total time the transfer occupied NIC lanes (service time).
    pub service_ns: u64,
    /// Delivery window at the remote side, virtual ns. `remote_end` equals
    /// the operation's remote completion; both are 0 if nothing remote
    /// happened.
    pub remote_begin: u64,
    pub remote_end: u64,
}

/// Write `d` into the caller's out-slot, if one was given. A free function
/// (not a `FlowDetail` method) so call sites read as plain data flow.
#[inline]
fn emit(detail: Option<&mut FlowDetail>, d: FlowDetail) {
    if let Some(slot) = detail {
        *slot = d;
    }
}

/// Cost model for one (machine, profile) pair.
#[derive(Clone, Copy)]
pub struct CostModel<'m> {
    machine: &'m Machine,
    profile: ConduitProfile,
}

impl<'m> CostModel<'m> {
    pub fn new(machine: &'m Machine, profile: ConduitProfile) -> Self {
        CostModel { machine, profile }
    }

    pub fn profile(&self) -> &ConduitProfile {
        &self.profile
    }

    pub fn machine(&self) -> &'m Machine {
        self.machine
    }

    #[inline]
    fn wire(&self) -> &WireParams {
        &self.machine.config().wire
    }

    /// NIC occupancy of a message carrying `bytes` of payload.
    #[inline]
    fn occupancy_ns(&self, bytes: usize) -> f64 {
        self.wire().nic_msg_overhead_ns
            + self.profile.msg_occupancy_ns
            + bytes as f64 / (self.wire().inter.bytes_per_ns * self.profile.bandwidth_efficiency)
    }

    /// Occupancy of a control message (no payload).
    #[inline]
    fn control_occupancy_ns(&self) -> f64 {
        self.occupancy_ns(8)
    }

    /// Stretch a payload occupancy by the fault plan's NIC-degradation
    /// factor for a reservation on `node` beginning around `begin_ns`.
    /// Identity (and branch-free past one comparison) on machines without
    /// an active fault plan, so fault-free timings are unchanged.
    ///
    /// The factor is sampled at the requested begin instant; a window is a
    /// coarse model of a sick NIC, not a cycle-accurate rate limiter.
    #[inline]
    fn degraded_occ(&self, node: usize, begin_ns: u64, occ: u64) -> u64 {
        let f = self.machine.degradation_factor(node, begin_ns);
        if f >= 1.0 {
            occ
        } else {
            (occ as f64 / f).round() as u64
        }
    }

    /// Public view of the control-message occupancy (used to account for
    /// polling traffic of spin-based locks).
    pub fn control_msg_occupancy_ns(&self) -> f64 {
        self.control_occupancy_ns()
    }

    /// Pure estimate (no NIC reservations) of an uncontended fetching AMO's
    /// round-trip time between `src` and `dst`. Used by spin-lock
    /// implementations to distinguish "the CAS itself" from "waiting for the
    /// holder" in their virtual elapsed time.
    pub fn amo_rtt_estimate_ns(&self, src: PeId, dst: PeId) -> f64 {
        let wire = self.wire();
        if self.machine.same_node(src, dst) {
            return self.profile.put_issue_ns + wire.intra.latency_ns * 2.0 + wire.amo_ns;
        }
        match self.profile.amo {
            AmoSupport::Native { extra_ns } => {
                self.profile.put_issue_ns
                    + 2.0 * wire.inter.latency_ns
                    + 2.0 * self.control_occupancy_ns()
                    + wire.amo_ns
                    + extra_ns
            }
            AmoSupport::AmEmulated { handler_ns } => {
                self.profile.put_issue_ns
                    + 2.0 * wire.inter.latency_ns
                    + 3.0 * self.control_occupancy_ns()
                    + handler_ns
            }
        }
    }

    #[inline]
    fn latency(&self) -> u64 {
        self.wire().inter.latency_ns.round() as u64
    }

    /// Rendezvous handshake cost paid before large payloads flow.
    #[inline]
    fn rendezvous_ns(&self, bytes: usize) -> u64 {
        if bytes > self.profile.rendezvous_threshold {
            (2.0 * self.wire().inter.latency_ns + 2.0 * self.control_occupancy_ns()).round() as u64
        } else {
            0
        }
    }

    /// Timing of a contiguous put of `bytes` from `src` to `dst`, issued at
    /// virtual time `start` but with data flow not beginning before `floor`
    /// (used by `fence` to order deliveries). Fills `detail` (when given)
    /// with the queue/service/delivery breakdown of the same reservations.
    pub fn put(
        &self,
        src: PeId,
        dst: PeId,
        bytes: usize,
        start: u64,
        floor: u64,
        detail: Option<&mut FlowDetail>,
    ) -> PutTiming {
        let issue_done = start + self.profile.put_issue_ns.round() as u64;
        if self.machine.same_node(src, dst) {
            let occ = self.wire().intra.occupancy_ns(bytes).round() as u64;
            let t = issue_done.max(floor) + self.wire().intra.latency_ns.round() as u64 + occ;
            emit(
                detail,
                FlowDetail { queue_ns: 0, service_ns: occ, remote_begin: t - occ, remote_end: t },
            );
            return PutTiming { local_complete: t, remote_complete: t };
        }
        let flow_start = (issue_done + self.rendezvous_ns(bytes)).max(floor);
        let occ = self.occupancy_ns(bytes).round() as u64;
        let src_node = self.machine.node_of(src);
        let dst_node = self.machine.node_of(dst);
        // Both lane reservations are one arbiter turn: under a deterministic
        // machine, contending flows are granted in (flow_start, pe) order.
        let (src_res, dst_res) = self.machine.nic_turn(src, flow_start, || {
            let src_res = self.machine.nic(src_node).reserve_tx(
                flow_start,
                self.degraded_occ(src_node, flow_start, occ),
                bytes,
            );
            let rx_start = src_res.begin + self.latency();
            let dst_res = self.machine.nic(dst_node).reserve_rx(
                rx_start,
                self.degraded_occ(dst_node, rx_start, occ),
                bytes,
            );
            (src_res, dst_res)
        });
        let rx_start = src_res.begin + self.latency();
        emit(
            detail,
            FlowDetail {
                queue_ns: (src_res.begin - flow_start) + (dst_res.begin - rx_start),
                service_ns: (src_res.end - src_res.begin) + (dst_res.end - dst_res.begin),
                remote_begin: dst_res.begin,
                remote_end: dst_res.end,
            },
        );
        PutTiming { local_complete: src_res.end.max(issue_done), remote_complete: dst_res.end }
    }

    /// Completion time of a blocking get of `bytes` of `dst`'s memory into
    /// `src` (the caller), issued at `start`. Fills `detail` (when given)
    /// with the queue/service breakdown; the delivery window is the target
    /// NIC streaming the payload back.
    pub fn get(
        &self,
        src: PeId,
        dst: PeId,
        bytes: usize,
        start: u64,
        detail: Option<&mut FlowDetail>,
    ) -> u64 {
        let issue_done = start + self.profile.get_issue_ns.round() as u64;
        if self.machine.same_node(src, dst) {
            let occ = self.wire().intra.occupancy_ns(bytes).round() as u64;
            let t = issue_done + self.wire().intra.latency_ns.round() as u64 + occ;
            emit(
                detail,
                FlowDetail { queue_ns: 0, service_ns: occ, remote_begin: t - occ, remote_end: t },
            );
            return t;
        }
        let src_node = self.machine.node_of(src);
        let dst_node = self.machine.node_of(dst);
        let req_occ = self.control_occupancy_ns().round() as u64;
        let data_occ = self.occupancy_ns(bytes).round() as u64;
        let (req, data, recv) = self.machine.nic_turn(src, issue_done, || {
            // Request message out...
            let req = self.machine.nic(src_node).reserve_tx(issue_done, req_occ, 8);
            // ...target NIC streams the payload back...
            let data_start = req.end + self.latency();
            let data = self.machine.nic(dst_node).reserve_tx(
                data_start,
                self.degraded_occ(dst_node, data_start, data_occ),
                bytes,
            );
            // ...delivered through the source NIC.
            let recv_start = data.begin + self.latency();
            let recv = self.machine.nic(src_node).reserve_rx(
                recv_start,
                self.degraded_occ(src_node, recv_start, data_occ),
                bytes,
            );
            (req, data, recv)
        });
        let data_start = req.end + self.latency();
        let recv_start = data.begin + self.latency();
        emit(
            detail,
            FlowDetail {
                queue_ns: (req.begin - issue_done)
                    + (data.begin - data_start)
                    + (recv.begin - recv_start),
                service_ns: (req.end - req.begin)
                    + (data.end - data.begin)
                    + (recv.end - recv.begin),
                remote_begin: data.begin,
                remote_end: data.end,
            },
        );
        recv.end
    }

    /// Timing of a remote atomic on an 8-byte word of `dst`'s memory.
    /// `fetching` operations block for the result; non-fetching ones return
    /// after local completion like a small put. Fills `detail` (when given)
    /// with the queue/service breakdown.
    pub fn amo(
        &self,
        src: PeId,
        dst: PeId,
        fetching: bool,
        start: u64,
        detail: Option<&mut FlowDetail>,
    ) -> AmoTiming {
        let wire = *self.wire();
        match self.profile.amo {
            AmoSupport::Native { extra_ns } => {
                let issue_done = start + self.profile.put_issue_ns.round() as u64;
                if self.machine.same_node(src, dst) {
                    let t = issue_done
                        + (wire.intra.latency_ns + wire.amo_ns + extra_ns).round() as u64;
                    emit(
                        detail,
                        FlowDetail { remote_begin: t, remote_end: t, ..Default::default() },
                    );
                    return AmoTiming { local_complete: t, remote_complete: t };
                }
                let occ = (self.control_occupancy_ns() + extra_ns).round() as u64;
                let (out, at_target) = self.machine.nic_turn(src, issue_done, || {
                    let out =
                        self.machine.nic(self.machine.node_of(src)).reserve_tx(issue_done, occ, 8);
                    let rx_start = out.begin + self.latency();
                    let at_target =
                        self.machine.nic(self.machine.node_of(dst)).reserve_rx(rx_start, occ, 8);
                    (out, at_target)
                });
                let rx_start = out.begin + self.latency();
                let executed = at_target.end + wire.amo_ns.round() as u64;
                let local = if fetching {
                    // Result rides a small reply back.
                    executed + self.latency() + self.control_occupancy_ns().round() as u64
                } else {
                    out.end
                };
                emit(
                    detail,
                    FlowDetail {
                        queue_ns: (out.begin - issue_done) + (at_target.begin - rx_start),
                        service_ns: (out.end - out.begin) + (at_target.end - at_target.begin),
                        remote_begin: at_target.begin,
                        remote_end: executed,
                    },
                );
                AmoTiming { local_complete: local, remote_complete: executed }
            }
            AmoSupport::AmEmulated { handler_ns } => {
                // Request AM -> software handler at target -> reply AM.
                // Always a full round trip, fetching or not (the handler
                // must acknowledge to preserve atomicity).
                let issue_done = start + self.profile.put_issue_ns.round() as u64;
                if self.machine.same_node(src, dst) {
                    let t = issue_done + (2.0 * wire.intra.latency_ns + handler_ns).round() as u64;
                    emit(
                        detail,
                        FlowDetail { remote_begin: t, remote_end: t, ..Default::default() },
                    );
                    return AmoTiming { local_complete: t, remote_complete: t };
                }
                let occ = self.control_occupancy_ns().round() as u64;
                let (out, at_target, reply) = self.machine.nic_turn(src, issue_done, || {
                    let out =
                        self.machine.nic(self.machine.node_of(src)).reserve_tx(issue_done, occ, 8);
                    let rx_start = out.begin + self.latency();
                    let at_target =
                        self.machine.nic(self.machine.node_of(dst)).reserve_rx(rx_start, occ, 8);
                    let executed = at_target.end + handler_ns.round() as u64;
                    let reply_start = executed + self.latency();
                    let reply =
                        self.machine.nic(self.machine.node_of(src)).reserve_rx(reply_start, occ, 8);
                    (out, at_target, reply)
                });
                let rx_start = out.begin + self.latency();
                let executed = at_target.end + handler_ns.round() as u64;
                let reply_start = executed + self.latency();
                emit(
                    detail,
                    FlowDetail {
                        queue_ns: (out.begin - issue_done)
                            + (at_target.begin - rx_start)
                            + (reply.begin - reply_start),
                        service_ns: (out.end - out.begin)
                            + (at_target.end - at_target.begin)
                            + (reply.end - reply.begin),
                        remote_begin: at_target.begin,
                        remote_end: executed,
                    },
                );
                AmoTiming { local_complete: reply.end, remote_complete: executed }
            }
        }
    }

    /// Timing of a NIC-native 1-D strided put (`shmem_iput` on Cray SHMEM):
    /// one descriptor, per-element scatter cost at the wire.
    ///
    /// Returns `None` when the profile implements strided transfers as a
    /// software loop — the caller must loop over contiguous puts itself
    /// (that is the observable behaviour the paper reports for MVAPICH2-X).
    #[allow(clippy::too_many_arguments)] // mirrors the C shmem_iput signature
    pub fn strided_put_native(
        &self,
        src: PeId,
        dst: PeId,
        nelems: usize,
        elem_bytes: usize,
        start: u64,
        floor: u64,
        detail: Option<&mut FlowDetail>,
    ) -> Option<PutTiming> {
        let StridedSupport::Native { per_elem_ns } = self.profile.strided else {
            return None;
        };
        let bytes = nelems * elem_bytes;
        let issue_done = start + self.profile.put_issue_ns.round() as u64;
        let scatter = (per_elem_ns * nelems as f64).round() as u64;
        if self.machine.same_node(src, dst) {
            let occ = self.wire().intra.occupancy_ns(bytes).round() as u64 + scatter;
            let t = issue_done.max(floor) + self.wire().intra.latency_ns.round() as u64 + occ;
            emit(
                detail,
                FlowDetail { queue_ns: 0, service_ns: occ, remote_begin: t - occ, remote_end: t },
            );
            return Some(PutTiming { local_complete: t, remote_complete: t });
        }
        let occ = (self.occupancy_ns(bytes) + per_elem_ns * nelems as f64).round() as u64;
        let flow_start = issue_done.max(floor);
        let src_node = self.machine.node_of(src);
        let dst_node = self.machine.node_of(dst);
        let (src_res, dst_res) = self.machine.nic_turn(src, flow_start, || {
            let src_res = self.machine.nic(src_node).reserve_tx(
                flow_start,
                self.degraded_occ(src_node, flow_start, occ),
                bytes,
            );
            let rx_start = src_res.begin + self.latency();
            let dst_res = self.machine.nic(dst_node).reserve_rx(
                rx_start,
                self.degraded_occ(dst_node, rx_start, occ),
                bytes,
            );
            (src_res, dst_res)
        });
        let rx_start = src_res.begin + self.latency();
        emit(
            detail,
            FlowDetail {
                queue_ns: (src_res.begin - flow_start) + (dst_res.begin - rx_start),
                service_ns: (src_res.end - src_res.begin) + (dst_res.end - dst_res.begin),
                remote_begin: dst_res.begin,
                remote_end: dst_res.end,
            },
        );
        Some(PutTiming { local_complete: src_res.end, remote_complete: dst_res.end })
    }

    /// Like [`Self::strided_put_native`] but for gets.
    pub fn strided_get_native(
        &self,
        src: PeId,
        dst: PeId,
        nelems: usize,
        elem_bytes: usize,
        start: u64,
        detail: Option<&mut FlowDetail>,
    ) -> Option<u64> {
        let StridedSupport::Native { per_elem_ns } = self.profile.strided else {
            return None;
        };
        let base = self.get(src, dst, nelems * elem_bytes, start, detail);
        Some(base + (per_elem_ns * nelems as f64).round() as u64)
    }

    /// Software unpack/pack cost of an AM handler touching `n` pieces at
    /// the target: one dispatch plus two local ops per piece.
    #[inline]
    fn unpack_ns(&self, n: usize) -> u64 {
        (self.profile.am_handler_ns + n as f64 * self.machine.config().compute.local_op_ns * 2.0)
            .round() as u64
    }

    /// Cost of an AM-packed transfer: the payload travels as one contiguous
    /// message and a software handler unpacks `nelems` pieces at the target.
    /// This models GASNet's VIS / "with-AM" strided path. The unpack handler
    /// extends the delivery window at the target.
    #[allow(clippy::too_many_arguments)] // src/dst + shape + clocks + detail
    pub fn am_packed_put(
        &self,
        src: PeId,
        dst: PeId,
        nelems: usize,
        elem_bytes: usize,
        start: u64,
        floor: u64,
        mut detail: Option<&mut FlowDetail>,
    ) -> PutTiming {
        let t = self.put(src, dst, nelems * elem_bytes, start, floor, detail.as_deref_mut());
        let unpack = self.unpack_ns(nelems);
        if let Some(d) = detail {
            d.remote_end = t.remote_complete + unpack;
        }
        PutTiming { local_complete: t.local_complete, remote_complete: t.remote_complete + unpack }
    }

    /// Cost of an AM-packed gather-get: one small request, the target's
    /// handler packs `nelems` pieces, one contiguous reply.
    pub fn am_packed_get(
        &self,
        src: PeId,
        dst: PeId,
        nelems: usize,
        elem_bytes: usize,
        start: u64,
        detail: Option<&mut FlowDetail>,
    ) -> u64 {
        let pack = self.unpack_ns(nelems);
        self.get(src, dst, nelems * elem_bytes, start + pack, detail)
    }

    /// Cost of flushing one coalescing buffer: `nops` staged small ops to
    /// the same destination node travel as one wire transfer of `bytes`
    /// (payload plus per-op headers) and a software handler applies each op
    /// at the target — the same shape as [`Self::am_packed_put`], keyed on
    /// the op count instead of an element count.
    #[allow(clippy::too_many_arguments)] // src/dst + buffer shape + clocks + detail
    pub fn coalesced_flush(
        &self,
        src: PeId,
        dst: PeId,
        bytes: usize,
        nops: usize,
        start: u64,
        floor: u64,
        mut detail: Option<&mut FlowDetail>,
    ) -> PutTiming {
        let t = self.put(src, dst, bytes, start, floor, detail.as_deref_mut());
        let unpack = self.unpack_ns(nops);
        if let Some(d) = detail {
            d.remote_end = t.remote_complete + unpack;
        }
        PutTiming { local_complete: t.local_complete, remote_complete: t.remote_complete + unpack }
    }

    /// Timing of an active-message request: one wire transfer of the
    /// argument payload, then the registered handler (profile dispatch cost
    /// plus `handler_extra_ns` of target-side compute) executes at the
    /// target. No round trip — that is the whole point: a get–compute–put
    /// sequence collapses into a single request message. `executed` is when
    /// the handler's effects are visible at the target (what `quiet` waits
    /// for); `local_complete` is when the request left the source NIC.
    #[allow(clippy::too_many_arguments)] // src/dst + payload + clocks + detail
    pub fn am_request(
        &self,
        src: PeId,
        dst: PeId,
        arg_bytes: usize,
        handler_extra_ns: f64,
        start: u64,
        floor: u64,
        detail: Option<&mut FlowDetail>,
    ) -> AmTiming {
        let handler_ns = (self.profile.am_handler_ns + handler_extra_ns).round() as u64;
        let bytes = AM_HEADER_BYTES + arg_bytes;
        let issue_done = start + self.profile.put_issue_ns.round() as u64;
        if self.machine.same_node(src, dst) {
            let occ = self.wire().intra.occupancy_ns(bytes).round() as u64;
            let t = issue_done.max(floor) + self.wire().intra.latency_ns.round() as u64 + occ;
            let executed = t + handler_ns;
            emit(
                detail,
                FlowDetail {
                    queue_ns: 0,
                    service_ns: occ,
                    remote_begin: t - occ,
                    remote_end: executed,
                },
            );
            return AmTiming { local_complete: t, executed };
        }
        let flow_start = issue_done.max(floor);
        let occ = self.occupancy_ns(bytes).round() as u64;
        let src_node = self.machine.node_of(src);
        let dst_node = self.machine.node_of(dst);
        let (out, at_target) = self.machine.nic_turn(src, flow_start, || {
            let out = self.machine.nic(src_node).reserve_tx(
                flow_start,
                self.degraded_occ(src_node, flow_start, occ),
                bytes,
            );
            let rx_start = out.begin + self.latency();
            let at_target = self.machine.nic(dst_node).reserve_rx(
                rx_start,
                self.degraded_occ(dst_node, rx_start, occ),
                bytes,
            );
            (out, at_target)
        });
        let rx_start = out.begin + self.latency();
        let executed = at_target.end + handler_ns;
        emit(
            detail,
            FlowDetail {
                queue_ns: (out.begin - flow_start) + (at_target.begin - rx_start),
                service_ns: (out.end - out.begin) + (at_target.end - at_target.begin),
                remote_begin: at_target.begin,
                remote_end: executed,
            },
        );
        AmTiming { local_complete: out.end.max(issue_done), executed }
    }

    /// Timing of an active-message reply: the target streams `reply_bytes`
    /// back to the caller once the handler finished at `executed`. Returns
    /// when the reply is delivered at the caller. Queue/service time is
    /// *added* into `detail` so a request's breakdown can accumulate its
    /// reply leg.
    pub fn am_reply(
        &self,
        src: PeId,
        dst: PeId,
        reply_bytes: usize,
        executed: u64,
        detail: Option<&mut FlowDetail>,
    ) -> u64 {
        let bytes = AM_HEADER_BYTES + reply_bytes;
        if self.machine.same_node(src, dst) {
            let occ = self.wire().intra.occupancy_ns(bytes).round() as u64;
            let t = executed + self.wire().intra.latency_ns.round() as u64 + occ;
            if let Some(d) = detail {
                d.service_ns += occ;
            }
            return t;
        }
        let occ = self.occupancy_ns(bytes).round() as u64;
        let src_node = self.machine.node_of(src);
        let dst_node = self.machine.node_of(dst);
        let (rep_out, rep_in) = self.machine.nic_turn(src, executed, || {
            let rep_out = self.machine.nic(dst_node).reserve_tx(
                executed,
                self.degraded_occ(dst_node, executed, occ),
                bytes,
            );
            let rx_start = rep_out.begin + self.latency();
            let rep_in = self.machine.nic(src_node).reserve_rx(
                rx_start,
                self.degraded_occ(src_node, rx_start, occ),
                bytes,
            );
            (rep_out, rep_in)
        });
        let rx_start = rep_out.begin + self.latency();
        if let Some(d) = detail {
            d.queue_ns += (rep_out.begin - executed) + (rep_in.begin - rx_start);
            d.service_ns += (rep_out.end - rep_out.begin) + (rep_in.end - rep_in.begin);
        }
        rep_in.end
    }

    // ---- pure probe estimators (no NIC reservations) ------------------------
    //
    // The reserving entry points above mutate the shared NIC timelines, so a
    // planner that wants to *compare* candidate transfer shapes cannot call
    // them without perturbing the simulation. The estimators below mirror
    // their arithmetic — same formulas, same `u64` rounding — under the
    // assumption of an idle NIC pair (every reservation granted at its
    // requested begin) and report completion times relative to the issue
    // instant. This is the same contract as [`Self::amo_rtt_estimate_ns`].

    /// Pure estimate of an uncontended contiguous put of `bytes` from `src`
    /// to `dst`: the [`PutTiming`] the reserving [`Self::put`] would return
    /// for `start = 0, floor = 0` on idle NICs.
    pub fn put_estimate(&self, src: PeId, dst: PeId, bytes: usize) -> PutTiming {
        let issue_done = self.profile.put_issue_ns.round() as u64;
        if self.machine.same_node(src, dst) {
            let t = issue_done
                + self.wire().intra.latency_ns.round() as u64
                + self.wire().intra.occupancy_ns(bytes).round() as u64;
            return PutTiming { local_complete: t, remote_complete: t };
        }
        let flow_start = issue_done + self.rendezvous_ns(bytes);
        let occ = self.occupancy_ns(bytes).round() as u64;
        PutTiming {
            local_complete: flow_start + occ,
            remote_complete: flow_start + self.latency() + occ,
        }
    }

    /// Pure estimate of an uncontended blocking get of `bytes`, mirroring
    /// [`Self::get`] at `start = 0` on idle NICs.
    pub fn get_estimate_ns(&self, src: PeId, dst: PeId, bytes: usize) -> u64 {
        let issue_done = self.profile.get_issue_ns.round() as u64;
        if self.machine.same_node(src, dst) {
            return issue_done
                + self.wire().intra.latency_ns.round() as u64
                + self.wire().intra.occupancy_ns(bytes).round() as u64;
        }
        let req_occ = self.control_occupancy_ns().round() as u64;
        let data_occ = self.occupancy_ns(bytes).round() as u64;
        issue_done + req_occ + 2 * self.latency() + data_occ
    }

    /// Pure estimate of an uncontended NIC-native 1-D strided get, mirroring
    /// [`Self::strided_get_native`] at `start = 0` on idle NICs (`None` on
    /// software-loop profiles).
    pub fn strided_get_estimate_ns(
        &self,
        src: PeId,
        dst: PeId,
        nelems: usize,
        elem_bytes: usize,
    ) -> Option<u64> {
        let StridedSupport::Native { per_elem_ns } = self.profile.strided else {
            return None;
        };
        Some(
            self.get_estimate_ns(src, dst, nelems * elem_bytes)
                + (per_elem_ns * nelems as f64).round() as u64,
        )
    }

    /// Pure estimate of an uncontended AM-packed gather-get, mirroring
    /// [`Self::am_packed_get`] at `start = 0` on idle NICs.
    pub fn am_packed_get_estimate_ns(
        &self,
        src: PeId,
        dst: PeId,
        nelems: usize,
        elem_bytes: usize,
    ) -> u64 {
        let pack = (self.profile.am_handler_ns
            + nelems as f64 * self.machine.config().compute.local_op_ns * 2.0)
            .round() as u64;
        pack + self.get_estimate_ns(src, dst, nelems * elem_bytes)
    }

    /// Pure estimate of an uncontended NIC-native 1-D strided put, mirroring
    /// [`Self::strided_put_native`] (`None` on software-loop profiles).
    pub fn strided_put_estimate(
        &self,
        src: PeId,
        dst: PeId,
        nelems: usize,
        elem_bytes: usize,
    ) -> Option<PutTiming> {
        let StridedSupport::Native { per_elem_ns } = self.profile.strided else {
            return None;
        };
        let bytes = nelems * elem_bytes;
        let issue_done = self.profile.put_issue_ns.round() as u64;
        if self.machine.same_node(src, dst) {
            let t = issue_done
                + self.wire().intra.latency_ns.round() as u64
                + self.wire().intra.occupancy_ns(bytes).round() as u64
                + (per_elem_ns * nelems as f64).round() as u64;
            return Some(PutTiming { local_complete: t, remote_complete: t });
        }
        let occ = (self.occupancy_ns(bytes) + per_elem_ns * nelems as f64).round() as u64;
        Some(PutTiming {
            local_complete: issue_done + occ,
            remote_complete: issue_done + self.latency() + occ,
        })
    }

    /// Pure estimate of an uncontended AM-packed put, mirroring
    /// [`Self::am_packed_put`].
    pub fn am_packed_put_estimate(
        &self,
        src: PeId,
        dst: PeId,
        nelems: usize,
        elem_bytes: usize,
    ) -> PutTiming {
        let t = self.put_estimate(src, dst, nelems * elem_bytes);
        let unpack = (self.profile.am_handler_ns
            + nelems as f64 * self.machine.config().compute.local_op_ns * 2.0)
            .round() as u64;
        PutTiming { local_complete: t.local_complete, remote_complete: t.remote_complete + unpack }
    }

    /// Cost of a dissemination barrier over `n` PEs.
    pub fn barrier_ns(&self, n: usize) -> f64 {
        if n <= 1 {
            return self.machine.config().compute.local_op_ns;
        }
        let rounds = (n as f64).log2().ceil();
        let link =
            if self.machine.config().nodes > 1 { self.wire().inter } else { self.wire().intra };
        rounds * (link.latency_ns + self.control_occupancy_ns() + self.profile.put_issue_ns)
    }

    /// Direct load/store copy cost on the local node (the `shmem_ptr` fast
    /// path the paper lists as future work).
    pub fn local_copy(&self, bytes: usize, start: u64) -> u64 {
        start + (self.wire().intra.occupancy_ns(bytes)).round() as u64 + 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_machine::{stampede, titan, Machine, Platform};

    fn shmem_on_stampede(nodes: usize) -> (std::sync::Arc<Machine>, ConduitProfile) {
        (Machine::new(stampede(nodes, 16)), ConduitProfile::mvapich_shmem())
    }

    #[test]
    fn put_latency_grows_with_size() {
        let (m, p) = shmem_on_stampede(2);
        let cm = CostModel::new(&m, p);
        let small = cm.put(0, 16, 8, 0, 0, None);
        let large = cm.put(0, 16, 1 << 20, small.remote_complete, 0, None);
        let small_dur = small.remote_complete;
        let large_dur = large.remote_complete - small.remote_complete;
        assert!(large_dur > 10 * small_dur, "1 MiB ({large_dur}) vs 8 B ({small_dur})");
    }

    #[test]
    fn large_put_approaches_link_bandwidth() {
        let (m, p) = shmem_on_stampede(2);
        let cm = CostModel::new(&m, p);
        let bytes = 8 << 20;
        let t = cm.put(0, 16, bytes, 0, 0, None);
        let gb_per_s = bytes as f64 / t.remote_complete as f64; // bytes/ns
        let wire_bw = m.config().wire.inter.bytes_per_ns;
        assert!(gb_per_s > 0.8 * wire_bw, "sustained {gb_per_s:.2} of wire {wire_bw}");
        assert!(gb_per_s <= wire_bw);
    }

    #[test]
    fn intra_node_put_is_much_faster() {
        let (m, p) = shmem_on_stampede(2);
        let cm = CostModel::new(&m, p);
        let local = cm.put(0, 1, 1024, 0, 0, None).remote_complete;
        let remote = cm.put(2, 17, 1024, 0, 0, None).remote_complete;
        assert!(local * 3 < remote, "local {local} remote {remote}");
    }

    #[test]
    fn put_local_completion_precedes_remote() {
        let (m, p) = shmem_on_stampede(2);
        let cm = CostModel::new(&m, p);
        let t = cm.put(0, 16, 4096, 100, 0, None);
        assert!(t.local_complete < t.remote_complete);
        assert!(t.local_complete > 100);
    }

    #[test]
    fn fence_floor_delays_data_flow() {
        let (m, p) = shmem_on_stampede(2);
        let cm = CostModel::new(&m, p);
        let unfenced = cm.put(0, 16, 64, 0, 0, None);
        // Fresh machine so NIC state doesn't carry over.
        let (m2, p2) = shmem_on_stampede(2);
        let cm2 = CostModel::new(&m2, p2);
        let fenced = cm2.put(0, 16, 64, 0, 50_000, None);
        assert!(fenced.remote_complete >= 50_000);
        assert!(fenced.remote_complete > unfenced.remote_complete);
    }

    #[test]
    fn get_costs_a_round_trip() {
        let (m, p) = shmem_on_stampede(2);
        let cm = CostModel::new(&m, p);
        let put = cm.put(0, 16, 8, 0, 0, None).remote_complete;
        let (m2, p2) = shmem_on_stampede(2);
        let cm2 = CostModel::new(&m2, p2);
        let get = cm2.get(0, 16, 8, 0, None);
        assert!(get > put + m.config().wire.inter.latency_ns as u64, "get {get} put {put}");
    }

    #[test]
    fn contention_divides_bandwidth() {
        // 16 concurrent large puts through one NIC pair vs one alone.
        let (m, p) = shmem_on_stampede(2);
        let cm = CostModel::new(&m, p);
        let bytes = 1 << 20;
        let mut last = 0;
        for src in 0..16 {
            last = last.max(cm.put(src, 16 + src, bytes, 0, 0, None).remote_complete);
        }
        let (m1, p1) = shmem_on_stampede(2);
        let alone = CostModel::new(&m1, p1).put(0, 16, bytes, 0, 0, None).remote_complete;
        let ratio = last as f64 / alone as f64;
        assert!(ratio > 10.0 && ratio < 20.0, "16-way contention ratio {ratio:.1}");
    }

    #[test]
    fn native_amo_beats_am_emulated() {
        let m = Machine::new(titan(2, 16));
        let native = CostModel::new(&m, ConduitProfile::cray_shmem(Platform::Titan));
        let t_native = native.amo(0, 16, true, 0, None).local_complete;
        let m2 = Machine::new(titan(2, 16));
        let emulated = CostModel::new(&m2, ConduitProfile::gasnet(Platform::Titan));
        let t_am = emulated.amo(0, 16, true, 0, None).local_complete;
        assert!(
            t_am as f64 > 1.2 * t_native as f64,
            "AM-emulated {t_am} should clearly exceed native {t_native}"
        );
    }

    #[test]
    fn nonfetching_amo_returns_early_on_native() {
        let m = Machine::new(titan(2, 16));
        let cm = CostModel::new(&m, ConduitProfile::cray_shmem(Platform::Titan));
        let t = cm.amo(0, 16, false, 0, None);
        assert!(t.local_complete < t.remote_complete);
        let m2 = Machine::new(titan(2, 16));
        let cm2 = CostModel::new(&m2, ConduitProfile::cray_shmem(Platform::Titan));
        let tf = cm2.amo(0, 16, true, 0, None);
        assert!(tf.local_complete > tf.remote_complete, "fetch waits for the reply");
    }

    #[test]
    fn strided_native_only_on_capable_profiles() {
        let m = Machine::new(titan(2, 16));
        let cray = CostModel::new(&m, ConduitProfile::cray_shmem(Platform::Titan));
        assert!(cray.strided_put_native(0, 16, 100, 8, 0, 0, None).is_some());
        let mv = CostModel::new(&m, ConduitProfile::mvapich_shmem());
        assert!(mv.strided_put_native(0, 16, 100, 8, 0, 0, None).is_none());
        assert!(mv.strided_get_native(0, 16, 100, 8, 0, None).is_none());
    }

    #[test]
    fn one_native_strided_beats_elementwise_puts() {
        let m = Machine::new(titan(2, 16));
        let cm = CostModel::new(&m, ConduitProfile::cray_shmem(Platform::Titan));
        let n = 64;
        let strided = cm.strided_put_native(0, 16, n, 8, 0, 0, None).unwrap().remote_complete;
        let m2 = Machine::new(titan(2, 16));
        let cm2 = CostModel::new(&m2, ConduitProfile::cray_shmem(Platform::Titan));
        let mut t = 0;
        let mut clock = 0;
        for _ in 0..n {
            let pt = cm2.put(0, 16, 8, clock, 0, None);
            clock = pt.local_complete;
            t = pt.remote_complete;
        }
        assert!(strided * 4 < t, "one iput {strided} vs {n} puts {t}");
    }

    #[test]
    fn rendezvous_adds_a_round_trip() {
        let m = Machine::new(stampede(2, 16));
        let p = ConduitProfile::mpi3(Platform::Stampede); // 8 KiB threshold
        let cm = CostModel::new(&m, p);
        let below = cm.put(0, 16, 8 * 1024, 0, 0, None).remote_complete;
        let m2 = Machine::new(stampede(2, 16));
        let cm2 = CostModel::new(&m2, p);
        let above = cm2.put(0, 16, 8 * 1024 + 1, 0, 0, None).remote_complete;
        let delta = above as i64 - below as i64;
        assert!(delta as f64 > 1.5 * m.config().wire.inter.latency_ns, "delta {delta}");
    }

    #[test]
    fn barrier_cost_grows_logarithmically() {
        let m = Machine::new(stampede(64, 16));
        let cm = CostModel::new(&m, ConduitProfile::mvapich_shmem());
        let b2 = cm.barrier_ns(2);
        let b1024 = cm.barrier_ns(1024);
        assert!((b1024 / b2 - 10.0).abs() < 0.01, "log2(1024)/log2(2) = 10, got {}", b1024 / b2);
        assert!(cm.barrier_ns(1) < b2);
    }

    #[test]
    fn am_packed_put_charges_unpack_at_target() {
        let m = Machine::new(stampede(2, 16));
        let cm = CostModel::new(&m, ConduitProfile::gasnet(Platform::Stampede));
        let plain = cm.put(0, 16, 800, 0, 0, None);
        let m2 = Machine::new(stampede(2, 16));
        let cm2 = CostModel::new(&m2, ConduitProfile::gasnet(Platform::Stampede));
        let packed = cm2.am_packed_put(0, 16, 100, 8, 0, 0, None);
        assert!(packed.remote_complete > plain.remote_complete);
        assert_eq!(packed.local_complete, plain.local_complete);
    }

    #[test]
    fn estimates_match_real_calls_on_idle_nics() {
        // Every estimator must equal the corresponding reserving call issued
        // at start = 0 on a fresh machine, for every profile family and for
        // both intra- and inter-node pairs.
        type Cfg = fn() -> pgas_machine::MachineConfig;
        let cases: [(ConduitProfile, Cfg); 4] = [
            (ConduitProfile::cray_shmem(Platform::Titan), || titan(2, 16)),
            (ConduitProfile::mvapich_shmem(), || stampede(2, 16)),
            (ConduitProfile::gasnet(Platform::Stampede), || stampede(2, 16)),
            (ConduitProfile::mpi3(Platform::Stampede), || stampede(2, 16)),
        ];
        for (p, cfg) in cases {
            for (src, dst) in [(0usize, 1usize), (0, 16)] {
                for bytes in [8usize, 800, 64 * 1024, 1 << 20] {
                    let m = Machine::new(cfg());
                    let est = CostModel::new(&m, p).put_estimate(src, dst, bytes);
                    let m2 = Machine::new(cfg());
                    let real = CostModel::new(&m2, p).put(src, dst, bytes, 0, 0, None);
                    assert_eq!(est, real, "put {bytes}B {src}->{dst} on {}", p.label());

                    let m3 = Machine::new(cfg());
                    let gest = CostModel::new(&m3, p).get_estimate_ns(src, dst, bytes);
                    let m4 = Machine::new(cfg());
                    let greal = CostModel::new(&m4, p).get(src, dst, bytes, 0, None);
                    assert_eq!(gest, greal, "get {bytes}B {src}->{dst} on {}", p.label());
                }
                for nelems in [8usize, 100, 1024] {
                    let m = Machine::new(cfg());
                    let est = CostModel::new(&m, p).strided_put_estimate(src, dst, nelems, 8);
                    let m2 = Machine::new(cfg());
                    let real =
                        CostModel::new(&m2, p).strided_put_native(src, dst, nelems, 8, 0, 0, None);
                    assert_eq!(est, real, "iput n={nelems} {src}->{dst} on {}", p.label());

                    let m3 = Machine::new(cfg());
                    let aest = CostModel::new(&m3, p).am_packed_put_estimate(src, dst, nelems, 8);
                    let m4 = Machine::new(cfg());
                    let areal =
                        CostModel::new(&m4, p).am_packed_put(src, dst, nelems, 8, 0, 0, None);
                    assert_eq!(aest, areal, "am n={nelems} {src}->{dst} on {}", p.label());

                    let m5 = Machine::new(cfg());
                    let igest = CostModel::new(&m5, p).strided_get_estimate_ns(src, dst, nelems, 8);
                    let m6 = Machine::new(cfg());
                    let igreal =
                        CostModel::new(&m6, p).strided_get_native(src, dst, nelems, 8, 0, None);
                    assert_eq!(igest, igreal, "iget n={nelems} {src}->{dst} on {}", p.label());

                    let m7 = Machine::new(cfg());
                    let agest =
                        CostModel::new(&m7, p).am_packed_get_estimate_ns(src, dst, nelems, 8);
                    let m8 = Machine::new(cfg());
                    let agreal = CostModel::new(&m8, p).am_packed_get(src, dst, nelems, 8, 0, None);
                    assert_eq!(agest, agreal, "am get n={nelems} {src}->{dst} on {}", p.label());
                }
            }
        }
    }

    #[test]
    fn degradation_window_stretches_transfers() {
        use pgas_machine::{DegradedWindow, FaultPlan};
        let plan = FaultPlan::new(5).with_degraded_window(DegradedWindow {
            node: 1,
            begin_ns: 0,
            end_ns: u64::MAX,
            bandwidth_factor: 0.25,
        });
        let m = Machine::new(stampede(2, 16).with_faults(plan));
        let cm = CostModel::new(&m, ConduitProfile::mvapich_shmem());
        let slow = cm.put(0, 16, 1 << 20, 0, 0, None).remote_complete;
        let m2 = Machine::new(stampede(2, 16).with_faults(FaultPlan::none()));
        let fast = CostModel::new(&m2, ConduitProfile::mvapich_shmem())
            .put(0, 16, 1 << 20, 0, 0, None)
            .remote_complete;
        assert!(slow > 2 * fast, "degraded rx {slow} vs nominal {fast}");

        // Outside the window (different node) nothing changes.
        let m3 = Machine::new(stampede(2, 16).with_faults(FaultPlan::new(5).with_degraded_window(
            DegradedWindow { node: 0, begin_ns: 1 << 60, end_ns: 1 << 61, bandwidth_factor: 0.25 },
        )));
        let unaffected = CostModel::new(&m3, ConduitProfile::mvapich_shmem())
            .put(0, 16, 1 << 20, 0, 0, None)
            .remote_complete;
        assert_eq!(unaffected, fast);
    }

    #[test]
    fn estimates_do_not_reserve_nic_time() {
        // Probing must leave the shared timelines untouched: a real call after
        // a barrage of estimates sees the same timing as on a fresh machine.
        let m = Machine::new(stampede(2, 16));
        let cm = CostModel::new(&m, ConduitProfile::mvapich_shmem());
        for bytes in [8usize, 4096, 1 << 20] {
            let _ = cm.put_estimate(0, 16, bytes);
            let _ = cm.get_estimate_ns(0, 16, bytes);
            let _ = cm.strided_put_estimate(0, 16, bytes / 8, 8);
            let _ = cm.am_packed_put_estimate(0, 16, bytes / 8, 8);
            let _ = cm.strided_get_estimate_ns(0, 16, bytes / 8, 8);
            let _ = cm.am_packed_get_estimate_ns(0, 16, bytes / 8, 8);
        }
        let after_probes = cm.put(0, 16, 1 << 20, 0, 0, None);
        let m2 = Machine::new(stampede(2, 16));
        let fresh =
            CostModel::new(&m2, ConduitProfile::mvapich_shmem()).put(0, 16, 1 << 20, 0, 0, None);
        assert_eq!(after_probes, fresh);
    }
}
